//! Property tests for the Cannon baseline: correctness against the
//! reference for arbitrary shapes/grids, and shift-volume accounting.

use bst_dbcsr::cannon_multiply;
use bst_sparse::generate::{generate, SyntheticParams};
use bst_sparse::BlockSparseMatrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cannon equals the reference product for random block-sparse problems
    /// on every feasible grid.
    #[test]
    fn cannon_matches_reference(
        m in 20u64..60,
        nk in 20u64..80,
        density in 0.2f64..1.0,
        s in 1usize..4,
        seed in 0u64..300,
    ) {
        let prob = generate(&SyntheticParams {
            m,
            n: nk,
            k: nk,
            density,
            tile_min: 3,
            tile_max: 9,
            seed,
        });
        // The grid edge must not exceed any tile-grid dimension.
        let max_s = prob
            .a
            .tile_rows()
            .min(prob.a.tile_cols())
            .min(prob.b.tile_cols());
        let s = s.min(max_s).max(1);
        let a = BlockSparseMatrix::random_from_structure(prob.a.clone(), seed);
        let b = BlockSparseMatrix::random_from_structure(prob.b.clone(), seed ^ 7);
        let (c, stats) = cannon_multiply(&a, &b, s);
        let mut c_ref = BlockSparseMatrix::zeros(
            prob.a.row_tiling().clone(),
            prob.b.col_tiling().clone(),
        );
        c_ref.gemm_acc_reference(&a, &b);
        prop_assert!(c.max_abs_diff(&c_ref) < 1e-9);
        // Every (i,k,j) triple multiplied exactly once.
        let expect = bst_sparse::structure::gemm_task_count(&prob.a, &prob.b, None);
        prop_assert_eq!(stats.local_gemms, expect);
        prop_assert_eq!(stats.steps, s);
    }

    /// Shift volumes are bounded by (s-1) x the matrix bytes and are zero
    /// on a single process.
    #[test]
    fn shift_volume_bounds(
        nk in 24u64..72,
        density in 0.3f64..1.0,
        s in 1usize..5,
        seed in 0u64..200,
    ) {
        let prob = generate(&SyntheticParams {
            m: nk,
            n: nk,
            k: nk,
            density,
            tile_min: 4,
            tile_max: 8,
            seed,
        });
        let max_s = prob.a.tile_rows().min(prob.a.tile_cols()).min(prob.b.tile_cols());
        let s = s.min(max_s).max(1);
        let a = BlockSparseMatrix::random_from_structure(prob.a.clone(), seed);
        let b = BlockSparseMatrix::random_from_structure(prob.b.clone(), seed ^ 7);
        let (_c, stats) = cannon_multiply(&a, &b, s);
        if s == 1 {
            prop_assert_eq!(stats.a_shift_bytes, 0);
            prop_assert_eq!(stats.b_shift_bytes, 0);
        } else {
            prop_assert!(stats.a_shift_bytes <= (s as u64 - 1) * prob.a.bytes());
            prop_assert!(stats.b_shift_bytes <= (s as u64 - 1) * prob.b.bytes());
            prop_assert!(stats.a_shift_bytes > 0);
        }
    }
}

#![warn(missing_docs)]

//! DBCSR-like baseline: block-sparse matrix multiplication with Cannon's
//! algorithm on a square process grid.
//!
//! The paper compares its PaRSEC implementation against libDBCSR (CP2K's
//! Distributed Block Compressed Sparse Row library), which "uses the Cannon
//! algorithm to schedule communications between nodes" with one GPU per MPI
//! process (§5.1, §6.2). This crate implements that baseline *numerically*:
//!
//! * [`cannon`] — the Cannon schedule itself: panels of `A` shift along grid
//!   rows and panels of `B` along grid columns, one local block-sparse
//!   multiply per step, processes running in parallel (rayon) with a
//!   bulk-synchronous barrier between steps, communication volumes
//!   accounted per shift;
//! * the local multiply reuses the `bst-sparse` tile kernels, so results are
//!   bit-comparable with the reference and with the PaRSEC-style executor.
//!
//! The corresponding *performance/capacity model* (used for Fig. 2's right
//! panel, including the out-of-memory failures) lives in `bst-sim::dbcsr`.

pub mod cannon;

pub use cannon::{cannon_multiply, CannonStats};

//! Cannon's algorithm over block-sparse panels.
//!
//! An `s × s` process grid partitions the tile grids into contiguous panel
//! groups: process `(pi, pj)` owns the `C` panel `(rows pi, cols pj)` and,
//! at step `t`, multiplies the `A` panel `(pi, kg)` with the `B` panel
//! `(kg, pj)` where `kg = (pi + pj + t) mod s` — the skewed schedule that
//! makes every process busy every step while `A` rotates along grid rows
//! and `B` along grid columns. After `s` steps every contribution has been
//! accumulated exactly once.

use bst_sparse::structure::check_product_dims;
use bst_sparse::BlockSparseMatrix;
use bst_tile::gemm::gemm_blocked;
use bst_tile::Tile;
use rayon::prelude::*;
use std::collections::HashMap;

/// Communication/computation statistics of one Cannon run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CannonStats {
    /// Grid edge `s` (grid is `s × s`).
    pub grid: usize,
    /// Number of shift steps executed.
    pub steps: usize,
    /// Bytes of `A` panels moved between processes (all steps).
    pub a_shift_bytes: u64,
    /// Bytes of `B` panels moved between processes (all steps).
    pub b_shift_bytes: u64,
    /// Tile-level GEMMs executed.
    pub local_gemms: u64,
}

/// Splits `n` tile indices into `s` contiguous groups; returns the group
/// boundaries (length `s + 1`).
fn panel_bounds(n: usize, s: usize) -> Vec<usize> {
    (0..=s).map(|g| g * n / s).collect()
}

/// Multiplies block-sparse `a · b` with Cannon's algorithm on an `s × s`
/// grid, returning the product and the communication statistics.
///
/// # Panics
/// Panics if the matrices are not conformable or `s` is zero or larger than
/// any tile-grid dimension.
pub fn cannon_multiply(
    a: &BlockSparseMatrix,
    b: &BlockSparseMatrix,
    s: usize,
) -> (BlockSparseMatrix, CannonStats) {
    check_product_dims(a.structure(), b.structure());
    let (mt, kt) = (a.structure().tile_rows(), a.structure().tile_cols());
    let nt = b.structure().tile_cols();
    assert!(s >= 1, "grid edge must be positive");
    assert!(
        s <= mt && s <= kt && s <= nt,
        "grid {s} larger than tile grid {mt}x{kt}x{nt}"
    );

    let rows = panel_bounds(mt, s);
    let inner = panel_bounds(kt, s);
    let cols = panel_bounds(nt, s);

    // Panel byte volumes, for shift accounting.
    let a_panel_bytes = |pi: usize, pk: usize| -> u64 {
        (rows[pi]..rows[pi + 1])
            .map(|i| {
                (inner[pk]..inner[pk + 1])
                    .map(|k| a.structure().tile_bytes(i, k))
                    .sum::<u64>()
            })
            .sum()
    };
    let b_panel_bytes = |pk: usize, pj: usize| -> u64 {
        (inner[pk]..inner[pk + 1])
            .map(|k| {
                (cols[pj]..cols[pj + 1])
                    .map(|j| b.structure().tile_bytes(k, j))
                    .sum::<u64>()
            })
            .sum()
    };

    let mut stats = CannonStats {
        grid: s,
        steps: s,
        ..Default::default()
    };

    // Each process accumulates its local C tiles privately; processes run
    // in parallel within a step (BSP: barrier between steps is implicit in
    // the collect).
    let mut locals: Vec<HashMap<(usize, usize), Tile>> = (0..s * s).map(|_| HashMap::new()).collect();

    for t in 0..s {
        // Shift accounting: after the initial alignment (t = 0 data is
        // where it must be), each subsequent step moves every panel once.
        if t > 0 {
            for pi in 0..s {
                for pj in 0..s {
                    let kg = (pi + pj + t) % s;
                    stats.a_shift_bytes += a_panel_bytes(pi, kg);
                    stats.b_shift_bytes += b_panel_bytes(kg, pj);
                }
            }
        }
        let gemms: u64 = locals
            .par_iter_mut()
            .enumerate()
            .map(|(pid, local)| {
                let (pi, pj) = (pid / s, pid % s);
                let kg = (pi + pj + t) % s;
                let mut n_gemms = 0u64;
                for k in inner[kg]..inner[kg + 1] {
                    for i in (rows[pi]..rows[pi + 1])
                        .filter(|&i| a.structure().shape().is_nonzero(i, k))
                    {
                        let at = a.tile(i, k).expect("A tile present");
                        for j in (cols[pj]..cols[pj + 1])
                            .filter(|&j| b.structure().shape().is_nonzero(k, j))
                        {
                            let bt = b.tile(k, j).expect("B tile present");
                            let ct = local.entry((i, j)).or_insert_with(|| {
                                Tile::zeros(at.rows(), bt.cols())
                            });
                            gemm_blocked(1.0, at, bt, ct);
                            n_gemms += 1;
                        }
                    }
                }
                n_gemms
            })
            .sum();
        stats.local_gemms += gemms;
    }

    // Gather the distributed C.
    let mut c = BlockSparseMatrix::zeros(
        a.structure().row_tiling().clone(),
        b.structure().col_tiling().clone(),
    );
    for local in locals {
        for ((i, j), tile) in local {
            c.insert_tile(i, j, tile);
        }
    }
    (c, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bst_sparse::generate::{generate, SyntheticParams};
    use bst_sparse::MatrixStructure;
    use bst_tile::Tiling;

    fn reference(a: &BlockSparseMatrix, b: &BlockSparseMatrix) -> BlockSparseMatrix {
        let mut c = BlockSparseMatrix::zeros(
            a.structure().row_tiling().clone(),
            b.structure().col_tiling().clone(),
        );
        c.gemm_acc_reference(a, b);
        c
    }

    #[test]
    fn panel_bounds_cover() {
        assert_eq!(panel_bounds(10, 3), vec![0, 3, 6, 10]);
        assert_eq!(panel_bounds(4, 4), vec![0, 1, 2, 3, 4]);
        assert_eq!(panel_bounds(7, 1), vec![0, 7]);
    }

    #[test]
    fn dense_matches_reference() {
        let sa = MatrixStructure::dense(Tiling::uniform(12, 3), Tiling::uniform(12, 3));
        let sb = MatrixStructure::dense(Tiling::uniform(12, 3), Tiling::uniform(12, 3));
        let a = BlockSparseMatrix::random_from_structure(sa, 1);
        let b = BlockSparseMatrix::random_from_structure(sb, 2);
        for s in [1, 2, 4] {
            let (c, stats) = cannon_multiply(&a, &b, s);
            assert!(c.max_abs_diff(&reference(&a, &b)) < 1e-10, "grid {s}");
            assert_eq!(stats.local_gemms, 64, "every triple exactly once");
        }
    }

    #[test]
    fn sparse_irregular_matches_reference() {
        let prob = generate(&SyntheticParams {
            m: 60,
            n: 60,
            k: 60,
            density: 0.4,
            tile_min: 4,
            tile_max: 12,
            seed: 11,
        });
        let a = BlockSparseMatrix::random_from_structure(prob.a, 3);
        let b = BlockSparseMatrix::random_from_structure(prob.b, 4);
        for s in [1, 2, 3] {
            let (c, _) = cannon_multiply(&a, &b, s);
            assert!(c.max_abs_diff(&reference(&a, &b)) < 1e-10, "grid {s}");
        }
    }

    #[test]
    fn rectangular_matches_reference() {
        let sa = MatrixStructure::dense(Tiling::uniform(6, 2), Tiling::uniform(20, 4));
        let sb = MatrixStructure::dense(Tiling::uniform(20, 4), Tiling::uniform(30, 5));
        let a = BlockSparseMatrix::random_from_structure(sa, 5);
        let b = BlockSparseMatrix::random_from_structure(sb, 6);
        let (c, _) = cannon_multiply(&a, &b, 3);
        assert!(c.max_abs_diff(&reference(&a, &b)) < 1e-10);
    }

    #[test]
    fn single_process_shifts_nothing() {
        let sa = MatrixStructure::dense(Tiling::uniform(4, 2), Tiling::uniform(4, 2));
        let sb = MatrixStructure::dense(Tiling::uniform(4, 2), Tiling::uniform(4, 2));
        let a = BlockSparseMatrix::random_from_structure(sa, 1);
        let b = BlockSparseMatrix::random_from_structure(sb, 2);
        let (_, stats) = cannon_multiply(&a, &b, 1);
        assert_eq!(stats.a_shift_bytes, 0);
        assert_eq!(stats.b_shift_bytes, 0);
        assert_eq!(stats.steps, 1);
    }

    #[test]
    fn shift_volume_is_s_minus_1_times_matrix() {
        // Dense, evenly divisible: each of the s−1 shifting steps moves the
        // whole of A and the whole of B once.
        let sa = MatrixStructure::dense(Tiling::uniform(8, 2), Tiling::uniform(8, 2));
        let sb = MatrixStructure::dense(Tiling::uniform(8, 2), Tiling::uniform(8, 2));
        let a = BlockSparseMatrix::random_from_structure(sa, 1);
        let b = BlockSparseMatrix::random_from_structure(sb, 2);
        let (_, stats) = cannon_multiply(&a, &b, 4);
        assert_eq!(stats.a_shift_bytes, 3 * a.structure().bytes());
        assert_eq!(stats.b_shift_bytes, 3 * b.structure().bytes());
    }

    #[test]
    #[should_panic(expected = "larger than tile grid")]
    fn oversized_grid_panics() {
        let sa = MatrixStructure::dense(Tiling::uniform(4, 2), Tiling::uniform(4, 2));
        let sb = MatrixStructure::dense(Tiling::uniform(4, 2), Tiling::uniform(4, 2));
        let a = BlockSparseMatrix::random_from_structure(sa, 1);
        let b = BlockSparseMatrix::random_from_structure(sb, 2);
        cannon_multiply(&a, &b, 3);
    }
}

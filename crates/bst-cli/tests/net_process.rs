//! Process-level fault drills for the socket transport: real `bst worker`
//! OS processes over loopback UDS, with one worker SIGKILLed mid-broadcast
//! and with workers that never dial in. Both failure modes must surface as
//! typed errors or a completed degraded run — never a hang.

use bst_cli::{launch_config, run_launch};
use bst_contract::error::BstError;
use bst_net::{launch, NetError};
use std::time::Duration;

/// A small problem keeps each fleet run to a few seconds without making
/// the broadcast tree trivial: 4 nodes on a 2x2 grid, multi-hop A
/// forwarding.
const PROBLEM: &str = "64x320x320:0.6";

fn parse(args: &[&str]) -> bst_cli::Cli {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    bst_cli::parse(&args).expect("test CLI parses")
}

fn worker_cmd() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_bst").to_string(), "worker".into()]
}

/// Kill a worker after its *first* data-frame send: with a 2x2 grid the
/// dying rank is mid-way through its `BcastA` duties (own sends and tree
/// forward hops still pending), so peers are left waiting on deliveries
/// that will never come. The launcher must detect the death (EOF or missed
/// heartbeat), respawn the fleet with the rank written off, and the
/// degraded re-plan must agree with the fault-free reference.
#[test]
fn worker_killed_mid_broadcast_recovers_degraded() {
    let cli = parse(&[
        "launch",
        "--synthetic",
        PROBLEM,
        "-n",
        "4",
        "--kill",
        "1",
        "--die-after",
        "1",
    ]);
    let lc = launch_config(&cli, worker_cmd()).expect("launch config");
    let report = run_launch(&cli, &lc).expect("degraded run completes");
    assert_eq!(
        report.outcome.recovered_dead,
        Some(1),
        "rank 1 should have died and been written off"
    );
    assert_eq!(report.outcome.attempts, 2, "one clean attempt + one recovery rerun");
    assert!(
        report.max_diff <= 1e-10,
        "degraded run disagrees with the fault-free reference: {:.3e}",
        report.max_diff
    );
}

/// A worker that never dials in (no `Hello` ever arrives) must trip the
/// launcher's connect window as a typed
/// `NetError::ConnectTimeout` carrying the honest head-count — not hang
/// and not panic.
#[test]
fn launcher_times_out_on_silent_workers() {
    let cli = parse(&["launch", "--synthetic", PROBLEM, "-n", "2"]);
    // `sleep` balks at the appended `--rank ... --connect ...` argv and
    // exits at once — either way no `Hello` ever reaches the launcher,
    // which is the condition under test.
    let mut lc = launch_config(&cli, vec!["sleep".into(), "30".into()]).expect("launch config");
    lc.connect_timeout = Duration::from_secs(2);
    match launch(&lc) {
        Err(NetError::ConnectTimeout { expected, connected }) => {
            assert_eq!(expected, 2);
            assert_eq!(connected, 0, "no silent worker should count as connected");
        }
        Ok(_) => panic!("launch succeeded with workers that never connected"),
        Err(e) => panic!("expected ConnectTimeout, got {e}"),
    }
}

/// The same timeout must surface through the CLI error plumbing
/// (`BstError::Net`) when driven via `run_launch`, so `bst launch` exits
/// with a rendered diagnostic instead of an unwrap.
#[test]
fn connect_timeout_surfaces_as_bst_error() {
    let cli = parse(&["launch", "--synthetic", PROBLEM, "-n", "2"]);
    let mut lc = launch_config(&cli, vec!["sleep".into(), "30".into()]).expect("launch config");
    lc.connect_timeout = Duration::from_secs(2);
    match run_launch(&cli, &lc) {
        Err(BstError::Net(NetError::ConnectTimeout { .. })) => {}
        Ok(_) => panic!("run_launch succeeded with workers that never connected"),
        Err(e) => panic!("expected BstError::Net(ConnectTimeout), got {e}"),
    }
}

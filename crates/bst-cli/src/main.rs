//! `bst` — CLI entry point. See [`bst_cli`] for the grammar.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match bst_cli::parse(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut out = std::io::stdout();
    if let Err(e) = bst_cli::run(&cli, &mut out) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

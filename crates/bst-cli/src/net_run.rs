//! The multi-process runners behind `bst worker` and `bst launch`.
//!
//! `bst launch -n P` spawns `P` copies of this binary as `bst worker`
//! processes over loopback sockets (UDS by default, TCP with
//! `--transport tcp`), ships them the job as a small `key=value` text,
//! and gates the assembled result **bit-identically** against an
//! in-process run over the channel transport — same spec, same plan, same
//! seeds, so any difference is the transport's fault.
//!
//! The job text round-trips through [`job_config_text`] /
//! [`parse_job_config`] and reuses the exact [`crate::RunOpts`] parser the CLI
//! flags use, so the launcher and its workers cannot disagree about what
//! an option means.

use crate::{build_problem, parse_synthetic, Cli, Command, ProblemKind};
use bst_contract::error::BstError;
use bst_contract::exec::{execute_numeric_distributed, execute_numeric_with, ExecOptions};
use bst_contract::{DeviceConfig, ExecutionPlan, GridConfig, PlannerConfig};
use bst_net::{launch, LaunchConfig, LaunchOutcome, NetError, SocketWire, Transport, WorkerConfig};
use bst_runtime::comm::DeliveryPolicy;
use bst_sparse::BlockSparseMatrix;
use bst_tile::Tile;
use std::sync::Arc;

/// Serializes the job a launcher ships to its workers. Everything a worker
/// needs to rebuild the identical spec/plan/options rides in here; the
/// transport appends its own `peers=` (and, on a recovery rerun,
/// `dead_node=`) lines.
pub fn job_config_text(cli: &Cli) -> String {
    let problem = match &cli.problem {
        ProblemKind::Molecule(m) => format!("molecule:{m}"),
        ProblemKind::Synthetic { m, n, k, density } => {
            format!("synthetic:{m}x{n}x{k}:{density}")
        }
    };
    let mut text = format!(
        "problem={problem}\ntiling={}\nnodes={}\nnode-size={}\ntolerance={}\np={}\ngpus={}\nseed={}",
        cli.tiling,
        cli.opts.nodes,
        cli.opts.node_size,
        cli.opts.tolerance,
        cli.p,
        cli.gpus,
        cli.seed
    );
    if let Some(seed) = cli.reorder {
        text.push_str(&format!("\nreorder={seed}"));
    }
    text
}

/// The worker-side view of a job text: the rebuilt CLI state plus the
/// launcher-appended write-off and the reorder stressor.
pub struct Job {
    /// The job as a [`Cli`] (problem, shared options, grid, seed).
    pub cli: Cli,
    /// Rank written off by a recovery rerun (`dead_node=` line).
    pub dead_node: Option<usize>,
    /// Delivery-reorder stressor seed for the local fabric.
    pub reorder: Option<u64>,
}

/// Parses a launcher's job text. Unknown keys (`peers=`, future options)
/// are ignored; malformed values of known keys are typed errors.
pub fn parse_job_config(text: &str) -> Result<Job, NetError> {
    let proto = |e: String| NetError::Protocol(e);
    let mut cli = crate::parse(&["worker".to_string()]).map_err(|e| proto(e.0))?;
    let mut dead_node = None;
    let mut reorder = None;
    for line in text.lines() {
        let Some((key, raw)) = line.split_once('=') else { continue };
        match key {
            "problem" => {
                cli.problem = match raw.split_once(':') {
                    Some(("molecule", spec)) => ProblemKind::Molecule(spec.to_string()),
                    Some(("synthetic", spec)) => {
                        parse_synthetic(spec).map_err(|e| proto(e.0))?
                    }
                    _ => return Err(proto(format!("bad problem descriptor '{raw}'"))),
                }
            }
            "tiling" => cli.tiling = raw.to_string(),
            "p" => cli.p = raw.parse().map_err(|_| proto(format!("bad p '{raw}'")))?,
            "gpus" => cli.gpus = raw.parse().map_err(|_| proto(format!("bad gpus '{raw}'")))?,
            "seed" => cli.seed = raw.parse().map_err(|_| proto(format!("bad seed '{raw}'")))?,
            "reorder" => {
                reorder = Some(raw.parse().map_err(|_| proto(format!("bad reorder '{raw}'")))?)
            }
            "dead_node" => {
                dead_node =
                    Some(raw.parse().map_err(|_| proto(format!("bad dead_node '{raw}'")))?)
            }
            key => {
                // The shared options parse exactly as their CLI flags do.
                cli.opts.set(key, raw).map_err(|e| proto(e.0))?;
            }
        }
    }
    Ok(Job { cli, dead_node, reorder })
}

fn planner_config(cli: &Cli) -> PlannerConfig {
    PlannerConfig::paper(
        GridConfig::from_nodes(cli.opts.nodes, cli.p),
        DeviceConfig { gpus_per_node: cli.gpus, gpu_mem_bytes: 16 << 30 },
    )
}

fn exec_options(cli: &Cli, reorder: Option<u64>) -> ExecOptions {
    let mut builder = ExecOptions::builder()
        .node_size(cli.opts.node_size)
        .compress_tol(cli.opts.tolerance);
    if let Some(seed) = reorder {
        builder = builder.delivery(DeliveryPolicy::Reorder { seed, window: 8 });
    }
    builder.build()
}

/// Executes a job text as rank `rank` of a multi-process run, shipping
/// frames over `wire`. Returns rank 0's C tiles (empty on other ranks).
/// This is the closure `bst worker` hands to
/// [`worker_session`](bst_net::worker_session); errors are rendered for
/// the `Abort` control message.
pub fn worker_job(
    text: &str,
    rank: usize,
    wire: Arc<SocketWire>,
) -> Result<Vec<(u32, u32, Tile)>, String> {
    let job = parse_job_config(text).map_err(|e| e.to_string())?;
    let (spec, _) = build_problem(&job.cli).map_err(|e| e.to_string())?;
    let config = planner_config(&job.cli);
    let dead: Vec<usize> = job.dead_node.into_iter().collect();
    let plan = ExecutionPlan::build_with(&spec, config, &dead).map_err(|e| e.to_string())?;
    let a = BlockSparseMatrix::random_from_structure(spec.a.clone(), job.cli.seed);
    let b_gen = bst_sparse::matrix::random_b_gen(job.cli.seed ^ 0xB);
    let opts = exec_options(&job.cli, job.reorder);
    let (c, _report) =
        execute_numeric_distributed(&spec, &plan, &a, &b_gen, opts, rank, wire)
            .map_err(|e| e.to_string())?;
    if rank == 0 {
        Ok(c.iter_tiles().map(|(&(i, j), t)| (i as u32, j as u32, t.clone())).collect())
    } else {
        Ok(Vec::new())
    }
}

/// The `bst worker` entry point: one rank's full session.
pub fn run_worker(cli: &Cli) -> Result<(), BstError> {
    let connect = cli
        .connect
        .clone()
        .ok_or_else(|| NetError::Protocol("worker needs --connect ADDR".into()))
        .map_err(BstError::Net)?;
    let transport = Transport::parse(&cli.transport)
        .map_err(|e| BstError::Net(NetError::Protocol(e)))?;
    let wcfg = WorkerConfig {
        rank: cli.rank,
        ranks: cli.ranks,
        connect,
        transport,
        die_after_tile_sends: cli.die_after,
    };
    bst_net::worker_session(&wcfg, |text, wire| worker_job(text, wcfg.rank, wire))
        .map_err(BstError::Net)?;
    Ok(())
}

/// Builds the [`LaunchConfig`] for a parsed `bst launch` command line.
/// `worker_cmd` is the argv prefix of the worker processes (normally this
/// binary plus `worker`); tests substitute their own to exercise timeout
/// and crash paths.
pub fn launch_config(cli: &Cli, worker_cmd: Vec<String>) -> Result<LaunchConfig, BstError> {
    let transport = Transport::parse(&cli.transport)
        .map_err(|e| BstError::Net(NetError::Protocol(e)))?;
    let mut lc = LaunchConfig::new(cli.opts.nodes, transport, worker_cmd, job_config_text(cli));
    lc.die_after = cli.kill.map(|rank| (rank, cli.die_after.unwrap_or(2)));
    Ok(lc)
}

/// What a gated multi-process run produced.
pub struct NetRunReport {
    /// The socket run's C, assembled from rank 0's result tiles.
    pub c: BlockSparseMatrix,
    /// The in-process channel-transport reference C.
    pub c_ref: BlockSparseMatrix,
    /// `max |c - c_ref|`.
    pub max_diff: f64,
    /// The transport-level outcome (stats, recovery, attempts).
    pub outcome: LaunchOutcome,
}

/// Runs `lc` and gates it against the in-process reference for `cli`'s
/// problem: spawns the worker fleet, assembles rank 0's tiles, and runs
/// the same spec/plan/seeds over the channel transport in this process.
pub fn run_launch(cli: &Cli, lc: &LaunchConfig) -> Result<NetRunReport, BstError> {
    let (spec, _) = build_problem(cli)
        .map_err(|e| BstError::Net(NetError::Protocol(e.0)))?;
    let config = planner_config(cli);
    let plan = ExecutionPlan::build(&spec, config)?;
    let a = BlockSparseMatrix::random_from_structure(spec.a.clone(), cli.seed);
    let b_gen = bst_sparse::matrix::random_b_gen(cli.seed ^ 0xB);
    // Reference: fault-free, in-order, single-process — the bit-identity
    // baseline even when the socket run reorders deliveries or loses a
    // worker.
    let (c_ref, _) =
        execute_numeric_with(&spec, &plan, &a, &b_gen, exec_options(cli, None))?;

    let outcome = launch(lc).map_err(BstError::Net)?;
    let mut c = BlockSparseMatrix::zeros(
        spec.a.row_tiling().clone(),
        spec.b.col_tiling().clone(),
    );
    for (i, j, tile) in &outcome.tiles {
        c.insert_tile(*i as usize, *j as usize, tile.clone());
    }
    let max_diff = c.max_abs_diff(&c_ref);
    Ok(NetRunReport { c, c_ref, max_diff, outcome })
}

/// The `bst launch` subcommand: run, report, gate.
pub fn run_launch_cmd(
    cli: &Cli,
    out: &mut dyn std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    assert_eq!(cli.command, Command::Launch);
    let exe = std::env::current_exe()?.to_string_lossy().into_owned();
    let lc = launch_config(cli, vec![exe, "worker".into()])?;
    let report = run_launch(cli, &lc)?;
    writeln!(
        out,
        "launched {} workers over {} ({} attempt{})",
        cli.opts.nodes,
        cli.transport,
        report.outcome.attempts,
        if report.outcome.attempts == 1 { "" } else { "s" }
    )?;
    for s in &report.outcome.stats {
        writeln!(
            out,
            "rank {}: {} frames sent / {} received over the wire",
            s.rank, s.sent_msgs, s.recv_msgs
        )?;
    }
    if let Some(dead) = report.outcome.recovered_dead {
        writeln!(out, "rank {dead} died mid-run; fleet respawned with the node written off")?;
    }
    writeln!(out, "max |C_net - C_ref| = {:.3e}", report.max_diff)?;
    if let Some(kill) = cli.kill {
        // Kill drill: the degraded re-plan redistributes the dead rank's
        // work, so the accumulation order changes — the standing fault
        // gate is agreement to 1e-10, not bitwise.
        if report.outcome.recovered_dead != Some(kill) {
            return Err(Box::new(crate::CliError(format!(
                "net smoke FAILED: expected rank {kill} to die and recover, got {:?}",
                report.outcome.recovered_dead
            ))));
        }
        if report.max_diff > 1e-10 {
            return Err(Box::new(crate::CliError(
                "net smoke FAILED: degraded run disagrees with fault-free reference".into(),
            )));
        }
    } else if report.max_diff != 0.0 {
        return Err(Box::new(crate::CliError(
            "net smoke FAILED: socket run is not bit-identical to the channel transport".into(),
        )));
    }
    writeln!(out, "net smoke OK")?;
    Ok(())
}

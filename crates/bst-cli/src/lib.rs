#![warn(missing_docs)]

//! Command-line interface to the block-sparse contraction stack.
//!
//! ```text
//! bst info     --molecule alkane:65 --tiling v1        # problem traits (Table-1 style)
//! bst plan     --molecule alkane:40 --nodes 2          # inspector output & §3.2.4 stats
//! bst simulate --synthetic 48000x192000x192000:0.5 --nodes 16 [--gantt]
//! bst verify   --synthetic 300x2400x2400:0.5 --nodes 2 # numeric run vs reference
//! bst einsum   --synthetic 100x800x800:0.6             # spec-driven chain vs reference
//! ```
//!
//! The argument grammar is deliberately tiny (no external parser): every
//! subcommand accepts `--molecule KIND:ARGS` *or* `--synthetic MxNxK:D`,
//! plus machine flags.

use bst_chem::{CcsdProblem, Molecule, ProblemTraits, ScreeningParams, TilingSpec};
use bst_contract::{DeviceConfig, ExecutionPlan, GridConfig, PlannerConfig, ProblemSpec};
use bst_sim::replay::{simulate_traced, Trace};
use bst_sim::Platform;
use bst_sparse::generate::{generate, SyntheticParams};

pub mod net_run;

pub use net_run::{job_config_text, launch_config, run_launch, run_worker, NetRunReport};

/// Options shared by every numeric subcommand (`verify`/`einsum`/`serve`/
/// `launch`) — and by the `key=value` job text a launcher ships to its
/// workers. One parser serves both surfaces, so the flags can't drift
/// between subcommands.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunOpts {
    /// Node count (`--nodes`, or `-n` for `launch`).
    pub nodes: usize,
    /// Ranks per physical node: the transport routes collective trees so
    /// broadcasts cross the inter-node link once per physical node at most
    /// (1 = every rank its own node).
    pub node_size: usize,
    /// Low-rank compression tolerance: operand tiles are truncated to
    /// `‖T − U·Vᵀ‖_F ≤ tol·‖T‖_F` on their way into the runtime. `0.0`
    /// (the default) keeps every tile dense and the result bit-identical
    /// to the uncompressed engine.
    pub tolerance: f64,
    /// Inject ~8% transient faults seeded from this value and verify the
    /// executor recovers.
    pub faults: Option<u64>,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts { nodes: 2, node_size: 1, tolerance: 0.0, faults: None }
    }
}

impl RunOpts {
    /// Consumes `flag` if it is one of the shared options, pulling its
    /// value from `get`. Returns `Ok(false)` when the flag is not shared
    /// (the caller reports it as unknown).
    pub fn accept(
        &mut self,
        flag: &str,
        get: impl FnOnce() -> Result<String, CliError>,
    ) -> Result<bool, CliError> {
        let key = match flag {
            "--nodes" | "-n" => "nodes",
            "--node-size" => "node-size",
            "--tolerance" => "tolerance",
            "--faults" => "faults",
            _ => return Ok(false),
        };
        let raw = get()?;
        self.set(key, &raw)
    }

    /// Applies one `key=value` pair (flag names without the leading `--`,
    /// as they appear in a launcher's job text). Returns `Ok(false)` for
    /// keys that are not shared options.
    pub fn set(&mut self, key: &str, raw: &str) -> Result<bool, CliError> {
        match key {
            "nodes" => self.nodes = raw.parse().map_err(|_| err("bad --nodes"))?,
            "node-size" | "node_size" => {
                self.node_size = raw.parse().map_err(|_| err("bad --node-size"))?;
                if self.node_size == 0 {
                    return Err(err("--node-size must be >= 1"));
                }
            }
            "tolerance" => {
                self.tolerance = raw.parse().map_err(|_| err("bad --tolerance"))?;
                if !(self.tolerance >= 0.0 && self.tolerance < 1.0) {
                    return Err(err("--tolerance must be in [0, 1)"));
                }
            }
            "faults" => {
                self.faults = Some(raw.parse().map_err(|_| err("bad --faults seed"))?)
            }
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// Parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub struct Cli {
    /// The subcommand.
    pub command: Command,
    /// Problem source.
    pub problem: ProblemKind,
    /// Tiling variant for chemistry problems.
    pub tiling: String,
    /// The options shared across the numeric subcommands.
    pub opts: RunOpts,
    /// Grid-row parameter `p`.
    pub p: usize,
    /// GPUs per node.
    pub gpus: usize,
    /// Print an ASCII Gantt (simulate only).
    pub gantt: bool,
    /// Write a Chrome-trace JSON of the numeric execution here (verify only).
    pub trace: Option<String>,
    /// Print the per-task-kind / per-device trace summary (verify only).
    pub trace_summary: bool,
    /// Concurrent client threads (serve only).
    pub clients: usize,
    /// Requests per client thread (serve only).
    pub requests: usize,
    /// RNG seed.
    pub seed: u64,
    /// This process's rank (worker only).
    pub rank: usize,
    /// Total worker ranks in the run (worker only).
    pub ranks: usize,
    /// The launcher's control address to dial (worker only).
    pub connect: Option<String>,
    /// Socket transport of a multi-process run: `uds` (default) or `tcp`.
    pub transport: String,
    /// Crash drill (launch only): arm one rank to SIGKILL itself mid-run
    /// and verify the fleet recovers via the degraded re-plan.
    pub kill: Option<usize>,
    /// Crash drill trigger: SIGKILL just before the n-th data-frame send
    /// (worker: armed directly; launch: forwarded to the `--kill` rank).
    pub die_after: Option<u64>,
    /// Delivery-reorder stressor seed for the workers' local fabrics
    /// (launch only): the socket run must stay bit-identical under it.
    pub reorder: Option<u64>,
}

/// The available subcommands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Command {
    /// Problem traits.
    Info,
    /// Build a plan and print its statistics.
    Plan,
    /// Replay a plan on the Summit model.
    Simulate,
    /// Execute numerically and verify against the reference.
    Verify,
    /// Smoke-test the persistent contraction service: concurrent clients
    /// submit the same contraction; plans and B tiles must be served from
    /// cache and every result must be bit-identical to the first.
    Serve,
    /// Smoke-test the einsum frontend: lower a two-term chain
    /// (`"ij,jk,kl->il"`, with the last factor generated on demand) into
    /// planned products and verify the result against the dense reference.
    Einsum,
    /// Run one rank of a multi-process execution: dial the launcher, join
    /// the worker mesh, execute this node's slice of the plan against a
    /// private `TileStore`, reduce results to rank 0.
    Worker,
    /// Spawn `-n P` worker processes over loopback sockets, run the job
    /// across them, and gate the assembled result bit-identically against
    /// the in-process channel transport.
    Launch,
}

/// Where the problem comes from.
#[derive(Clone, Debug, PartialEq)]
pub enum ProblemKind {
    /// A generated molecule, e.g. `alkane:65`, `sheet:5x5`, `cluster:3`.
    Molecule(String),
    /// A §5.1 synthetic problem `MxNxK:density`.
    Synthetic {
        /// Element rows of A/C.
        m: u64,
        /// Element columns of B/C.
        n: u64,
        /// Inner dimension.
        k: u64,
        /// Element-wise density target.
        density: f64,
    },
}

/// Error with a user-facing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Usage text.
pub const USAGE: &str = "usage: bst <info|plan|simulate|verify|serve|einsum|launch|worker> \
[--molecule KIND:ARGS | --synthetic MxNxK:D] [--tiling v1|v2|v3] \
[--nodes N] [--node-size S] [--p P] [--gpus G] [--seed S] [--gantt] \
[--trace FILE.json] [--trace-summary] [--faults SEED] \
[--clients N] [--requests M] [--tolerance T] \
[--transport uds|tcp] [--kill RANK] [--die-after K] [--reorder SEED] \
[--rank R --ranks N --connect ADDR]";

/// Parses an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Cli, CliError> {
    let mut it = args.iter();
    let command = match it.next().map(String::as_str) {
        Some("info") => Command::Info,
        Some("plan") => Command::Plan,
        Some("simulate") => Command::Simulate,
        Some("verify") => Command::Verify,
        Some("serve") => Command::Serve,
        Some("einsum") => Command::Einsum,
        Some("worker") => Command::Worker,
        Some("launch") => Command::Launch,
        Some(other) => return Err(err(format!("unknown command {other}\n{USAGE}"))),
        None => return Err(err(USAGE)),
    };
    let mut cli = Cli {
        command,
        problem: ProblemKind::Molecule("alkane:20".into()),
        tiling: "v1".into(),
        opts: RunOpts::default(),
        p: 1,
        gpus: 6,
        gantt: false,
        trace: None,
        trace_summary: false,
        clients: 2,
        requests: 3,
        seed: 42,
        rank: 0,
        ranks: 1,
        connect: None,
        transport: "uds".into(),
        kill: None,
        die_after: None,
        reorder: None,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, CliError> {
            it.next()
                .cloned()
                .ok_or_else(|| err(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--molecule" => cli.problem = ProblemKind::Molecule(value("--molecule")?),
            "--synthetic" => cli.problem = parse_synthetic(&value("--synthetic")?)?,
            "--tiling" => cli.tiling = value("--tiling")?,
            "--p" => cli.p = value("--p")?.parse().map_err(|_| err("bad --p"))?,
            "--gpus" => cli.gpus = value("--gpus")?.parse().map_err(|_| err("bad --gpus"))?,
            "--seed" => cli.seed = value("--seed")?.parse().map_err(|_| err("bad --seed"))?,
            "--gantt" => cli.gantt = true,
            "--trace" => cli.trace = Some(value("--trace")?),
            "--trace-summary" => cli.trace_summary = true,
            "--clients" => {
                cli.clients = value("--clients")?.parse().map_err(|_| err("bad --clients"))?
            }
            "--requests" => {
                cli.requests = value("--requests")?.parse().map_err(|_| err("bad --requests"))?
            }
            "--rank" => cli.rank = value("--rank")?.parse().map_err(|_| err("bad --rank"))?,
            "--ranks" => {
                cli.ranks = value("--ranks")?.parse().map_err(|_| err("bad --ranks"))?
            }
            "--connect" => cli.connect = Some(value("--connect")?),
            "--transport" => cli.transport = value("--transport")?,
            "--kill" => {
                cli.kill = Some(value("--kill")?.parse().map_err(|_| err("bad --kill"))?)
            }
            "--die-after" => {
                cli.die_after =
                    Some(value("--die-after")?.parse().map_err(|_| err("bad --die-after"))?)
            }
            "--reorder" => {
                cli.reorder =
                    Some(value("--reorder")?.parse().map_err(|_| err("bad --reorder seed"))?)
            }
            other => {
                if !cli.opts.accept(other, || value(other))? {
                    return Err(err(format!("unknown flag {other}\n{USAGE}")));
                }
            }
        }
    }
    Ok(cli)
}

/// Parses a `MxNxK:density` synthetic-problem descriptor — the value of
/// `--synthetic`, also used in a launcher's `problem=synthetic:...` job
/// text.
pub fn parse_synthetic(v: &str) -> Result<ProblemKind, CliError> {
    let (dims, density) = v
        .split_once(':')
        .ok_or_else(|| err("--synthetic wants MxNxK:density"))?;
    let parts: Vec<&str> = dims.split('x').collect();
    if parts.len() != 3 {
        return Err(err("--synthetic wants MxNxK:density"));
    }
    let parse_u = |s: &str| {
        s.parse::<u64>()
            .map_err(|_| err(format!("bad dimension {s}")))
    };
    Ok(ProblemKind::Synthetic {
        m: parse_u(parts[0])?,
        n: parse_u(parts[1])?,
        k: parse_u(parts[2])?,
        density: density
            .parse()
            .map_err(|_| err(format!("bad density {density}")))?,
    })
}

/// Builds the molecule named by `spec` (`alkane:N`, `sheet:AxB`, `cluster:N`).
pub fn build_molecule(spec: &str) -> Result<Molecule, CliError> {
    let (kind, args) = spec
        .split_once(':')
        .ok_or_else(|| err("--molecule wants KIND:ARGS, e.g. alkane:65"))?;
    match kind {
        "alkane" => Ok(Molecule::alkane(
            args.parse().map_err(|_| err("alkane wants a carbon count"))?,
        )),
        "sheet" => {
            let (a, b) = args
                .split_once('x')
                .ok_or_else(|| err("sheet wants AxB"))?;
            Ok(Molecule::sheet(
                a.parse().map_err(|_| err("bad sheet dims"))?,
                b.parse().map_err(|_| err("bad sheet dims"))?,
            ))
        }
        "cluster" => Ok(Molecule::cluster3d(
            args.parse().map_err(|_| err("cluster wants an edge count"))?,
        )),
        other => Err(err(format!("unknown molecule kind {other}"))),
    }
}

fn tiling_spec(name: &str) -> Result<TilingSpec, CliError> {
    match name {
        "v1" => Ok(TilingSpec::v1()),
        "v2" => Ok(TilingSpec::v2()),
        "v3" => Ok(TilingSpec::v3()),
        other => Err(err(format!("unknown tiling {other}"))),
    }
}

/// Materialises the problem spec (and its traits when chemistry-based).
pub fn build_problem(cli: &Cli) -> Result<(ProblemSpec, Option<CcsdProblem>), CliError> {
    match &cli.problem {
        ProblemKind::Molecule(m) => {
            let molecule = build_molecule(m)?;
            let spec_t = tiling_spec(&cli.tiling)?.scaled_for(&molecule);
            let problem =
                CcsdProblem::build(&molecule, spec_t, ScreeningParams::default(), cli.seed);
            let spec = ProblemSpec::new(
                problem.t.clone(),
                problem.v.clone(),
                Some(problem.r.shape().clone()),
            );
            Ok((spec, Some(problem)))
        }
        ProblemKind::Synthetic { m, n, k, density } => {
            let prob = generate(&SyntheticParams {
                m: *m,
                n: *n,
                k: *k,
                density: *density,
                tile_min: (*m / 40).clamp(4, 512),
                tile_max: (*m / 10).clamp(12, 2048),
                seed: cli.seed,
            });
            Ok((ProblemSpec::new(prob.a, prob.b, None), None))
        }
    }
}

/// Runs the parsed command, writing human-readable output to `out`.
pub fn run(cli: &Cli, out: &mut dyn std::io::Write) -> Result<(), Box<dyn std::error::Error>> {
    // The multi-process commands don't take their problem from argv: a
    // worker gets it from the launcher's job text, and `launch` builds it
    // inside its reference run. Dispatch before the spec preamble.
    match cli.command {
        Command::Worker => return net_run::run_worker(cli).map_err(Into::into),
        Command::Launch => return net_run::run_launch_cmd(cli, out),
        _ => {}
    }
    let (spec, chem) = build_problem(cli)?;
    let config = PlannerConfig::paper(
        GridConfig::from_nodes(cli.opts.nodes, cli.p),
        DeviceConfig {
            gpus_per_node: cli.gpus,
            gpu_mem_bytes: 16 << 30,
        },
    );
    match cli.command {
        Command::Info => {
            writeln!(
                out,
                "A: {} x {} ({} tiles, {:.1}% dense)",
                spec.a.rows(),
                spec.a.cols(),
                spec.a.nnz_tiles(),
                spec.a.element_density() * 100.0
            )?;
            writeln!(
                out,
                "B: {} x {} ({} tiles, {:.1}% dense)",
                spec.b.rows(),
                spec.b.cols(),
                spec.b.nnz_tiles(),
                spec.b.element_density() * 100.0
            )?;
            if let Some(problem) = &chem {
                let traits = ProblemTraits::compute(problem);
                writeln!(out, "{}", traits.table_row(&cli.tiling))?;
            }
        }
        Command::Plan => {
            let plan = ExecutionPlan::build(&spec, config)?;
            let stats = plan.stats(&spec);
            writeln!(out, "grid {}x{}, {} GPUs/node", cli.p, cli.opts.nodes / cli.p, cli.gpus)?;
            writeln!(
                out,
                "tasks {} | flops {:.3e} | blocks {} | chunks {} | imbalance {:.3}",
                stats.total_tasks,
                stats.total_flops as f64,
                stats.num_blocks,
                stats.num_chunks,
                stats.load_imbalance
            )?;
            writeln!(
                out,
                "A network {:.2} GB | C network {:.2} GB | B generated {:.2} GB | A h2d {:.2} GB",
                stats.a_network_bytes as f64 / 1e9,
                stats.c_network_bytes as f64 / 1e9,
                stats.b_generated_bytes as f64 / 1e9,
                stats.a_h2d_bytes as f64 / 1e9
            )?;
        }
        Command::Simulate => {
            let platform = {
                let mut p = Platform::summit(cli.opts.nodes);
                p.gpus_per_node = cli.gpus;
                p
            };
            let plan = ExecutionPlan::build(&spec, config)?;
            let mut trace = Trace::default();
            let report = simulate_traced(
                &spec,
                &plan,
                &platform,
                if cli.gantt { Some(&mut trace) } else { None },
            );
            writeln!(
                out,
                "makespan {:.3} s | {:.1} Tflop/s total | {:.2} Tflop/s per GPU",
                report.makespan_s,
                report.tflops(),
                report.tflops_per_gpu(platform.total_gpus())
            )?;
            writeln!(
                out,
                "bounds: compute {:.3} s | h2d {:.3} s | nic {:.3} s | bgen {:.3} s",
                report.compute_bound_s, report.h2d_bound_s, report.nic_bound_s, report.bgen_bound_s
            )?;
            if cli.gantt {
                write!(out, "{}", trace.gantt(report.makespan_s, 100))?;
            }
        }
        Command::Verify => {
            use bst_sparse::matrix::tile_seed;
            use bst_sparse::BlockSparseMatrix;
            let plan = ExecutionPlan::build(&spec, config)?;
            let a = BlockSparseMatrix::random_from_structure(spec.a.clone(), cli.seed);
            let seed = cli.seed ^ 0xB;
            let b_gen = bst_sparse::matrix::random_b_gen(seed);
            let mut builder = bst_contract::ExecOptions::builder()
                .tracing(cli.trace.is_some() || cli.trace_summary)
                .node_size(cli.opts.node_size)
                .compress_tol(cli.opts.tolerance);
            if let Some(fault_seed) = cli.opts.faults {
                builder = builder.fault_plan(bst_contract::FaultPlan::transient(fault_seed, 0.08));
            }
            let opts = builder.build();
            let (c, report) =
                bst_contract::exec::execute_numeric_with(&spec, &plan, &a, &b_gen, opts)?;
            if let Some(fault_seed) = cli.opts.faults {
                let r = &report.recovery;
                writeln!(
                    out,
                    "faults (seed {fault_seed}): {} injected, {} tasks retried over {} attempts (max {})",
                    r.injected_genb + r.injected_alloc + r.injected_send,
                    r.retried_tasks,
                    r.retry_attempts,
                    r.max_attempts
                )?;
            }
            let b = BlockSparseMatrix::from_structure(spec.b.clone(), |k, j, r, cc| {
                bst_tile::Tile::random(r, cc, tile_seed(seed, k, j))
            });
            let mut c_ref = BlockSparseMatrix::zeros(
                spec.a.row_tiling().clone(),
                spec.b.col_tiling().clone(),
            );
            c_ref.gemm_acc_reference(&a, &b);
            // Mask to the screened shape when present.
            if let Some(cs) = &spec.c_shape {
                let mut masked = BlockSparseMatrix::zeros(
                    spec.a.row_tiling().clone(),
                    spec.b.col_tiling().clone(),
                );
                for (&(i, j), t) in c_ref.iter_tiles() {
                    if cs.is_nonzero(i, j) {
                        masked.insert_tile(i, j, t.clone());
                    }
                }
                c_ref = masked;
            }
            let diff = c.max_abs_diff(&c_ref);
            writeln!(
                out,
                "executed {} GEMMs on {} simulated devices; max |C - C_ref| = {diff:.3e}",
                report.gemm_tasks,
                report.devices.len()
            )?;
            for (node, s) in report.comm.iter().enumerate() {
                writeln!(
                    out,
                    "node {node}: sent {} B / {} msgs ({} B inter-node), \
received {} B / {} msgs ({} B inter-node)",
                    s.sent_bytes,
                    s.sent_msgs,
                    s.inter_sent_bytes,
                    s.recv_bytes,
                    s.recv_msgs,
                    s.inter_recv_bytes
                )?;
            }
            if cli.trace_summary {
                write!(out, "{}", report.text_summary(plan.config.device.gpu_mem_bytes))?;
            }
            if let Some(path) = &cli.trace {
                let trace = report
                    .trace
                    .as_ref()
                    .expect("tracing was enabled for --trace");
                std::fs::write(path, trace.chrome_trace_json())?;
                writeln!(out, "wrote Chrome trace to {path} (open in chrome://tracing)")?;
            }
            if cli.opts.tolerance > 0.0 {
                // Lossy run: gate on the relative Frobenius error instead of
                // the bitwise threshold. Per-tile truncation errors compound
                // through the k-sum, so the acceptance bound is a small
                // multiple of the requested tolerance.
                let rel = relative_frobenius_error(&c, &c_ref);
                writeln!(
                    out,
                    "compression tolerance {:.1e}: relative Frobenius error {rel:.3e}",
                    cli.opts.tolerance
                )?;
                if rel > cli.opts.tolerance * 50.0 {
                    return Err(Box::new(err("verification FAILED (compressed)")));
                }
            } else if diff > 1e-9 {
                return Err(Box::new(err("verification FAILED")));
            }
            writeln!(out, "verification OK")?;
        }
        Command::Serve => {
            use bst_contract::{ContractionRequest, ContractionService, ServiceConfig};
            use bst_sparse::BlockSparseMatrix;
            use std::sync::Arc;
            let a = Arc::new(BlockSparseMatrix::random_from_structure(spec.a.clone(), cli.seed));
            let seed = cli.seed ^ 0xB;
            let b_gen: bst_contract::ServiceBGen =
                Arc::new(bst_sparse::matrix::random_b_gen(seed));
            let service = ContractionService::start(ServiceConfig {
                workers: cli.clients.max(1),
                queue_capacity: (cli.clients * cli.requests).max(8),
                ..ServiceConfig::default()
            });
            let make_req = || ContractionRequest {
                a: Arc::clone(&a),
                b_structure: spec.b.clone(),
                b_gen: Arc::clone(&b_gen),
                b_key: cli.seed,
                c_shape: spec.c_shape.clone(),
                config,
                opts: bst_contract::ExecOptions::default(),
            };
            // One cold request pins the reference bytes, then the client
            // threads hammer the warm caches concurrently.
            let reference = service.run(make_req()).map_err(Box::new)?;
            let diverged = std::sync::atomic::AtomicU64::new(0);
            std::thread::scope(|scope| {
                for _ in 0..cli.clients {
                    scope.spawn(|| {
                        for _ in 0..cli.requests {
                            match service.run(make_req()) {
                                Ok(outcome)
                                    if outcome.c.max_abs_diff(&reference.c) != 0.0 =>
                                {
                                    diverged.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                }
                                Ok(_) => {}
                                Err(_) => {
                                    diverged.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                }
                            }
                        }
                    });
                }
            });
            service.shutdown();
            let stats = service.stats();
            let total = 1 + cli.clients * cli.requests;
            writeln!(
                out,
                "served {} requests ({} clients x {} + 1 cold)",
                total, cli.clients, cli.requests
            )?;
            writeln!(
                out,
                "plan cache: {} hits / {} misses | B cache: {} hits / {} misses, {} B regeneration saved",
                stats.plan_hits, stats.plan_misses, stats.b_hits, stats.b_misses, stats.b_bytes_saved
            )?;
            writeln!(
                out,
                "queue high-water {} | in-flight high-water {}",
                stats.queue_depth_highwater, stats.in_flight_highwater
            )?;
            let diverged = diverged.load(std::sync::atomic::Ordering::Relaxed);
            if diverged > 0 || stats.requests_failed > 0 {
                return Err(Box::new(err(format!(
                    "service smoke FAILED: {diverged} divergent, {} failed",
                    stats.requests_failed
                ))));
            }
            writeln!(out, "all warm results bit-identical to the cold run; service smoke OK")?;
        }
        Command::Einsum => {
            use bst_contract::einsum::Einsum;
            use bst_sparse::matrix::tile_seed;
            use bst_sparse::{BlockSparseMatrix, MatrixStructure};
            let a = BlockSparseMatrix::random_from_structure(spec.a.clone(), cli.seed);
            let b = BlockSparseMatrix::random_from_structure(spec.b.clone(), cli.seed ^ 0xB);
            // The third factor is generated on demand — the lowering must
            // keep it on the stationary B side of its product.
            let d_struct = MatrixStructure::dense(
                spec.b.col_tiling().clone(),
                spec.b.col_tiling().clone(),
            );
            let d_seed = cli.seed ^ 0xD;
            let d_gen = bst_sparse::matrix::random_b_gen(d_seed);
            let outcome = Einsum::new("ij,jk,kl->il")
                .operand(&a)
                .operand(&b)
                .on_demand(&d_struct, &d_gen)
                .tolerance(cli.opts.tolerance)
                .contract(config)?;
            writeln!(
                out,
                "lowered \"ij,jk,kl->il\" into {} planned products ({} GEMMs), output order {}",
                outcome.reports.len(),
                outcome.reports.iter().map(|r| r.gemm_tasks).sum::<u64>(),
                outcome.output_labels()
            )?;
            let d = BlockSparseMatrix::from_structure(d_struct.clone(), |k, j, r, cc| {
                bst_tile::Tile::random(r, cc, tile_seed(d_seed, k, j))
            });
            let mut ab = BlockSparseMatrix::zeros(
                spec.a.row_tiling().clone(),
                spec.b.col_tiling().clone(),
            );
            ab.gemm_acc_reference(&a, &b);
            let mut c_ref = BlockSparseMatrix::zeros(
                spec.a.row_tiling().clone(),
                d_struct.col_tiling().clone(),
            );
            c_ref.gemm_acc_reference(&ab, &d);
            let diff = outcome.matrix().max_abs_diff(&c_ref);
            writeln!(out, "max |C - C_ref| = {diff:.3e}")?;
            if cli.opts.tolerance > 0.0 {
                let rel = relative_frobenius_error(outcome.matrix(), &c_ref);
                writeln!(
                    out,
                    "compression tolerance {:.1e}: relative Frobenius error {rel:.3e}",
                    cli.opts.tolerance
                )?;
                if rel > cli.opts.tolerance * 50.0 {
                    return Err(Box::new(err("einsum smoke FAILED (compressed)")));
                }
            } else if diff > 1e-10 {
                return Err(Box::new(err("einsum smoke FAILED")));
            }
            writeln!(out, "einsum smoke OK")?;
        }
        // Dispatched before the spec preamble above.
        Command::Worker | Command::Launch => unreachable!(),
    }
    Ok(())
}

/// `‖X − R‖_F / ‖R‖_F` of two block-sparse matrices over the same element
/// extents — the accuracy measure the `--tolerance` smoke gates check the
/// compressed runs against. Densifies both sides; fine for smoke-sized
/// problems.
fn relative_frobenius_error(x: &bst_sparse::BlockSparseMatrix, r: &bst_sparse::BlockSparseMatrix) -> f64 {
    let xd = x.to_dense();
    let rd = r.to_dense();
    let (mut err2, mut ref2) = (0.0f64, 0.0f64);
    for i in 0..rd.rows() {
        for j in 0..rd.cols() {
            let d = xd.get(i, j) - rd.get(i, j);
            err2 += d * d;
            let v = rd.get(i, j);
            ref2 += v * v;
        }
    }
    if ref2 == 0.0 {
        if err2 == 0.0 { 0.0 } else { f64::INFINITY }
    } else {
        (err2 / ref2).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_info_defaults() {
        let cli = parse(&args("info")).unwrap();
        assert_eq!(cli.command, Command::Info);
        assert_eq!(cli.tiling, "v1");
        assert_eq!(cli.opts.nodes, 2);
    }

    #[test]
    fn parse_synthetic() {
        let cli = parse(&args("simulate --synthetic 48000x192000x192000:0.5 --nodes 16")).unwrap();
        assert_eq!(cli.command, Command::Simulate);
        assert_eq!(
            cli.problem,
            ProblemKind::Synthetic {
                m: 48_000,
                n: 192_000,
                k: 192_000,
                density: 0.5
            }
        );
        assert_eq!(cli.opts.nodes, 16);
    }

    #[test]
    fn parse_molecule_and_flags() {
        let cli =
            parse(&args("plan --molecule sheet:4x5 --tiling v2 --p 2 --gpus 4 --seed 9")).unwrap();
        assert_eq!(cli.problem, ProblemKind::Molecule("sheet:4x5".into()));
        assert_eq!(cli.tiling, "v2");
        assert_eq!(cli.p, 2);
        assert_eq!(cli.gpus, 4);
        assert_eq!(cli.seed, 9);
    }

    #[test]
    fn parse_errors() {
        assert!(parse(&args("")).is_err());
        assert!(parse(&args("frobnicate")).is_err());
        assert!(parse(&args("info --synthetic nope")).is_err());
        assert!(parse(&args("info --nodes")).is_err());
        assert!(parse(&args("info --bogus 3")).is_err());
    }

    #[test]
    fn build_molecules() {
        assert_eq!(build_molecule("alkane:5").unwrap().formula(), "C5H12");
        assert_eq!(build_molecule("sheet:2x3").unwrap().formula(), "C6H10");
        assert!(build_molecule("cluster:2").is_ok());
        assert!(build_molecule("dna:1").is_err());
        assert!(build_molecule("alkane").is_err());
    }

    #[test]
    fn run_info_molecule() {
        let cli = parse(&args("info --molecule alkane:8")).unwrap();
        let mut out = Vec::new();
        run(&cli, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("A: 625 x 40804"), "{s}");
        assert!(s.contains("v1:"), "{s}");
    }

    #[test]
    fn run_plan_synthetic() {
        let cli = parse(&args("plan --synthetic 200x1600x1600:0.5 --nodes 2")).unwrap();
        let mut out = Vec::new();
        run(&cli, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("tasks"), "{s}");
        assert!(s.contains("imbalance"), "{s}");
    }

    #[test]
    fn run_simulate_with_gantt() {
        let cli =
            parse(&args("simulate --synthetic 2000x12000x12000:0.5 --nodes 2 --gantt")).unwrap();
        let mut out = Vec::new();
        run(&cli, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("makespan"), "{s}");
        assert!(s.contains("n00g0"), "{s}");
    }

    #[test]
    fn parse_trace_flags() {
        let cli = parse(&args(
            "verify --synthetic 100x800x800:0.6 --trace out.json --trace-summary",
        ))
        .unwrap();
        assert_eq!(cli.trace.as_deref(), Some("out.json"));
        assert!(cli.trace_summary);
        assert!(parse(&args("verify --trace")).is_err());
    }

    #[test]
    fn run_verify_with_trace_outputs() {
        let path = std::env::temp_dir().join("bst_cli_trace_test.json");
        let line = format!(
            "verify --synthetic 100x800x800:0.6 --nodes 2 --gpus 2 --trace {} --trace-summary",
            path.display()
        );
        let cli = parse(&args(&line)).unwrap();
        let mut out = Vec::new();
        run(&cli, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("verification OK"), "{s}");
        assert!(s.contains("trace summary:"), "{s}");
        assert!(s.contains("Gemm"), "{s}");
        assert!(s.contains("n0.g0"), "{s}");
        assert!(s.contains("wrote Chrome trace"), "{s}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.starts_with('['), "{json}");
        assert!(json.trim_end().ends_with(']'), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_faults_flag() {
        let cli = parse(&args("verify --synthetic 100x800x800:0.6 --faults 7")).unwrap();
        assert_eq!(cli.opts.faults, Some(7));
        assert!(parse(&args("verify --faults nope")).is_err());
        assert!(parse(&args("verify --faults")).is_err());
    }

    #[test]
    fn run_verify_with_faults_recovers() {
        let cli = parse(&args(
            "verify --synthetic 100x800x800:0.6 --nodes 2 --gpus 2 --faults 3",
        ))
        .unwrap();
        let mut out = Vec::new();
        run(&cli, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("faults (seed 3):"), "{s}");
        assert!(s.contains("verification OK"), "{s}");
    }

    #[test]
    fn parse_serve_flags() {
        let cli = parse(&args("serve --synthetic 100x800x800:0.6 --clients 3 --requests 5")).unwrap();
        assert_eq!(cli.command, Command::Serve);
        assert_eq!(cli.clients, 3);
        assert_eq!(cli.requests, 5);
        assert!(parse(&args("serve --clients nope")).is_err());
        assert!(parse(&args("serve --requests")).is_err());
    }

    #[test]
    fn run_serve_smoke() {
        let cli = parse(&args(
            "serve --synthetic 100x800x800:0.6 --nodes 2 --gpus 2 --clients 2 --requests 2",
        ))
        .unwrap();
        let mut out = Vec::new();
        run(&cli, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("served 5 requests"), "{s}");
        assert!(s.contains("plan cache:"), "{s}");
        assert!(s.contains("service smoke OK"), "{s}");
        // The 4 warm requests must all have hit the plan cache.
        assert!(s.contains("4 hits / 1 misses"), "{s}");
    }

    #[test]
    fn run_einsum_smoke() {
        let cli = parse(&args("einsum --synthetic 100x600x600:0.6 --nodes 2 --gpus 2")).unwrap();
        assert_eq!(cli.command, Command::Einsum);
        let mut out = Vec::new();
        run(&cli, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("lowered \"ij,jk,kl->il\" into 2 planned products"), "{s}");
        assert!(s.contains("output order il"), "{s}");
        assert!(s.contains("einsum smoke OK"), "{s}");
    }

    #[test]
    fn run_verify_small() {
        let cli = parse(&args("verify --synthetic 100x800x800:0.6 --nodes 2 --gpus 2")).unwrap();
        let mut out = Vec::new();
        run(&cli, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("verification OK"), "{s}");
        // Per-node transport totals, one line per node of the 2-node grid.
        assert!(s.contains("node 0: sent"), "{s}");
        assert!(s.contains("node 1: sent"), "{s}");
    }

    #[test]
    fn parse_node_size() {
        let cli = parse(&args("verify --synthetic 100x800x800:0.6 --nodes 4 --node-size 2"))
            .unwrap();
        assert_eq!(cli.opts.node_size, 2);
        assert!(parse(&args("verify --node-size 0")).is_err());
        assert!(parse(&args("verify --node-size x")).is_err());
    }

    #[test]
    fn parse_tolerance_flag() {
        let cli = parse(&args("verify --synthetic 100x800x800:0.6 --tolerance 1e-4")).unwrap();
        assert_eq!(cli.opts.tolerance, 1e-4);
        assert_eq!(parse(&args("verify")).unwrap().opts.tolerance, 0.0);
        assert!(parse(&args("verify --tolerance nope")).is_err());
        assert!(parse(&args("verify --tolerance -0.1")).is_err());
        assert!(parse(&args("verify --tolerance 1.5")).is_err());
    }

    /// A lossy verify run reports the achieved relative error and still
    /// passes its tolerance-scaled gate.
    #[test]
    fn run_verify_with_tolerance() {
        let cli = parse(&args(
            "verify --synthetic 100x800x800:0.6 --nodes 2 --gpus 2 --tolerance 1e-3",
        ))
        .unwrap();
        let mut out = Vec::new();
        run(&cli, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("compression tolerance 1.0e-3"), "{s}");
        assert!(s.contains("relative Frobenius error"), "{s}");
        assert!(s.contains("verification OK"), "{s}");
    }

    /// A node-aware 4-rank / 2-physical-node verify run still matches the
    /// reference, and its per-node lines report the inter-node split.
    #[test]
    fn run_verify_node_aware() {
        let cli = parse(&args(
            "verify --synthetic 100x800x800:0.6 --nodes 4 --node-size 2 --gpus 2",
        ))
        .unwrap();
        let mut out = Vec::new();
        run(&cli, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("verification OK"), "{s}");
        assert!(s.contains("inter-node"), "{s}");
    }
}

//! Property tests for tilings, GEMM kernels and low-rank compression.

use bst_tile::gemm::{gemm_blocked, gemm_naive, gemm_packed, gemm_parallel};
use bst_tile::kernel::{select_heuristic, KernelKind, KernelTable};
use bst_tile::{Tile, Tiling};
use proptest::prelude::*;

/// `‖a − b‖_F` by element (works for any representation mix).
fn frob_diff(a: &Tile, b: &Tile) -> f64 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
    let mut s = 0.0;
    for c in 0..a.cols() {
        for r in 0..a.rows() {
            let d = a.get(r, c) - b.get(r, c);
            s += d * d;
        }
    }
    s.sqrt()
}

/// Dimension generator biased to the adversarial edges of the kernels'
/// blocking parameters: degenerate (1..5), around the cache block
/// (63..66), and past it (127..130).
fn ragged_dim() -> impl Strategy<Value = usize> {
    prop_oneof![1usize..=5, 63usize..=66, 127usize..=130]
}

proptest! {
    /// Every kernel variant — including the widened packed micro-kernels and
    /// whatever a dispatch table selects — matches `gemm_naive` on
    /// ragged/adversarial shapes and alphas including 0 and negative.
    #[test]
    fn all_kernel_variants_match_naive_on_ragged_shapes(
        m in ragged_dim(),
        n in ragged_dim(),
        k in ragged_dim(),
        alpha in prop_oneof![Just(0.0f64), Just(1.0f64), Just(-2.5f64)],
        seed in 0u64..1000,
    ) {
        let a = Tile::random(m, k, seed);
        let b = Tile::random(k, n, seed ^ 1);
        let c0 = Tile::random(m, n, seed ^ 2);
        let mut reference = c0.clone();
        gemm_naive(alpha, &a, &b, &mut reference);
        for kind in KernelKind::ALL {
            let mut c = c0.clone();
            kind.run(alpha, &a, &b, &mut c);
            prop_assert!(
                reference.max_abs_diff(&c) < 1e-10,
                "{} diverged from naive at {}x{}x{} alpha={}",
                kind.name(), m, n, k, alpha
            );
        }
        // Dispatch never changes results either.
        let heuristic = select_heuristic(m, n, k);
        let table = KernelTable::heuristic();
        prop_assert_eq!(table.select(m, n, k), heuristic);
        let mut c = c0.clone();
        heuristic.run(alpha, &a, &b, &mut c);
        prop_assert!(reference.max_abs_diff(&c) < 1e-10);
    }

    /// All kernels agree with the naive reference for arbitrary shapes.
    #[test]
    fn kernels_agree(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        alpha in -2.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let a = Tile::random(m, k, seed);
        let b = Tile::random(k, n, seed ^ 1);
        let c0 = Tile::random(m, n, seed ^ 2);
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        let mut c3 = c0.clone();
        let mut c4 = c0;
        gemm_naive(alpha, &a, &b, &mut c1);
        gemm_blocked(alpha, &a, &b, &mut c2);
        gemm_parallel(alpha, &a, &b, &mut c3);
        gemm_packed(alpha, &a, &b, &mut c4);
        prop_assert!(c1.max_abs_diff(&c2) < 1e-10);
        prop_assert!(c1.max_abs_diff(&c3) < 1e-10);
        prop_assert!(c1.max_abs_diff(&c4) < 1e-10);
    }

    /// GEMM is linear in alpha: C(2a) - C(a) == C(a) - C(0).
    #[test]
    fn gemm_linear_in_alpha(
        m in 1usize..16,
        n in 1usize..16,
        k in 1usize..16,
        seed in 0u64..1000,
    ) {
        let a = Tile::random(m, k, seed);
        let b = Tile::random(k, n, seed ^ 1);
        let mut c1 = Tile::zeros(m, n);
        let mut c2 = Tile::zeros(m, n);
        gemm_blocked(1.0, &a, &b, &mut c1);
        gemm_blocked(2.0, &a, &b, &mut c2);
        let mut twice = c1.clone();
        twice.add_assign(&c1);
        prop_assert!(twice.max_abs_diff(&c2) < 1e-9);
    }

    /// from_sizes preserves sizes; tile_of inverts offsets.
    #[test]
    fn tiling_roundtrip(sizes in prop::collection::vec(1u64..50, 1..30)) {
        let t = Tiling::from_sizes(&sizes);
        prop_assert_eq!(t.num_tiles(), sizes.len());
        prop_assert_eq!(t.extent(), sizes.iter().sum::<u64>());
        let got: Vec<u64> = t.sizes().collect();
        prop_assert_eq!(&got, &sizes);
        for ti in 0..t.num_tiles() {
            // First and last element of each tile map back to it.
            prop_assert_eq!(t.tile_of(t.offset(ti)), ti);
            prop_assert_eq!(t.tile_of(t.offset(ti) + t.size(ti) - 1), ti);
        }
    }

    /// Every element belongs to exactly one tile (tile_of is total and
    /// monotone).
    #[test]
    fn tile_of_monotone(sizes in prop::collection::vec(1u64..20, 1..15)) {
        let t = Tiling::from_sizes(&sizes);
        let mut last = 0usize;
        for e in 0..t.extent() {
            let ti = t.tile_of(e);
            prop_assert!(ti == last || ti == last + 1);
            prop_assert!(t.offset(ti) <= e && e < t.offset(ti) + t.size(ti));
            last = ti;
        }
    }

    /// Fusing multiplies extents and tile counts.
    #[test]
    fn fuse_properties(
        a in prop::collection::vec(1u64..10, 1..8),
        b in prop::collection::vec(1u64..10, 1..8),
    ) {
        let ta = Tiling::from_sizes(&a);
        let tb = Tiling::from_sizes(&b);
        let f = ta.fuse(&tb);
        prop_assert_eq!(f.extent(), ta.extent() * tb.extent());
        prop_assert_eq!(f.num_tiles(), ta.num_tiles() * tb.num_tiles());
    }

    /// random_in_range covers the extent with in-range tiles.
    #[test]
    fn random_tiling_in_range(extent in 100u64..5000, seed in 0u64..100) {
        let t = Tiling::random_in_range(extent, 10, 40, seed);
        prop_assert_eq!(t.extent(), extent);
        for s in t.sizes() {
            prop_assert!(s >= 5, "sliver {s}");
            prop_assert!(s <= 80, "giant {s}");
        }
    }

    /// Whenever compression succeeds, the reconstruction satisfies the
    /// truncation contract `‖T − U·Vᵀ‖_F ≤ tol·‖T‖_F` and the factors
    /// strictly beat dense storage.
    #[test]
    fn compression_roundtrip_respects_tolerance(
        rows in 16usize..48,
        cols in 16usize..48,
        seed in 0u64..500,
        decay in prop_oneof![Just(1.5f64), Just(2.0f64), Just(2.5f64)],
        tol in prop_oneof![Just(1e-2f64), Just(1e-3f64)],
    ) {
        let t = Tile::random_lowrank(rows, cols, seed, decay);
        if let Some(lr) = t.compressed(tol) {
            prop_assert!(!lr.is_dense());
            prop_assert!(lr.stored_bytes() < t.stored_bytes(), "unprofitable factors kept");
            let bound = tol * t.frobenius_norm() * (1.0 + 1e-12);
            let err = frob_diff(&t, &lr);
            prop_assert!(err <= bound, "residual {err:.3e} above bound {bound:.3e}");
        }
    }

    /// Rank-aware GEMM agrees with the dense reference for every operand
    /// representation mix, within the error the truncations themselves
    /// introduce.
    #[test]
    fn lowrank_gemm_agrees_with_dense(
        m in 16usize..40,
        k in 16usize..40,
        n in 16usize..40,
        seed in 0u64..200,
    ) {
        let tol = 1e-3;
        let a = Tile::random_lowrank(m, k, seed, 2.0);
        let b = Tile::random_lowrank(k, n, seed ^ 1, 2.0);
        let a_lr = a.compressed(tol).unwrap_or_else(|| a.clone());
        let b_lr = b.compressed(tol).unwrap_or_else(|| b.clone());
        let mut reference = Tile::zeros(m, n);
        gemm_naive(1.0, &a, &b, &mut reference);
        // Truncating each operand perturbs the product by at most
        // tol·(‖A‖‖B‖) per side (plus cross terms) — 3x covers it, 10x
        // leaves slack for accumulation order.
        let bound = 10.0 * tol * a.frobenius_norm() * b.frobenius_norm();
        for (lhs, rhs) in [(&a_lr, &b), (&a, &b_lr), (&a_lr, &b_lr)] {
            let mut c = Tile::zeros(m, n);
            KernelKind::Blocked.run(1.0, lhs, rhs, &mut c);
            let err = frob_diff(&reference, &c);
            prop_assert!(err <= bound, "mixed-repr GEMM drifted {err:.3e} > {bound:.3e}");
        }
    }

    /// A tile that is *exactly* rank `r` is recovered with rank ≤ r and
    /// near-machine-precision reconstruction.
    #[test]
    fn exact_rank_is_recovered(
        rows in 20usize..48,
        cols in 20usize..48,
        r in 1usize..4,
        seed in 0u64..200,
    ) {
        // Sum of r outer products of random vectors.
        let mut t = Tile::zeros(rows, cols);
        for p in 0..r {
            let x = Tile::random(rows, 1, seed.wrapping_add(p as u64 * 2 + 1));
            let y = Tile::random(cols, 1, seed.wrapping_add(p as u64 * 2 + 2));
            for c in 0..cols {
                for rr in 0..rows {
                    *t.get_mut(rr, c) += x.get(rr, 0) * y.get(c, 0);
                }
            }
        }
        let lr = t.compressed(1e-10).expect("exact low rank must compress");
        prop_assert!(lr.rank().unwrap() <= r, "rank {:?} > true rank {r}", lr.rank());
        let err = frob_diff(&t, &lr);
        prop_assert!(err <= 1e-8 * t.frobenius_norm().max(1.0));
    }
}

//! Property tests for tilings and GEMM kernels.

use bst_tile::gemm::{gemm_blocked, gemm_naive, gemm_packed, gemm_parallel};
use bst_tile::kernel::{select_heuristic, KernelKind, KernelTable};
use bst_tile::{Tile, Tiling};
use proptest::prelude::*;

/// Dimension generator biased to the adversarial edges of the kernels'
/// blocking parameters: degenerate (1..5), around the cache block
/// (63..66), and past it (127..130).
fn ragged_dim() -> impl Strategy<Value = usize> {
    prop_oneof![1usize..=5, 63usize..=66, 127usize..=130]
}

proptest! {
    /// Every kernel variant — including the widened packed micro-kernels and
    /// whatever a dispatch table selects — matches `gemm_naive` on
    /// ragged/adversarial shapes and alphas including 0 and negative.
    #[test]
    fn all_kernel_variants_match_naive_on_ragged_shapes(
        m in ragged_dim(),
        n in ragged_dim(),
        k in ragged_dim(),
        alpha in prop_oneof![Just(0.0f64), Just(1.0f64), Just(-2.5f64)],
        seed in 0u64..1000,
    ) {
        let a = Tile::random(m, k, seed);
        let b = Tile::random(k, n, seed ^ 1);
        let c0 = Tile::random(m, n, seed ^ 2);
        let mut reference = c0.clone();
        gemm_naive(alpha, &a, &b, &mut reference);
        for kind in KernelKind::ALL {
            let mut c = c0.clone();
            kind.run(alpha, &a, &b, &mut c);
            prop_assert!(
                reference.max_abs_diff(&c) < 1e-10,
                "{} diverged from naive at {}x{}x{} alpha={}",
                kind.name(), m, n, k, alpha
            );
        }
        // Dispatch never changes results either.
        let heuristic = select_heuristic(m, n, k);
        let table = KernelTable::heuristic();
        prop_assert_eq!(table.select(m, n, k), heuristic);
        let mut c = c0.clone();
        heuristic.run(alpha, &a, &b, &mut c);
        prop_assert!(reference.max_abs_diff(&c) < 1e-10);
    }

    /// All kernels agree with the naive reference for arbitrary shapes.
    #[test]
    fn kernels_agree(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        alpha in -2.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let a = Tile::random(m, k, seed);
        let b = Tile::random(k, n, seed ^ 1);
        let c0 = Tile::random(m, n, seed ^ 2);
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        let mut c3 = c0.clone();
        let mut c4 = c0;
        gemm_naive(alpha, &a, &b, &mut c1);
        gemm_blocked(alpha, &a, &b, &mut c2);
        gemm_parallel(alpha, &a, &b, &mut c3);
        gemm_packed(alpha, &a, &b, &mut c4);
        prop_assert!(c1.max_abs_diff(&c2) < 1e-10);
        prop_assert!(c1.max_abs_diff(&c3) < 1e-10);
        prop_assert!(c1.max_abs_diff(&c4) < 1e-10);
    }

    /// GEMM is linear in alpha: C(2a) - C(a) == C(a) - C(0).
    #[test]
    fn gemm_linear_in_alpha(
        m in 1usize..16,
        n in 1usize..16,
        k in 1usize..16,
        seed in 0u64..1000,
    ) {
        let a = Tile::random(m, k, seed);
        let b = Tile::random(k, n, seed ^ 1);
        let mut c1 = Tile::zeros(m, n);
        let mut c2 = Tile::zeros(m, n);
        gemm_blocked(1.0, &a, &b, &mut c1);
        gemm_blocked(2.0, &a, &b, &mut c2);
        let mut twice = c1.clone();
        twice.add_assign(&c1);
        prop_assert!(twice.max_abs_diff(&c2) < 1e-9);
    }

    /// from_sizes preserves sizes; tile_of inverts offsets.
    #[test]
    fn tiling_roundtrip(sizes in prop::collection::vec(1u64..50, 1..30)) {
        let t = Tiling::from_sizes(&sizes);
        prop_assert_eq!(t.num_tiles(), sizes.len());
        prop_assert_eq!(t.extent(), sizes.iter().sum::<u64>());
        let got: Vec<u64> = t.sizes().collect();
        prop_assert_eq!(&got, &sizes);
        for ti in 0..t.num_tiles() {
            // First and last element of each tile map back to it.
            prop_assert_eq!(t.tile_of(t.offset(ti)), ti);
            prop_assert_eq!(t.tile_of(t.offset(ti) + t.size(ti) - 1), ti);
        }
    }

    /// Every element belongs to exactly one tile (tile_of is total and
    /// monotone).
    #[test]
    fn tile_of_monotone(sizes in prop::collection::vec(1u64..20, 1..15)) {
        let t = Tiling::from_sizes(&sizes);
        let mut last = 0usize;
        for e in 0..t.extent() {
            let ti = t.tile_of(e);
            prop_assert!(ti == last || ti == last + 1);
            prop_assert!(t.offset(ti) <= e && e < t.offset(ti) + t.size(ti));
            last = ti;
        }
    }

    /// Fusing multiplies extents and tile counts.
    #[test]
    fn fuse_properties(
        a in prop::collection::vec(1u64..10, 1..8),
        b in prop::collection::vec(1u64..10, 1..8),
    ) {
        let ta = Tiling::from_sizes(&a);
        let tb = Tiling::from_sizes(&b);
        let f = ta.fuse(&tb);
        prop_assert_eq!(f.extent(), ta.extent() * tb.extent());
        prop_assert_eq!(f.num_tiles(), ta.num_tiles() * tb.num_tiles());
    }

    /// random_in_range covers the extent with in-range tiles.
    #[test]
    fn random_tiling_in_range(extent in 100u64..5000, seed in 0u64..100) {
        let t = Tiling::random_in_range(extent, 10, 40, seed);
        prop_assert_eq!(t.extent(), extent);
        for s in t.sizes() {
            prop_assert!(s >= 5, "sliver {s}");
            prop_assert!(s <= 80, "giant {s}");
        }
    }
}

//! A recycling arena for tile buffers.
//!
//! The numeric executor's hot path used to allocate a fresh `Vec<f64>` for
//! every zero-filled C tile and every on-demand generated B tile, and free
//! it again when the block flushed. [`TilePool`] keeps those buffers on
//! per-size free lists instead: a released tile's allocation is handed back
//! out on the next request of the same length, so steady-state execution
//! recycles a bounded working set instead of churning the allocator.
//!
//! The pool is shared across threads (one pool per simulated node, used by
//! its CPU generation lanes and GPU lanes alike), so the shelves sit behind
//! a mutex — coarse, but the lock is held only for a `Vec` push/pop, never
//! for the fill.

use crate::tile::{Repr, Tile};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How many buffers of one exact size the pool retains by default.
const DEFAULT_SHELF_CAP: usize = 64;

/// Allocation-reuse counters of a [`TilePool`], for tests and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from a recycled buffer.
    pub hits: u64,
    /// Requests that fell through to a fresh allocation.
    pub misses: u64,
    /// Tiles handed back to the pool.
    pub released: u64,
    /// Releases dropped because the shelf for that size was full.
    pub discarded: u64,
}

/// A thread-safe free-list of tile buffers, keyed by exact buffer length.
///
/// `zeroed`/`random` are drop-in replacements for [`Tile::zeros`] and
/// [`Tile::random`] that reuse a released allocation when one of the right
/// size is available. Exact-length keying keeps the semantics trivial (no
/// capacity slack to reason about) and matches the workload: block-sparse
/// instances draw tile edges from a small set, so lengths repeat heavily.
#[derive(Debug, Default)]
pub struct TilePool {
    shelves: Mutex<HashMap<usize, Vec<Vec<f64>>>>,
    shelf_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    released: AtomicU64,
    discarded: AtomicU64,
}

impl TilePool {
    /// A pool retaining up to a default number of buffers per size.
    pub fn new() -> Self {
        Self::with_shelf_capacity(DEFAULT_SHELF_CAP)
    }

    /// A pool retaining up to `shelf_cap` buffers per distinct size.
    pub fn with_shelf_capacity(shelf_cap: usize) -> Self {
        Self {
            shelves: Mutex::new(HashMap::new()),
            shelf_cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            released: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
        }
    }

    fn take_buf(&self, len: usize) -> Option<Vec<f64>> {
        let buf = self.shelves.lock().unwrap().get_mut(&len)?.pop();
        match buf {
            Some(b) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(b)
            }
            None => None,
        }
    }

    /// A `rows × cols` tile whose buffer is filled by `fill` — recycled when
    /// possible, freshly allocated otherwise.
    pub fn take_with(&self, rows: usize, cols: usize, fill: impl FnOnce(&mut [f64])) -> Tile {
        assert!(rows > 0 && cols > 0, "degenerate tile {rows}x{cols}");
        let len = rows * cols;
        let mut data = match self.take_buf(len) {
            Some(buf) => buf,
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                vec![0.0; len]
            }
        };
        fill(&mut data);
        Tile::from_data(rows, cols, data)
    }

    /// Pooled counterpart of [`Tile::zeros`].
    pub fn zeroed(&self, rows: usize, cols: usize) -> Tile {
        self.take_with(rows, cols, |d| d.fill(0.0))
    }

    /// Pooled counterpart of [`Tile::random`]: bit-identical content for the
    /// same `(rows, cols, seed)`, whatever buffer it lands in.
    pub fn random(&self, rows: usize, cols: usize, seed: u64) -> Tile {
        let mut t = self.take_with(rows, cols, |_| {});
        t.fill_random(seed);
        t
    }

    /// Returns a tile's buffer(s) to the pool for reuse. A dense tile
    /// shelves its one buffer; a low-rank tile shelves both factor buffers
    /// (each on its own exact-length shelf), so compressed B tiles recycle
    /// allocations just like dense ones. Either way the release counts
    /// once — a tile handed back is a tile handed back.
    pub fn release(&self, tile: Tile) {
        let kept = match tile.into_repr() {
            Repr::Dense(data) => self.shelve(data),
            Repr::LowRank { u, v, .. } => {
                let ku = self.shelve(u);
                self.shelve(v) || ku
            }
        };
        if kept {
            self.released.fetch_add(1, Ordering::Relaxed);
        } else {
            self.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Shelves one buffer on its exact-length shelf; returns whether it was
    /// kept. Zero-length buffers (rank-0 factors) are dropped silently.
    fn shelve(&self, data: Vec<f64>) -> bool {
        let len = data.len();
        if len == 0 {
            return false;
        }
        let mut shelves = self.shelves.lock().unwrap();
        let shelf = shelves.entry(len).or_default();
        if shelf.len() < self.shelf_cap {
            shelf.push(data);
            true
        } else {
            false
        }
    }

    /// Reclaims an `Arc<Tile>` if this was the last reference; returns
    /// whether the buffer was recovered. Harmlessly drops the reference (and
    /// reclaims nothing) while other holders remain.
    pub fn release_arc(&self, tile: Arc<Tile>) -> bool {
        match Arc::try_unwrap(tile) {
            Ok(t) => {
                self.release(t);
                true
            }
            Err(_) => false,
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            released: self.released.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
        }
    }

    /// Number of buffers currently shelved (across all sizes).
    pub fn cached_buffers(&self) -> usize {
        self.shelves.lock().unwrap().values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuses_released_buffers_of_same_size() {
        let pool = TilePool::new();
        let t = pool.zeroed(4, 6);
        assert_eq!(pool.stats().misses, 1);
        pool.release(t);
        let t2 = pool.zeroed(6, 4); // same length, different shape — still a hit
        assert_eq!(pool.stats().hits, 1);
        assert!(t2.data().iter().all(|&x| x == 0.0));
        assert_eq!((t2.rows(), t2.cols()), (6, 4));
    }

    #[test]
    fn different_sizes_do_not_alias() {
        let pool = TilePool::new();
        pool.release(pool.zeroed(2, 2));
        let t = pool.zeroed(3, 3);
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.stats().misses, 2);
        assert_eq!(t.data().len(), 9);
    }

    #[test]
    fn pooled_random_matches_plain_random() {
        let pool = TilePool::new();
        // Dirty a buffer, release it, and regenerate into it.
        let mut dirty = pool.random(5, 7, 1);
        dirty.scale(3.0);
        pool.release(dirty);
        let recycled = pool.random(5, 7, 42);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(recycled, Tile::random(5, 7, 42));
    }

    #[test]
    fn pooled_zeroed_scrubs_recycled_buffers() {
        let pool = TilePool::new();
        pool.release(Tile::from_data(2, 2, vec![9.0; 4]));
        let z = pool.zeroed(2, 2);
        assert_eq!(pool.stats().hits, 1);
        assert!(z.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn release_arc_only_reclaims_unique_references() {
        let pool = TilePool::new();
        let a = Arc::new(Tile::zeros(3, 3));
        let b = Arc::clone(&a);
        assert!(!pool.release_arc(b)); // `a` still alive
        assert!(pool.release_arc(a));
        assert_eq!(pool.stats().released, 1);
        assert_eq!(pool.cached_buffers(), 1);
    }

    #[test]
    fn shelf_capacity_bounds_retention() {
        let pool = TilePool::with_shelf_capacity(2);
        for _ in 0..5 {
            pool.release(Tile::zeros(2, 2));
        }
        assert_eq!(pool.cached_buffers(), 2);
        assert_eq!(pool.stats().discarded, 3);
    }

    #[test]
    fn lowrank_release_shelves_both_factor_buffers() {
        let pool = TilePool::new();
        // 6×4 rank-2: u has 12 elements, v has 8.
        let t = Tile::from_factors(6, 4, vec![1.0; 12], vec![2.0; 8], 2);
        pool.release(t);
        assert_eq!(pool.stats().released, 1);
        assert_eq!(pool.cached_buffers(), 2);
        // Both factor buffers come back out on exact-length requests.
        let a = pool.zeroed(3, 4); // 12 elements — the recycled u buffer
        let b = pool.zeroed(2, 4); // 8 elements — the recycled v buffer
        assert_eq!(pool.stats().hits, 2);
        assert!(a.data().iter().chain(b.data()).all(|&x| x == 0.0));
    }

    #[test]
    fn shared_across_threads() {
        let pool = Arc::new(TilePool::new());
        std::thread::scope(|s| {
            for i in 0..4 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for j in 0..32 {
                        let t = pool.random(4, 4, (i * 100 + j) as u64);
                        assert_eq!(t, Tile::random(4, 4, (i * 100 + j) as u64));
                        pool.release(t);
                    }
                });
            }
        });
        let st = pool.stats();
        assert_eq!(st.hits + st.misses, 128);
        assert!(st.hits > 0, "concurrent churn should recycle buffers");
    }
}

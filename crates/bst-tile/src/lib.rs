#![warn(missing_docs)]

//! Irregular tilings and dense tiles — the lowest-level substrate of the
//! block-sparse contraction stack.
//!
//! The paper's matrices are *irregularly tiled*: the rows and columns of the
//! element-level matrix are partitioned into contiguous ranges of varying
//! length ("tiles" in one dimension, "blocks" when crossed with another
//! dimension). This crate provides:
//!
//! * [`Tiling`] — an irregular partition of `0..extent`, with O(1) size/offset
//!   queries and O(log n) coordinate lookup;
//! * [`Tile`] — a dense, column-major `f64` block;
//! * [`gemm`] — `C += A * B` kernels (naive reference, cache-blocked, and a
//!   rayon-parallel variant) used by the simulated GPU executors.
//!
//! Everything in this crate is deterministic and platform independent; random
//! builders take explicit seeds.

pub mod gemm;
pub mod tile;
pub mod tiling;

pub use tile::Tile;
pub use tiling::Tiling;

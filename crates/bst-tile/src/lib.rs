#![warn(missing_docs)]

//! Irregular tilings and dense tiles — the lowest-level substrate of the
//! block-sparse contraction stack.
//!
//! The paper's matrices are *irregularly tiled*: the rows and columns of the
//! element-level matrix are partitioned into contiguous ranges of varying
//! length ("tiles" in one dimension, "blocks" when crossed with another
//! dimension). This crate provides:
//!
//! * [`Tiling`] — an irregular partition of `0..extent`, with O(1) size/offset
//!   queries and O(log n) coordinate lookup;
//! * [`Tile`] — a column-major `f64` block, stored dense or as a truncated
//!   low-rank factorization ([`Repr`]);
//! * [`lowrank`] — the pivoted-QR truncation kernel and the rank-aware
//!   GEMM routing behind [`kernel`] dispatch;
//! * [`gemm`] — `C += A * B` kernels (naive reference, cache-blocked, a
//!   family of packed register-blocked micro-kernels, and a rayon-parallel
//!   variant) used by the simulated GPU executors;
//! * [`kernel`] — shape-aware dispatch between the kernels, with a one-shot
//!   micro-autotune ([`kernel::KernelTable`]) over an instance's tile-shape
//!   distribution;
//! * [`pool`] — a recycling buffer arena ([`pool::TilePool`]) so hot-path
//!   tile allocations reuse freed buffers.
//!
//! Everything in this crate is deterministic and platform independent; random
//! builders take explicit seeds (kernel *selection* by the autotuner is the
//! one wall-clock-dependent choice, and it never affects results).

pub mod gemm;
pub mod kernel;
pub mod lowrank;
pub mod pool;
pub mod tile;
pub mod tiling;

pub use kernel::{KernelKind, KernelTable};
pub use pool::TilePool;
pub use tile::{Repr, Tile};
pub use tiling::Tiling;

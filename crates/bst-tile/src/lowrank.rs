//! Rank-revealing tile compression and rank-aware GEMM routing.
//!
//! [`compress`] is the truncation kernel behind [`Tile::compressed`]: a
//! column-pivoted modified-Gram-Schmidt QR that stops once the residual
//! Frobenius norm drops to `tol · ‖T‖_F`, yielding `T ≈ U·Vᵀ` with
//! `U = Q` (`rows × r`) and `V` the pivot-ordered coefficient rows
//! (`cols × r`). Compression is attempted only when it pays: the factors
//! must occupy strictly fewer bytes than the dense buffer, else the tile
//! stays dense.
//!
//! [`gemm_lowrank`] decomposes a product with low-rank operands into dense
//! sub-GEMMs executed by the *selected* dense kernel (so
//! [`KernelKind`] dispatch still governs the
//! heavy inner products) plus small factor contractions:
//!
//! * `LR × dense` — `C += U_a · (V_aᵀ·B)`;
//! * `dense × LR` — `C += (A·U_b) · V_bᵀ`;
//! * `LR × LR` — the middle matrix `M = V_aᵀ·U_b` (`r_a × r_b`) is formed
//!   first and, when a tolerance is given, **re-compressed** (`M ≈ P·Qᵀ`),
//!   so the applied product `(U_a·P)·(V_b·Q)ᵀ` carries the smallest rank
//!   the tolerance admits.
//!
//! The accumulator `C` is always dense — partial products add, and sums of
//! low-rank terms grow rank without bound, so re-compression happens on
//! operands, never on accumulators.

use crate::kernel::KernelKind;
use crate::tile::Tile;

/// Rank-revealing truncation of a dense column-major `rows × cols` buffer
/// at relative Frobenius tolerance `tol`.
///
/// Returns `Some((u, v, rank))` with `‖T − U·Vᵀ‖_F ≤ tol·‖T‖_F` when the
/// truncation converges at a profitable rank (factor bytes strictly below
/// dense bytes); `None` when `tol <= 0.0` or the tile is effectively
/// full-rank at this tolerance. An exactly-zero tile truncates to rank 0.
///
/// The pivot rule is greedy on exact residual column norms (recomputed
/// during each deflation, so the stopping criterion never drifts): pick the
/// largest residual column, normalise it into `Q`, deflate every column by
/// its projection, repeat.
pub fn compress(rows: usize, cols: usize, data: &[f64], tol: f64) -> Option<(Vec<f64>, Vec<f64>, usize)> {
    assert_eq!(data.len(), rows * cols);
    if tol <= 0.0 {
        return None;
    }
    // Strictly fewer stored elements than dense, or compression is a loss.
    let max_profitable = (rows * cols).saturating_sub(1) / (rows + cols);
    let mut w = data.to_vec();
    let mut norms2: Vec<f64> = (0..cols)
        .map(|j| w[j * rows..(j + 1) * rows].iter().map(|x| x * x).sum())
        .collect();
    let total2: f64 = norms2.iter().sum();
    let thresh2 = tol * tol * total2;
    let mut u = Vec::new();
    let mut v = Vec::new();
    let mut rank = 0usize;
    let mut rem2 = total2;
    let mut q = vec![0.0; rows];
    while rem2 > thresh2 {
        if rank >= max_profitable {
            return None; // reaching tol would cost more than dense storage
        }
        let (jmax, &nm2) = norms2
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("cols > 0");
        if nm2 <= 0.0 {
            break; // numerically exhausted: residual is zero columns
        }
        let inv = 1.0 / nm2.sqrt();
        for (qe, &we) in q.iter_mut().zip(&w[jmax * rows..(jmax + 1) * rows]) {
            *qe = we * inv;
        }
        rem2 = 0.0;
        for j in 0..cols {
            let col = &mut w[j * rows..(j + 1) * rows];
            let c: f64 = col.iter().zip(&q).map(|(x, qi)| x * qi).sum();
            let mut n2 = 0.0;
            for (x, &qi) in col.iter_mut().zip(&q) {
                *x -= c * qi;
                n2 += *x * *x;
            }
            norms2[j] = n2;
            rem2 += n2;
            v.push(c); // V column `rank` fills in j-order: column-major
        }
        u.extend_from_slice(&q);
        rank += 1;
    }
    Some((u, v, rank))
}

/// `W[r×n] = Vᵀ·B` where `v` is `k × r` column-major and `b` is a dense
/// `k × n` buffer — both sides are read as contiguous column dot products.
fn factor_t_times_dense(v: &[f64], r: usize, k: usize, b: &[f64], n: usize) -> Vec<f64> {
    let mut w = vec![0.0; r * n];
    for j in 0..n {
        let bj = &b[j * k..(j + 1) * k];
        let wj = &mut w[j * r..(j + 1) * r];
        for (p, we) in wj.iter_mut().enumerate() {
            let vp = &v[p * k..(p + 1) * k];
            *we = vp.iter().zip(bj).map(|(a, b)| a * b).sum();
        }
    }
    w
}

/// Transposes a `rows × r` column-major factor into an `r × rows`
/// column-major buffer (so `X·Vᵀ` runs through a plain dense kernel).
fn transpose_factor(v: &[f64], rows: usize, r: usize) -> Vec<f64> {
    let mut t = vec![0.0; r * rows];
    for p in 0..r {
        for j in 0..rows {
            t[j * r + p] = v[p * rows + j];
        }
    }
    t
}

/// `C ← alpha·A·B + C` where at least one operand is low-rank, decomposed
/// into dense sub-GEMMs run by `kind`. `tol > 0.0` enables re-compression
/// of the `LR × LR` middle matrix at that tolerance. A rank-0 operand
/// contributes nothing and returns immediately.
///
/// # Panics
/// Panics if `c` is not dense, or on inner-dimension mismatch.
pub fn gemm_lowrank(kind: KernelKind, alpha: f64, a: &Tile, b: &Tile, c: &mut Tile, tol: f64) {
    assert!(c.is_dense(), "GEMM accumulators must be dense");
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let func = kind.func();
    match (a.factors(), b.factors()) {
        (Some((ua, va, ra)), None) => {
            if ra == 0 {
                return;
            }
            // C += U_a · (V_aᵀ·B)
            let w = factor_t_times_dense(va, ra, k, b.data(), n);
            let ua_t = Tile::from_data(m, ra, ua.to_vec());
            let w_t = Tile::from_data(ra, n, w);
            func(alpha, &ua_t, &w_t, c);
        }
        (None, Some((ub, vb, rb))) => {
            if rb == 0 {
                return;
            }
            // C += (A·U_b) · V_bᵀ
            let ub_t = Tile::from_data(k, rb, ub.to_vec());
            let mut w = Tile::zeros(m, rb);
            func(1.0, a, &ub_t, &mut w);
            let vbt = Tile::from_data(rb, n, transpose_factor(vb, n, rb));
            func(alpha, &w, &vbt, c);
        }
        (Some((ua, va, ra)), Some((ub, vb, rb))) => {
            if ra == 0 || rb == 0 {
                return;
            }
            // M = V_aᵀ·U_b (r_a × r_b), then re-compress when a tolerance
            // is given: M ≈ P·Qᵀ lets the applied rank drop below
            // min(r_a, r_b) when the factor products overlap weakly.
            let mid = factor_t_times_dense(va, ra, k, ub, rb);
            if let Some((p, q, rm)) = if tol > 0.0 { compress(ra, rb, &mid, tol) } else { None } {
                if rm == 0 {
                    return;
                }
                // U' = U_a·P (m × rm), V' = V_b·Q (n × rm); C += α·U'·V'ᵀ.
                let ua_t = Tile::from_data(m, ra, ua.to_vec());
                let p_t = Tile::from_data(ra, rm, p);
                let mut uprime = Tile::zeros(m, rm);
                func(1.0, &ua_t, &p_t, &mut uprime);
                let vb_t = Tile::from_data(n, rb, vb.to_vec());
                let q_t = Tile::from_data(rb, rm, q);
                let mut vprime = Tile::zeros(n, rm);
                func(1.0, &vb_t, &q_t, &mut vprime);
                let vpt = Tile::from_data(rm, n, transpose_factor(vprime.data(), n, rm));
                func(alpha, &uprime, &vpt, c);
            } else {
                // Exact path: C += α·(U_a·M)·V_bᵀ.
                let ua_t = Tile::from_data(m, ra, ua.to_vec());
                let mid_t = Tile::from_data(ra, rb, mid);
                let mut w = Tile::zeros(m, rb);
                func(1.0, &ua_t, &mid_t, &mut w);
                let vbt = Tile::from_data(rb, n, transpose_factor(vb, n, rb));
                func(alpha, &w, &vbt, c);
            }
        }
        (None, None) => func(alpha, a, b, c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_naive;

    fn lr(t: &Tile, tol: f64) -> Tile {
        t.compressed(tol).expect("tile should compress")
    }

    #[test]
    fn compress_roundtrip_within_tol() {
        for &(m, n, seed, decay) in &[(16usize, 24usize, 1u64, 1.5), (30, 10, 2, 2.0), (12, 12, 3, 2.5)] {
            let t = Tile::random_lowrank(m, n, seed, decay);
            let tol = 1e-3;
            let c = lr(&t, tol);
            let err = c.max_abs_diff(&t);
            let rel = {
                let d = c.to_dense();
                let mut diff = d.clone();
                diff.scale(-1.0);
                diff.add_assign(&t);
                diff.frobenius_norm() / t.frobenius_norm()
            };
            assert!(rel <= tol, "relative error {rel} > {tol} ({m}x{n})");
            assert!(err.is_finite());
        }
    }

    #[test]
    fn exact_rank_recovers_rank() {
        // Rank-2 tile built explicitly: two outer products.
        let m = 12;
        let n = 9;
        let mut data = vec![0.0; m * n];
        for (p, scale) in [(1u64, 1.0), (2, 0.5)] {
            let x = Tile::random(m, 1, p);
            let y = Tile::random(n, 1, p ^ 0xF00);
            for c in 0..n {
                for r in 0..m {
                    data[c * m + r] += scale * x.get(r, 0) * y.get(c, 0);
                }
            }
        }
        let t = Tile::from_data(m, n, data);
        let c = lr(&t, 1e-10);
        assert_eq!(c.rank(), Some(2));
        assert!(c.max_abs_diff(&t) < 1e-9);
    }

    #[test]
    fn zero_tile_truncates_to_rank_zero() {
        let z = Tile::zeros(6, 7);
        let c = z.compressed(1e-8).expect("zero tile compresses");
        assert_eq!(c.rank(), Some(0));
        assert_eq!(c.stored_bytes(), 0);
    }

    #[test]
    fn full_rank_tile_stays_dense() {
        // A random tile is (numerically) full rank: at a tight tolerance
        // the factors would cost more than dense storage.
        assert!(Tile::random(16, 16, 5).compressed(1e-12).is_none());
    }

    #[test]
    fn lowrank_gemm_matches_dense_paths() {
        let m = 24;
        let k = 28;
        let n = 20;
        let tol = 1e-6;
        let a_d = Tile::random_lowrank(m, k, 21, 1.5);
        let b_d = Tile::random_lowrank(k, n, 22, 1.5);
        let a_l = lr(&a_d, tol);
        let b_l = lr(&b_d, tol);
        let mut c_ref = Tile::zeros(m, n);
        gemm_naive(1.5, &a_d, &b_d, &mut c_ref);
        for (a, b) in [(&a_l, &b_d), (&a_d, &b_l), (&a_l, &b_l)] {
            let mut c = Tile::zeros(m, n);
            gemm_lowrank(KernelKind::Blocked, 1.5, a, b, &mut c, tol);
            let diff = c.max_abs_diff(&c_ref);
            assert!(diff < 1e-4, "diff {diff} for reprs ({}, {})", a.is_dense(), b.is_dense());
        }
    }

    #[test]
    fn rank_zero_operand_is_a_noop() {
        let z = Tile::from_factors(4, 5, vec![], vec![], 0);
        let b = Tile::random(5, 3, 1);
        let mut c = Tile::random(4, 3, 2);
        let before = c.clone();
        gemm_lowrank(KernelKind::Naive, 1.0, &z, &b, &mut c, 0.0);
        assert!(c.max_abs_diff(&before) == 0.0);
    }
}

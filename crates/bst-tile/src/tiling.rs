//! Irregular partitions of an index range into tiles.
//!
//! A [`Tiling`] splits the element range `0..extent()` into `num_tiles()`
//! contiguous, non-empty tiles. Tile `t` covers elements
//! `offset(t)..offset(t) + size(t)`. Tilings are immutable once built.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// An irregular partition of `0..extent` into contiguous non-empty tiles.
///
/// Internally stores the prefix sum of tile sizes: `offsets[t]` is the first
/// element of tile `t` and `offsets[num_tiles()]` equals the extent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tiling {
    offsets: Vec<u64>,
}

impl Tiling {
    /// Builds a tiling from explicit tile sizes.
    ///
    /// # Panics
    /// Panics if `sizes` is empty or contains a zero.
    pub fn from_sizes(sizes: &[u64]) -> Self {
        assert!(!sizes.is_empty(), "a tiling needs at least one tile");
        let mut offsets = Vec::with_capacity(sizes.len() + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for (i, &s) in sizes.iter().enumerate() {
            assert!(s > 0, "tile {i} has zero size");
            acc += s;
            offsets.push(acc);
        }
        Self { offsets }
    }

    /// Builds a uniform tiling of `extent` with tiles of `tile` elements
    /// (the last tile may be smaller).
    ///
    /// # Panics
    /// Panics if `extent == 0` or `tile == 0`.
    pub fn uniform(extent: u64, tile: u64) -> Self {
        assert!(extent > 0 && tile > 0);
        let full = extent / tile;
        let rem = extent % tile;
        let mut sizes = vec![tile; full as usize];
        if rem > 0 {
            sizes.push(rem);
        }
        Self::from_sizes(&sizes)
    }

    /// Builds a tiling with one tile spanning the whole range.
    pub fn single(extent: u64) -> Self {
        Self::from_sizes(&[extent])
    }

    /// Builds a random irregular tiling whose tile sizes are uniform in
    /// `[min, max]`, matching the synthetic setup of the paper's §5.1
    /// ("irregularity of tiling is set randomly to be uniform between 512 and
    /// 2048 in each dimension").
    ///
    /// Sizes are drawn until the range is covered; the final tile is clamped
    /// so the extent is met exactly, and merged with its predecessor if the
    /// clamp would leave it degenerately small (< min/2) — this mirrors how
    /// clustering codes avoid trailing slivers.
    ///
    /// # Panics
    /// Panics if `extent == 0`, `min == 0`, or `min > max`.
    pub fn random_in_range(extent: u64, min: u64, max: u64, seed: u64) -> Self {
        assert!(extent > 0 && min > 0 && min <= max);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut sizes: Vec<u64> = Vec::new();
        let mut acc = 0u64;
        while acc < extent {
            let s = rng.gen_range(min..=max).min(extent - acc);
            sizes.push(s);
            acc += s;
        }
        // Avoid a trailing sliver when the extent is large enough for it to
        // matter: merge it into the previous tile.
        if sizes.len() > 1 && *sizes.last().unwrap() < min / 2 {
            let last = sizes.pop().unwrap();
            *sizes.last_mut().unwrap() += last;
        }
        Self::from_sizes(&sizes)
    }

    /// Total number of elements covered.
    #[inline]
    pub fn extent(&self) -> u64 {
        *self.offsets.last().unwrap()
    }

    /// Number of tiles.
    #[inline]
    pub fn num_tiles(&self) -> usize {
        self.offsets.len() - 1
    }

    /// First element of tile `t`.
    #[inline]
    pub fn offset(&self, t: usize) -> u64 {
        self.offsets[t]
    }

    /// Number of elements in tile `t`.
    #[inline]
    pub fn size(&self, t: usize) -> u64 {
        self.offsets[t + 1] - self.offsets[t]
    }

    /// Iterator over tile sizes.
    pub fn sizes(&self) -> impl Iterator<Item = u64> + '_ {
        self.offsets.windows(2).map(|w| w[1] - w[0])
    }

    /// Largest tile size.
    pub fn max_size(&self) -> u64 {
        self.sizes().max().unwrap()
    }

    /// Smallest tile size.
    pub fn min_size(&self) -> u64 {
        self.sizes().min().unwrap()
    }

    /// Mean tile size.
    pub fn mean_size(&self) -> f64 {
        self.extent() as f64 / self.num_tiles() as f64
    }

    /// Index of the tile containing element `e` (binary search, O(log n)).
    ///
    /// # Panics
    /// Panics if `e >= extent()`.
    pub fn tile_of(&self, e: u64) -> usize {
        assert!(e < self.extent(), "element {e} out of range");
        match self.offsets.binary_search(&e) {
            Ok(t) => t,
            Err(i) => i - 1,
        }
    }

    /// Builds the *fused* tiling of `self × other`: the tiling of the fused
    /// index `(a, b) -> a * other.extent() + b` whose tiles are all pairs
    /// `(ta, tb)` in row-major order. This matricises a pair of tensor modes
    /// into one matrix dimension, as done for the `ij` and `cd` index pairs
    /// of the ABCD term.
    pub fn fuse(&self, other: &Tiling) -> Tiling {
        let mut sizes = Vec::with_capacity(self.num_tiles() * other.num_tiles());
        for ta in 0..self.num_tiles() {
            for tb in 0..other.num_tiles() {
                sizes.push(self.size(ta) * other.size(tb));
            }
        }
        Tiling::from_sizes(&sizes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sizes_basic() {
        let t = Tiling::from_sizes(&[3, 5, 2]);
        assert_eq!(t.extent(), 10);
        assert_eq!(t.num_tiles(), 3);
        assert_eq!(t.offset(0), 0);
        assert_eq!(t.offset(1), 3);
        assert_eq!(t.offset(2), 8);
        assert_eq!(t.size(0), 3);
        assert_eq!(t.size(1), 5);
        assert_eq!(t.size(2), 2);
    }

    #[test]
    #[should_panic]
    fn from_sizes_rejects_zero() {
        Tiling::from_sizes(&[3, 0, 2]);
    }

    #[test]
    #[should_panic]
    fn from_sizes_rejects_empty() {
        Tiling::from_sizes(&[]);
    }

    #[test]
    fn uniform_divides_exactly() {
        let t = Tiling::uniform(100, 25);
        assert_eq!(t.num_tiles(), 4);
        assert!(t.sizes().all(|s| s == 25));
    }

    #[test]
    fn uniform_with_remainder() {
        let t = Tiling::uniform(10, 4);
        assert_eq!(t.num_tiles(), 3);
        assert_eq!(t.size(2), 2);
        assert_eq!(t.extent(), 10);
    }

    #[test]
    fn single_tile() {
        let t = Tiling::single(42);
        assert_eq!(t.num_tiles(), 1);
        assert_eq!(t.size(0), 42);
    }

    #[test]
    fn tile_of_hits_boundaries() {
        let t = Tiling::from_sizes(&[3, 5, 2]);
        assert_eq!(t.tile_of(0), 0);
        assert_eq!(t.tile_of(2), 0);
        assert_eq!(t.tile_of(3), 1);
        assert_eq!(t.tile_of(7), 1);
        assert_eq!(t.tile_of(8), 2);
        assert_eq!(t.tile_of(9), 2);
    }

    #[test]
    #[should_panic]
    fn tile_of_out_of_range() {
        Tiling::from_sizes(&[3]).tile_of(3);
    }

    #[test]
    fn random_in_range_covers_extent() {
        let t = Tiling::random_in_range(100_000, 512, 2048, 7);
        assert_eq!(t.extent(), 100_000);
        // All tiles except possibly the last merged one are within bounds.
        for s in t.sizes() {
            assert!(s >= 256, "sliver tile of size {s}");
            assert!(s <= 2048 + 2048);
        }
    }

    #[test]
    fn random_in_range_is_deterministic() {
        let a = Tiling::random_in_range(50_000, 512, 2048, 3);
        let b = Tiling::random_in_range(50_000, 512, 2048, 3);
        assert_eq!(a, b);
        let c = Tiling::random_in_range(50_000, 512, 2048, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn fuse_sizes_are_products() {
        let a = Tiling::from_sizes(&[2, 3]);
        let b = Tiling::from_sizes(&[4, 5]);
        let f = a.fuse(&b);
        assert_eq!(f.num_tiles(), 4);
        let sizes: Vec<u64> = f.sizes().collect();
        assert_eq!(sizes, vec![8, 10, 12, 15]);
        assert_eq!(f.extent(), a.extent() * b.extent());
    }

    #[test]
    fn stats() {
        let t = Tiling::from_sizes(&[2, 8, 5]);
        assert_eq!(t.max_size(), 8);
        assert_eq!(t.min_size(), 2);
        assert!((t.mean_size() - 5.0).abs() < 1e-12);
    }
}

//! Shape-aware GEMM kernel dispatch.
//!
//! Small-block GEMM throughput lives or dies on picking the right kernel for
//! each tile shape (DBCSR makes the same observation for its libcusmm /
//! libxsmm backends): a 3×200×3 sliver wants the plain blocked loop, a
//! 40×40×40 cube wants a packed register-blocked micro-kernel, and a
//! 512-edge tile wants the thread-parallel panels. This module provides:
//!
//! * [`KernelKind`] — an enumeration of every kernel in [`crate::gemm`],
//!   with [`KernelKind::run`] dispatching to the implementation;
//! * [`select_heuristic`] — a zero-cost shape rule (the default);
//! * [`KernelTable`] — a one-shot micro-autotune: given the tile-shape
//!   histogram of an instance (from the execution plan), it times every
//!   candidate kernel on a representative shape per *shape class* and caches
//!   the winner. Shapes are classed by the ceil-log2 of each dimension, so
//!   the table stays tiny (tens of entries) while nearby shapes share an
//!   entry; lookups outside the table fall back to the heuristic.
//!
//! Every kernel has identical `C ← alpha·A·B + C` semantics, so dispatch is
//! a pure performance decision — the property tests in `tests/proptests.rs`
//! hold all of them to `gemm_naive` behaviour.

use crate::gemm::{
    gemm_blocked, gemm_flops, gemm_naive, gemm_packed, gemm_packed_4x8, gemm_packed_8x4,
    gemm_packed_8x8, gemm_parallel,
};
use crate::tile::Tile;
use std::time::Instant;

/// The common signature of every tile GEMM kernel.
pub type GemmFn = fn(f64, &Tile, &Tile, &mut Tile);

/// Problem volume (`m·n·k`) from which the thread-parallel kernel is worth
/// its dispatch overhead when competing with the packed kernels.
const PARALLEL_MIN_VOL: usize = 192 * 192 * 192;

/// Problem volume below which the naive loop is allowed to compete (packing
/// and blocking overheads dominate at this size).
const NAIVE_MAX_VOL: usize = 16 * 16 * 16;

/// One of the GEMM implementations in [`crate::gemm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Triple loop ([`gemm_naive`]).
    Naive,
    /// Cache-blocked loop ([`gemm_blocked`]) — the pre-dispatch default.
    Blocked,
    /// Packed panels, 4×4 micro-tile ([`gemm_packed`]).
    Packed4x4,
    /// Packed panels, 8×4 micro-tile ([`gemm_packed_8x4`]).
    Packed8x4,
    /// Packed panels, 4×8 micro-tile ([`gemm_packed_4x8`]).
    Packed4x8,
    /// Packed panels, 8×8 micro-tile ([`gemm_packed_8x8`]).
    Packed8x8,
    /// Rayon column-panel parallel ([`gemm_parallel`]).
    Parallel,
}

impl KernelKind {
    /// Every kernel, in a stable order (used by benches and reports).
    pub const ALL: [KernelKind; 7] = [
        KernelKind::Naive,
        KernelKind::Blocked,
        KernelKind::Packed4x4,
        KernelKind::Packed8x4,
        KernelKind::Packed4x8,
        KernelKind::Packed8x8,
        KernelKind::Parallel,
    ];

    /// Stable display name (also the key used in `BENCH_kernels.json`).
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Naive => "naive",
            KernelKind::Blocked => "blocked",
            KernelKind::Packed4x4 => "packed4x4",
            KernelKind::Packed8x4 => "packed8x4",
            KernelKind::Packed4x8 => "packed4x8",
            KernelKind::Packed8x8 => "packed8x8",
            KernelKind::Parallel => "parallel",
        }
    }

    /// The implementing function.
    pub fn func(self) -> GemmFn {
        match self {
            KernelKind::Naive => gemm_naive,
            KernelKind::Blocked => gemm_blocked,
            KernelKind::Packed4x4 => gemm_packed,
            KernelKind::Packed8x4 => gemm_packed_8x4,
            KernelKind::Packed4x8 => gemm_packed_4x8,
            KernelKind::Packed8x8 => gemm_packed_8x8,
            KernelKind::Parallel => gemm_parallel,
        }
    }

    /// Runs `C ← alpha·A·B + C` with this kernel. Low-rank operands are
    /// routed through [`crate::lowrank::gemm_lowrank`], which decomposes
    /// the product into dense sub-GEMMs executed by this same kernel; the
    /// `LR × LR` middle matrix is applied exactly (no re-compression — use
    /// [`KernelKind::run_recompress`] to enable it).
    #[inline]
    pub fn run(self, alpha: f64, a: &Tile, b: &Tile, c: &mut Tile) {
        self.run_recompress(alpha, a, b, c, 0.0);
    }

    /// [`KernelKind::run`] with an explicit re-compression tolerance for
    /// the `LR × LR` path: when both operands are low-rank and `tol > 0`,
    /// the middle matrix `V_aᵀ·U_b` is itself truncated at `tol`, so the
    /// applied rank can drop below `min(r_a, r_b)`. Dense×dense products
    /// are dispatched straight to the kernel function — with dense
    /// operands this is byte-identical to the pre-polymorphic path for
    /// every `tol`.
    #[inline]
    pub fn run_recompress(self, alpha: f64, a: &Tile, b: &Tile, c: &mut Tile, tol: f64) {
        if a.is_dense() && b.is_dense() {
            (self.func())(alpha, a, b, c);
        } else {
            crate::lowrank::gemm_lowrank(self, alpha, a, b, c, tol);
        }
    }

    /// Index of this kind in [`KernelKind::ALL`] (for counter arrays).
    pub fn index(self) -> usize {
        KernelKind::ALL.iter().position(|&k| k == self).unwrap()
    }
}

/// Shape-rule dispatch: pick a kernel for an `m × n × k` product without
/// any measurement.
///
/// The rules, in order: huge problems go thread-parallel; problems too thin
/// for a register micro-tile (either output dimension under 4) or with a
/// trivial inner dimension stay on the blocked loop (the packed variants
/// would only fall back anyway, after a useless shape check); large tiles
/// take the packed path, whose panel reuse beats the blocked loop once the
/// working set outgrows L1; mid-sized tiles (roughly 24–48 edges) stay
/// blocked — they fit cache without packing, so the pack traffic is pure
/// overhead; small-but-micro-tileable shapes pack too, widened along
/// whichever output dimension has room. These crossovers are rules of
/// thumb — [`KernelTable::autotune`] re-derives them by measurement on the
/// instance's actual shape mix and overrides this function per class.
pub fn select_heuristic(m: usize, n: usize, k: usize) -> KernelKind {
    let vol = m * n * k;
    if vol >= PARALLEL_MIN_VOL {
        return KernelKind::Parallel;
    }
    if m < 4 || n < 4 || k < 2 {
        return KernelKind::Blocked;
    }
    if vol >= 48 * 48 * 48 {
        return KernelKind::Packed4x4;
    }
    if vol > 20 * 20 * 20 {
        return KernelKind::Blocked;
    }
    match (m >= 8, n >= 8) {
        (true, true) | (false, true) => KernelKind::Packed4x8,
        (true, false) => KernelKind::Packed8x4,
        (false, false) => KernelKind::Packed4x4,
    }
}

/// The kernels worth timing for a given shape (those that would not merely
/// fall back to another candidate).
pub fn candidates(m: usize, n: usize, k: usize) -> Vec<KernelKind> {
    let vol = m * n * k;
    let mut out = Vec::new();
    if vol <= NAIVE_MAX_VOL {
        out.push(KernelKind::Naive);
    }
    out.push(KernelKind::Blocked);
    if m >= 4 && n >= 4 {
        out.push(KernelKind::Packed4x4);
    }
    if m >= 8 && n >= 4 {
        out.push(KernelKind::Packed8x4);
    }
    if m >= 4 && n >= 8 {
        out.push(KernelKind::Packed4x8);
    }
    if m >= 8 && n >= 8 {
        out.push(KernelKind::Packed8x8);
    }
    if vol >= 64 * 64 * 64 {
        out.push(KernelKind::Parallel);
    }
    out
}

/// Ceil-log2 shape class of one dimension (`1 → 0`, `2 → 1`, `3..=4 → 2`,
/// `5..=8 → 3`, ...).
fn dim_class(d: usize) -> u32 {
    debug_assert!(d > 0);
    (usize::BITS - (d - 1).leading_zeros()).min(63)
}

/// Packed shape-class key for an `m × n × k` product.
fn shape_class(m: usize, n: usize, k: usize) -> u32 {
    (dim_class(m) << 12) | (dim_class(n) << 6) | dim_class(k)
}

/// Operand working set the timing ring is sized to exceed, so successive
/// iterations read mostly cache-cold tiles — the executor streams distinct
/// A/B tiles per Gemm, and a single-pair loop would overstate kernels whose
/// packing cost is hidden by cache-hot reruns.
const TIMING_RING_BYTES: usize = 4 << 20;

/// A ring of distinct `(a, b)` operand pairs for one shape, accumulating
/// into a single shared `c` — the executor's cache profile: every Gemm of a
/// block streams fresh A/B tiles but accumulates into a C tile that stays
/// resident across the block's whole k-loop.
struct TimingRing {
    sets: Vec<(Tile, Tile)>,
    c: Tile,
    next: usize,
}

impl TimingRing {
    fn new(m: usize, n: usize, k: usize) -> Self {
        let per_set = 8 * (m * k + k * n);
        let len = (TIMING_RING_BYTES / per_set.max(1)).clamp(1, 64);
        let sets = (0..len)
            .map(|i| {
                let seed = 0x5eed_0000 + i as u64;
                (Tile::random(m, k, seed), Tile::random(k, n, seed ^ 0xB))
            })
            .collect();
        Self {
            sets,
            c: Tile::zeros(m, n),
            next: 0,
        }
    }

    fn run(&mut self, kind: KernelKind) {
        let (a, b) = &self.sets[self.next];
        kind.run(1.0, a, b, &mut self.c);
        self.next = (self.next + 1) % self.sets.len();
    }
}

/// Times one `kernel(a, b) → c` call over a rotating operand ring,
/// adaptively repeating until the sample is long enough to trust; returns
/// seconds per call.
fn time_kernel(kind: KernelKind, ring: &mut TimingRing) -> f64 {
    ring.run(kind); // warm the pack scratch and instruction cache
    let mut iters: u32 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            ring.run(kind);
        }
        let dt = t0.elapsed();
        if dt.as_micros() >= 200 || iters >= 1 << 16 {
            return dt.as_secs_f64() / f64::from(iters);
        }
        iters *= 4;
    }
}

/// Measured flop rate of `kind` on an `m × n × k` product, in Gflop/s.
/// Operands rotate through a multi-megabyte ring so the rate reflects
/// streaming (cache-cold) tiles, like the executor's Gemm stream.
pub fn measure_gflops(kind: KernelKind, m: usize, n: usize, k: usize) -> f64 {
    let mut ring = TimingRing::new(m, n, k);
    let secs = time_kernel(kind, &mut ring);
    gemm_flops(m as u64, n as u64, k as u64) as f64 / secs / 1e9
}

/// How many shape classes the autotuner will measure (the heaviest by total
/// flops; the rest fall back to the heuristic).
const AUTOTUNE_MAX_CLASSES: usize = 16;

/// A cached kernel choice per shape class, produced by a one-shot
/// micro-benchmark over an instance's tile-shape distribution.
///
/// Keys are shape-class buckets (ceil-log2 per dimension), sorted for
/// binary-search lookup. Shapes with no entry dispatch through
/// [`select_heuristic`], so an empty table *is* the heuristic.
#[derive(Clone, Debug, Default)]
pub struct KernelTable {
    entries: Vec<(u32, KernelKind)>,
}

impl KernelTable {
    /// The empty table: every lookup falls back to [`select_heuristic`].
    pub fn heuristic() -> Self {
        Self::default()
    }

    /// Number of tuned shape classes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no tuned entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Builds a table by timing candidate kernels on the given shape
    /// histogram (`((m, n, k), task_count)` pairs, e.g. from
    /// `ExecutionPlan::gemm_shape_histogram`).
    ///
    /// Shapes are grouped into shape classes; each class is represented by
    /// its most frequent shape, and only the `AUTOTUNE_MAX_CLASSES` classes
    /// heaviest by total flops are measured — this bounds tuning cost to a
    /// few milliseconds however large the instance is.
    pub fn autotune(histogram: &[((usize, usize, usize), u64)]) -> Self {
        // class key -> (representative shape, rep count, class flop weight)
        type ClassEntry = (u32, (usize, usize, usize), u64, u128);
        let mut classes: Vec<ClassEntry> = Vec::new();
        let mut sorted = histogram.to_vec();
        sorted.sort(); // deterministic regardless of caller's ordering
        for &((m, n, k), count) in &sorted {
            if m == 0 || n == 0 || k == 0 || count == 0 {
                continue;
            }
            let key = shape_class(m, n, k);
            let flops = gemm_flops(m as u64, n as u64, k as u64) as u128 * count as u128;
            match classes.iter_mut().find(|c| c.0 == key) {
                Some(cls) => {
                    cls.3 += flops;
                    if count > cls.2 {
                        cls.1 = (m, n, k);
                        cls.2 = count;
                    }
                }
                None => classes.push((key, (m, n, k), count, flops)),
            }
        }
        classes.sort_by(|a, b| b.3.cmp(&a.3).then(a.0.cmp(&b.0)));
        classes.truncate(AUTOTUNE_MAX_CLASSES);

        let mut entries = Vec::with_capacity(classes.len());
        for (key, (m, n, k), _, _) in classes {
            let mut ring = TimingRing::new(m, n, k);
            let cands = candidates(m, n, k);
            // Alternate over the candidates several times and keep each
            // one's fastest pass: a single timing is easily corrupted by a
            // scheduler preemption on a loaded host, and a corrupted
            // measurement here mis-dispatches every Gemm of the class.
            let mut best_secs = vec![f64::INFINITY; cands.len()];
            for _ in 0..3 {
                for (i, &kind) in cands.iter().enumerate() {
                    best_secs[i] = best_secs[i].min(time_kernel(kind, &mut ring));
                }
            }
            let best = cands
                .into_iter()
                .zip(best_secs)
                .min_by(|x, y| x.1.total_cmp(&y.1))
                .map(|(kind, _)| kind)
                .unwrap_or(KernelKind::Blocked);
            entries.push((key, best));
        }
        entries.sort_by_key(|e| e.0);
        Self { entries }
    }

    /// The kernel to use for an `m × n × k` product.
    pub fn select(&self, m: usize, n: usize, k: usize) -> KernelKind {
        let key = shape_class(m, n, k);
        match self.entries.binary_search_by_key(&key, |e| e.0) {
            Ok(i) => self.entries[i].1,
            Err(_) => select_heuristic(m, n, k),
        }
    }

    /// Iterates the tuned `(shape_class_key, kernel)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (u32, KernelKind)> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_stable() {
        let mut names: Vec<_> = KernelKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), KernelKind::ALL.len());
        assert_eq!(KernelKind::Packed8x4.name(), "packed8x4");
    }

    #[test]
    fn index_roundtrips() {
        for (i, k) in KernelKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn dim_class_is_ceil_log2() {
        assert_eq!(dim_class(1), 0);
        assert_eq!(dim_class(2), 1);
        assert_eq!(dim_class(3), 2);
        assert_eq!(dim_class(4), 2);
        assert_eq!(dim_class(5), 3);
        assert_eq!(dim_class(64), 6);
        assert_eq!(dim_class(65), 7);
    }

    #[test]
    fn heuristic_respects_shape() {
        assert_eq!(select_heuristic(512, 512, 512), KernelKind::Parallel);
        assert_eq!(select_heuristic(2, 200, 50), KernelKind::Blocked);
        assert_eq!(select_heuristic(200, 2, 50), KernelKind::Blocked);
        // Large tiles pack, mid-size tiles stay blocked (cache-resident
        // without packing), small tiles pack with a widened micro-tile.
        assert_eq!(select_heuristic(64, 64, 64), KernelKind::Packed4x4);
        assert_eq!(select_heuristic(40, 40, 40), KernelKind::Blocked);
        assert_eq!(select_heuristic(16, 16, 16), KernelKind::Packed4x8);
        assert_eq!(select_heuristic(16, 5, 16), KernelKind::Packed8x4);
        assert_eq!(select_heuristic(5, 16, 16), KernelKind::Packed4x8);
        assert_eq!(select_heuristic(5, 5, 16), KernelKind::Packed4x4);
    }

    #[test]
    fn candidates_never_empty_and_gated() {
        for &(m, n, k) in &[(1usize, 1usize, 1usize), (3, 100, 7), (40, 40, 40), (130, 130, 130)] {
            let cands = candidates(m, n, k);
            assert!(cands.contains(&KernelKind::Blocked));
            if m < 8 {
                assert!(!cands.contains(&KernelKind::Packed8x4));
                assert!(!cands.contains(&KernelKind::Packed8x8));
            }
        }
        assert!(candidates(512, 512, 512).contains(&KernelKind::Parallel));
        assert!(!candidates(8, 8, 8).contains(&KernelKind::Parallel));
    }

    #[test]
    fn empty_table_is_heuristic() {
        let t = KernelTable::heuristic();
        assert!(t.is_empty());
        for &(m, n, k) in &[(1usize, 7usize, 3usize), (40, 40, 40), (300, 300, 300)] {
            assert_eq!(t.select(m, n, k), select_heuristic(m, n, k));
        }
    }

    #[test]
    fn autotune_builds_sorted_entries_and_selects_valid_kernels() {
        let hist = vec![
            ((20usize, 20usize, 20usize), 500u64),
            ((21, 19, 22), 300), // same class as above
            ((4, 4, 4), 1000),
            ((130, 130, 130), 2),
        ];
        let table = KernelTable::autotune(&hist);
        assert!(!table.is_empty());
        assert!(table.len() <= 3, "three distinct classes expected");
        let keys: Vec<u32> = table.entries().map(|e| e.0).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        // Tuned selections must be runnable and numerically correct.
        for &(m, n, k) in &[(20usize, 20usize, 20usize), (4, 4, 4)] {
            let kind = table.select(m, n, k);
            let a = Tile::random(m, k, 1);
            let b = Tile::random(k, n, 2);
            let c0 = Tile::random(m, n, 3);
            let mut c1 = c0.clone();
            let mut c2 = c0.clone();
            gemm_naive(1.0, &a, &b, &mut c1);
            kind.run(1.0, &a, &b, &mut c2);
            assert!(c1.max_abs_diff(&c2) < 1e-10, "{:?} diverged", kind);
        }
        // Untouched class falls back to the heuristic.
        assert_eq!(table.select(1000, 1000, 1000), KernelKind::Parallel);
    }

    #[test]
    fn measure_gflops_is_positive() {
        assert!(measure_gflops(KernelKind::Blocked, 16, 16, 16) > 0.0);
    }
}

//! `C += A * B` kernels on dense tiles.
//!
//! A family of implementations with identical semantics:
//!
//! * [`gemm_naive`] — triple loop, the correctness reference;
//! * [`gemm_blocked`] — cache-blocked with a column-major-friendly loop
//!   order, the default CPU kernel;
//! * [`gemm_packed`] / [`gemm_packed_8x4`] / [`gemm_packed_4x8`] /
//!   [`gemm_packed_8x8`] — GotoBLAS-style packed panels with an `MR × NR`
//!   register-blocked micro-kernel; both operands are packed (A into
//!   `MR`-row panels, B into `NR`-column panels) so the micro-kernel
//!   streams everything with unit stride;
//! * [`gemm_parallel`] — rayon-parallel over column panels, used by the
//!   simulated GPU executors (a stand-in for cuBLAS: one device = one rayon
//!   pool slice).
//!
//! Picking between them by tile shape is the job of [`crate::kernel`].
//!
//! All kernels compute `C ← alpha * A * B + C` exactly (no fused scaling of
//! C; the paper's contraction uses `beta = 1` accumulation).

use crate::tile::Tile;
use rayon::prelude::*;
use std::cell::RefCell;

/// Cache block edge for the blocked kernel, sized so three blocks fit in L1.
const BLOCK: usize = 64;

/// Returns the flop count of a GEMM of the given shape (2·m·n·k).
#[inline]
pub fn gemm_flops(m: u64, n: u64, k: u64) -> u64 {
    2 * m * n * k
}

fn check_shapes(c: &Tile, a: &Tile, b: &Tile) {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "C rows != A rows");
    assert_eq!(c.cols(), b.cols(), "C cols != B cols");
}

/// Reference triple-loop kernel: `C += alpha * A * B`.
pub fn gemm_naive(alpha: f64, a: &Tile, b: &Tile, c: &mut Tile) {
    check_shapes(c, a, b);
    let (m, n, kk) = (a.rows(), b.cols(), a.cols());
    for j in 0..n {
        for l in 0..kk {
            let blj = alpha * b.get(l, j);
            if blj == 0.0 {
                continue;
            }
            for i in 0..m {
                *c.get_mut(i, j) += a.get(i, l) * blj;
            }
        }
    }
}

/// Cache-blocked kernel: `C += alpha * A * B`.
///
/// Operates on raw column-major slices to let the optimiser vectorise the
/// innermost (contiguous) loop over rows.
pub fn gemm_blocked(alpha: f64, a: &Tile, b: &Tile, c: &mut Tile) {
    check_shapes(c, a, b);
    let (m, n, kk) = (a.rows(), b.cols(), a.cols());
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();
    gemm_blocked_raw(alpha, m, n, kk, ad, bd, cd);
}

/// Blocked kernel on raw column-major buffers; `cd` has leading dimension `m`.
fn gemm_blocked_raw(alpha: f64, m: usize, n: usize, kk: usize, ad: &[f64], bd: &[f64], cd: &mut [f64]) {
    for jb in (0..n).step_by(BLOCK) {
        let jend = (jb + BLOCK).min(n);
        for lb in (0..kk).step_by(BLOCK) {
            let lend = (lb + BLOCK).min(kk);
            for j in jb..jend {
                let ccol = &mut cd[j * m..(j + 1) * m];
                for l in lb..lend {
                    let blj = alpha * bd[j * kk + l];
                    if blj == 0.0 {
                        continue;
                    }
                    let acol = &ad[l * m..(l + 1) * m];
                    for i in 0..m {
                        ccol[i] += acol[i] * blj;
                    }
                }
            }
        }
    }
}

thread_local! {
    /// Per-thread pack scratch for the packed kernels: `(A panels, B panels)`.
    /// Reused across calls so the hot path performs no allocation once the
    /// buffers have grown to the working tile size (the pack-scratch half of
    /// the buffer-pool story; tiles themselves go through
    /// `crate::pool::TilePool`).
    static PACK_SCRATCH: RefCell<(Vec<f64>, Vec<f64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Packed kernel generic over the `MR × NR` register micro-tile.
///
/// Both operands are packed: `A` into `MR`-row panels and `B` into
/// `NR`-column panels, each stored k-major, so the micro-kernel streams
/// every operand with unit stride — the classical GotoBLAS structure at the
/// scale a tile kernel needs. The `MR × NR` accumulators live in locals so
/// the `k` loop is a pure FMA sweep the compiler can vectorise.
fn gemm_packed_generic<const MR: usize, const NR: usize>(
    alpha: f64,
    a: &Tile,
    b: &Tile,
    c: &mut Tile,
) {
    check_shapes(c, a, b);
    let (m, n, kk) = (a.rows(), b.cols(), a.cols());
    if m < MR || n < NR {
        return gemm_blocked(alpha, a, b, c);
    }
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();

    // Ragged edges are zero-padded to full micro-tiles inside the packed
    // panels (the classical GotoBLAS edge-case treatment): the register
    // kernel then runs unconditionally — a few multiplies by zero beat a
    // scalar tail path by an order of magnitude on ragged tile shapes —
    // and the write-back clamps to the valid C sub-block.
    let mpanels = m.div_ceil(MR);
    let npanels = n.div_ceil(NR);
    PACK_SCRATCH.with(|scratch| {
        let (apack, bpack) = &mut *scratch.borrow_mut();
        apack.clear();
        apack.resize(mpanels * MR * kk, 0.0);
        bpack.clear();
        bpack.resize(npanels * NR * kk, 0.0);

        // Pack A: panels of MR rows, k-major, last panel zero-padded.
        for p in 0..mpanels {
            let i0 = p * MR;
            let rows = MR.min(m - i0);
            let dst = &mut apack[p * MR * kk..(p + 1) * MR * kk];
            for l in 0..kk {
                for r in 0..rows {
                    dst[l * MR + r] = ad[l * m + i0 + r];
                }
            }
        }
        // Pack B: panels of NR columns, k-major, so the micro-kernel reads
        // one contiguous NR-wide row per k step instead of NR strided
        // loads; last panel zero-padded.
        for pj in 0..npanels {
            let j0 = pj * NR;
            let cols = NR.min(n - j0);
            let dst = &mut bpack[pj * NR * kk..(pj + 1) * NR * kk];
            for jj in 0..cols {
                let col = &bd[(j0 + jj) * kk..(j0 + jj + 1) * kk];
                for l in 0..kk {
                    dst[l * NR + jj] = col[l];
                }
            }
        }

        for p in 0..mpanels {
            let apanel = &apack[p * MR * kk..(p + 1) * MR * kk];
            let i0 = p * MR;
            let rows = MR.min(m - i0);
            for pj in 0..npanels {
                let bpanel = &bpack[pj * NR * kk..(pj + 1) * NR * kk];
                // MR x NR accumulators in registers.
                let mut acc = [[0.0f64; MR]; NR];
                for l in 0..kk {
                    let arow = &apanel[l * MR..l * MR + MR];
                    let brow = &bpanel[l * NR..l * NR + NR];
                    for (jj, accc) in acc.iter_mut().enumerate() {
                        let blj = brow[jj];
                        for r in 0..MR {
                            accc[r] += arow[r] * blj;
                        }
                    }
                }
                let j0 = pj * NR;
                let cols = NR.min(n - j0);
                for (jj, accc) in acc.iter().enumerate().take(cols) {
                    let ccol = &mut cd[(j0 + jj) * m + i0..(j0 + jj) * m + i0 + rows];
                    for r in 0..rows {
                        ccol[r] += alpha * accc[r];
                    }
                }
            }
        }
    });
}

/// Packed kernel with a 4×4 register micro-tile (the conservative default).
pub fn gemm_packed(alpha: f64, a: &Tile, b: &Tile, c: &mut Tile) {
    gemm_packed_generic::<4, 4>(alpha, a, b, c);
}

/// Packed kernel with an 8×4 micro-tile — favours tall tiles (`m ≥ n`).
pub fn gemm_packed_8x4(alpha: f64, a: &Tile, b: &Tile, c: &mut Tile) {
    gemm_packed_generic::<8, 4>(alpha, a, b, c);
}

/// Packed kernel with a 4×8 micro-tile — favours wide tiles (`n ≥ m`).
pub fn gemm_packed_4x8(alpha: f64, a: &Tile, b: &Tile, c: &mut Tile) {
    gemm_packed_generic::<4, 8>(alpha, a, b, c);
}

/// Packed kernel with an 8×8 micro-tile — maximum register reuse, needs
/// tiles big enough in both dimensions to amortise the pack.
pub fn gemm_packed_8x8(alpha: f64, a: &Tile, b: &Tile, c: &mut Tile) {
    gemm_packed_generic::<8, 8>(alpha, a, b, c);
}

/// Column-panel width used by [`gemm_parallel`] for `n` columns across
/// `threads` workers: `ceil(n / threads)` clamped below so panels are never
/// degenerately thin. The minimum clamp never exceeds `ceil(n / 2)` and the
/// divisor is at least 2, which together guarantee at least 2 panels
/// whenever `n >= 2 * threads` (and in fact whenever `n >= 2`) — the old
/// `BLOCK.max(...)` sizing collapsed small-`n` problems into one chunk and
/// ran the "parallel" kernel serially.
pub fn parallel_panel_cols(n: usize, threads: usize) -> usize {
    let t = threads.max(2);
    let min_panel = 8.min(n.div_ceil(2)).max(1);
    n.div_ceil(t).max(min_panel)
}

/// Rayon-parallel kernel: column panels of `C` are independent, so they are
/// processed with a parallel iterator (data-race freedom by construction —
/// each panel borrows a disjoint `&mut` slice).
pub fn gemm_parallel(alpha: f64, a: &Tile, b: &Tile, c: &mut Tile) {
    check_shapes(c, a, b);
    let (m, n, kk) = (a.rows(), b.cols(), a.cols());
    // Small problems: parallel dispatch costs more than it saves.
    if m * n * kk < 64 * 64 * 64 {
        return gemm_blocked(alpha, a, b, c);
    }
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();
    let panel = parallel_panel_cols(n, rayon::current_num_threads());
    cd.par_chunks_mut(panel * m)
        .enumerate()
        .for_each(|(pi, cpanel)| {
            let j0 = pi * panel;
            let ncols = cpanel.len() / m;
            let bpanel = &bd[j0 * kk..(j0 + ncols) * kk];
            gemm_blocked_raw(alpha, m, ncols, kk, ad, bpanel, cpanel);
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_ref(alpha: f64, a: &Tile, b: &Tile, c0: &Tile) -> Tile {
        let mut c = c0.clone();
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for l in 0..a.cols() {
                    acc += a.get(i, l) * b.get(l, j);
                }
                *c.get_mut(i, j) += alpha * acc;
            }
        }
        c
    }

    #[test]
    fn naive_matches_reference_small() {
        let a = Tile::random(3, 4, 1);
        let b = Tile::random(4, 5, 2);
        let c0 = Tile::random(3, 5, 3);
        let expect = dense_ref(1.0, &a, &b, &c0);
        let mut c = c0.clone();
        gemm_naive(1.0, &a, &b, &mut c);
        assert!(c.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn blocked_matches_naive() {
        for &(m, n, k) in &[(1usize, 1usize, 1usize), (7, 9, 5), (64, 64, 64), (65, 130, 100)] {
            let a = Tile::random(m, k, 10);
            let b = Tile::random(k, n, 11);
            let c0 = Tile::random(m, n, 12);
            let mut c1 = c0.clone();
            let mut c2 = c0.clone();
            gemm_naive(0.7, &a, &b, &mut c1);
            gemm_blocked(0.7, &a, &b, &mut c2);
            assert!(c1.max_abs_diff(&c2) < 1e-10, "mismatch at {m}x{n}x{k}");
        }
    }

    #[test]
    fn packed_matches_naive() {
        type Kernel = fn(f64, &Tile, &Tile, &mut Tile);
        let variants: [(&str, Kernel); 4] = [
            ("4x4", gemm_packed),
            ("8x4", gemm_packed_8x4),
            ("4x8", gemm_packed_4x8),
            ("8x8", gemm_packed_8x8),
        ];
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 2),
            (4, 4, 4),
            (8, 8, 8),
            (17, 23, 9),
            (9, 65, 7),
            (64, 64, 64),
            (65, 67, 33),
        ] {
            let a = Tile::random(m, k, 30);
            let b = Tile::random(k, n, 31);
            let c0 = Tile::random(m, n, 32);
            let mut c1 = c0.clone();
            gemm_naive(1.3, &a, &b, &mut c1);
            for (name, kernel) in variants {
                let mut c2 = c0.clone();
                kernel(1.3, &a, &b, &mut c2);
                assert!(
                    c1.max_abs_diff(&c2) < 1e-10,
                    "{name} mismatch at {m}x{n}x{k}"
                );
            }
        }
    }

    #[test]
    fn parallel_panels_split_work() {
        // At least 2 panels whenever n >= 2 * threads...
        for threads in 1..=16 {
            for n in (2 * threads)..(2 * threads + 40) {
                let panel = parallel_panel_cols(n, threads);
                let panels = n.div_ceil(panel);
                assert!(
                    panels >= 2,
                    "n={n} threads={threads}: panel={panel} gives a single chunk"
                );
            }
        }
        // ...and never more panels than columns, with a sane floor.
        assert_eq!(parallel_panel_cols(1, 8), 1);
        assert_eq!(parallel_panel_cols(1000, 4), 250);
        assert_eq!(parallel_panel_cols(1000, 0), 500);
        assert_eq!(parallel_panel_cols(9, 16), 5);
    }

    #[test]
    fn parallel_matches_naive() {
        for &(m, n, k) in &[(16usize, 16usize, 16usize), (100, 300, 80), (257, 129, 65)] {
            let a = Tile::random(m, k, 20);
            let b = Tile::random(k, n, 21);
            let c0 = Tile::random(m, n, 22);
            let mut c1 = c0.clone();
            let mut c2 = c0.clone();
            gemm_naive(1.0, &a, &b, &mut c1);
            gemm_parallel(1.0, &a, &b, &mut c2);
            assert!(c1.max_abs_diff(&c2) < 1e-10, "mismatch at {m}x{n}x{k}");
        }
    }

    #[test]
    fn accumulates_into_c() {
        let a = Tile::from_data(1, 1, vec![2.0]);
        let b = Tile::from_data(1, 1, vec![3.0]);
        let mut c = Tile::from_data(1, 1, vec![10.0]);
        gemm_blocked(1.0, &a, &b, &mut c);
        assert_eq!(c.get(0, 0), 16.0);
        gemm_blocked(1.0, &a, &b, &mut c);
        assert_eq!(c.get(0, 0), 22.0);
    }

    #[test]
    fn alpha_scales_product_only() {
        let a = Tile::from_data(1, 1, vec![2.0]);
        let b = Tile::from_data(1, 1, vec![3.0]);
        let mut c = Tile::from_data(1, 1, vec![5.0]);
        gemm_naive(2.0, &a, &b, &mut c);
        assert_eq!(c.get(0, 0), 17.0);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let a = Tile::zeros(2, 3);
        let b = Tile::zeros(4, 2);
        let mut c = Tile::zeros(2, 2);
        gemm_naive(1.0, &a, &b, &mut c);
    }

    #[test]
    fn flop_count() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
    }
}

//! `C += A * B` kernels on dense tiles.
//!
//! Four implementations with identical semantics:
//!
//! * [`gemm_naive`] — triple loop, the correctness reference;
//! * [`gemm_blocked`] — cache-blocked with a column-major-friendly loop
//!   order, the default CPU kernel;
//! * [`gemm_packed`] — GotoBLAS-style packed panels with an `MR × NR`
//!   register-blocked micro-kernel;
//! * [`gemm_parallel`] — rayon-parallel over column panels, used by the
//!   simulated GPU executors (a stand-in for cuBLAS: one device = one rayon
//!   pool slice).
//!
//! All kernels compute `C ← alpha * A * B + C` exactly (no fused scaling of
//! C; the paper's contraction uses `beta = 1` accumulation).

use crate::tile::Tile;
use rayon::prelude::*;

/// Cache block edge for the blocked kernel, sized so three blocks fit in L1.
const BLOCK: usize = 64;

/// Returns the flop count of a GEMM of the given shape (2·m·n·k).
#[inline]
pub fn gemm_flops(m: u64, n: u64, k: u64) -> u64 {
    2 * m * n * k
}

fn check_shapes(c: &Tile, a: &Tile, b: &Tile) {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "C rows != A rows");
    assert_eq!(c.cols(), b.cols(), "C cols != B cols");
}

/// Reference triple-loop kernel: `C += alpha * A * B`.
pub fn gemm_naive(alpha: f64, a: &Tile, b: &Tile, c: &mut Tile) {
    check_shapes(c, a, b);
    let (m, n, kk) = (a.rows(), b.cols(), a.cols());
    for j in 0..n {
        for l in 0..kk {
            let blj = alpha * b.get(l, j);
            if blj == 0.0 {
                continue;
            }
            for i in 0..m {
                *c.get_mut(i, j) += a.get(i, l) * blj;
            }
        }
    }
}

/// Cache-blocked kernel: `C += alpha * A * B`.
///
/// Operates on raw column-major slices to let the optimiser vectorise the
/// innermost (contiguous) loop over rows.
pub fn gemm_blocked(alpha: f64, a: &Tile, b: &Tile, c: &mut Tile) {
    check_shapes(c, a, b);
    let (m, n, kk) = (a.rows(), b.cols(), a.cols());
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();
    gemm_blocked_raw(alpha, m, n, kk, ad, bd, cd);
}

/// Blocked kernel on raw column-major buffers; `cd` has leading dimension `m`.
fn gemm_blocked_raw(alpha: f64, m: usize, n: usize, kk: usize, ad: &[f64], bd: &[f64], cd: &mut [f64]) {
    for jb in (0..n).step_by(BLOCK) {
        let jend = (jb + BLOCK).min(n);
        for lb in (0..kk).step_by(BLOCK) {
            let lend = (lb + BLOCK).min(kk);
            for j in jb..jend {
                let ccol = &mut cd[j * m..(j + 1) * m];
                for l in lb..lend {
                    let blj = alpha * bd[j * kk + l];
                    if blj == 0.0 {
                        continue;
                    }
                    let acol = &ad[l * m..(l + 1) * m];
                    for i in 0..m {
                        ccol[i] += acol[i] * blj;
                    }
                }
            }
        }
    }
}

/// Register-blocking parameters of the packed kernel: the micro-tile is
/// `MR × NR` accumulators held in locals so the inner loop is a pure
/// FMA sweep the compiler can vectorise.
const MR: usize = 4;
/// Columns per micro-tile.
const NR: usize = 4;

/// Packed kernel: `C += alpha * A * B` with `A` packed into `MR`-row panels
/// so the micro-kernel reads both operands with unit stride — the classical
/// GotoBLAS structure (pack + register-blocked micro-tile), at the scale a
/// tile kernel needs.
pub fn gemm_packed(alpha: f64, a: &Tile, b: &Tile, c: &mut Tile) {
    check_shapes(c, a, b);
    let (m, n, kk) = (a.rows(), b.cols(), a.cols());
    if m < MR || n < NR {
        return gemm_blocked(alpha, a, b, c);
    }
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();

    // Pack A: panels of MR rows, each panel stored k-major so the
    // micro-kernel streams it contiguously. The ragged tail of rows is
    // handled by the blocked kernel afterwards.
    let full_panels = m / MR;
    let mut apack = vec![0.0f64; full_panels * MR * kk];
    for p in 0..full_panels {
        let dst = &mut apack[p * MR * kk..(p + 1) * MR * kk];
        for l in 0..kk {
            for r in 0..MR {
                dst[l * MR + r] = ad[l * m + p * MR + r];
            }
        }
    }

    let full_cols = n / NR * NR;
    for p in 0..full_panels {
        let apanel = &apack[p * MR * kk..(p + 1) * MR * kk];
        let mut j = 0;
        while j < full_cols {
            // MR x NR accumulators in registers.
            let mut acc = [[0.0f64; MR]; NR];
            for l in 0..kk {
                let arow = &apanel[l * MR..l * MR + MR];
                for (jj, accc) in acc.iter_mut().enumerate() {
                    let blj = bd[(j + jj) * kk + l];
                    for r in 0..MR {
                        accc[r] += arow[r] * blj;
                    }
                }
            }
            for (jj, accc) in acc.iter().enumerate() {
                let ccol = &mut cd[(j + jj) * m + p * MR..(j + jj) * m + p * MR + MR];
                for r in 0..MR {
                    ccol[r] += alpha * accc[r];
                }
            }
            j += NR;
        }
        // Ragged column tail for this panel.
        for j in full_cols..n {
            let mut acc = [0.0f64; MR];
            for l in 0..kk {
                let blj = bd[j * kk + l];
                let arow = &apanel[l * MR..l * MR + MR];
                for r in 0..MR {
                    acc[r] += arow[r] * blj;
                }
            }
            let ccol = &mut cd[j * m + p * MR..j * m + p * MR + MR];
            for r in 0..MR {
                ccol[r] += alpha * acc[r];
            }
        }
    }

    // Ragged row tail: the last m % MR rows via the scalar path.
    let tail = full_panels * MR;
    if tail < m {
        for j in 0..n {
            for l in 0..kk {
                let blj = alpha * bd[j * kk + l];
                if blj == 0.0 {
                    continue;
                }
                for r in tail..m {
                    cd[j * m + r] += ad[l * m + r] * blj;
                }
            }
        }
    }
}

/// Rayon-parallel kernel: column panels of `C` are independent, so they are
/// processed with a parallel iterator (data-race freedom by construction —
/// each panel borrows a disjoint `&mut` slice).
pub fn gemm_parallel(alpha: f64, a: &Tile, b: &Tile, c: &mut Tile) {
    check_shapes(c, a, b);
    let (m, n, kk) = (a.rows(), b.cols(), a.cols());
    // Small problems: parallel dispatch costs more than it saves.
    if m * n * kk < 64 * 64 * 64 {
        return gemm_blocked(alpha, a, b, c);
    }
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();
    let panel = BLOCK.max(n / (4 * rayon::current_num_threads()).max(1));
    cd.par_chunks_mut(panel * m)
        .enumerate()
        .for_each(|(pi, cpanel)| {
            let j0 = pi * panel;
            let ncols = cpanel.len() / m;
            let bpanel = &bd[j0 * kk..(j0 + ncols) * kk];
            gemm_blocked_raw(alpha, m, ncols, kk, ad, bpanel, cpanel);
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_ref(alpha: f64, a: &Tile, b: &Tile, c0: &Tile) -> Tile {
        let mut c = c0.clone();
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for l in 0..a.cols() {
                    acc += a.get(i, l) * b.get(l, j);
                }
                *c.get_mut(i, j) += alpha * acc;
            }
        }
        c
    }

    #[test]
    fn naive_matches_reference_small() {
        let a = Tile::random(3, 4, 1);
        let b = Tile::random(4, 5, 2);
        let c0 = Tile::random(3, 5, 3);
        let expect = dense_ref(1.0, &a, &b, &c0);
        let mut c = c0.clone();
        gemm_naive(1.0, &a, &b, &mut c);
        assert!(c.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn blocked_matches_naive() {
        for &(m, n, k) in &[(1usize, 1usize, 1usize), (7, 9, 5), (64, 64, 64), (65, 130, 100)] {
            let a = Tile::random(m, k, 10);
            let b = Tile::random(k, n, 11);
            let c0 = Tile::random(m, n, 12);
            let mut c1 = c0.clone();
            let mut c2 = c0.clone();
            gemm_naive(0.7, &a, &b, &mut c1);
            gemm_blocked(0.7, &a, &b, &mut c2);
            assert!(c1.max_abs_diff(&c2) < 1e-10, "mismatch at {m}x{n}x{k}");
        }
    }

    #[test]
    fn packed_matches_naive() {
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 2),
            (4, 4, 4),
            (17, 23, 9),
            (64, 64, 64),
            (65, 67, 33),
        ] {
            let a = Tile::random(m, k, 30);
            let b = Tile::random(k, n, 31);
            let c0 = Tile::random(m, n, 32);
            let mut c1 = c0.clone();
            let mut c2 = c0.clone();
            gemm_naive(1.3, &a, &b, &mut c1);
            gemm_packed(1.3, &a, &b, &mut c2);
            assert!(c1.max_abs_diff(&c2) < 1e-10, "mismatch at {m}x{n}x{k}");
        }
    }

    #[test]
    fn parallel_matches_naive() {
        for &(m, n, k) in &[(16usize, 16usize, 16usize), (100, 300, 80), (257, 129, 65)] {
            let a = Tile::random(m, k, 20);
            let b = Tile::random(k, n, 21);
            let c0 = Tile::random(m, n, 22);
            let mut c1 = c0.clone();
            let mut c2 = c0.clone();
            gemm_naive(1.0, &a, &b, &mut c1);
            gemm_parallel(1.0, &a, &b, &mut c2);
            assert!(c1.max_abs_diff(&c2) < 1e-10, "mismatch at {m}x{n}x{k}");
        }
    }

    #[test]
    fn accumulates_into_c() {
        let a = Tile::from_data(1, 1, vec![2.0]);
        let b = Tile::from_data(1, 1, vec![3.0]);
        let mut c = Tile::from_data(1, 1, vec![10.0]);
        gemm_blocked(1.0, &a, &b, &mut c);
        assert_eq!(c.get(0, 0), 16.0);
        gemm_blocked(1.0, &a, &b, &mut c);
        assert_eq!(c.get(0, 0), 22.0);
    }

    #[test]
    fn alpha_scales_product_only() {
        let a = Tile::from_data(1, 1, vec![2.0]);
        let b = Tile::from_data(1, 1, vec![3.0]);
        let mut c = Tile::from_data(1, 1, vec![5.0]);
        gemm_naive(2.0, &a, &b, &mut c);
        assert_eq!(c.get(0, 0), 17.0);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let a = Tile::zeros(2, 3);
        let b = Tile::zeros(4, 2);
        let mut c = Tile::zeros(2, 2);
        gemm_naive(1.0, &a, &b, &mut c);
    }

    #[test]
    fn flop_count() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
    }
}

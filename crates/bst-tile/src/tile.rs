//! Column-major `f64` tiles with a polymorphic storage representation.
//!
//! A [`Tile`] is the unit of storage, communication and computation: the
//! non-zero blocks of a block-sparse matrix are tiles, and the GPU
//! executors multiply pairs of them with the kernels in [`crate::gemm`].
//!
//! A tile's *logical* value is always a dense `rows × cols` matrix; its
//! *stored* representation ([`Repr`]) is either that dense buffer or a
//! rank-`r` factorization `U·Vᵀ` produced by the pivoted-QR truncation in
//! [`crate::lowrank`]. Every byte-accounting consumer (tile stores, comm
//! links, caches) must use [`Tile::stored_bytes`] — the bytes the
//! representation actually occupies — while [`Tile::bytes`] keeps reporting
//! the logical dense footprint the planner budgets against.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The storage representation of a [`Tile`].
///
/// `Dense` holds the full column-major buffer. `LowRank` holds the factors
/// of `T ≈ U·Vᵀ`: `u` is `rows × rank` column-major, `v` is `cols × rank`
/// column-major (so `Vᵀ` is applied, never materialised). `rank == 0`
/// encodes an exactly-zero tile with zero stored bytes.
#[derive(Clone, Debug, PartialEq)]
pub enum Repr {
    /// Full dense column-major buffer of `rows * cols` elements.
    Dense(Vec<f64>),
    /// Truncated factorization `U·Vᵀ`.
    LowRank {
        /// `rows × rank`, column-major.
        u: Vec<f64>,
        /// `cols × rank`, column-major (the transpose is implicit).
        v: Vec<f64>,
        /// Number of retained factor columns.
        rank: usize,
    },
}

/// A `rows × cols` block of `f64` with a [`Repr`]-polymorphic storage.
#[derive(Clone, Debug, PartialEq)]
pub struct Tile {
    rows: usize,
    cols: usize,
    repr: Repr,
}

impl Tile {
    /// Allocates a zero-filled dense tile.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "degenerate tile {rows}x{cols}");
        Self {
            rows,
            cols,
            repr: Repr::Dense(vec![0.0; rows * cols]),
        }
    }

    /// Builds a dense tile from a column-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_data(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols);
        assert!(rows > 0 && cols > 0);
        Self { rows, cols, repr: Repr::Dense(data) }
    }

    /// Builds a low-rank tile `U·Vᵀ` from its factor buffers (`u` is
    /// `rows × rank`, `v` is `cols × rank`, both column-major).
    ///
    /// # Panics
    /// Panics on factor-length mismatch or a degenerate logical shape.
    pub fn from_factors(rows: usize, cols: usize, u: Vec<f64>, v: Vec<f64>, rank: usize) -> Self {
        assert!(rows > 0 && cols > 0, "degenerate tile {rows}x{cols}");
        assert_eq!(u.len(), rows * rank, "U factor length");
        assert_eq!(v.len(), cols * rank, "V factor length");
        Self { rows, cols, repr: Repr::LowRank { u, v, rank } }
    }

    /// Fills a tile with deterministic pseudo-random values in `[-1, 1)`.
    ///
    /// The seed should encode the tile's global coordinates so a tile's
    /// content is a pure function of its identity — this is how the on-demand
    /// generation of `B` stays consistent across the nodes that replicate a
    /// column (§4: "each tile of B is instantiated at most once per node that
    /// needs it").
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut t = Self::zeros(rows, cols);
        t.fill_random(seed);
        t
    }

    /// A deterministic dense tile with a decaying singular spectrum:
    /// `T = Σ_p exp(−decay·p) · x_p·y_pᵀ` over `min(rows, cols)` random
    /// rank-one terms. With `decay` around 0.5–1.0 the tile is numerically
    /// low-rank — the profile of clustered-AO integral blocks — so
    /// [`Tile::compressed`] at a loose tolerance retains only a few factors.
    /// Like [`Tile::random`], the content is a pure function of
    /// `(rows, cols, seed, decay)`.
    pub fn random_lowrank(rows: usize, cols: usize, seed: u64, decay: f64) -> Self {
        assert!(rows > 0 && cols > 0, "degenerate tile {rows}x{cols}");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let terms = rows.min(cols);
        let mut data = vec![0.0; rows * cols];
        let mut x = vec![0.0; rows];
        let mut y = vec![0.0; cols];
        for p in 0..terms {
            for xi in &mut x {
                *xi = rng.gen_range(-1.0..1.0);
            }
            for yi in &mut y {
                *yi = rng.gen_range(-1.0..1.0);
            }
            let sigma = (-decay * p as f64).exp();
            for (c, &yc) in y.iter().enumerate() {
                let w = sigma * yc;
                let col = &mut data[c * rows..(c + 1) * rows];
                for (e, &xr) in col.iter_mut().zip(&x) {
                    *e += w * xr;
                }
            }
        }
        Self::from_data(rows, cols, data)
    }

    /// Overwrites every element with the same deterministic pseudo-random
    /// sequence [`Tile::random`] produces for this shape and seed. A
    /// low-rank tile is re-densified first (the result is always dense).
    ///
    /// This is the in-place counterpart of [`Tile::random`] used by the
    /// buffer pool (`crate::pool::TilePool`) to regenerate tiles into
    /// recycled allocations: `pool.random(r, c, s)` and `Tile::random(r, c, s)`
    /// are bit-identical.
    pub fn fill_random(&mut self, seed: u64) {
        if !self.is_dense() {
            self.repr = Repr::Dense(vec![0.0; self.rows * self.cols]);
        }
        let Repr::Dense(data) = &mut self.repr else { unreachable!() };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for x in data {
            *x = rng.gen_range(-1.0..1.0);
        }
    }

    /// Consumes the tile, returning its dense backing buffer (for
    /// recycling).
    ///
    /// # Panics
    /// Panics on a low-rank tile — recycle those through
    /// [`Tile::into_repr`], which hands back the factor buffers.
    #[inline]
    pub fn into_data(self) -> Vec<f64> {
        match self.repr {
            Repr::Dense(data) => data,
            Repr::LowRank { .. } => panic!("into_data on a low-rank tile; use into_repr"),
        }
    }

    /// Consumes the tile, returning its representation with the backing
    /// buffers (dense buffer, or both factor buffers).
    #[inline]
    pub fn into_repr(self) -> Repr {
        self.repr
    }

    /// The storage representation.
    #[inline]
    pub fn repr(&self) -> &Repr {
        &self.repr
    }

    /// Whether the tile is stored dense.
    #[inline]
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense(_))
    }

    /// The retained rank of a low-rank tile; `None` when dense.
    #[inline]
    pub fn rank(&self) -> Option<usize> {
        match &self.repr {
            Repr::Dense(_) => None,
            Repr::LowRank { rank, .. } => Some(*rank),
        }
    }

    /// The `(u, v, rank)` factors of a low-rank tile; `None` when dense.
    #[inline]
    pub fn factors(&self) -> Option<(&[f64], &[f64], usize)> {
        match &self.repr {
            Repr::Dense(_) => None,
            Repr::LowRank { u, v, rank } => Some((u, v, *rank)),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Size in bytes of the *logical* dense payload (`rows · cols · 8`) —
    /// what the planner budgets against, independent of representation.
    /// Use [`Tile::stored_bytes`] for what actually occupies memory or a
    /// link.
    #[inline]
    pub fn bytes(&self) -> u64 {
        (self.rows * self.cols * std::mem::size_of::<f64>()) as u64
    }

    /// Size in bytes of the stored representation — the dense buffer, or
    /// both low-rank factors. This is what travels on links, occupies
    /// stores/caches, and counts against byte budgets.
    #[inline]
    pub fn stored_bytes(&self) -> u64 {
        let elems = match &self.repr {
            Repr::Dense(data) => data.len(),
            Repr::LowRank { u, v, .. } => u.len() + v.len(),
        };
        (elems * std::mem::size_of::<f64>()) as u64
    }

    /// Element accessor (column-major). Works for both representations; a
    /// low-rank read is a rank-length dot product.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        match &self.repr {
            Repr::Dense(data) => data[c * self.rows + r],
            Repr::LowRank { u, v, rank } => {
                let mut acc = 0.0;
                for p in 0..*rank {
                    acc += u[p * self.rows + r] * v[p * self.cols + c];
                }
                acc
            }
        }
    }

    /// Mutable element accessor (column-major).
    ///
    /// # Panics
    /// Panics on a low-rank tile — factors are immutable; densify first.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        let rows = self.rows;
        match &mut self.repr {
            Repr::Dense(data) => &mut data[c * rows + r],
            Repr::LowRank { .. } => panic!("get_mut on a low-rank tile; densify first"),
        }
    }

    /// Raw column-major data of a dense tile.
    ///
    /// # Panics
    /// Panics on a low-rank tile — use [`Tile::factors`] or
    /// [`Tile::to_dense`].
    #[inline]
    pub fn data(&self) -> &[f64] {
        match &self.repr {
            Repr::Dense(data) => data,
            Repr::LowRank { .. } => panic!("data() on a low-rank tile; use factors()/to_dense()"),
        }
    }

    /// Raw mutable column-major data of a dense tile.
    ///
    /// # Panics
    /// Panics on a low-rank tile.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        match &mut self.repr {
            Repr::Dense(data) => data,
            Repr::LowRank { .. } => panic!("data_mut() on a low-rank tile; densify first"),
        }
    }

    /// The dense materialisation of this tile: a copy for a dense tile, the
    /// evaluated product `U·Vᵀ` for a low-rank one.
    pub fn to_dense(&self) -> Tile {
        match &self.repr {
            Repr::Dense(data) => Tile::from_data(self.rows, self.cols, data.clone()),
            Repr::LowRank { u, v, rank } => {
                let mut data = vec![0.0; self.rows * self.cols];
                for p in 0..*rank {
                    let up = &u[p * self.rows..(p + 1) * self.rows];
                    let vp = &v[p * self.cols..(p + 1) * self.cols];
                    for (c, &vc) in vp.iter().enumerate() {
                        let col = &mut data[c * self.rows..(c + 1) * self.rows];
                        for (e, &ur) in col.iter_mut().zip(up) {
                            *e += ur * vc;
                        }
                    }
                }
                Tile::from_data(self.rows, self.cols, data)
            }
        }
    }

    /// Attempts a rank-revealing truncation of this tile at relative
    /// tolerance `tol` (see [`crate::lowrank::compress`]). Returns the
    /// low-rank tile when truncation succeeds **and** the factors occupy
    /// strictly fewer bytes than the dense buffer; `None` (keep the
    /// original) otherwise. `tol <= 0.0` never compresses — the `tol = 0.0`
    /// execution path stays bit-identical to the dense engine.
    pub fn compressed(&self, tol: f64) -> Option<Tile> {
        match &self.repr {
            Repr::Dense(data) => crate::lowrank::compress(self.rows, self.cols, data, tol)
                .map(|(u, v, rank)| Tile::from_factors(self.rows, self.cols, u, v, rank)),
            Repr::LowRank { .. } => None,
        }
    }

    /// Frobenius norm — used for screening-based sparse shapes. For a
    /// low-rank tile this is evaluated exactly from the factor Gram
    /// matrices: `‖U·Vᵀ‖²_F = Σ_{p,q} (UᵀU)_{pq} (VᵀV)_{pq}`.
    pub fn frobenius_norm(&self) -> f64 {
        match &self.repr {
            Repr::Dense(data) => data.iter().map(|x| x * x).sum::<f64>().sqrt(),
            Repr::LowRank { u, v, rank } => {
                let mut acc = 0.0;
                for p in 0..*rank {
                    for q in 0..*rank {
                        let gu: f64 = u[p * self.rows..(p + 1) * self.rows]
                            .iter()
                            .zip(&u[q * self.rows..(q + 1) * self.rows])
                            .map(|(a, b)| a * b)
                            .sum();
                        let gv: f64 = v[p * self.cols..(p + 1) * self.cols]
                            .iter()
                            .zip(&v[q * self.cols..(q + 1) * self.cols])
                            .map(|(a, b)| a * b)
                            .sum();
                        acc += gu * gv;
                    }
                }
                acc.max(0.0).sqrt()
            }
        }
    }

    /// Scales every element in place (a low-rank tile scales its `U`
    /// factor — same logical result, no densification).
    pub fn scale(&mut self, alpha: f64) {
        match &mut self.repr {
            Repr::Dense(data) => {
                for x in data {
                    *x *= alpha;
                }
            }
            Repr::LowRank { u, .. } => {
                for x in u {
                    *x *= alpha;
                }
            }
        }
    }

    /// `self += other`, element-wise. `self` must be dense (accumulators
    /// always are); `other` may be low-rank, in which case its factor
    /// product is accumulated without materialising it.
    ///
    /// # Panics
    /// Panics on shape mismatch or a low-rank `self`.
    pub fn add_assign(&mut self, other: &Tile) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "tile shape mismatch in add_assign"
        );
        let rows = self.rows;
        let cols = self.cols;
        let Repr::Dense(data) = &mut self.repr else {
            panic!("add_assign into a low-rank tile; densify the accumulator first")
        };
        match &other.repr {
            Repr::Dense(od) => {
                for (a, b) in data.iter_mut().zip(od) {
                    *a += b;
                }
            }
            Repr::LowRank { u, v, rank } => {
                for p in 0..*rank {
                    let up = &u[p * rows..(p + 1) * rows];
                    let vp = &v[p * cols..(p + 1) * cols];
                    for (c, &vc) in vp.iter().enumerate() {
                        let col = &mut data[c * rows..(c + 1) * rows];
                        for (e, &ur) in col.iter_mut().zip(up) {
                            *e += ur * vc;
                        }
                    }
                }
            }
        }
    }

    /// Largest absolute difference to another tile of the same shape
    /// (representation-independent: low-rank operands are evaluated
    /// element-wise).
    pub fn max_abs_diff(&self, other: &Tile) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        if let (Repr::Dense(a), Repr::Dense(b)) = (&self.repr, &other.repr) {
            return a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max);
        }
        let mut worst = 0.0f64;
        for c in 0..self.cols {
            for r in 0..self.rows {
                worst = worst.max((self.get(r, c) - other.get(r, c)).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_bytes() {
        let t = Tile::zeros(3, 4);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 4);
        assert_eq!(t.bytes(), 96);
        assert_eq!(t.stored_bytes(), 96);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic]
    fn zero_dim_rejected() {
        Tile::zeros(0, 4);
    }

    #[test]
    fn column_major_layout() {
        let t = Tile::from_data(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(1, 0), 2.0);
        assert_eq!(t.get(0, 1), 3.0);
        assert_eq!(t.get(1, 1), 4.0);
    }

    #[test]
    fn random_is_pure_function_of_seed() {
        let a = Tile::random(5, 7, 123);
        let b = Tile::random(5, 7, 123);
        assert_eq!(a, b);
        let c = Tile::random(5, 7, 124);
        assert_ne!(a, c);
    }

    #[test]
    fn fill_random_matches_random() {
        let a = Tile::random(6, 9, 777);
        let mut b = Tile::from_data(6, 9, vec![f64::NAN; 54]);
        b.fill_random(777);
        assert_eq!(a, b);
    }

    #[test]
    fn into_data_roundtrip() {
        let t = Tile::from_data(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.into_data(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn random_in_unit_range() {
        let t = Tile::random(16, 16, 9);
        assert!(t.data().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Tile::from_data(2, 1, vec![1.0, 2.0]);
        let b = Tile::from_data(2, 1, vec![10.0, 20.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[11.0, 22.0]);
        a.scale(0.5);
        assert_eq!(a.data(), &[5.5, 11.0]);
    }

    #[test]
    fn frobenius() {
        let t = Tile::from_data(2, 1, vec![3.0, 4.0]);
        assert!((t.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Tile::from_data(2, 1, vec![1.0, 2.0]);
        let b = Tile::from_data(2, 1, vec![1.5, 1.0]);
        assert!((a.max_abs_diff(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn factor_tile_reads_like_its_product() {
        // u = [1, 2]ᵀ, v = [3, 4, 5]ᵀ → T = u·vᵀ, 2×3 rank 1.
        let t = Tile::from_factors(2, 3, vec![1.0, 2.0], vec![3.0, 4.0, 5.0], 1);
        assert!(!t.is_dense());
        assert_eq!(t.rank(), Some(1));
        assert_eq!(t.get(0, 0), 3.0);
        assert_eq!(t.get(1, 2), 10.0);
        assert_eq!(t.stored_bytes(), 40); // (2 + 3) * 8
        assert_eq!(t.bytes(), 48); // logical 2*3*8
        let d = t.to_dense();
        assert!(d.is_dense());
        assert!(t.max_abs_diff(&d) == 0.0);
    }

    #[test]
    fn lowrank_frobenius_matches_dense() {
        let t = Tile::from_factors(
            3,
            4,
            vec![1.0, -2.0, 0.5, 0.25, 1.5, -1.0],
            vec![2.0, 0.0, 1.0, -1.0, 0.5, 1.0, -0.5, 2.0],
            2,
        );
        let d = t.to_dense();
        assert!((t.frobenius_norm() - d.frobenius_norm()).abs() < 1e-12);
    }

    #[test]
    fn lowrank_scale_and_add_assign() {
        let mut t = Tile::from_factors(2, 2, vec![1.0, 0.0], vec![1.0, 1.0], 1);
        t.scale(2.0);
        assert_eq!(t.get(0, 0), 2.0);
        let mut acc = Tile::zeros(2, 2);
        acc.add_assign(&t);
        assert_eq!(acc.get(0, 1), 2.0);
        assert_eq!(acc.get(1, 0), 0.0);
    }

    #[test]
    fn rank_zero_tile_is_zero() {
        let t = Tile::from_factors(3, 5, vec![], vec![], 0);
        assert_eq!(t.stored_bytes(), 0);
        assert_eq!(t.frobenius_norm(), 0.0);
        assert!(t.max_abs_diff(&Tile::zeros(3, 5)) == 0.0);
    }

    #[test]
    fn random_lowrank_is_deterministic_and_compressible() {
        let a = Tile::random_lowrank(24, 20, 7, 0.8);
        let b = Tile::random_lowrank(24, 20, 7, 0.8);
        assert_eq!(a, b);
        assert!(a.is_dense());
        let lr = a.compressed(1e-2).expect("decaying spectrum compresses at 1e-2");
        assert!(lr.stored_bytes() < a.stored_bytes());
        assert!(lr.rank().unwrap() < 20);
    }

    #[test]
    fn tol_zero_never_compresses() {
        assert!(Tile::random_lowrank(16, 16, 3, 2.0).compressed(0.0).is_none());
        assert!(Tile::random(8, 8, 1).compressed(-1.0).is_none());
    }
}

//! Dense column-major `f64` tiles.
//!
//! A [`Tile`] is the unit of storage, communication and computation: the
//! non-zero blocks of a block-sparse matrix are dense tiles, and the GPU
//! executors multiply pairs of them with the kernels in [`crate::gemm`].

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A dense `rows × cols` block of `f64`, stored column-major (BLAS layout).
#[derive(Clone, Debug, PartialEq)]
pub struct Tile {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Tile {
    /// Allocates a zero-filled tile.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "degenerate tile {rows}x{cols}");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a tile from a column-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_data(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols);
        assert!(rows > 0 && cols > 0);
        Self { rows, cols, data }
    }

    /// Fills a tile with deterministic pseudo-random values in `[-1, 1)`.
    ///
    /// The seed should encode the tile's global coordinates so a tile's
    /// content is a pure function of its identity — this is how the on-demand
    /// generation of `B` stays consistent across the nodes that replicate a
    /// column (§4: "each tile of B is instantiated at most once per node that
    /// needs it").
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut t = Self::zeros(rows, cols);
        t.fill_random(seed);
        t
    }

    /// Overwrites every element with the same deterministic pseudo-random
    /// sequence [`Tile::random`] produces for this shape and seed.
    ///
    /// This is the in-place counterpart of [`Tile::random`] used by the
    /// buffer pool (`crate::pool::TilePool`) to regenerate tiles into
    /// recycled allocations: `pool.random(r, c, s)` and `Tile::random(r, c, s)`
    /// are bit-identical.
    pub fn fill_random(&mut self, seed: u64) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for x in &mut self.data {
            *x = rng.gen_range(-1.0..1.0);
        }
    }

    /// Consumes the tile, returning its backing buffer (for recycling).
    #[inline]
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Size in bytes of the payload (what travels on links and occupies
    /// device memory).
    #[inline]
    pub fn bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f64>()) as u64
    }

    /// Element accessor (column-major).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[c * self.rows + r]
    }

    /// Mutable element accessor (column-major).
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[c * self.rows + r]
    }

    /// Raw column-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Raw mutable column-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Frobenius norm — used for screening-based sparse shapes.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Scales every element in place.
    pub fn scale(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// `self += other`, element-wise.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tile) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "tile shape mismatch in add_assign"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Largest absolute difference to another tile of the same shape.
    pub fn max_abs_diff(&self, other: &Tile) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_bytes() {
        let t = Tile::zeros(3, 4);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 4);
        assert_eq!(t.bytes(), 96);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic]
    fn zero_dim_rejected() {
        Tile::zeros(0, 4);
    }

    #[test]
    fn column_major_layout() {
        let t = Tile::from_data(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(1, 0), 2.0);
        assert_eq!(t.get(0, 1), 3.0);
        assert_eq!(t.get(1, 1), 4.0);
    }

    #[test]
    fn random_is_pure_function_of_seed() {
        let a = Tile::random(5, 7, 123);
        let b = Tile::random(5, 7, 123);
        assert_eq!(a, b);
        let c = Tile::random(5, 7, 124);
        assert_ne!(a, c);
    }

    #[test]
    fn fill_random_matches_random() {
        let a = Tile::random(6, 9, 777);
        let mut b = Tile::from_data(6, 9, vec![f64::NAN; 54]);
        b.fill_random(777);
        assert_eq!(a, b);
    }

    #[test]
    fn into_data_roundtrip() {
        let t = Tile::from_data(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.into_data(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn random_in_unit_range() {
        let t = Tile::random(16, 16, 9);
        assert!(t.data().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Tile::from_data(2, 1, vec![1.0, 2.0]);
        let b = Tile::from_data(2, 1, vec![10.0, 20.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[11.0, 22.0]);
        a.scale(0.5);
        assert_eq!(a.data(), &[5.5, 11.0]);
    }

    #[test]
    fn frobenius() {
        let t = Tile::from_data(2, 1, vec![3.0, 4.0]);
        assert!((t.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Tile::from_data(2, 1, vec![1.0, 2.0]);
        let b = Tile::from_data(2, 1, vec![1.5, 1.0]);
        assert!((a.max_abs_diff(&b) - 1.0).abs() < 1e-12);
    }
}

//! The socket backend of the [`Wire`] seam: TCP and Unix-domain stream
//! transports carrying [`codec`] frames between worker
//! processes.
//!
//! Topology is a full mesh: every rank pair shares one duplex stream
//! connection, established during worker start-up (rank *i* dials every
//! rank *j < i* and accepts from every rank *j > i*; the first frame on a
//! data connection is a [`Ctl::Hello`](crate::codec::Ctl::Hello) identifying the dialing rank). Each
//! connection gets a dedicated reader thread that decodes frames and hands
//! data frames to the engine's pump via an in-process queue; writes are
//! serialized per connection by a mutex, so a frame is never torn.
//!
//! Backpressure is end-to-end and needs no window protocol of its own: the
//! receiving process's [`CommFabric::inject`] blocks on the destination
//! node's credit gate, which stalls the reader thread, which stops
//! draining the socket, which eventually blocks the sender's `write` —
//! standard TCP/UDS flow control doing the credit accounting across the
//! process boundary.
//!
//! [`Wire`]: bst_runtime::comm::Wire
//! [`CommFabric::inject`]: bst_runtime::comm::CommFabric::inject

use crate::codec::{self, Msg, HEADER_LEN};
use crate::NetError;
use bst_runtime::comm::{Wire, WireError, WireFrame};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

/// Upper bound on a declared payload length; anything larger is treated as
/// corruption rather than an allocation request.
const MAX_PAYLOAD: usize = 1 << 30;

/// Which stream-socket family a run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// TCP over loopback (or, in principle, a real network).
    Tcp,
    /// Unix-domain stream sockets (filesystem-addressed, loopback only).
    #[cfg(unix)]
    Uds,
}

impl Transport {
    /// Parses a CLI `--transport` value (`tcp` / `uds`).
    pub fn parse(s: &str) -> Result<Transport, String> {
        match s {
            "tcp" => Ok(Transport::Tcp),
            #[cfg(unix)]
            "uds" => Ok(Transport::Uds),
            other => Err(format!("unknown transport '{other}' (expected tcp or uds)")),
        }
    }

    /// Binds a listener: TCP picks an ephemeral loopback port (the `hint`
    /// is ignored), UDS binds the `hint` path (removing a stale socket
    /// file first).
    pub fn bind(self, hint: &str) -> Result<Listener, NetError> {
        match self {
            Transport::Tcp => Ok(Listener::Tcp(TcpListener::bind("127.0.0.1:0")?)),
            #[cfg(unix)]
            Transport::Uds => {
                let _ = std::fs::remove_file(hint);
                Ok(Listener::Uds(UnixListener::bind(hint)?, hint.to_string()))
            }
        }
    }

    /// Dials `addr` (a `host:port` for TCP, a socket path for UDS).
    pub fn dial(self, addr: &str) -> Result<Conn, NetError> {
        match self {
            Transport::Tcp => Ok(Conn::Tcp(TcpStream::connect(addr)?)),
            #[cfg(unix)]
            Transport::Uds => Ok(Conn::Uds(UnixStream::connect(addr)?)),
        }
    }
}

impl std::fmt::Display for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Transport::Tcp => write!(f, "tcp"),
            #[cfg(unix)]
            Transport::Uds => write!(f, "uds"),
        }
    }
}

/// A bound listening socket of either family.
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener plus its socket path (for cleanup).
    #[cfg(unix)]
    Uds(UnixListener, String),
}

impl Listener {
    /// The address peers should dial to reach this listener.
    pub fn local_addr(&self) -> Result<String, NetError> {
        match self {
            Listener::Tcp(l) => Ok(l.local_addr()?.to_string()),
            #[cfg(unix)]
            Listener::Uds(_, path) => Ok(path.clone()),
        }
    }

    /// Blocks until the next inbound connection.
    pub fn accept(&self) -> Result<Conn, NetError> {
        match self {
            Listener::Tcp(l) => Ok(Conn::Tcp(l.accept()?.0)),
            #[cfg(unix)]
            Listener::Uds(l, _) => Ok(Conn::Uds(l.accept()?.0)),
        }
    }
}

#[cfg(unix)]
impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Uds(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One established stream connection of either family.
#[derive(Debug)]
pub enum Conn {
    /// A TCP stream.
    Tcp(TcpStream),
    /// A Unix-domain stream.
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Conn {
    /// A second handle on the same OS connection (reader/writer split).
    pub fn try_clone(&self) -> Result<Conn, NetError> {
        match self {
            Conn::Tcp(s) => Ok(Conn::Tcp(s.try_clone()?)),
            #[cfg(unix)]
            Conn::Uds(s) => Ok(Conn::Uds(s.try_clone()?)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Uds(s) => s.flush(),
        }
    }
}

/// Encodes and writes one frame. The caller serializes concurrent writers
/// (every shared connection in this crate sits behind a mutex).
pub fn write_msg<W: Write>(w: &mut W, msg: &Msg) -> Result<(), NetError> {
    let bytes = codec::encode(msg);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from a blocking stream. Returns `Ok(None)` on a clean
/// EOF at a frame boundary; EOF mid-frame is a truncation error.
pub fn read_msg<R: Read>(r: &mut R) -> Result<Option<Msg>, NetError> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0;
    while got < HEADER_LEN {
        match r.read(&mut header[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(NetError::Codec(codec::CodecError::Truncated {
                    needed: HEADER_LEN,
                    have: got,
                }))
            }
            n => got += n,
        }
    }
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != codec::MAGIC {
        return Err(NetError::Codec(codec::CodecError::BadMagic(magic)));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
    if version != codec::VERSION {
        return Err(NetError::Codec(codec::CodecError::BadVersion(version)));
    }
    let kind = header[6];
    let len = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD {
        return Err(NetError::Codec(codec::CodecError::Overflow));
    }
    let declared_crc = u32::from_le_bytes(header[12..16].try_into().unwrap());
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            NetError::Codec(codec::CodecError::Truncated { needed: len, have: 0 })
        } else {
            NetError::from(e)
        }
    })?;
    let got_crc = codec::crc32(&payload);
    if got_crc != declared_crc {
        return Err(NetError::Codec(codec::CodecError::BadCrc {
            expected: declared_crc,
            got: got_crc,
        }));
    }
    Ok(Some(codec::decode_payload(kind, &payload)?))
}

/// Kills the current process with SIGKILL — the fault drill's stand-in for
/// a node crash. Never returns.
fn kill_self() -> ! {
    #[cfg(unix)]
    {
        let _ = std::process::Command::new("kill")
            .arg("-9")
            .arg(std::process::id().to_string())
            .status();
        // SIGKILL delivery is asynchronous; never execute past this point.
        loop {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }
    #[cfg(not(unix))]
    std::process::exit(9);
}

/// The socket implementation of the engine's [`Wire`] seam: a full mesh of
/// stream connections, per-connection reader threads feeding one inbound
/// queue, and an optional crash-drill hook.
pub struct SocketWire {
    rank: usize,
    peers: Mutex<HashMap<usize, Arc<Mutex<Conn>>>>,
    tx: Mutex<Sender<Option<WireFrame>>>,
    rx: Mutex<Receiver<Option<WireFrame>>>,
    closed: AtomicBool,
    sent: AtomicU64,
    recv: AtomicU64,
    /// Remaining data-frame sends before this process SIGKILLs itself
    /// (`< 0` disables the drill). Models a worker dying mid-broadcast
    /// forward hop: the N-th tile is never written.
    die_after: AtomicI64,
}

impl SocketWire {
    /// A wire for `rank` with no peers yet; the worker session registers
    /// mesh connections as they are established.
    pub fn new(rank: usize) -> Arc<SocketWire> {
        let (tx, rx) = channel();
        Arc::new(SocketWire {
            rank,
            peers: Mutex::new(HashMap::new()),
            tx: Mutex::new(tx),
            rx: Mutex::new(rx),
            closed: AtomicBool::new(false),
            sent: AtomicU64::new(0),
            recv: AtomicU64::new(0),
            die_after: AtomicI64::new(-1),
        })
    }

    /// This wire's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Arms the crash drill: SIGKILL this process just before its `n`-th
    /// data-frame send.
    pub fn die_after_tile_sends(&self, n: u64) {
        self.die_after.store(n as i64, Ordering::SeqCst);
    }

    /// Registers the established mesh connection to `peer` and starts its
    /// reader thread. Data frames the peer sends land in this wire's
    /// inbound queue; control frames on data connections are ignored.
    pub fn register_peer(self: &Arc<Self>, peer: usize, conn: Conn) -> Result<(), NetError> {
        let mut reader = conn.try_clone()?;
        let writer = Arc::new(Mutex::new(conn));
        self.peers.lock().unwrap().insert(peer, writer);
        let me = Arc::clone(self);
        std::thread::Builder::new()
            .name(format!("bst-net-rx-{}-{peer}", self.rank))
            .spawn(move || loop {
                match read_msg(&mut reader) {
                    Ok(Some(Msg::Wire(frame))) => {
                        me.recv.fetch_add(1, Ordering::Relaxed);
                        if me.tx.lock().unwrap().send(Some(frame)).is_err() {
                            break;
                        }
                    }
                    Ok(Some(Msg::Ctl(_))) => {}
                    // Peer closed (normally or by dying) or the stream is
                    // corrupt: either way this connection is done. The
                    // launcher, not the reader, decides what a death means.
                    Ok(None) | Err(_) => break,
                }
            })
            .map_err(|e| NetError::Io(e.to_string()))?;
        Ok(())
    }

    /// How many peers have a registered connection.
    pub fn peer_count(&self) -> usize {
        self.peers.lock().unwrap().len()
    }

    /// Data frames sent and received over this wire so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.sent.load(Ordering::Relaxed), self.recv.load(Ordering::Relaxed))
    }
}

impl Wire for SocketWire {
    fn send(&self, frame: WireFrame) -> Result<(), WireError> {
        let dst = frame.dst();
        if matches!(frame, WireFrame::Tile { .. })
            && self.die_after.load(Ordering::SeqCst) >= 0
            && self.die_after.fetch_sub(1, Ordering::SeqCst) == 1
        {
            kill_self();
        }
        let conn = self.peers.lock().unwrap().get(&dst).cloned().ok_or_else(|| WireError {
            dst,
            reason: "no connection to rank".into(),
        })?;
        let mut guard = conn.lock().unwrap();
        write_msg(&mut *guard, &Msg::Wire(frame))
            .map_err(|e| WireError { dst, reason: e.to_string() })?;
        self.sent.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn recv(&self) -> Option<WireFrame> {
        if self.closed.load(Ordering::SeqCst) {
            return None;
        }
        self.rx.lock().unwrap().recv().ok().flatten()
    }

    fn close_inbound(&self) {
        self.closed.store(true, Ordering::SeqCst);
        // Wake a blocked `recv` with the end-of-stream sentinel.
        let _ = self.tx.lock().unwrap().send(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bst_runtime::comm::TileMsg;
    use bst_runtime::data::DataKey;
    use bst_tile::Tile;

    fn tile_frame(dst: usize, seed: u64) -> WireFrame {
        WireFrame::Tile {
            dst,
            msg: TileMsg {
                key: DataKey::A(1, 2),
                payload: Arc::new(Tile::random(4, 4, seed)),
                epoch: 1,
                src: 0,
                consumers: 1,
            },
        }
    }

    #[test]
    fn tcp_pair_round_trips_frames() {
        let listener = Transport::Tcp.bind("").unwrap();
        let addr = listener.local_addr().unwrap();
        let w0 = SocketWire::new(0);
        let w1 = SocketWire::new(1);
        let dial = Transport::Tcp.dial(&addr).unwrap();
        let accepted = listener.accept().unwrap();
        w0.register_peer(1, dial).unwrap();
        w1.register_peer(0, accepted).unwrap();

        w0.send(tile_frame(1, 7)).unwrap();
        let got = w1.recv().expect("frame should arrive");
        match got {
            WireFrame::Tile { dst, msg } => {
                assert_eq!(dst, 1);
                assert_eq!(*msg.payload, Tile::random(4, 4, 7));
            }
            other => panic!("wrong frame: {other:?}"),
        }
        assert_eq!(w0.stats().0, 1);
        assert_eq!(w1.stats().1, 1);

        w1.close_inbound();
        assert!(w1.recv().is_none());
    }

    #[cfg(unix)]
    #[test]
    fn uds_pair_round_trips_frames() {
        let path = std::env::temp_dir().join(format!("bst-net-test-{}.sock", std::process::id()));
        let path = path.to_string_lossy().into_owned();
        let listener = Transport::Uds.bind(&path).unwrap();
        let w0 = SocketWire::new(0);
        let w1 = SocketWire::new(1);
        let dial = Transport::Uds.dial(&path).unwrap();
        let accepted = listener.accept().unwrap();
        w0.register_peer(1, dial).unwrap();
        w1.register_peer(0, accepted).unwrap();

        w0.send(tile_frame(1, 9)).unwrap();
        let got = w1.recv().expect("frame should arrive");
        assert!(matches!(got, WireFrame::Tile { dst: 1, .. }));
        w1.close_inbound();
    }

    #[test]
    fn send_without_route_is_typed() {
        let w = SocketWire::new(0);
        let err = w.send(tile_frame(3, 1)).unwrap_err();
        assert_eq!(err.dst, 3);
    }
}

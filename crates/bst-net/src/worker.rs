//! One rank's process lifecycle: dial the launcher, join the data mesh,
//! run the job, report the result.
//!
//! The session protocol (control connection, launcher side is
//! [`mod@crate::launch`]):
//!
//! 1. worker dials the launcher's control address and sends
//!    [`Ctl::Hello`] with its own data-listener address;
//! 2. launcher answers with [`Ctl::Config`] — the job text plus a
//!    `peers=` line listing every rank's data address (and, on a recovery
//!    rerun, a `dead_node=` line);
//! 3. the worker builds the data mesh (dial every lower rank, accept every
//!    higher rank — the first frame on a data connection is a `Hello`
//!    identifying the dialer) and sends [`Ctl::Ready`];
//! 4. launcher sends [`Ctl::Start`]; the worker runs the job with its
//!    [`SocketWire`];
//! 5. rank 0 sends [`Ctl::Result`] with the assembled C tiles; every rank
//!    sends [`Ctl::Done`] with its wire statistics (or [`Ctl::Abort`] with
//!    the rendered error).
//!
//! [`Ctl::Ping`] probes are answered by a dedicated control-reader thread
//! at any point in the session — including while the job is running — so a
//! compute-busy worker never reads as dead.

use crate::codec::{Ctl, Msg};
use crate::socket::{read_msg, write_msg, Conn, SocketWire, Transport};
use crate::NetError;
use bst_tile::Tile;
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long a worker waits for the launcher's next protocol step before
/// giving up on the session.
const PROTOCOL_TIMEOUT: Duration = Duration::from_secs(120);

/// One worker process's identity and connection parameters (parsed from
/// the `bst worker` command line).
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// This process's rank (0-based).
    pub rank: usize,
    /// Total ranks in the run.
    pub ranks: usize,
    /// The launcher's control address to dial.
    pub connect: String,
    /// Socket family of the run.
    pub transport: Transport,
    /// Crash drill: SIGKILL this process just before its n-th data-frame
    /// send (see [`SocketWire::die_after_tile_sends`]).
    pub die_after_tile_sends: Option<u64>,
}

/// Runs one worker session to completion. `job` receives the launcher's
/// config text and this rank's connected [`SocketWire`], and returns rank
/// 0's C tiles (other ranks return an empty vec) or a rendered error.
pub fn worker_session<F>(cfg: &WorkerConfig, job: F) -> Result<(), NetError>
where
    F: FnOnce(&str, Arc<SocketWire>) -> Result<Vec<(u32, u32, Tile)>, String>,
{
    // Data listener first: its address rides in the Hello.
    let data_hint = format!("{}.d{}", cfg.connect, cfg.rank);
    let data_listener = cfg.transport.bind(&data_hint)?;
    let data_addr = data_listener.local_addr()?;

    // Dial the launcher (brief retry: we may win the race with its bind).
    let control = dial_retry(cfg.transport, &cfg.connect)?;
    let control_writer = Arc::new(Mutex::new(control.try_clone()?));
    write_msg(
        &mut *control_writer.lock().unwrap(),
        &Msg::Ctl(Ctl::Hello { rank: cfg.rank as u64, addr: data_addr }),
    )?;

    // Control reader: answers Ping inline (even mid-job), forwards the
    // rest to the session's main flow.
    let (ctl_tx, ctl_rx) = channel::<Ctl>();
    {
        let writer = Arc::clone(&control_writer);
        let mut reader = control;
        std::thread::Builder::new()
            .name(format!("bst-net-ctl-{}", cfg.rank))
            .spawn(move || loop {
                match read_msg(&mut reader) {
                    Ok(Some(Msg::Ctl(Ctl::Ping(nonce)))) => {
                        let mut w = writer.lock().unwrap();
                        if write_msg(&mut *w, &Msg::Ctl(Ctl::Pong(nonce))).is_err() {
                            break;
                        }
                    }
                    Ok(Some(Msg::Ctl(ctl))) => {
                        if ctl_tx.send(ctl).is_err() {
                            break;
                        }
                    }
                    Ok(Some(Msg::Wire(_))) => {}
                    Ok(None) | Err(_) => break,
                }
            })
            .map_err(|e| NetError::Io(e.to_string()))?;
    }

    let config_text = match next_ctl(&ctl_rx)? {
        Ctl::Config(text) => text,
        other => return Err(NetError::Protocol(format!("expected Config, got {other:?}"))),
    };
    let peers = parse_peers(&config_text, cfg.ranks)?;

    let wire = SocketWire::new(cfg.rank);
    if let Some(n) = cfg.die_after_tile_sends {
        wire.die_after_tile_sends(n);
    }

    // Accept the higher ranks (each identifies itself with a Hello).
    let higher = cfg.ranks - cfg.rank - 1;
    if higher > 0 {
        let me = Arc::clone(&wire);
        let my_rank = cfg.rank;
        std::thread::Builder::new()
            .name(format!("bst-net-accept-{}", cfg.rank))
            .spawn(move || {
                for _ in 0..higher {
                    let Ok(mut conn) = data_listener.accept() else { return };
                    match read_msg(&mut conn) {
                        Ok(Some(Msg::Ctl(Ctl::Hello { rank, .. }))) if rank as usize > my_rank => {
                            let _ = me.register_peer(rank as usize, conn);
                        }
                        _ => {}
                    }
                }
            })
            .map_err(|e| NetError::Io(e.to_string()))?;
    }

    // Dial the lower ranks, identifying this rank with a Hello.
    for (peer, addr) in peers.iter().enumerate().take(cfg.rank) {
        let mut conn = dial_retry(cfg.transport, addr)?;
        write_msg(&mut conn, &Msg::Ctl(Ctl::Hello { rank: cfg.rank as u64, addr: String::new() }))?;
        wire.register_peer(peer, conn)?;
    }

    // Mesh barrier: every peer connected before declaring Ready.
    let deadline = Instant::now() + PROTOCOL_TIMEOUT;
    while wire.peer_count() < cfg.ranks - 1 {
        if Instant::now() > deadline {
            return Err(NetError::ConnectTimeout {
                expected: cfg.ranks - 1,
                connected: wire.peer_count(),
            });
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    write_msg(
        &mut *control_writer.lock().unwrap(),
        &Msg::Ctl(Ctl::Ready { rank: cfg.rank as u64 }),
    )?;

    match next_ctl(&ctl_rx)? {
        Ctl::Start => {}
        other => return Err(NetError::Protocol(format!("expected Start, got {other:?}"))),
    }

    match job(&config_text, Arc::clone(&wire)) {
        Ok(tiles) => {
            let mut w = control_writer.lock().unwrap();
            if cfg.rank == 0 {
                write_msg(&mut *w, &Msg::Ctl(Ctl::Result { tiles }))?;
            }
            let (sent_msgs, recv_msgs) = wire.stats();
            write_msg(
                &mut *w,
                &Msg::Ctl(Ctl::Done { rank: cfg.rank as u64, sent_msgs, recv_msgs }),
            )?;
            Ok(())
        }
        Err(reason) => {
            let mut w = control_writer.lock().unwrap();
            let _ = write_msg(&mut *w, &Msg::Ctl(Ctl::Abort(reason.clone())));
            Err(NetError::Job(reason))
        }
    }
}

fn next_ctl(rx: &std::sync::mpsc::Receiver<Ctl>) -> Result<Ctl, NetError> {
    match rx.recv_timeout(PROTOCOL_TIMEOUT) {
        Ok(ctl) => Ok(ctl),
        Err(RecvTimeoutError::Timeout) => {
            Err(NetError::Protocol("timed out waiting for launcher".into()))
        }
        Err(RecvTimeoutError::Disconnected) => {
            Err(NetError::Io("control connection closed".into()))
        }
    }
}

fn dial_retry(transport: Transport, addr: &str) -> Result<Conn, NetError> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match transport.dial(addr) {
            Ok(conn) => return Ok(conn),
            Err(e) if Instant::now() > deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Extracts the `peers=0@addr,1@addr,...` line the launcher appended to
/// the config text, returning the data addresses indexed by rank.
pub fn parse_peers(config_text: &str, ranks: usize) -> Result<Vec<String>, NetError> {
    let line = config_text
        .lines()
        .find_map(|l| l.strip_prefix("peers="))
        .ok_or_else(|| NetError::Protocol("config text has no peers= line".into()))?;
    let mut addrs = vec![String::new(); ranks];
    for entry in line.split(',').filter(|e| !e.is_empty()) {
        let (rank, addr) = entry
            .split_once('@')
            .ok_or_else(|| NetError::Protocol(format!("bad peers entry '{entry}'")))?;
        let rank: usize = rank
            .parse()
            .map_err(|_| NetError::Protocol(format!("bad peers rank '{rank}'")))?;
        if rank >= ranks {
            return Err(NetError::Protocol(format!("peers rank {rank} out of range")));
        }
        addrs[rank] = addr.to_string();
    }
    if addrs.iter().any(String::is_empty) {
        return Err(NetError::Protocol("peers= line is missing a rank".into()));
    }
    Ok(addrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peers_line_round_trip() {
        let text = "nodes=4\npeers=0@a:1,1@b:2,2@c:3\nseed=9";
        let addrs = parse_peers(text, 3).unwrap();
        assert_eq!(addrs, vec!["a:1", "b:2", "c:3"]);
    }

    #[test]
    fn missing_peers_is_typed() {
        assert!(matches!(
            parse_peers("nodes=4", 2),
            Err(NetError::Protocol(_))
        ));
        assert!(matches!(
            parse_peers("peers=0@a:1", 2),
            Err(NetError::Protocol(_))
        ));
    }
}

//! `bst-net` — real multi-process transport for the bst engine.
//!
//! PR 5/7 gave the engine a faithful *simulation* of a cluster: every
//! "node" is a thread and every inter-node frame a crossbeam message inside
//! one process. This crate makes the processes real. It provides:
//!
//! * [`codec`] — a compact, self-describing binary framing (length-prefixed,
//!   versioned, CRC-checked, hand-rolled — no serde) for every
//!   [`WireFrame`](bst_runtime::comm::WireFrame) and the process-lifecycle
//!   [`Ctl`] vocabulary;
//! * [`socket`] — [`SocketWire`], an implementation of the
//!   [`Wire`](bst_runtime::comm::Wire) seam over TCP or Unix-domain
//!   stream sockets, one full mesh connection per rank pair;
//! * [`worker`] — one rank's session: dial the launcher, join the data
//!   mesh, run the job against this process's private `TileStore`;
//! * [`mod@launch`] — the coordinator: spawn P worker processes, distribute
//!   the job, heartbeat them, gate the result, and on a worker death kill
//!   the survivors and rerun once with the dead rank written off
//!   (the engine's existing degraded re-plan).
//!
//! The design goal is the repo's standing guarantee: a P-process run over
//! sockets is **bit-identical** to the single-process channel transport —
//! the codec ships `f64` bit patterns, the engine's combine order is a pure
//! function of the plan, and delivery reorder is absorbed by the same
//! sort-before-combine machinery the channel transport uses.

#![warn(missing_docs)]

pub mod codec;
pub mod launch;
pub mod socket;
pub mod worker;

pub use codec::{Ctl, CodecError, Msg};
pub use launch::{launch, LaunchConfig, LaunchOutcome, WorkerStats};
pub use socket::{SocketWire, Transport};
pub use worker::{worker_session, WorkerConfig};

/// Failure of the multi-process transport or process lifecycle.
#[derive(Clone, Debug, PartialEq)]
pub enum NetError {
    /// A frame failed to decode (corruption, truncation, version skew).
    Codec(CodecError),
    /// A socket operation failed (rendered `std::io::Error`).
    Io(String),
    /// Not every worker connected within the launcher's accept window.
    ConnectTimeout {
        /// Workers expected.
        expected: usize,
        /// Workers that connected in time.
        connected: usize,
    },
    /// A worker process died (connection EOF or missed heartbeats).
    WorkerDied {
        /// The dead worker's rank.
        rank: usize,
    },
    /// A worker process could not be spawned.
    Spawn(String),
    /// A peer violated the connection protocol (wrong message, bad rank).
    Protocol(String),
    /// The job itself failed on a worker (its rendered error).
    Job(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Codec(e) => write!(f, "codec error: {e}"),
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::ConnectTimeout { expected, connected } => write!(
                f,
                "worker connect timeout: {connected}/{expected} workers connected"
            ),
            NetError::WorkerDied { rank } => write!(f, "worker rank {rank} died"),
            NetError::Spawn(e) => write!(f, "failed to spawn worker: {e}"),
            NetError::Protocol(e) => write!(f, "protocol violation: {e}"),
            NetError::Job(e) => write!(f, "job failed on worker: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

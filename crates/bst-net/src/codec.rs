//! The wire codec: a compact, self-describing binary framing for every
//! message crossing process boundaries.
//!
//! Hand-rolled (no serde), mirroring the spirit of `bst-bench`'s
//! `minijson`: the format is small enough to own outright. Every message
//! is one *frame*:
//!
//! ```text
//! ┌────────────┬─────────┬──────┬───────┬─────────────┬─────────────┐
//! │ magic u32  │ ver u16 │ kind │ flags │ payload len │ payload crc │
//! │  "BSTW"    │    1    │  u8  │  u8   │     u32     │  u32 (IEEE) │
//! └────────────┴─────────┴──────┴───────┴─────────────┴─────────────┘
//!    16-byte header, little-endian, followed by `len` payload bytes.
//! ```
//!
//! `kind` selects the payload vocabulary: the fabric's data frames
//! ([`WireFrame::Tile`] / [`WireFrame::Part`]) or the process-lifecycle
//! control messages ([`Ctl`]). The CRC covers the payload, so a torn or
//! corrupted frame is rejected as a typed [`CodecError`] — never a panic,
//! and never a silently wrong tile.
//!
//! Integers are little-endian; `f64`s travel as their IEEE-754 bit
//! patterns (`to_bits`/`from_bits`), so a decoded tile is **bit-identical**
//! to the encoded one — the transport can therefore never perturb the
//! numerics, which is what the end-to-end `== 0.0` gates verify.

use bst_runtime::comm::{CPart, TileMsg, WireFrame};
use bst_runtime::data::DataKey;
use bst_tile::{Repr, Tile};
use std::sync::Arc;

/// Frame magic: `b"BSTW"` read as a little-endian u32.
pub const MAGIC: u32 = u32::from_le_bytes(*b"BSTW");
/// Codec version carried in every header.
pub const VERSION: u16 = 1;
/// Header size in bytes.
pub const HEADER_LEN: usize = 16;

/// `kind` byte of a [`WireFrame::Tile`] frame.
pub const KIND_TILE: u8 = 1;
/// `kind` byte of a [`WireFrame::Part`] frame.
pub const KIND_PART: u8 = 2;
/// `kind` byte of a [`Ctl`] frame.
pub const KIND_CTL: u8 = 3;

/// Typed decode failure. Every malformed input maps to one of these —
/// decoding never panics (the property suite feeds corrupted and truncated
/// buffers to prove it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ends before the message does.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes it had.
        have: usize,
    },
    /// The header doesn't start with [`MAGIC`].
    BadMagic(u32),
    /// Unsupported codec version.
    BadVersion(u16),
    /// Unknown frame kind.
    BadKind(u8),
    /// Payload checksum mismatch: the frame was corrupted in flight.
    BadCrc {
        /// CRC the header declared.
        expected: u32,
        /// CRC of the received payload.
        got: u32,
    },
    /// An enum tag inside the payload is out of range.
    BadTag {
        /// Which field carried the tag.
        field: &'static str,
        /// The offending value.
        tag: u8,
    },
    /// A declared length is inconsistent (e.g. a tile bigger than its
    /// frame) — rejected before any allocation is attempted.
    Overflow,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            CodecError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            CodecError::BadVersion(v) => write!(f, "unsupported codec version {v}"),
            CodecError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            CodecError::BadCrc { expected, got } => {
                write!(f, "payload crc mismatch: header says {expected:#010x}, got {got:#010x}")
            }
            CodecError::BadTag { field, tag } => write!(f, "bad {field} tag {tag}"),
            CodecError::Overflow => write!(f, "inconsistent length in payload"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---- CRC32 (IEEE 802.3, reflected) -------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `data` — the payload checksum carried in every header.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---- Primitive writers/readers ------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64s(out: &mut Vec<u8>, vals: &[f64]) {
    out.reserve(vals.len() * 8);
    for &v in vals {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian reader over a payload slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn need(&self, n: usize) -> Result<(), CodecError> {
        if self.buf.len() - self.pos < n {
            Err(CodecError::Truncated { needed: self.pos + n, have: self.buf.len() })
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        self.need(1)?;
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        self.need(4)?;
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        Ok(v)
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        self.need(8)?;
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        Ok(v)
    }

    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, CodecError> {
        let bytes = n.checked_mul(8).ok_or(CodecError::Overflow)?;
        self.need(bytes)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let bits =
                u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
            out.push(f64::from_bits(bits));
            self.pos += 8;
        }
        Ok(out)
    }

    fn string(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        self.need(len)?;
        let s = String::from_utf8_lossy(&self.buf[self.pos..self.pos + len]).into_owned();
        self.pos += len;
        Ok(s)
    }

    fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---- Tile ----------------------------------------------------------------

const TILE_DENSE: u8 = 0;
const TILE_LOWRANK: u8 = 1;

fn put_tile(out: &mut Vec<u8>, tile: &Tile) {
    put_u32(out, tile.rows() as u32);
    put_u32(out, tile.cols() as u32);
    match tile.repr() {
        Repr::Dense(data) => {
            out.push(TILE_DENSE);
            put_f64s(out, data);
        }
        Repr::LowRank { u, v, rank } => {
            out.push(TILE_LOWRANK);
            put_u32(out, *rank as u32);
            put_f64s(out, u);
            put_f64s(out, v);
        }
    }
}

fn get_tile(r: &mut Reader<'_>) -> Result<Tile, CodecError> {
    let rows = r.u32()? as usize;
    let cols = r.u32()? as usize;
    if rows == 0 || cols == 0 {
        return Err(CodecError::Overflow);
    }
    match r.u8()? {
        TILE_DENSE => {
            let n = rows.checked_mul(cols).ok_or(CodecError::Overflow)?;
            Ok(Tile::from_data(rows, cols, r.f64s(n)?))
        }
        TILE_LOWRANK => {
            let rank = r.u32()? as usize;
            if rank > rows.min(cols) {
                return Err(CodecError::Overflow);
            }
            let u = r.f64s(rows * rank)?;
            let v = r.f64s(cols * rank)?;
            Ok(Tile::from_factors(rows, cols, u, v, rank))
        }
        tag => Err(CodecError::BadTag { field: "tile repr", tag }),
    }
}

// ---- DataKey -------------------------------------------------------------

fn put_key(out: &mut Vec<u8>, key: DataKey) {
    let (tag, a, b) = match key {
        DataKey::A(i, k) => (0u8, i, k),
        DataKey::B(k, j) => (1u8, k, j),
        DataKey::C(i, j) => (2u8, i, j),
    };
    out.push(tag);
    put_u32(out, a);
    put_u32(out, b);
}

fn get_key(r: &mut Reader<'_>) -> Result<DataKey, CodecError> {
    let tag = r.u8()?;
    let a = r.u32()?;
    let b = r.u32()?;
    match tag {
        0 => Ok(DataKey::A(a, b)),
        1 => Ok(DataKey::B(a, b)),
        2 => Ok(DataKey::C(a, b)),
        tag => Err(CodecError::BadTag { field: "data key", tag }),
    }
}

// ---- Control vocabulary --------------------------------------------------

/// Process-lifecycle control messages (launcher ⇄ worker, and the `Hello`
/// identifying a data connection in the worker mesh).
#[derive(Clone, Debug, PartialEq)]
pub enum Ctl {
    /// First message on every connection: who is this, and (on control
    /// connections) where the sender's data listener is.
    Hello {
        /// Sender's rank.
        rank: u64,
        /// The sender's data-plane listen address (empty on data
        /// connections, where `Hello` only identifies the dialing rank).
        addr: String,
    },
    /// The job description, opaque to the transport (the launcher appends
    /// `peers=` / `dead_node=` lines the worker session consumes).
    Config(String),
    /// Worker's data mesh is fully connected; ready to start.
    Ready {
        /// Sender's rank.
        rank: u64,
    },
    /// Launcher: every worker is ready — run the job.
    Start,
    /// Rank 0's assembled result tiles `(i, j, tile)`.
    Result {
        /// Non-zero C tiles in row-major key order.
        tiles: Vec<(u32, u32, Tile)>,
    },
    /// Worker finished its job (sent after `Result` on rank 0).
    Done {
        /// Sender's rank.
        rank: u64,
        /// Data frames the worker put on the wire.
        sent_msgs: u64,
        /// Data frames the worker received over the wire.
        recv_msgs: u64,
    },
    /// Liveness probe (launcher → worker), echoed back as [`Ctl::Pong`].
    Ping(u64),
    /// Heartbeat reply carrying the probe's nonce.
    Pong(u64),
    /// Fatal worker-side failure, with the rendered error.
    Abort(String),
}

const CTL_HELLO: u8 = 1;
const CTL_CONFIG: u8 = 2;
const CTL_READY: u8 = 3;
const CTL_START: u8 = 4;
const CTL_RESULT: u8 = 5;
const CTL_DONE: u8 = 6;
const CTL_PING: u8 = 7;
const CTL_PONG: u8 = 8;
const CTL_ABORT: u8 = 9;

fn put_ctl(out: &mut Vec<u8>, msg: &Ctl) {
    match msg {
        Ctl::Hello { rank, addr } => {
            out.push(CTL_HELLO);
            put_u64(out, *rank);
            put_str(out, addr);
        }
        Ctl::Config(text) => {
            out.push(CTL_CONFIG);
            put_str(out, text);
        }
        Ctl::Ready { rank } => {
            out.push(CTL_READY);
            put_u64(out, *rank);
        }
        Ctl::Start => out.push(CTL_START),
        Ctl::Result { tiles } => {
            out.push(CTL_RESULT);
            put_u32(out, tiles.len() as u32);
            for (i, j, tile) in tiles {
                put_u32(out, *i);
                put_u32(out, *j);
                put_tile(out, tile);
            }
        }
        Ctl::Done { rank, sent_msgs, recv_msgs } => {
            out.push(CTL_DONE);
            put_u64(out, *rank);
            put_u64(out, *sent_msgs);
            put_u64(out, *recv_msgs);
        }
        Ctl::Ping(nonce) => {
            out.push(CTL_PING);
            put_u64(out, *nonce);
        }
        Ctl::Pong(nonce) => {
            out.push(CTL_PONG);
            put_u64(out, *nonce);
        }
        Ctl::Abort(reason) => {
            out.push(CTL_ABORT);
            put_str(out, reason);
        }
    }
}

fn get_ctl(r: &mut Reader<'_>) -> Result<Ctl, CodecError> {
    match r.u8()? {
        CTL_HELLO => Ok(Ctl::Hello { rank: r.u64()?, addr: r.string()? }),
        CTL_CONFIG => Ok(Ctl::Config(r.string()?)),
        CTL_READY => Ok(Ctl::Ready { rank: r.u64()? }),
        CTL_START => Ok(Ctl::Start),
        CTL_RESULT => {
            let n = r.u32()? as usize;
            let mut tiles = Vec::new();
            for _ in 0..n {
                let i = r.u32()?;
                let j = r.u32()?;
                tiles.push((i, j, get_tile(r)?));
            }
            Ok(Ctl::Result { tiles })
        }
        CTL_DONE => Ok(Ctl::Done { rank: r.u64()?, sent_msgs: r.u64()?, recv_msgs: r.u64()? }),
        CTL_PING => Ok(Ctl::Ping(r.u64()?)),
        CTL_PONG => Ok(Ctl::Pong(r.u64()?)),
        CTL_ABORT => Ok(Ctl::Abort(r.string()?)),
        tag => Err(CodecError::BadTag { field: "ctl", tag }),
    }
}

// ---- Top-level messages --------------------------------------------------

/// Everything the codec can frame: a fabric data frame or a control
/// message.
#[derive(Clone, Debug)]
pub enum Msg {
    /// A data-plane frame ([`WireFrame::Tile`] / [`WireFrame::Part`]).
    Wire(WireFrame),
    /// A control-plane message.
    Ctl(Ctl),
}

fn payload_of(msg: &Msg) -> (u8, Vec<u8>) {
    let mut out = Vec::new();
    match msg {
        Msg::Wire(WireFrame::Tile { dst, msg }) => {
            put_u64(&mut out, *dst as u64);
            put_key(&mut out, msg.key);
            put_u32(&mut out, msg.epoch);
            put_u64(&mut out, msg.src as u64);
            put_u64(&mut out, msg.consumers as u64);
            put_tile(&mut out, &msg.payload);
            (KIND_TILE, out)
        }
        Msg::Wire(WireFrame::Part { dst, src, part }) => {
            put_u64(&mut out, *dst as u64);
            put_u64(&mut out, *src as u64);
            put_u64(&mut out, part.i as u64);
            put_u64(&mut out, part.j as u64);
            put_u64(&mut out, part.origin.0 as u64);
            put_u64(&mut out, part.origin.1 as u64);
            put_u64(&mut out, part.origin.2 as u64);
            put_tile(&mut out, &part.tile);
            (KIND_PART, out)
        }
        Msg::Ctl(ctl) => {
            put_ctl(&mut out, ctl);
            (KIND_CTL, out)
        }
    }
}

/// Encodes `msg` as one complete frame (header + payload).
pub fn encode(msg: &Msg) -> Vec<u8> {
    let (kind, payload) = payload_of(msg);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    put_u32(&mut out, MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind);
    out.push(0); // flags, reserved
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Decodes the payload of a frame whose header declared `kind`.
pub fn decode_payload(kind: u8, payload: &[u8]) -> Result<Msg, CodecError> {
    let mut r = Reader::new(payload);
    let msg = match kind {
        KIND_TILE => {
            let dst = r.u64()? as usize;
            let key = get_key(&mut r)?;
            let epoch = r.u32()?;
            let src = r.u64()? as usize;
            let consumers = r.u64()? as usize;
            let payload = Arc::new(get_tile(&mut r)?);
            Msg::Wire(WireFrame::Tile {
                dst,
                msg: TileMsg { key, payload, epoch, src, consumers },
            })
        }
        KIND_PART => {
            let dst = r.u64()? as usize;
            let src = r.u64()? as usize;
            let i = r.u64()? as usize;
            let j = r.u64()? as usize;
            let origin =
                (r.u64()? as usize, r.u64()? as usize, r.u64()? as usize);
            let tile = get_tile(&mut r)?;
            Msg::Wire(WireFrame::Part { dst, src, part: CPart { i, j, origin, tile } })
        }
        KIND_CTL => Msg::Ctl(get_ctl(&mut r)?),
        kind => return Err(CodecError::BadKind(kind)),
    };
    if !r.finished() {
        return Err(CodecError::Overflow);
    }
    Ok(msg)
}

/// Decodes one frame from the front of `buf`, returning the message and the
/// bytes consumed. [`CodecError::Truncated`] reports how many bytes a
/// partial frame still needs — the streaming reader's read-more signal.
pub fn decode(buf: &[u8]) -> Result<(Msg, usize), CodecError> {
    if buf.len() < HEADER_LEN {
        return Err(CodecError::Truncated { needed: HEADER_LEN, have: buf.len() });
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(buf[4..6].try_into().unwrap());
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let kind = buf[6];
    let len = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
    let declared_crc = u32::from_le_bytes(buf[12..16].try_into().unwrap());
    let total = HEADER_LEN + len;
    if buf.len() < total {
        return Err(CodecError::Truncated { needed: total, have: buf.len() });
    }
    let payload = &buf[HEADER_LEN..total];
    let got = crc32(payload);
    if got != declared_crc {
        return Err(CodecError::BadCrc { expected: declared_crc, got });
    }
    Ok((decode_payload(kind, payload)?, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_reference_vector() {
        // The classic IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn ctl_round_trip() {
        for msg in [
            Ctl::Hello { rank: 3, addr: "127.0.0.1:4000".into() },
            Ctl::Config("nodes=4\nseed=7".into()),
            Ctl::Ready { rank: 1 },
            Ctl::Start,
            Ctl::Done { rank: 2, sent_msgs: 10, recv_msgs: 12 },
            Ctl::Ping(42),
            Ctl::Pong(42),
            Ctl::Abort("device memory exhausted".into()),
        ] {
            let bytes = encode(&Msg::Ctl(msg.clone()));
            let (decoded, used) = decode(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            match decoded {
                Msg::Ctl(d) => assert_eq!(d, msg),
                other => panic!("wrong kind: {other:?}"),
            }
        }
    }

    #[test]
    fn tile_frame_bit_identity() {
        let tile = Tile::random(5, 3, 0xFEED);
        let frame = WireFrame::Tile {
            dst: 2,
            msg: TileMsg {
                key: DataKey::A(4, 9),
                payload: Arc::new(tile.clone()),
                epoch: 3,
                src: 1,
                consumers: 2,
            },
        };
        let bytes = encode(&Msg::Wire(frame));
        let (decoded, _) = decode(&bytes).unwrap();
        match decoded {
            Msg::Wire(WireFrame::Tile { dst, msg }) => {
                assert_eq!(dst, 2);
                assert_eq!(msg.key, DataKey::A(4, 9));
                assert_eq!((msg.epoch, msg.src, msg.consumers), (3, 1, 2));
                assert_eq!(*msg.payload, tile, "payload must be bit-identical");
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn truncation_reports_needed_bytes() {
        let bytes = encode(&Msg::Ctl(Ctl::Start));
        match decode(&bytes[..HEADER_LEN - 4]) {
            Err(CodecError::Truncated { needed, have }) => {
                assert_eq!(needed, HEADER_LEN);
                assert_eq!(have, HEADER_LEN - 4);
            }
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn corruption_is_a_crc_error() {
        let mut bytes = encode(&Msg::Ctl(Ctl::Ping(7)));
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(decode(&bytes), Err(CodecError::BadCrc { .. })));
    }
}

//! The launcher: spawn P worker processes, distribute the job, heartbeat
//! the fleet, collect the result — and on a worker death, recover.
//!
//! Liveness has two detectors, both bounded:
//!
//! * **connection EOF** — a SIGKILLed process's sockets are closed by the
//!   kernel, so its control connection EOFs within one scheduler tick;
//!   this is the fast path;
//! * **heartbeats** — [`Ctl::Ping`]/[`Ctl::Pong`] probes on the control
//!   connections catch a worker that is frozen but still connected; a rank
//!   whose last sign of life is older than the heartbeat timeout is
//!   declared dead.
//!
//! Recovery mirrors the engine's single-process fault path (PR 3): a dead
//! node is *written off*, not restarted in place. The launcher SIGKILLs
//! the survivors (some are inevitably blocked waiting on frames the dead
//! rank will never send), then reruns the whole fleet once with
//! `dead_node=R` appended to the config — each worker's engine builds the
//! same degraded re-plan the channel transport uses, writing off rank R's
//! GPUs and generators while keeping its A-slice broadcast duties, so the
//! rerun agrees with the fault-free run to the usual ≤ 1e-10.

use crate::codec::{Ctl, Msg};
use crate::socket::{read_msg, write_msg, Conn, Transport};
use crate::NetError;
use bst_tile::Tile;
use std::collections::HashMap;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A multi-process run: how many workers, over which transport, running
/// what job.
#[derive(Clone, Debug)]
pub struct LaunchConfig {
    /// Number of worker processes (= engine nodes).
    pub n: usize,
    /// Socket family for control and data planes.
    pub transport: Transport,
    /// Worker argv prefix (e.g. `[bst, worker]`); the launcher appends
    /// `--rank R --ranks N --connect ADDR --transport T` per worker.
    pub worker_cmd: Vec<String>,
    /// The job description shipped to every worker (opaque to the
    /// transport; the launcher appends `peers=` / `dead_node=` lines).
    pub config_text: String,
    /// How long to wait for all workers to dial in (and to become ready).
    pub connect_timeout: Duration,
    /// A rank silent for longer than this is declared dead.
    pub heartbeat_timeout: Duration,
    /// Crash drill: pass `--die-after K` to one rank on the first attempt.
    pub die_after: Option<(usize, u64)>,
    /// How many dead-node recovery reruns to attempt (the engine's
    /// single-fault model: 1).
    pub max_respawns: usize,
}

impl LaunchConfig {
    /// A config with the standing defaults: 60 s connect window, 10 s
    /// heartbeat timeout, one recovery rerun, no crash drill.
    pub fn new(
        n: usize,
        transport: Transport,
        worker_cmd: Vec<String>,
        config_text: String,
    ) -> Self {
        LaunchConfig {
            n,
            transport,
            worker_cmd,
            config_text,
            connect_timeout: Duration::from_secs(60),
            heartbeat_timeout: Duration::from_secs(10),
            die_after: None,
            max_respawns: 1,
        }
    }
}

/// One worker's wire statistics, as reported in its [`Ctl::Done`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerStats {
    /// The reporting rank.
    pub rank: usize,
    /// Data frames the rank put on the wire.
    pub sent_msgs: u64,
    /// Data frames the rank received over the wire.
    pub recv_msgs: u64,
}

/// A completed multi-process run.
#[derive(Clone, Debug)]
pub struct LaunchOutcome {
    /// Rank 0's assembled C tiles `(i, j, tile)`.
    pub tiles: Vec<(u32, u32, Tile)>,
    /// Per-rank wire statistics, sorted by rank.
    pub stats: Vec<WorkerStats>,
    /// The rank that died and was written off, when recovery ran.
    pub recovered_dead: Option<usize>,
    /// Fleet launches performed (1 = clean run, 2 = one recovery rerun).
    pub attempts: usize,
}

/// Events the per-connection reader threads forward to the launch loop.
enum Event {
    Hello { rank: usize, data_addr: String, writer: Conn },
    Ready { rank: usize },
    Result { tiles: Vec<(u32, u32, Tile)> },
    Done { stats: WorkerStats },
    Pong { rank: usize },
    Abort { reason: String },
    Eof { rank: usize },
}

static LAUNCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Spawns and coordinates a fleet of `cfg.n` workers, returning rank 0's
/// result tiles. A worker death (EOF or missed heartbeats) kills the
/// surviving fleet and reruns once with the dead rank written off; a
/// second death, a connect timeout, or a worker-side job failure surfaces
/// as a typed [`NetError`].
pub fn launch(cfg: &LaunchConfig) -> Result<LaunchOutcome, NetError> {
    match run_attempt(cfg, None) {
        Ok((tiles, stats)) => {
            Ok(LaunchOutcome { tiles, stats, recovered_dead: None, attempts: 1 })
        }
        Err(NetError::WorkerDied { rank }) if cfg.max_respawns > 0 => {
            let (tiles, stats) = run_attempt(cfg, Some(rank))?;
            Ok(LaunchOutcome { tiles, stats, recovered_dead: Some(rank), attempts: 2 })
        }
        Err(e) => Err(e),
    }
}

fn control_hint() -> String {
    let seq = LAUNCH_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir()
        .join(format!("bst-net-{}-{seq}.sock", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

fn spawn_worker(
    cfg: &LaunchConfig,
    rank: usize,
    addr: &str,
    drill: bool,
) -> Result<Child, NetError> {
    let mut cmd = Command::new(&cfg.worker_cmd[0]);
    cmd.args(&cfg.worker_cmd[1..])
        .arg("--rank")
        .arg(rank.to_string())
        .arg("--ranks")
        .arg(cfg.n.to_string())
        .arg("--connect")
        .arg(addr)
        .arg("--transport")
        .arg(cfg.transport.to_string())
        .stdin(Stdio::null());
    if drill {
        if let Some((_, k)) = cfg.die_after {
            cmd.arg("--die-after").arg(k.to_string());
        }
    }
    cmd.spawn().map_err(|e| NetError::Spawn(format!("{}: {e}", cfg.worker_cmd[0])))
}

/// Reads frames off one worker's control connection, translating them to
/// [`Event`]s until the connection closes.
fn control_reader(rank: usize, mut conn: Conn, tx: Sender<Event>) {
    loop {
        let event = match read_msg(&mut conn) {
            Ok(Some(Msg::Ctl(Ctl::Ready { rank }))) => Event::Ready { rank: rank as usize },
            Ok(Some(Msg::Ctl(Ctl::Result { tiles }))) => Event::Result { tiles },
            Ok(Some(Msg::Ctl(Ctl::Done { rank, sent_msgs, recv_msgs }))) => Event::Done {
                stats: WorkerStats { rank: rank as usize, sent_msgs, recv_msgs },
            },
            Ok(Some(Msg::Ctl(Ctl::Pong(_)))) => Event::Pong { rank },
            Ok(Some(Msg::Ctl(Ctl::Abort(reason)))) => Event::Abort { reason },
            Ok(Some(_)) => continue,
            Ok(None) | Err(_) => {
                let _ = tx.send(Event::Eof { rank });
                return;
            }
        };
        if tx.send(event).is_err() {
            return;
        }
    }
}

fn kill_fleet(children: &mut [Child]) {
    for child in children.iter_mut() {
        let _ = child.kill();
        let _ = child.wait();
    }
}

fn recv_by(rx: &Receiver<Event>, deadline: Instant) -> Result<Event, RecvTimeoutError> {
    let wait = deadline.saturating_duration_since(Instant::now());
    rx.recv_timeout(wait)
}

type ControlConns = HashMap<usize, Arc<Mutex<Conn>>>;

/// What one fleet attempt yields: rank 0's C tiles plus per-rank stats.
type AttemptOutcome = Result<(Vec<(u32, u32, Tile)>, Vec<WorkerStats>), NetError>;

fn send_to(conns: &ControlConns, rank: usize, msg: &Ctl) -> Result<(), NetError> {
    let conn = conns
        .get(&rank)
        .ok_or_else(|| NetError::Protocol(format!("no control connection to rank {rank}")))?;
    write_msg(&mut *conn.lock().unwrap(), &Msg::Ctl(msg.clone()))
}

fn run_attempt(cfg: &LaunchConfig, dead: Option<usize>) -> AttemptOutcome {
    assert!(cfg.n >= 1 && !cfg.worker_cmd.is_empty());
    let listener = cfg.transport.bind(&control_hint())?;
    let control_addr = listener.local_addr()?;

    let mut children: Vec<Child> = Vec::with_capacity(cfg.n);
    for rank in 0..cfg.n {
        let drill = dead.is_none() && cfg.die_after.is_some_and(|(r, _)| r == rank);
        match spawn_worker(cfg, rank, &control_addr, drill) {
            Ok(child) => children.push(child),
            Err(e) => {
                kill_fleet(&mut children);
                return Err(e);
            }
        }
    }

    // Accept thread: each inbound connection identifies itself with a
    // Hello, hands its writer half (and data address) to the launch loop,
    // then a dedicated reader translates the rest of its frames.
    let (tx, rx) = channel::<Event>();
    {
        let n = cfg.n;
        let tx = tx.clone();
        std::thread::Builder::new()
            .name("bst-net-accept".into())
            .spawn(move || {
                for _ in 0..n {
                    let Ok(mut conn) = listener.accept() else { return };
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        if let Ok(Some(Msg::Ctl(Ctl::Hello { rank, addr }))) = read_msg(&mut conn)
                        {
                            let rank = rank as usize;
                            let Ok(writer) = conn.try_clone() else { return };
                            if tx.send(Event::Hello { rank, data_addr: addr, writer }).is_err() {
                                return;
                            }
                            control_reader(rank, conn, tx);
                        }
                    });
                }
            })
            .map_err(|e| NetError::Io(e.to_string()))?;
    }

    let result = drive_fleet(cfg, dead, &rx);
    match &result {
        Ok(_) => {
            for child in children.iter_mut() {
                let _ = child.wait();
            }
        }
        Err(_) => kill_fleet(&mut children),
    }
    result
}

fn drive_fleet(cfg: &LaunchConfig, dead: Option<usize>, rx: &Receiver<Event>) -> AttemptOutcome {
    let mut conns: ControlConns = HashMap::new();
    let mut data_addrs: HashMap<usize, String> = HashMap::new();

    // Phase 1: all workers dial in with their data addresses.
    let deadline = Instant::now() + cfg.connect_timeout;
    while conns.len() < cfg.n {
        match recv_by(rx, deadline) {
            Ok(Event::Hello { rank, data_addr, writer }) => {
                data_addrs.insert(rank, data_addr);
                conns.insert(rank, Arc::new(Mutex::new(writer)));
            }
            Ok(Event::Eof { rank }) => return Err(NetError::WorkerDied { rank }),
            Ok(Event::Abort { reason, .. }) => return Err(NetError::Job(reason)),
            Ok(_) => {}
            Err(_) => {
                return Err(NetError::ConnectTimeout { expected: cfg.n, connected: conns.len() })
            }
        }
    }

    // Phase 2: ship the job, with the peer directory (and the write-off on
    // a recovery rerun) appended.
    let peers_line: Vec<String> = (0..cfg.n).map(|r| format!("{r}@{}", data_addrs[&r])).collect();
    let mut config = format!("{}\npeers={}", cfg.config_text.trim_end(), peers_line.join(","));
    if let Some(r) = dead {
        config.push_str(&format!("\ndead_node={r}"));
    }
    for rank in 0..cfg.n {
        send_to(&conns, rank, &Ctl::Config(config.clone()))?;
    }

    // Phase 3: wait for every data mesh to complete.
    let deadline = Instant::now() + cfg.connect_timeout;
    let mut ready = vec![false; cfg.n];
    while ready.iter().any(|r| !r) {
        match recv_by(rx, deadline) {
            Ok(Event::Ready { rank }) if rank < cfg.n => ready[rank] = true,
            Ok(Event::Eof { rank }) => return Err(NetError::WorkerDied { rank }),
            Ok(Event::Abort { reason, .. }) => return Err(NetError::Job(reason)),
            Ok(_) => {}
            Err(_) => {
                return Err(NetError::ConnectTimeout {
                    expected: cfg.n,
                    connected: ready.iter().filter(|r| **r).count(),
                })
            }
        }
    }

    // Phase 4: run, heartbeat, collect.
    for rank in 0..cfg.n {
        send_to(&conns, rank, &Ctl::Start)?;
    }
    let ping_every = (cfg.heartbeat_timeout / 4).max(Duration::from_millis(50));
    let mut last_seen = vec![Instant::now(); cfg.n];
    let mut done: HashMap<usize, WorkerStats> = HashMap::new();
    let mut tiles: Option<Vec<(u32, u32, Tile)>> = None;
    let mut nonce = 0u64;
    loop {
        if done.len() == cfg.n {
            if let Some(tiles) = tiles.take() {
                let mut stats: Vec<WorkerStats> = done.into_values().collect();
                stats.sort_by_key(|s| s.rank);
                return Ok((tiles, stats));
            }
        }
        match recv_by(rx, Instant::now() + ping_every) {
            Ok(Event::Result { tiles: t }) => {
                last_seen[0] = Instant::now();
                tiles = Some(t);
            }
            Ok(Event::Done { stats }) => {
                if stats.rank < cfg.n {
                    last_seen[stats.rank] = Instant::now();
                    done.insert(stats.rank, stats);
                }
            }
            Ok(Event::Pong { rank }) | Ok(Event::Ready { rank }) => {
                if rank < cfg.n {
                    last_seen[rank] = Instant::now();
                }
            }
            Ok(Event::Abort { reason, .. }) => return Err(NetError::Job(reason)),
            Ok(Event::Eof { rank }) => {
                // Natural EOF after Done is a worker exiting cleanly;
                // anything else is a death.
                if !done.contains_key(&rank) {
                    return Err(NetError::WorkerDied { rank });
                }
            }
            Ok(Event::Hello { .. }) => {}
            Err(RecvTimeoutError::Timeout) => {
                nonce += 1;
                for rank in 0..cfg.n {
                    if !done.contains_key(&rank) {
                        // A failed ping write means the peer is gone; let
                        // the EOF/heartbeat checks below classify it.
                        let _ = send_to(&conns, rank, &Ctl::Ping(nonce));
                    }
                }
                for (rank, seen) in last_seen.iter().enumerate() {
                    if !done.contains_key(&rank) && seen.elapsed() > cfg.heartbeat_timeout {
                        return Err(NetError::WorkerDied { rank });
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err(NetError::Protocol("event channel closed".into()))
            }
        }
    }
}

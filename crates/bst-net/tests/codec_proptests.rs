//! Property tests for the wire codec: every frame the transport can carry
//! round-trips bit-exactly (including low-rank tile payloads), and every
//! corrupted or truncated buffer decodes to a typed [`CodecError`] — never
//! a panic, never a silently wrong message.

use bst_net::codec::{self, CodecError, Ctl, Msg, HEADER_LEN};
use bst_runtime::comm::{CPart, TileMsg, WireFrame};
use bst_runtime::data::DataKey;
use bst_tile::{Repr, Tile};
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic pseudo-random tile, dense or genuinely low-rank
/// (`Repr::LowRank` factors on the wire, not a dense tile that happens to
/// have low numerical rank).
fn mk_tile(rows: usize, cols: usize, seed: u64, lowrank: bool) -> Tile {
    let val = |i: u64| (((seed.wrapping_mul(0x9E37_79B9).wrapping_add(i)) % 1000) as f64) / 7.0;
    if lowrank {
        let rank = 1 + (seed as usize) % rows.min(cols);
        let u: Vec<f64> = (0..rows * rank).map(|i| val(i as u64)).collect();
        let v: Vec<f64> = (0..cols * rank).map(|i| val(i as u64 ^ 0x55)).collect();
        Tile::from_factors(rows, cols, u, v, rank)
    } else {
        Tile::from_data(rows, cols, (0..rows * cols).map(|i| val(i as u64)).collect())
    }
}

fn mk_key(tag: u8, a: u32, b: u32) -> DataKey {
    match tag % 3 {
        0 => DataKey::A(a, b),
        1 => DataKey::B(a, b),
        _ => DataKey::C(a, b),
    }
}

/// Round-trip equality: decode must consume the whole buffer and re-encode
/// to the identical bytes (the codec has one canonical form per message).
fn assert_round_trip(msg: &Msg) -> Result<(), TestCaseError> {
    let bytes = codec::encode(msg);
    let (decoded, used) = codec::decode(&bytes)
        .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
    prop_assert_eq!(used, bytes.len(), "decode left trailing bytes");
    prop_assert_eq!(codec::encode(&decoded), bytes, "re-encode diverged");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `WireFrame::Tile` (the `BcastA` hop) round-trips for dense and
    /// low-rank payloads over every `DataKey` kind.
    #[test]
    fn tile_frames_round_trip(
        rows in 1usize..10,
        cols in 1usize..10,
        seed in 0u64..1000,
        key_tag in 0u8..3,
        epoch in 0u32..5,
        dst in 0usize..16,
        src in 0usize..16,
        consumers in 0usize..8,
        lowrank in 0u8..2,
    ) {
        let msg = Msg::Wire(WireFrame::Tile {
            dst,
            msg: TileMsg {
                key: mk_key(key_tag, rows as u32, cols as u32),
                payload: Arc::new(mk_tile(rows, cols, seed, lowrank == 1)),
                epoch,
                src,
                consumers,
            },
        });
        assert_round_trip(&msg)?;
    }

    /// `WireFrame::Part` (the `ReduceC` hop) round-trips, preserving the
    /// deterministic combine origin exactly.
    #[test]
    fn part_frames_round_trip(
        rows in 1usize..10,
        cols in 1usize..10,
        seed in 0u64..1000,
        i in 0usize..64,
        j in 0usize..64,
        origin in (0usize..8, 0usize..4, 0usize..32),
        lowrank in 0u8..2,
    ) {
        let msg = Msg::Wire(WireFrame::Part {
            dst: 0,
            src: origin.0,
            part: CPart { i, j, origin, tile: mk_tile(rows, cols, seed, lowrank == 1) },
        });
        assert_round_trip(&msg)?;
    }

    /// Every control variant round-trips, including `Result` carrying a
    /// mixed dense/low-rank tile batch and strings with newlines.
    #[test]
    fn ctl_frames_round_trip(
        rank in 0u64..64,
        nonce in 0u64..1_000_000,
        n_tiles in 0usize..4,
        seed in 0u64..1000,
        text_pick in 0usize..3,
    ) {
        let text = ["", "nodes=4\nseed=7\npeers=0@a,1@b", "tolerance=1e-3"][text_pick];
        let tiles: Vec<(u32, u32, Tile)> = (0..n_tiles)
            .map(|t| {
                (t as u32, (t * 2) as u32, mk_tile(1 + t, 2 + t, seed ^ t as u64, t % 2 == 0))
            })
            .collect();
        let ctls = [
            Ctl::Hello { rank, addr: text.into() },
            Ctl::Config(text.into()),
            Ctl::Ready { rank },
            Ctl::Start,
            Ctl::Result { tiles },
            Ctl::Done { rank, sent_msgs: nonce, recv_msgs: nonce ^ 1 },
            Ctl::Ping(nonce),
            Ctl::Pong(nonce),
            Ctl::Abort(text.into()),
        ];
        for ctl in ctls {
            assert_round_trip(&Msg::Ctl(ctl))?;
        }
    }

    /// Low-rank payloads stay low-rank across the wire: the factors, not a
    /// densified copy, are what travels.
    #[test]
    fn lowrank_repr_survives_the_wire(
        rows in 2usize..12,
        cols in 2usize..12,
        seed in 0u64..1000,
    ) {
        let tile = mk_tile(rows, cols, seed, true);
        let Repr::LowRank { rank: sent_rank, .. } = *tile.repr() else {
            panic!("mk_tile(lowrank) built a dense tile");
        };
        let msg = Msg::Wire(WireFrame::Tile {
            dst: 1,
            msg: TileMsg {
                key: DataKey::A(0, 0),
                payload: Arc::new(tile.clone()),
                epoch: 1,
                src: 0,
                consumers: 1,
            },
        });
        let bytes = codec::encode(&msg);
        let (decoded, _) = codec::decode(&bytes).expect("decode");
        let Msg::Wire(WireFrame::Tile { msg: got, .. }) = decoded else {
            panic!("kind changed in flight");
        };
        match got.payload.repr() {
            Repr::LowRank { rank, .. } => prop_assert_eq!(*rank, sent_rank),
            Repr::Dense(_) => return Err(TestCaseError::fail("tile was densified in flight")),
        }
        prop_assert_eq!(got.payload.max_abs_diff(&tile), 0.0);
    }

    /// Truncating a valid frame at *every* prefix length yields
    /// `CodecError::Truncated` with an honest `needed` count — the
    /// streaming reader's read-more signal — and never panics.
    #[test]
    fn every_truncation_is_typed(
        rows in 1usize..6,
        cols in 1usize..6,
        seed in 0u64..1000,
        lowrank in 0u8..2,
    ) {
        let msg = Msg::Wire(WireFrame::Part {
            dst: 0,
            src: 1,
            part: CPart {
                i: 3,
                j: 4,
                origin: (1, 0, 2),
                tile: mk_tile(rows, cols, seed, lowrank == 1),
            },
        });
        let bytes = codec::encode(&msg);
        for len in 0..bytes.len() {
            match codec::decode(&bytes[..len]) {
                Err(CodecError::Truncated { needed, have }) => {
                    prop_assert_eq!(have, len);
                    prop_assert!(
                        needed > len && needed <= bytes.len(),
                        "needed {} out of range for a {}-byte frame cut at {}",
                        needed, bytes.len(), len
                    );
                }
                other => {
                    return Err(TestCaseError::fail(format!(
                        "truncation at {len} gave {other:?}, expected Truncated"
                    )))
                }
            }
        }
        prop_assert!(codec::decode(&bytes).is_ok());
    }

    /// Flipping any single byte of a frame is detected as the *right* typed
    /// error for where the flip landed — magic, version, payload CRC — and
    /// decoding never panics anywhere.
    #[test]
    fn every_byte_flip_is_typed(
        seed in 0u64..1000,
        flip in 1u8..=255,
        lowrank in 0u8..2,
    ) {
        let msg = Msg::Wire(WireFrame::Tile {
            dst: 2,
            msg: TileMsg {
                key: DataKey::B(1, 2),
                payload: Arc::new(mk_tile(4, 3, seed, lowrank == 1)),
                epoch: 1,
                src: 0,
                consumers: 2,
            },
        });
        let bytes = codec::encode(&msg);
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= flip;
            let result = codec::decode(&bad);
            match pos {
                0..=3 => prop_assert!(
                    matches!(result, Err(CodecError::BadMagic(_))),
                    "magic flip at {} gave {:?}", pos, result
                ),
                4..=5 => prop_assert!(
                    matches!(result, Err(CodecError::BadVersion(_))),
                    "version flip at {} gave {:?}", pos, result
                ),
                6 | 7 | 8..=11 => {
                    // Kind, reserved flags and length flips surface as
                    // *some* typed error or a benign decode (a flags flip
                    // is ignored by design; a length flip may read as
                    // Truncated or BadCrc). The invariant here is weaker
                    // but still load-bearing: no panic, and any Ok decode
                    // re-encodes canonically.
                    if let Ok((decoded, _)) = result {
                        let _ = codec::encode(&decoded);
                    }
                }
                12..=15 => prop_assert!(
                    matches!(result, Err(CodecError::BadCrc { .. })),
                    "crc-field flip at {} gave {:?}", pos, result
                ),
                _ => prop_assert!(
                    matches!(result, Err(CodecError::BadCrc { .. })),
                    "payload flip at {} gave {:?}", pos, result
                ),
            }
        }
    }

    /// Arbitrary garbage after a correct header+CRC (a hostile or buggy
    /// peer computing CRCs over nonsense) still decodes to a typed error,
    /// never a panic — the payload parsers bounds-check every read.
    #[test]
    fn garbage_payload_with_valid_crc_never_panics(
        kind in 1u8..4,
        len in 0usize..64,
        seed in 0u64..100_000,
    ) {
        let payload: Vec<u8> =
            (0..len).map(|i| (seed.wrapping_mul(31).wrapping_add(i as u64) % 251) as u8).collect();
        let mut buf = Vec::with_capacity(HEADER_LEN + len);
        buf.extend_from_slice(&codec::MAGIC.to_le_bytes());
        buf.extend_from_slice(&codec::VERSION.to_le_bytes());
        buf.push(kind);
        buf.push(0);
        buf.extend_from_slice(&(len as u32).to_le_bytes());
        buf.extend_from_slice(&codec::crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        match codec::decode(&buf) {
            Ok((msg, used)) => {
                // Freak case: the garbage parsed. It must still have one
                // canonical form.
                prop_assert_eq!(used, buf.len());
                let _ = codec::encode(&msg);
            }
            Err(
                CodecError::Truncated { .. }
                | CodecError::BadTag { .. }
                | CodecError::Overflow
                | CodecError::BadKind(_),
            ) => {}
            Err(e) => {
                return Err(TestCaseError::fail(format!(
                    "garbage payload gave unexpected error class {e:?}"
                )))
            }
        }
    }
}

//! Platform model: Summit-like machine parameters and the GEMM time model.

/// Machine description used by the replay.
///
/// Defaults ([`Platform::summit`]) are calibrated against the paper's §5
/// environment: IBM AC922 nodes with 6 NVIDIA V100s, dual NVLink 2.0
/// (25 GB/s per direction per link) between CPUs and GPUs, 42 usable
/// POWER9 cores per node, and a dual-rail EDR InfiniBand fabric.
#[derive(Clone, Copy, Debug)]
pub struct Platform {
    /// Number of nodes.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Usable device memory per GPU (bytes).
    pub gpu_mem_bytes: u64,
    /// Hardware double-precision GEMM peak per GPU (flop/s); the *practical*
    /// peak of ~7.2 Tflop/s emerges from this times the efficiency curve.
    pub gemm_peak_flops: f64,
    /// Half-size of the tile-efficiency curve `eff = s/(s+s0)` with
    /// `s = (m·n·k)^{1/3}` — small tiles run far below peak.
    pub gemm_eff_halfsize: f64,
    /// Device HBM bandwidth (bytes/s) for the roofline memory term.
    pub hbm_bw: f64,
    /// Per-GEMM-task overhead (s): kernel launch plus the runtime's
    /// task-management cost on the GPU stream. This is what makes
    /// fine-grained tilings slow despite their lower flop counts (§5.2).
    pub kernel_latency_s: f64,
    /// Host→device bandwidth per GPU (bytes/s).
    pub h2d_bw: f64,
    /// Device→host bandwidth per GPU (bytes/s).
    pub d2h_bw: f64,
    /// Per-tile transfer overhead (s): staging, pinning and stream
    /// management per host↔device copy. Dominates for many small tiles —
    /// the paper's "GPU I/O dominates the execution time".
    pub h2d_latency_s: f64,
    /// Bandwidth of *bulk* panel staging (bytes/s): dense algorithms such
    /// as the paper's ref \[22\] move large contiguous pinned buffers and
    /// reach near-NVLink rates, unlike the per-tile staging of irregular
    /// block-sparse data.
    pub h2d_bulk_bw: f64,
    /// Node injection/reception bandwidth (bytes/s).
    pub nic_bw: f64,
    /// Network latency (s).
    pub nic_latency_s: f64,
    /// Bandwidth between ranks sharing a physical node (bytes/s): shared
    /// memory / NVLink-class, several times the NIC. Node-aware collective
    /// trees route most hops over this link.
    pub intra_bw: f64,
    /// Latency of an intra-node message (s).
    pub intra_latency_s: f64,
    /// Per-message overhead of a tile broadcast (s): activation message,
    /// matching, rendezvous and progress-engine cost per tile. The A
    /// broadcast of a finely-tiled problem sends tens of thousands of
    /// messages per node, which is what limits strong scaling (§5.2: "the
    /// cost of broadcasting tensor T ... grows with the number of nodes and
    /// thus limits the scalability").
    pub nic_msg_overhead_s: f64,
    /// Rate at which one node's CPUs generate `B` tiles (bytes/s).
    pub cpu_gen_rate: f64,
    /// Effective CPU-only GEMM rate per node (flop/s), for the MPQC
    /// comparison — the paper estimates ≈2 Tflop/s peak at ≈17% efficiency.
    pub cpu_flops_effective: f64,
}

impl Platform {
    /// Summit with the given number of nodes.
    pub fn summit(nodes: usize) -> Self {
        Self {
            nodes,
            gpus_per_node: 6,
            gpu_mem_bytes: 16 * (1 << 30),
            gemm_peak_flops: 7.8e12,
            gemm_eff_halfsize: 62.0,
            hbm_bw: 850e9,
            kernel_latency_s: 120e-6,
            h2d_bw: 12e9,
            d2h_bw: 12e9,
            h2d_latency_s: 400e-6,
            h2d_bulk_bw: 45e9,
            nic_bw: 23e9,
            nic_latency_s: 3e-6,
            intra_bw: 50e9,
            intra_latency_s: 1e-6,
            nic_msg_overhead_s: 700e-6,
            cpu_gen_rate: 20e9,
            cpu_flops_effective: 0.34e12,
        }
    }

    /// A Frontier-like node (§1: "the forthcoming Frontier exascale system
    /// is announced with four AMD Radeon GPUs per node"): 4 MI250X-class
    /// accelerators with far higher matrix peak and memory than a V100,
    /// a Slingshot-class NIC, and correspondingly faster host links. Used
    /// by the forward-projection study, not by the paper's figures.
    pub fn frontier(nodes: usize) -> Self {
        Self {
            nodes,
            gpus_per_node: 4,
            gpu_mem_bytes: 64 * (1 << 30),
            gemm_peak_flops: 48e12,
            gemm_eff_halfsize: 120.0,
            hbm_bw: 3_200e9,
            kernel_latency_s: 80e-6,
            h2d_bw: 36e9,
            d2h_bw: 36e9,
            h2d_latency_s: 250e-6,
            h2d_bulk_bw: 120e9,
            nic_bw: 100e9,
            nic_latency_s: 2e-6,
            intra_bw: 200e9,
            intra_latency_s: 1e-6,
            nic_msg_overhead_s: 400e-6,
            cpu_gen_rate: 40e9,
            cpu_flops_effective: 1.0e12,
        }
    }

    /// Summit sized by GPU count (the x-axis of Figs. 7–9); partial nodes
    /// are allowed (3 GPUs = half a node).
    pub fn summit_gpus(gpus: usize) -> Self {
        assert!(gpus >= 1);
        if gpus < 6 {
            let mut p = Self::summit(1);
            p.gpus_per_node = gpus;
            p
        } else {
            assert_eq!(gpus % 6, 0, "whole nodes beyond 6 GPUs");
            Self::summit(gpus / 6)
        }
    }

    /// Total GPUs.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Tile-size efficiency in `(0, 1)`: `s/(s+s0)` with the geometric-mean
    /// edge `s = (m·n·k)^{1/3}`.
    pub fn gemm_efficiency(&self, m: u64, n: u64, k: u64) -> f64 {
        let s = ((m as f64) * (n as f64) * (k as f64)).cbrt();
        s / (s + self.gemm_eff_halfsize)
    }

    /// Raw kernel time of one tile GEMM (roofline: compute vs HBM traffic,
    /// plus bare launch latency) — what a cuBLAS microbenchmark measures.
    pub fn gemm_kernel_time(&self, m: u64, n: u64, k: u64) -> f64 {
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let t_compute = flops / (self.gemm_peak_flops * self.gemm_efficiency(m, n, k));
        let bytes = 8.0 * (m * k + k * n + 2 * m * n) as f64;
        let t_mem = bytes / self.hbm_bw;
        t_compute.max(t_mem) + 6e-6
    }

    /// End-to-end time of one tile-GEMM *task* as executed by the runtime:
    /// the kernel plus the per-task overhead (scheduling, descriptor
    /// handling, stream synchronisation).
    pub fn gemm_time(&self, m: u64, n: u64, k: u64) -> f64 {
        self.gemm_kernel_time(m, n, k) + self.kernel_latency_s
    }

    /// Sustained *kernel* rate (flop/s) of a single GEMM of the given shape
    /// — used to validate the calibration against the paper's measured
    /// practical peak.
    pub fn gemm_rate(&self, m: u64, n: u64, k: u64) -> f64 {
        2.0 * m as f64 * n as f64 * k as f64 / self.gemm_kernel_time(m, n, k)
    }

    /// The transport cost model of this platform's NIC, in the shape the
    /// real message-passing layer consumes: calibrating
    /// [`bst_runtime::comm::CommConfig::shaper`] with this makes shaped
    /// numeric runs and [`crate::dag::replay_dag`] charge the same per-tile
    /// wire time.
    pub fn link_shaper(&self) -> bst_runtime::comm::LinkShaper {
        bst_runtime::comm::LinkShaper::nic(self.nic_bw, self.nic_latency_s)
    }

    /// The intra-node transport cost model (ranks sharing a physical node)
    /// — calibrates [`bst_runtime::comm::CommConfig::intra_shaper`] the way
    /// [`Platform::link_shaper`] calibrates the NIC.
    pub fn intra_shaper(&self) -> bst_runtime::comm::LinkShaper {
        bst_runtime::comm::LinkShaper::nic(self.intra_bw, self.intra_latency_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_has_672_tflops_of_gemm_peak_at_16_nodes() {
        // The paper: "Peak performance of GEMM for the 16 nodes is estimated
        // at 672 Tflop/s (16 × 6 GPU × 7 Tflop/s)".
        let p = Platform::summit(16);
        assert_eq!(p.total_gpus(), 96);
        let practical = p.gemm_rate(4096, 4096, 4096) * p.total_gpus() as f64;
        assert!(
            (650e12..760e12).contains(&practical),
            "practical aggregate peak {practical:.3e}"
        );
    }

    #[test]
    fn practical_peak_near_7_2_tflops_at_728() {
        // §5: measured 7.2 Tflop/s per GPU; "peak performance on a single
        // tile can be obtained for tiles of 728 × 728".
        let p = Platform::summit(1);
        let rate = p.gemm_rate(728, 728, 728);
        assert!(
            (6.4e12..7.6e12).contains(&rate),
            "728-tile rate {rate:.3e}"
        );
    }

    #[test]
    fn small_tiles_are_slow() {
        let p = Platform::summit(1);
        let small = p.gemm_rate(64, 64, 64);
        let large = p.gemm_rate(1536, 1536, 1536);
        assert!(small < 0.25 * large, "small {small:.2e} vs large {large:.2e}");
    }

    #[test]
    fn efficiency_monotone_in_size() {
        let p = Platform::summit(1);
        let mut last = 0.0;
        for s in [32u64, 128, 512, 1024, 2048] {
            let e = p.gemm_efficiency(s, s, s);
            assert!(e > last);
            assert!(e < 1.0);
            last = e;
        }
    }

    #[test]
    fn skinny_gemm_slower_than_cube_of_same_flops() {
        let p = Platform::summit(1);
        // 1024^3 vs 16 x 1024 x 64*1024 (same flops, skinny).
        let cube = p.gemm_time(1024, 1024, 1024);
        let skinny = p.gemm_time(16, 1024, 65536);
        assert!(skinny > cube);
    }

    #[test]
    fn frontier_is_much_faster_per_gpu() {
        let s = Platform::summit(1);
        let f = Platform::frontier(1);
        assert!(f.gemm_rate(2048, 2048, 2048) > 4.0 * s.gemm_rate(2048, 2048, 2048));
        assert!(f.gpu_mem_bytes > s.gpu_mem_bytes);
        assert_eq!(f.gpus_per_node, 4);
    }

    #[test]
    fn summit_gpus_partial_node() {
        let p = Platform::summit_gpus(3);
        assert_eq!(p.nodes, 1);
        assert_eq!(p.gpus_per_node, 3);
        let p = Platform::summit_gpus(108);
        assert_eq!(p.nodes, 18);
        assert_eq!(p.total_gpus(), 108);
    }

    #[test]
    #[should_panic]
    fn summit_gpus_rejects_ragged() {
        Platform::summit_gpus(10);
    }

    #[test]
    fn summit_link_shaper_matches_comm_calibration() {
        // The transport's Summit preset and the platform model must agree —
        // both describe the same dual-rail EDR NIC.
        let shaper = Platform::summit(1).link_shaper();
        let preset = bst_runtime::comm::LinkShaper::summit_nic();
        assert_eq!(shaper.bandwidth_bps, preset.bandwidth_bps);
        assert_eq!(shaper.latency_s, preset.latency_s);
        let mib = 1 << 20;
        assert!((shaper.delay_s(mib) - preset.delay_s(mib)).abs() < 1e-12);
        // Same agreement for the intra-node (shared-memory/NVLink) link.
        let intra = Platform::summit(1).intra_shaper();
        let preset = bst_runtime::comm::LinkShaper::summit_intra();
        assert_eq!(intra.bandwidth_bps, preset.bandwidth_bps);
        assert_eq!(intra.latency_s, preset.latency_s);
    }
}

//! Task-accurate DAG replay over the numeric engine's **own** lowering.
//!
//! Where [`crate::replay`] is event-coarse (one event per chunk/block, for
//! Summit-scale speed), this module replays the *exact* task DAG the numeric
//! engine executes: it calls the same inspector
//! ([`bst_contract::engine::inspector::lower`]) the engine calls, then walks
//! the lowered graph with a deterministic list scheduler over [`Platform`]
//! costs, driving a real [`bst_runtime::DeviceMemory`] per GPU lane.
//!
//! Because the DAG is *shared* — not re-derived — simulated and numeric runs
//! are structurally identical by construction: same tasks, same dataflow and
//! control-flow edges, same per-lane execution order. The replay emits a
//! labeled [`ExecReport`] in the engine's trace vocabulary, so
//! [`bst_contract::validate_trace_invariants`] gates the simulated schedule
//! with the very checker that gates numeric traces.

use std::collections::HashMap;
use std::sync::Arc;

use bst_contract::engine::inspector::{self, Op};
use bst_contract::{ExecOptions, ExecReport, ExecTraceData, ExecutionPlan, ProblemSpec};
use bst_runtime::comm::{CommEvent, LinkClass, NodeCommStats};
use bst_runtime::data::DataKey;
use bst_runtime::device::{DeviceMemory, NodeResidency};
use bst_runtime::graph::WorkerId;
use bst_runtime::trace::{aggregate_by_kind, MemSample, TaskRecord, TaskSpan, TracePhase};

use crate::platform::Platform;

/// Nanoseconds of a simulated duration in seconds.
fn ns(seconds: f64) -> u64 {
    (seconds * 1e9).round().max(0.0) as u64
}

/// Structure-only model of the engine's low-rank tile compression
/// ([`ExecOptions::compress_tol`]). The replay sees tilings, not tile
/// *content*, so it cannot know the rank a pivoted truncation would reveal;
/// instead it assumes a fixed modeled rank fraction of `min(rows, cols)` and
/// applies the same profitability rule the real compressor uses (factors
/// must strictly beat dense bytes, else the tile stays dense). With
/// `tol == 0.0` the model is the identity — every byte count matches the
/// dense replay exactly.
#[derive(Clone, Copy, Debug)]
pub struct CompressionModel {
    /// The run's truncation tolerance; `0.0` disables the model.
    pub tol: f64,
    /// Modeled rank as a fraction of `min(rows, cols)` (clamped to (0, 1]).
    pub rank_fraction: f64,
}

impl CompressionModel {
    /// The rank fraction assumed when the caller gives no calibration —
    /// roughly what a few-digit tolerance reveals on tiles with
    /// geometrically decaying spectra.
    pub const DEFAULT_RANK_FRACTION: f64 = 0.25;

    /// The model implied by `opts`: identity when compression is off,
    /// [`Self::DEFAULT_RANK_FRACTION`] otherwise.
    pub fn from_options(opts: &ExecOptions) -> Self {
        Self {
            tol: opts.compress_tol,
            rank_fraction: Self::DEFAULT_RANK_FRACTION,
        }
    }

    /// Modeled stored bytes of a `rows x cols` f64 tile.
    pub fn tile_bytes(&self, rows: u64, cols: u64) -> u64 {
        let dense = rows * cols * 8;
        if self.tol <= 0.0 {
            return dense;
        }
        let rank = ((rows.min(cols) as f64) * self.rank_fraction.clamp(0.0, 1.0)).ceil() as u64;
        // Same gate as bst_tile::lowrank::compress: a representation that
        // wouldn't strictly beat dense bytes stays dense.
        let max_profitable = (rows * cols).saturating_sub(1) / (rows + cols);
        if rank == 0 || rank > max_profitable {
            dense
        } else {
            rank * (rows + cols) * 8
        }
    }
}

/// Replays the numeric engine's lowered task DAG for `(spec, plan)` on
/// `platform`, returning a traced [`ExecReport`] in the engine's task
/// vocabulary. `opts` selects the same lowering policies the numeric engine
/// honors (control-flow edges, `GenB` fan-out); the replay is always traced
/// regardless of [`ExecOptions::tracing`], since the trace *is* its output.
///
/// Device memory is not modeled but enforced: every `LoadBlock`/`LoadA`
/// allocation goes through a real [`DeviceMemory`] with the plan's byte
/// budget, so a lowering that would OOM a real device panics here too.
///
/// # Panics
/// Panics if the replayed schedule overruns a device budget (a lowering bug
/// or an [`ExecOptions`] without the §3.2.2/§3.2.3 control edges) or if a
/// `Gemm` reaches a lane before its operands are resident.
pub fn replay_dag(
    spec: &ProblemSpec,
    plan: &ExecutionPlan,
    platform: &Platform,
    opts: &ExecOptions,
) -> ExecReport {
    let low = inspector::lower(spec, plan, opts);
    // Compressed-byte model: when the run carries a compression tolerance,
    // every A/B byte count below (wire, h2d, device residency) uses modeled
    // stored bytes; C tiles always stay dense, exactly like the engine.
    let cm = CompressionModel::from_options(opts);
    let a_bytes = |i: usize, k: usize| {
        cm.tile_bytes(spec.a.row_tiling().size(i), spec.a.col_tiling().size(k))
    };
    let b_bytes = |k: usize, j: usize| {
        cm.tile_bytes(spec.b.row_tiling().size(k), spec.b.col_tiling().size(j))
    };
    let (p, q) = (plan.config.grid.p, plan.config.grid.q);
    let n_nodes = p * q;
    let registries: Vec<Arc<NodeResidency>> =
        (0..n_nodes).map(|_| Arc::new(NodeResidency::new())).collect();
    let mut devices: HashMap<WorkerId, DeviceMemory> = HashMap::new();
    let mut mem_samples: HashMap<(usize, usize), Vec<MemSample>> = HashMap::new();

    // Deterministic list schedule. Task ids are topologically ordered (the
    // graph builder asserts dep < task), and the engine drains each lane's
    // FIFO in submission order — so walking ids in order while tracking
    // per-lane free time reproduces the engine's per-lane execution order
    // exactly, with platform costs instead of wall clock.
    let n = low.graph.len();
    let mut end = vec![0u64; n];
    let mut lane_free: HashMap<WorkerId, u64> = HashMap::new();
    let mut records = Vec::with_capacity(n);
    let (mut a_net, mut a_msgs, mut a_fwd, mut gemms, mut bgens) = (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut a_net_inter = 0u64;
    let mut comm_events: Vec<CommEvent> = Vec::new();
    let mut comm_stats = vec![NodeCommStats::default(); n_nodes];

    for id in 0..n {
        let op = low.graph.payload(id);
        let w = low.graph.worker(id);
        let ready_ns = low.graph.deps(id).iter().map(|&d| end[d]).max().unwrap_or(0);
        let start_ns = ready_ns.max(*lane_free.entry(w).or_insert(0));

        let mut sample_after: Option<(usize, usize)> = None;
        let dur = match op {
            Op::SendA { i, k, to } => {
                let bytes = a_bytes(*i as usize, *k as usize);
                a_net += bytes;
                if low.topology.link_class(w.node, *to) == LinkClass::Inter {
                    a_net_inter += bytes;
                }
                a_msgs += 1;
                if w.node != inspector::owner_of(p, q, *i as usize, *k as usize) {
                    a_fwd += 1;
                }
                // The sender is busy only for the per-message software
                // overhead; the wire time is charged to the RecvA task.
                ns(platform.nic_msg_overhead_s)
            }
            Op::RecvA { i, k, from } => {
                // The shaped transfer: latency plus bytes over the link the
                // hop actually crosses (NIC vs intra-node) — the same
                // per-class model bst_runtime::comm::LinkShaper applies.
                let bytes = a_bytes(*i as usize, *k as usize);
                let shaper = match low.topology.link_class(*from, w.node) {
                    LinkClass::Inter => platform.link_shaper(),
                    _ => platform.intra_shaper(),
                };
                ns(shaper.delay_s(bytes))
            }
            Op::GenB { k, j } => {
                bgens += 1;
                let bytes = spec.b.tile_bytes(*k as usize, *j as usize);
                ns(bytes as f64 / platform.cpu_gen_rate)
            }
            Op::LoadBlock { node, gpu, block } => {
                let dev = devices.entry(w).or_insert_with(|| {
                    DeviceMemory::new(*gpu, plan.config.device.gpu_mem_bytes, registries[*node].clone())
                });
                let bp = &plan.nodes[*node].gpus[*gpu].blocks[*block];
                let row = plan.nodes[*node].grid_row;
                let (mut bytes, mut tiles) = (0u64, 0u64);
                for (k, j) in inspector::block_b_tiles(spec, &bp.block) {
                    let sz = b_bytes(k, j);
                    dev.load(DataKey::B(k as u32, j as u32), sz)
                        .expect("simulated device OOM on LoadBlock");
                    bytes += sz;
                    tiles += 1;
                }
                for (i, j) in inspector::block_c_tiles(spec, &bp.block, row, p) {
                    let sz = spec.a.row_tiling().size(i) * spec.b.col_tiling().size(j) * 8;
                    dev.alloc(DataKey::C(i as u32, j as u32), sz)
                        .expect("simulated device OOM on C allocation");
                }
                sample_after = Some((*node, *gpu));
                ns(bytes as f64 / platform.h2d_bw + tiles as f64 * platform.h2d_latency_s)
            }
            Op::LoadA { i, k } => {
                let dev = devices.get_mut(&w).expect("LoadA after LoadBlock on its lane");
                let bytes = a_bytes(*i as usize, *k as usize);
                dev.load(DataKey::A(*i, *k), bytes)
                    .expect("simulated device OOM on LoadA");
                sample_after = Some((w.node, w.lane - 1));
                ns(bytes as f64 / platform.h2d_bw + platform.h2d_latency_s)
            }
            Op::Gemm { i, k, j } => {
                let dev = &devices[&w];
                assert!(dev.is_resident(DataKey::A(*i, *k)), "A({i},{k}) not resident");
                assert!(dev.is_resident(DataKey::B(*k, *j)), "B({k},{j}) not resident");
                assert!(dev.is_resident(DataKey::C(*i, *j)), "C({i},{j}) not resident");
                gemms += 1;
                let m = spec.a.row_tiling().size(*i as usize);
                let nn = spec.b.col_tiling().size(*j as usize);
                let kk = spec.a.col_tiling().size(*k as usize);
                ns(platform.gemm_time(m, nn, kk))
            }
            Op::EvictChunk { node, gpu, block, chunk } => {
                let dev = devices.get_mut(&w).expect("evict on a loaded lane");
                let bp = &plan.nodes[*node].gpus[*gpu].blocks[*block];
                for &(i, k) in &bp.chunks[*chunk].tiles {
                    dev.evict(DataKey::A(i, k), false);
                }
                sample_after = Some((*node, *gpu));
                0
            }
            Op::FlushBlock { node, gpu, block } => {
                let dev = devices.get_mut(&w).expect("flush on a loaded lane");
                let bp = &plan.nodes[*node].gpus[*gpu].blocks[*block];
                let row = plan.nodes[*node].grid_row;
                for (k, j) in inspector::block_b_tiles(spec, &bp.block) {
                    dev.evict(DataKey::B(k as u32, j as u32), false);
                }
                let (mut bytes, mut tiles) = (0u64, 0u64);
                for (i, j) in inspector::block_c_tiles(spec, &bp.block, row, p) {
                    dev.evict(DataKey::C(i as u32, j as u32), true);
                    bytes += spec.a.row_tiling().size(i) * spec.b.col_tiling().size(j) * 8;
                    tiles += 1;
                }
                sample_after = Some((*node, *gpu));
                ns(bytes as f64 / platform.d2h_bw + tiles as f64 * platform.h2d_latency_s)
            }
            Op::ReduceC { node } => {
                // The combine itself is a handful of tile additions (HBM
                // bound, negligible next to the wire); the forwarding of one
                // combined partial per key up the reduction tree is what
                // costs — charged on the sender, over the link class of the
                // tree edge.
                let rn = &low.reduce.as_ref().expect("ReduceC lowered without a tree")[*node];
                match rn.parent {
                    None => 0,
                    Some(parent) => {
                        let shaper = match low.topology.link_class(*node, parent) {
                            LinkClass::Inter => platform.link_shaper(),
                            _ => platform.intra_shaper(),
                        };
                        let mut t = 0.0;
                        for &(i, j) in &rn.keys {
                            let bytes =
                                spec.a.row_tiling().size(i) * spec.b.col_tiling().size(j) * 8;
                            t += platform.nic_msg_overhead_s + shaper.delay_s(bytes);
                        }
                        ns(t)
                    }
                }
            }
        };

        let end_ns = start_ns + dur;
        end[id] = end_ns;
        lane_free.insert(w, end_ns);
        match op {
            Op::SendA { i, k, to } => {
                let bytes = a_bytes(*i as usize, *k as usize);
                let class = low.topology.link_class(w.node, *to);
                comm_stats[w.node].sent_bytes += bytes;
                comm_stats[w.node].sent_msgs += 1;
                if class == LinkClass::Inter {
                    comm_stats[w.node].inter_sent_bytes += bytes;
                    comm_stats[w.node].inter_sent_msgs += 1;
                }
                comm_events.push(CommEvent {
                    phase: TracePhase::Sent,
                    key: DataKey::A(*i, *k),
                    src: w.node,
                    dst: *to,
                    class,
                    bytes,
                    epoch: 1,
                    t_ns: end_ns,
                });
            }
            Op::RecvA { i, k, from } => {
                let bytes = a_bytes(*i as usize, *k as usize);
                let class = low.topology.link_class(*from, w.node);
                comm_stats[w.node].recv_bytes += bytes;
                comm_stats[w.node].recv_msgs += 1;
                if class == LinkClass::Inter {
                    comm_stats[w.node].inter_recv_bytes += bytes;
                    comm_stats[w.node].inter_recv_msgs += 1;
                }
                comm_events.push(CommEvent {
                    phase: TracePhase::Received,
                    key: DataKey::A(*i, *k),
                    src: *from,
                    dst: w.node,
                    class,
                    bytes,
                    epoch: 1,
                    t_ns: end_ns,
                });
            }
            Op::ReduceC { node } => {
                let rn = &low.reduce.as_ref().expect("ReduceC lowered without a tree")[*node];
                if let Some(parent) = rn.parent {
                    let class = low.topology.link_class(*node, parent);
                    for &(i, j) in &rn.keys {
                        let bytes =
                            spec.a.row_tiling().size(i) * spec.b.col_tiling().size(j) * 8;
                        comm_stats[*node].sent_bytes += bytes;
                        comm_stats[*node].sent_msgs += 1;
                        comm_stats[parent].recv_bytes += bytes;
                        comm_stats[parent].recv_msgs += 1;
                        if class == LinkClass::Inter {
                            comm_stats[*node].inter_sent_bytes += bytes;
                            comm_stats[*node].inter_sent_msgs += 1;
                            comm_stats[parent].inter_recv_bytes += bytes;
                            comm_stats[parent].inter_recv_msgs += 1;
                        }
                        for phase in [TracePhase::Sent, TracePhase::Received] {
                            comm_events.push(CommEvent {
                                phase,
                                key: DataKey::C(i as u32, j as u32),
                                src: *node,
                                dst: parent,
                                class,
                                bytes,
                                epoch: 0,
                                t_ns: end_ns,
                            });
                        }
                    }
                }
            }
            _ => {}
        }
        if let Some(key) = sample_after {
            mem_samples
                .entry(key)
                .or_default()
                .push((end_ns, devices[&w].used()));
        }
        records.push(TaskRecord {
            task: id,
            kind: op.kind(),
            detail: op.detail(),
            worker: w,
            span: TaskSpan { ready_ns, start_ns, end_ns },
            attempts: 1,
        });
    }

    let mut dev_stats: Vec<_> = devices
        .iter()
        .map(|(w, dev)| ((w.node, w.lane - 1), dev.stats()))
        .collect();
    dev_stats.sort_by_key(|(k, _)| *k);
    let mut samples: Vec<_> = mem_samples.into_iter().collect();
    samples.sort_by_key(|(k, _)| *k);
    let total_ns = end.iter().copied().max().unwrap_or(0);
    let metrics = aggregate_by_kind(&records);
    ExecReport {
        devices: dev_stats,
        a_network_bytes: a_net,
        a_network_inter_bytes: a_net_inter,
        a_messages: a_msgs,
        a_forward_messages: a_fwd,
        gemm_tasks: gemms,
        b_tiles_generated: bgens,
        metrics,
        comm: comm_stats,
        trace: Some(ExecTraceData {
            records,
            mem_samples: samples,
            comm_events,
            total_ns,
        }),
        ..ExecReport::default()
    }
}

/// The simulated makespan of a [`replay_dag`] report, in seconds.
pub fn makespan_s(report: &ExecReport) -> f64 {
    report.trace.as_ref().map(|t| t.total_ns as f64 / 1e9).unwrap_or(0.0)
}

//! Replay of the stationary-C plan (the paper's dense-square comparator,
//! ref \[22\]) on the same [`Platform`] model as the main algorithm — used to
//! reproduce the paper's observation that a dense-oriented algorithm
//! reaches 80–90% of GEMM peak on square dense problems where the
//! B-stationary algorithm reaches ~30–50%, while the roles invert on the
//! CCSD shape (B 100× larger than C).

use crate::platform::Platform;
use bst_contract::stationary_c::StationaryCPlan;
use bst_contract::ProblemSpec;

/// Timing/volume report of a stationary-C replay.
#[derive(Clone, Debug, Default)]
pub struct StationaryCReport {
    /// End-to-end simulated time (s).
    pub makespan_s: f64,
    /// Total flops.
    pub total_flops: u128,
    /// Total GEMM tasks.
    pub total_tasks: u64,
    /// Host→device bytes (A + B streams).
    pub h2d_bytes: u64,
}

impl StationaryCReport {
    /// Aggregate sustained Tflop/s.
    pub fn tflops(&self) -> f64 {
        self.total_flops as f64 / self.makespan_s / 1e12
    }
}

/// Replays a stationary-C plan: per GPU, blocks run back-to-back; within a
/// block, k-chunks stream through the host↔device link with a depth-1
/// prefetch window while GEMM chains accumulate into the resident C; the
/// C rectangle flushes once at block end. Remote A/B panels arrive over the
/// node NIC (2-d broadcast: A along grid rows, B along grid columns).
pub fn simulate_stationary_c(
    spec: &ProblemSpec,
    plan: &StationaryCPlan,
    platform: &Platform,
) -> StationaryCReport {
    let (p, q) = (plan.config.grid.p, plan.config.grid.q);
    assert_eq!(
        platform.nodes * platform.gpus_per_node,
        p * q * plan.config.device.gpus_per_node,
        "platform GPU count must match the plan grid"
    );

    let mut report = StationaryCReport::default();
    let mut makespan = 0.0f64;

    for (ni, gpu_plans) in plan.nodes.iter().enumerate() {
        let (pr, pc) = (ni / q, ni % q);
        // Remote volume for the node: A tiles owned by other grid columns,
        // B tiles owned by other grid rows (both 2D-cyclic).
        let mut node_remote = 0u64;
        let mut node_remote_tiles = 0u64;
        let mut seen_a = std::collections::HashSet::new();
        let mut seen_b = std::collections::HashSet::new();
        for gp in gpu_plans {
            for block in &gp.blocks {
                for chunk in &block.k_chunks {
                    for &k in &chunk.ks {
                        for &i in &block.rows {
                            if spec.a.shape().is_nonzero(i as usize, k as usize)
                                && (k as usize) % q != pc
                                && seen_a.insert((i, k))
                            {
                                node_remote += spec.a.tile_area(i as usize, k as usize) * 8;
                                node_remote_tiles += 1;
                            }
                        }
                        for &j in &block.cols {
                            if spec.b.shape().is_nonzero(k as usize, j as usize)
                                && (k as usize) % p != pr
                                && seen_b.insert((k, j))
                            {
                                node_remote += spec.b.row_tiling().size(k as usize)
                                    * spec.b.col_tiling().size(j as usize)
                                    * 8;
                                node_remote_tiles += 1;
                            }
                        }
                    }
                }
            }
        }
        // Dense panels travel as large aggregated messages; only the bare
        // network latency applies per tile, not the block-sparse runtime's
        // per-tile activation overhead.
        let node_net_time = node_remote as f64 / platform.nic_bw
            + node_remote_tiles as f64 * platform.nic_latency_s;

        let g_active = gpu_plans.iter().filter(|g| !g.blocks.is_empty()).count().max(1);
        let _ = g_active;

        for gp in gpu_plans {
            let mut link_free = 0.0f64;
            let mut flush_done = 0.0f64;
            let mut compute_done: Vec<f64> = Vec::new();
            let mut streamed_cum = 0u64;
            let total_streamed: u64 = gp
                .blocks
                .iter()
                .flat_map(|b| b.k_chunks.iter().map(|c| c.a_bytes + c.b_bytes))
                .sum();
            for block in &gp.blocks {
                // C allocated on device (no h2d).
                let mut last_compute = flush_done.max(link_free);
                for chunk in &block.k_chunks {
                    let n = compute_done.len();
                    streamed_cum += chunk.a_bytes + chunk.b_bytes;
                    let arrival = if node_remote > 0 && total_streamed > 0 {
                        (streamed_cum as f64 / total_streamed as f64) * node_net_time
                    } else {
                        0.0
                    };
                    let window = if n >= 2 { compute_done[n - 2] } else { 0.0 };
                    let tstart = link_free.max(window).max(arrival).max(flush_done);
                    // Dense panels stage as a few large contiguous pinned
                    // buffers ([22]); no per-tile staging cost.
                    let load_s =
                        (chunk.a_bytes + chunk.b_bytes) as f64 / platform.h2d_bulk_bw + 40e-6;
                    let tdone = tstart + load_s;
                    link_free = tdone;
                    report.h2d_bytes += chunk.a_bytes + chunk.b_bytes;

                    // Compute: all GEMMs of the chunk.
                    let mut compute_s = 0.0;
                    for &k in &chunk.ks {
                        for &i in &block.rows {
                            if !spec.a.shape().is_nonzero(i as usize, k as usize) {
                                continue;
                            }
                            let m = spec.a.row_tiling().size(i as usize);
                            let kk = spec.a.col_tiling().size(k as usize);
                            for &j in &block.cols {
                                if spec.b.shape().is_nonzero(k as usize, j as usize)
                                    && spec.c_kept(i as usize, j as usize)
                                {
                                    let nn = spec.b.col_tiling().size(j as usize);
                                    compute_s += platform.gemm_time(m, nn, kk);
                                    report.total_flops += (2 * m * nn * kk) as u128;
                                    report.total_tasks += 1;
                                }
                            }
                        }
                    }
                    let prev = compute_done.last().copied().unwrap_or(0.0);
                    let cstart = tdone.max(prev);
                    let cdone = cstart + compute_s;
                    compute_done.push(cdone);
                    last_compute = cdone;
                }
                // Flush the C rectangle once.
                let c_tiles = (block.rows.len() * block.cols.len()) as f64;
                let _ = c_tiles;
                let flush_s = block.c_bytes as f64 / platform.h2d_bulk_bw + 40e-6;
                flush_done = last_compute.max(link_free) + flush_s;
                link_free = flush_done;
            }
            makespan = makespan.max(flush_done);
        }
    }
    report.makespan_s = makespan.max(1e-12);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bst_contract::{DeviceConfig, GridConfig, PlannerConfig};
    use bst_sparse::generate::{generate, SyntheticParams};

    fn spec(m: u64, nk: u64, density: f64, tmin: u64, tmax: u64) -> ProblemSpec {
        let prob = generate(&SyntheticParams {
            m,
            n: nk,
            k: nk,
            density,
            tile_min: tmin,
            tile_max: tmax,
            seed: 3,
        });
        ProblemSpec::new(prob.a, prob.b, None)
    }

    fn config(platform: &Platform, p: usize) -> PlannerConfig {
        PlannerConfig::paper(
            GridConfig::from_nodes(platform.nodes, p),
            DeviceConfig {
                gpus_per_node: platform.gpus_per_node,
                gpu_mem_bytes: platform.gpu_mem_bytes,
            },
        )
    }

    #[test]
    fn stationary_c_dominates_on_dense_square() {
        // The paper's [22] comparison: on the square dense 48k problem the
        // dense-oriented algorithm should approach 80-90% of the 672
        // Tflop/s aggregate peak, far above the B-stationary algorithm's
        // ~30%. [22] picks its own *uniform* tiling for a dense problem
        // (the irregular tiling is a constraint of the chemistry data, not
        // of the dense benchmark).
        use bst_sparse::MatrixStructure;
        use bst_tile::Tiling;
        let t = Tiling::uniform(48_000, 1_600);
        let s = ProblemSpec::new(
            MatrixStructure::dense(t.clone(), t.clone()),
            MatrixStructure::dense(t.clone(), t),
            None,
        );
        let platform = Platform::summit(16);
        let plan = StationaryCPlan::build(&s, config(&platform, 4)).unwrap();
        let r = simulate_stationary_c(&s, &plan, &platform);
        assert!(
            (400.0..700.0).contains(&r.tflops()),
            "stationary-C dense square: {} Tflop/s",
            r.tflops()
        );
        // The B-stationary algorithm on the same (irregularly tiled, as in
        // Fig. 2) problem reaches far less.
        let irregular = spec(48_000, 48_000, 1.0, 512, 2048);
        let device = DeviceConfig {
            gpus_per_node: 6,
            gpu_mem_bytes: platform.gpu_mem_bytes,
        };
        let (_p, bstat) = crate::replay::simulate_best_p(&irregular, &platform, device).unwrap();
        assert!(
            r.tflops() > 1.5 * bstat.tflops(),
            "stationary-C {} vs B-stationary {}",
            r.tflops(),
            bstat.tflops()
        );
    }

    #[test]
    fn b_stationary_circulates_less_on_ccsd_shape() {
        // The paper's §3.1 design rationale is about *network circulation*:
        // "to minimize network traffic, we need to avoid circulating the
        // largest of the matrices, so B will be stationary." On a square
        // grid the stationary-C algorithm must circulate most of the huge
        // B; the B-stationary algorithm circulates only the small A.
        let s = spec(2_000, 100_000, 0.3, 256, 1024);
        let platform = Platform::summit(4);
        // Square-ish grid (p = 2, q = 2) — what a dense 2-d algorithm uses.
        let splan = StationaryCPlan::build(&s, config(&platform, 2)).unwrap();
        let mut sc_remote = 0u64;
        // Recompute the stationary-C network volume the way the replay does.
        let (p, q) = (2usize, 2usize);
        for (ni, gpu_plans) in splan.nodes.iter().enumerate() {
            let (pr, pc) = (ni / q, ni % q);
            let mut seen = std::collections::HashSet::new();
            for gp in gpu_plans {
                for block in &gp.blocks {
                    for chunk in &block.k_chunks {
                        for &k in &chunk.ks {
                            for &j in &block.cols {
                                if s.b.shape().is_nonzero(k as usize, j as usize)
                                    && (k as usize) % p != pr
                                    && seen.insert((k, j, pc))
                                {
                                    sc_remote += s.b.row_tiling().size(k as usize)
                                        * s.b.col_tiling().size(j as usize)
                                        * 8;
                                }
                            }
                        }
                    }
                }
            }
        }
        // B-stationary with p = 1 circulates only A (and never B).
        let device = DeviceConfig {
            gpus_per_node: 6,
            gpu_mem_bytes: platform.gpu_mem_bytes,
        };
        let config_b = PlannerConfig::paper(GridConfig::from_nodes(4, 1), device);
        let bplan = crate::replay::simulate(
            &s,
            &bst_contract::ExecutionPlan::build(&s, config_b).unwrap(),
            &platform,
        );
        assert!(
            sc_remote > 5 * bplan.a_network_bytes,
            "stationary-C circulates {} B-bytes vs B-stationary's {} A-bytes",
            sc_remote,
            bplan.a_network_bytes
        );
    }

    #[test]
    fn flops_match_task_enumeration() {
        let s = spec(1_000, 4_000, 0.5, 64, 256);
        let platform = Platform::summit(1);
        let plan = StationaryCPlan::build(&s, config(&platform, 1)).unwrap();
        let r = simulate_stationary_c(&s, &plan, &platform);
        let mut flops = 0u128;
        plan.for_each_task(&s, |i, k, j| {
            flops += (2
                * s.a.row_tiling().size(i as usize)
                * s.b.col_tiling().size(j as usize)
                * s.a.col_tiling().size(k as usize)) as u128;
        });
        assert_eq!(r.total_flops, flops);
        assert_eq!(
            flops,
            bst_sparse::structure::product_flops(&s.a, &s.b)
        );
    }
}

//! Resource-timeline replay of an execution plan on a [`Platform`].
//!
//! Model (one timeline per resource, events at chunk/block granularity):
//!
//! * each GPU owns a host↔device **link** (block loads, chunk loads and C
//!   flushes serialise on it) and a **compute stream** (chunk GEMM batches
//!   serialise on it);
//! * chunk *n*'s transfer may start only after chunk *n−2*'s compute is done
//!   (the §3.2.3 prefetch window: one chunk computing, one prefetching);
//! * a block's B/C region transfers blockingly after the previous block
//!   flushed (§3.2.2) and after the node CPUs generated its B tiles (shared
//!   generation rate);
//! * remote `A` tiles arrive over the node NIC at its bandwidth, shared by
//!   the node's GPUs, in plan order (the runtime broadcasts in the
//!   background, §3.2.4);
//! * finished `C` columns owned by other nodes drain over the NIC after the
//!   last flush.

use crate::platform::Platform;
use bst_contract::plan::ExecutionPlan;
use bst_contract::ProblemSpec;

/// Result of a simulated execution.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// End-to-end simulated time (s).
    pub makespan_s: f64,
    /// Total executed flops.
    pub total_flops: u128,
    /// Total tile-GEMM tasks.
    pub total_tasks: u64,
    /// Sum over GPUs of busy compute time (s).
    pub compute_busy_s: f64,
    /// Largest single-GPU compute time — the compute critical path (s).
    pub compute_bound_s: f64,
    /// Largest single-GPU link time — the transfer critical path (s).
    pub h2d_bound_s: f64,
    /// Largest per-node network time (s).
    pub nic_bound_s: f64,
    /// Largest per-node B-generation time (s).
    pub bgen_bound_s: f64,
    /// Host→device bytes (A chunks + B blocks).
    pub h2d_bytes: u64,
    /// Remote A bytes crossing the network.
    pub a_network_bytes: u64,
    /// Per-node completion times (s).
    pub node_done_s: Vec<f64>,
}

impl SimReport {
    /// Aggregate sustained performance (flop/s).
    pub fn flops_per_s(&self) -> f64 {
        self.total_flops as f64 / self.makespan_s
    }

    /// Aggregate sustained performance in Tflop/s.
    pub fn tflops(&self) -> f64 {
        self.flops_per_s() / 1e12
    }

    /// Per-GPU sustained performance in Tflop/s.
    pub fn tflops_per_gpu(&self, total_gpus: usize) -> f64 {
        self.tflops() / total_gpus as f64
    }
}

struct ChunkCost {
    h2d_bytes: u64,
    n_tiles: u64,
    remote_bytes: u64,
    compute_s: f64,
    flops: u128,
    tasks: u64,
}

struct BlockCost {
    b_bytes: u64,
    b_tiles: u64,
    c_bytes: u64,
    c_tiles: u64,
    chunks: Vec<ChunkCost>,
}

/// Replays `plan` for `spec` on `platform`, returning timing and volume
/// statistics.
///
/// # Panics
/// Panics if the platform does not match the plan's grid/device
/// configuration.
pub fn simulate(spec: &ProblemSpec, plan: &ExecutionPlan, platform: &Platform) -> SimReport {
    simulate_traced(spec, plan, platform, None)
}

/// Busy intervals of one simulated GPU.
#[derive(Clone, Debug, Default)]
pub struct GpuTrace {
    /// Node index.
    pub node: usize,
    /// GPU index within the node.
    pub gpu: usize,
    /// Compute intervals `(start, end)` in seconds.
    pub compute: Vec<(f64, f64)>,
    /// Host↔device transfer intervals `(start, end)`.
    pub transfer: Vec<(f64, f64)>,
}

impl GpuTrace {
    /// Fraction of `[0, makespan]` this GPU spent computing.
    pub fn compute_utilization(&self, makespan: f64) -> f64 {
        self.compute.iter().map(|(s, e)| e - s).sum::<f64>() / makespan
    }
}

/// Execution trace of a replay: one [`GpuTrace`] per GPU.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Per-GPU busy intervals.
    pub gpus: Vec<GpuTrace>,
}

impl Trace {
    /// Renders an ASCII Gantt chart (`#` compute, `-` transfer) with
    /// `width` columns spanning `[0, makespan]`.
    pub fn gantt(&self, makespan: f64, width: usize) -> String {
        let mut out = String::new();
        for g in &self.gpus {
            let mut row = vec![' '; width];
            let paint = |row: &mut Vec<char>, iv: &[(f64, f64)], ch: char| {
                for &(s, e) in iv {
                    let a = ((s / makespan) * width as f64) as usize;
                    let b = (((e / makespan) * width as f64).ceil() as usize).min(width);
                    for c in row.iter_mut().take(b).skip(a.min(width.saturating_sub(1))) {
                        *c = ch;
                    }
                }
            };
            paint(&mut row, &g.transfer, '-');
            paint(&mut row, &g.compute, '#');
            out.push_str(&format!(
                "n{:02}g{} |{}| {:4.0}%\n",
                g.node,
                g.gpu,
                row.iter().collect::<String>(),
                g.compute_utilization(makespan) * 100.0
            ));
        }
        out
    }
}

/// [`simulate`] with optional trace collection (pass `Some(&mut trace)`).
pub fn simulate_traced(
    spec: &ProblemSpec,
    plan: &ExecutionPlan,
    platform: &Platform,
    mut trace: Option<&mut Trace>,
) -> SimReport {
    let (p, q) = (plan.config.grid.p, plan.config.grid.q);
    assert_eq!(
        platform.nodes * platform.gpus_per_node,
        p * q * plan.config.device.gpus_per_node,
        "platform GPU count must match the plan grid"
    );
    let g = plan.config.device.gpus_per_node;

    let mut report = SimReport::default();
    let mut node_done = Vec::with_capacity(plan.nodes.len());

    for (node_idx, node) in plan.nodes.iter().enumerate() {
        // ---- Gather per-GPU costs ----------------------------------------
        // A tile crosses the network once per node (the runtime keeps the
        // host copy until its last consumer): `node_seen` dedups the node's
        // network volume, while per-GPU dedup (`gpu_seen`) tracks each GPU's
        // progress through its own unique remote needs.
        let mut node_seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        let mut node_remote_total = 0u64;
        let mut node_remote_tiles = 0u64;
        let mut gpu_costs: Vec<Vec<BlockCost>> = Vec::with_capacity(g);
        for gpu in &node.gpus {
            let mut gpu_seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
            let mut blocks = Vec::with_capacity(gpu.blocks.len());
            for bp in &gpu.blocks {
                let mut b_bytes = 0u64;
                let mut b_tiles = 0u64;
                for span in &bp.block.spans {
                    let j = span.col as usize;
                    for k in spec.b.shape().nonzero_rows_in_col(j) {
                        if span.contains(k) {
                            b_bytes += spec.b.tile_bytes(k, j);
                            b_tiles += 1;
                        }
                    }
                }
                let mut c_bytes = 0u64;
                let mut c_tiles = 0u64;
                for j in bp.block.distinct_columns() {
                    let support = spec.c_col_support(j, node.grid_row, plan.config.grid.p);
                    c_tiles += support.len() as u64;
                    let nj = spec.b.col_tiling().size(j);
                    c_bytes += support
                        .iter()
                        .map(|&i| spec.a.row_tiling().size(i) * nj * 8)
                        .sum::<u64>();
                }
                let mut chunks = Vec::with_capacity(bp.chunks.len());
                for chunk in &bp.chunks {
                    let mut cost = ChunkCost {
                        h2d_bytes: chunk.bytes,
                        n_tiles: chunk.tiles.len() as u64,
                        remote_bytes: 0,
                        compute_s: 0.0,
                        flops: 0,
                        tasks: 0,
                    };
                    for &(i, k) in &chunk.tiles {
                        if (k as usize) % q != node.grid_col {
                            let bytes = spec.a.tile_area(i as usize, k as usize) * 8;
                            if gpu_seen.insert((i, k)) {
                                cost.remote_bytes += bytes;
                            }
                            if node_seen.insert((i, k)) {
                                node_remote_total += bytes;
                                node_remote_tiles += 1;
                            }
                        }
                    }
                    ExecutionPlan::for_each_chunk_task(spec, &bp.block, chunk, |t| {
                        let m = spec.a.row_tiling().size(t.i as usize);
                        let n = spec.b.col_tiling().size(t.j as usize);
                        let kk = spec.a.col_tiling().size(t.k as usize);
                        cost.compute_s += platform.gemm_time(m, n, kk);
                        cost.flops += (2 * m * n * kk) as u128;
                        cost.tasks += 1;
                    });
                    chunks.push(cost);
                }
                blocks.push(BlockCost {
                    b_bytes,
                    b_tiles,
                    c_bytes,
                    c_tiles,
                    chunks,
                });
            }
            gpu_costs.push(blocks);
        }

        let g_active = gpu_costs
            .iter()
            .filter(|b| !b.is_empty())
            .count()
            .max(1);
        let gen_rate = platform.cpu_gen_rate / g_active as f64;
        // Time for the node to receive all its unique remote A bytes; each
        // GPU's chunks see their tiles arrive proportionally to the GPU's
        // progress through its own unique remote needs (shared tiles arrive
        // once and serve every GPU).
        let node_net_time = node_remote_total as f64 / platform.nic_bw
            + node_remote_tiles as f64 * platform.nic_msg_overhead_s;
        report.a_network_bytes += node_remote_total;

        // ---- Per-GPU pipeline recurrence ---------------------------------
        let mut node_end: f64 = 0.0;
        let mut node_bgen_time: f64 = 0.0;
        for (gi, blocks) in gpu_costs.iter().enumerate() {
            let mut gpu_trace = GpuTrace {
                node: node_idx,
                gpu: gi,
                ..Default::default()
            };
            let unique_remote: u64 = blocks
                .iter()
                .flat_map(|b| b.chunks.iter().map(|c| c.remote_bytes))
                .sum();
            let mut link_free = 0.0f64;
            let mut flush_done = 0.0f64;
            let mut compute_done: Vec<f64> = Vec::new(); // per global chunk
            let mut gen_cum = 0u64;
            let mut remote_cum = 0u64;
            let mut gpu_compute = 0.0f64;
            let mut gpu_link = 0.0f64;
            for block in blocks {
                gen_cum += block.b_bytes;
                let b_ready = gen_cum as f64 / gen_rate;
                let start = link_free.max(flush_done).max(b_ready);
                let block_load_s = block.b_bytes as f64 / platform.h2d_bw
                    + block.b_tiles as f64 * platform.h2d_latency_s;
                let load_done = start + block_load_s;
                if trace.is_some() && block_load_s > 0.0 {
                    gpu_trace.transfer.push((start, load_done));
                }
                gpu_link += block_load_s;
                link_free = load_done;
                let mut last_compute = flush_done;
                for chunk in &block.chunks {
                    let n = compute_done.len();
                    remote_cum += chunk.remote_bytes;
                    let arrival = if remote_cum > 0 {
                        (remote_cum as f64 / unique_remote as f64) * node_net_time
                            + platform.nic_latency_s
                    } else {
                        0.0
                    };
                    let depth = plan.config.prefetch_depth + 1;
                    let window = if n >= depth { compute_done[n - depth] } else { 0.0 };
                    let tstart = link_free.max(window).max(arrival);
                    let chunk_load_s = chunk.h2d_bytes as f64 / platform.h2d_bw
                        + chunk.n_tiles as f64 * platform.h2d_latency_s;
                    let tdone = tstart + chunk_load_s;
                    if trace.is_some() && chunk_load_s > 0.0 {
                        gpu_trace.transfer.push((tstart, tdone));
                    }
                    gpu_link += chunk_load_s;
                    link_free = tdone;
                    let prev = compute_done.last().copied().unwrap_or(0.0);
                    let cstart = tdone.max(prev).max(load_done);
                    let cdone = cstart + chunk.compute_s;
                    if trace.is_some() && chunk.compute_s > 0.0 {
                        gpu_trace.compute.push((cstart, cdone));
                    }
                    gpu_compute += chunk.compute_s;
                    compute_done.push(cdone);
                    last_compute = cdone;

                    report.total_flops += chunk.flops;
                    report.total_tasks += chunk.tasks;
                    report.h2d_bytes += chunk.h2d_bytes;
                }
                report.h2d_bytes += block.b_bytes;
                let fstart = last_compute.max(link_free);
                let flush_s = block.c_bytes as f64 / platform.d2h_bw
                    + block.c_tiles as f64 * platform.h2d_latency_s;
                flush_done = fstart + flush_s;
                if trace.is_some() && flush_s > 0.0 {
                    gpu_trace.transfer.push((fstart, flush_done));
                }
                gpu_link += flush_s;
                link_free = flush_done;
            }
            if let Some(tr) = trace.as_deref_mut() {
                tr.gpus.push(gpu_trace);
            }
            node_end = node_end.max(flush_done);
            node_bgen_time = node_bgen_time.max(gen_cum as f64 / gen_rate);
            report.compute_busy_s += gpu_compute;
            report.compute_bound_s = report.compute_bound_s.max(gpu_compute);
            report.h2d_bound_s = report.h2d_bound_s.max(gpu_link);
        }

        // ---- C write-back over the network -------------------------------
        let mut c_remote = 0u64;
        for &j in &node.columns {
            if j % q != node.grid_col {
                c_remote += spec.c_col_bytes(j, node.grid_row, p);
            }
        }
        let done = node_end + c_remote as f64 / platform.nic_bw;
        report.nic_bound_s = report
            .nic_bound_s
            .max(node_net_time + c_remote as f64 / platform.nic_bw);
        report.bgen_bound_s = report.bgen_bound_s.max(node_bgen_time);
        node_done.push(done);
    }

    report.makespan_s = node_done.iter().cloned().fold(0.0, f64::max).max(1e-12);
    report.node_done_s = node_done;
    report
}

/// Plans and simulates for every feasible grid-row count `p` dividing the
/// node count (the §3.2 trade-off parameter) and returns the best
/// `(p, report)` — mirroring the paper's methodology of keeping the
/// best-performing process-grid parameters.
pub fn simulate_best_p(
    spec: &ProblemSpec,
    platform: &Platform,
    device: bst_contract::DeviceConfig,
) -> Result<(usize, SimReport), bst_contract::PlanError> {
    let mut best: Option<(usize, SimReport)> = None;
    let mut last_err = None;
    for p in 1..=platform.nodes {
        if platform.nodes % p != 0 {
            continue;
        }
        let config = bst_contract::PlannerConfig::paper(
            bst_contract::GridConfig::from_nodes(platform.nodes, p),
            device,
        );
        match ExecutionPlan::build(spec, config) {
            Ok(plan) => {
                let r = simulate(spec, &plan, platform);
                if best
                    .as_ref()
                    .map(|(_, b)| r.makespan_s < b.makespan_s)
                    .unwrap_or(true)
                {
                    best = Some((p, r));
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    match best {
        Some(b) => Ok(b),
        None => Err(last_err.expect("p = 1 always attempted")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bst_contract::{DeviceConfig, GridConfig, PlannerConfig};
    use bst_sparse::generate::{generate, SyntheticParams};

    fn small_problem(density: f64) -> ProblemSpec {
        let prob = generate(&SyntheticParams {
            m: 2_000,
            n: 12_000,
            k: 12_000,
            density,
            tile_min: 128,
            tile_max: 512,
            seed: 5,
        });
        ProblemSpec::new(prob.a, prob.b, None)
    }

    fn run(spec: &ProblemSpec, nodes: usize, p: usize) -> SimReport {
        let platform = Platform::summit(nodes);
        let config = PlannerConfig::paper(
            GridConfig::from_nodes(nodes, p),
            DeviceConfig {
                gpus_per_node: platform.gpus_per_node,
                gpu_mem_bytes: platform.gpu_mem_bytes,
            },
        );
        let plan = ExecutionPlan::build(spec, config).unwrap();
        simulate(spec, &plan, &platform)
    }

    #[test]
    fn makespan_respects_lower_bounds() {
        let spec = small_problem(0.5);
        let r = run(&spec, 2, 1);
        assert!(r.makespan_s >= r.compute_bound_s * 0.999);
        assert!(r.makespan_s >= r.h2d_bound_s * 0.999);
        assert!(r.makespan_s >= r.bgen_bound_s * 0.999);
        assert!(r.makespan_s > 0.0);
    }

    #[test]
    fn flops_match_plan_stats() {
        let spec = small_problem(0.5);
        let platform = Platform::summit(2);
        let config = PlannerConfig::paper(
            GridConfig::from_nodes(2, 1),
            DeviceConfig {
                gpus_per_node: 6,
                gpu_mem_bytes: platform.gpu_mem_bytes,
            },
        );
        let plan = ExecutionPlan::build(&spec, config).unwrap();
        let r = simulate(&spec, &plan, &platform);
        let stats = plan.stats(&spec);
        assert_eq!(r.total_flops, stats.total_flops);
        assert_eq!(r.total_tasks, stats.total_tasks);
        assert_eq!(r.a_network_bytes, stats.a_network_bytes);
    }

    #[test]
    fn never_exceeds_aggregate_peak() {
        let spec = small_problem(1.0);
        let r = run(&spec, 2, 1);
        let peak = 2.0 * 6.0 * 7.8; // Tflop/s
        assert!(r.tflops() < peak, "{} exceeds peak {peak}", r.tflops());
    }

    #[test]
    fn denser_is_faster_per_flop_but_slower_overall() {
        // Fig. 2 / Fig. 4 trends: density ↓ ⇒ Tflop/s ↓ and time ↓.
        let dense = run(&small_problem(1.0), 2, 1);
        let sparse = run(&small_problem(0.25), 2, 1);
        assert!(
            dense.tflops() > sparse.tflops(),
            "dense {} !> sparse {}",
            dense.tflops(),
            sparse.tflops()
        );
        assert!(
            dense.makespan_s > sparse.makespan_s,
            "dense {} !> sparse {} time",
            dense.makespan_s,
            sparse.makespan_s
        );
    }

    #[test]
    fn more_nodes_reduce_time() {
        // Paper-shaped tiles (§5.1 uses ~728-row tiles): with the tiny
        // 128–512 tiles of `small_problem` the arithmetic intensity is so
        // low that per-GPU I/O serialization flattens the scaling curve
        // entirely. At realistic tile sizes the node count must pay off.
        let prob = generate(&SyntheticParams {
            m: 2_000,
            n: 12_000,
            k: 12_000,
            density: 1.0,
            tile_min: 512,
            tile_max: 1024,
            seed: 5,
        });
        let spec = ProblemSpec::new(prob.a, prob.b, None);
        let t2 = run(&spec, 2, 1).makespan_s;
        let t4 = run(&spec, 4, 1).makespan_s;
        assert!(t4 < t2, "4 nodes {t4} !< 2 nodes {t2}");
        // ... but not perfectly (communication grows).
        assert!(t4 > t2 / 2.0 * 0.9);
    }

    #[test]
    fn trace_covers_compute_time() {
        let spec = small_problem(0.5);
        let platform = Platform::summit(2);
        let config = PlannerConfig::paper(
            GridConfig::from_nodes(2, 1),
            DeviceConfig {
                gpus_per_node: 6,
                gpu_mem_bytes: platform.gpu_mem_bytes,
            },
        );
        let plan = ExecutionPlan::build(&spec, config).unwrap();
        let mut trace = crate::replay::Trace::default();
        let r = crate::replay::simulate_traced(&spec, &plan, &platform, Some(&mut trace));
        assert!(!trace.gpus.is_empty());
        let traced_compute: f64 = trace
            .gpus
            .iter()
            .flat_map(|g| g.compute.iter().map(|(s, e)| e - s))
            .sum();
        assert!((traced_compute - r.compute_busy_s).abs() < 1e-6 * r.compute_busy_s.max(1.0));
        // Intervals end within the makespan and utilization is sane.
        for g in &trace.gpus {
            for &(s, e) in g.compute.iter().chain(&g.transfer) {
                assert!(s <= e);
                assert!(e <= r.makespan_s * 1.0001);
            }
            let u = g.compute_utilization(r.makespan_s);
            assert!((0.0..=1.0).contains(&u));
        }
        // The Gantt renders one row per GPU.
        let chart = trace.gantt(r.makespan_s, 60);
        assert_eq!(chart.lines().count(), trace.gpus.len());
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn platform_mismatch_panics() {
        let spec = small_problem(1.0);
        let config = PlannerConfig::paper(
            GridConfig::from_nodes(2, 1),
            DeviceConfig {
                gpus_per_node: 6,
                gpu_mem_bytes: 16 << 30,
            },
        );
        let plan = ExecutionPlan::build(&spec, config).unwrap();
        simulate(&spec, &plan, &Platform::summit(3));
    }
}

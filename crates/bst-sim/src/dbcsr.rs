//! Cost and capacity model of the libDBCSR baseline (Fig. 2, right panel).
//!
//! DBCSR multiplies block-sparse matrices with a (generalised) Cannon
//! algorithm on an `r × c` process grid, one GPU per MPI process, stacking
//! small-tile GEMMs for the device. Two structural properties separate it
//! from the paper's algorithm, and both are modelled here:
//!
//! * **capacity** — every process must hold its panels of A, B and C (plus
//!   shift/double-buffer and stack workspace) in device memory; the paper
//!   observes allocation failures from problems of size (48k, 192k, 192k)
//!   dense upward, while lower densities admit larger problems;
//! * **communication** — Cannon shifts whole panels every step (A along
//!   grid rows, B along grid columns) with bulk-synchronous steps and six
//!   processes sharing each node NIC, which roughly doubles the dense-case
//!   time relative to the PaRSEC implementation (109 vs 203 Tflop/s in §5.1).
//!
//! As in the paper's methodology, every achievable process grid is tried
//! and the best-performing one is reported.

use crate::platform::Platform;
use bst_contract::ProblemSpec;
use bst_sparse::structure::{gemm_task_count, product_flops_screened, product_structure};

/// Extra device memory DBCSR needs relative to the raw panel bytes
/// (shift double-buffers, MPI staging, GEMM stack workspace).
const MEM_FACTOR: f64 = 4.0;
/// Derating of the GEMM efficiency for DBCSR's stack-based small-GEMM path
/// (§6.2: at best ~27% of peak on ideal problems).
const GEMM_DERATE: f64 = 0.5;
/// Panel-shift staging inefficiency (pack/unpack, synchronisation).
const COMM_FACTOR: f64 = 1.6;

/// Device-memory capacity failure, as observed in §5.1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DbcsrOom {
    /// Bytes needed per GPU.
    pub needed: u64,
    /// Bytes available per GPU.
    pub capacity: u64,
}

impl std::fmt::Display for DbcsrOom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DBCSR cannot allocate: needs {} B per GPU, capacity {} B",
            self.needed, self.capacity
        )
    }
}

impl std::error::Error for DbcsrOom {}

/// Result of a simulated DBCSR run.
#[derive(Clone, Copy, Debug)]
pub struct DbcsrReport {
    /// The best-performing process grid.
    pub grid: (usize, usize),
    /// Simulated time (s).
    pub makespan_s: f64,
    /// Total flops.
    pub total_flops: u128,
    /// Per-GPU device memory needed (bytes).
    pub mem_per_gpu: u64,
}

impl DbcsrReport {
    /// Aggregate sustained Tflop/s.
    pub fn tflops(&self) -> f64 {
        self.total_flops as f64 / self.makespan_s / 1e12
    }
}

/// Simulates DBCSR on `platform` (one process per GPU), trying all process
/// grids and keeping the fastest, or reporting the capacity failure.
pub fn simulate_dbcsr(spec: &ProblemSpec, platform: &Platform) -> Result<DbcsrReport, DbcsrOom> {
    let procs = platform.total_gpus();
    let c_struct = product_structure(&spec.a, &spec.b, 0.0);
    let data_bytes = spec.a.bytes() + spec.b.bytes() + c_struct.bytes();
    let mem_per_gpu = (MEM_FACTOR * data_bytes as f64 / procs as f64) as u64;
    if mem_per_gpu > platform.gpu_mem_bytes {
        return Err(DbcsrOom {
            needed: mem_per_gpu,
            capacity: platform.gpu_mem_bytes,
        });
    }

    let flops = product_flops_screened(&spec.a, &spec.b, c_struct.shape());
    let tasks = gemm_task_count(&spec.a, &spec.b, Some(c_struct.shape()));
    // Mean tile edge for the efficiency model.
    let mean_edge = if tasks > 0 {
        ((flops / 2 / tasks as u128) as f64).cbrt()
    } else {
        1.0
    };
    let eff = platform.gemm_efficiency(mean_edge as u64 + 1, mean_edge as u64 + 1, mean_edge as u64 + 1)
        * GEMM_DERATE;

    let mut best: Option<DbcsrReport> = None;
    for r in 1..=procs {
        if procs % r != 0 {
            continue;
        }
        let c = procs / r;
        // Compute: perfectly balanced flops plus per-task launch overhead.
        let t_compute = flops as f64 / procs as f64 / (platform.gemm_peak_flops * eff)
            + tasks as f64 / procs as f64 * platform.kernel_latency_s;
        // Communication: A shifts c times along grid rows, B shifts r times
        // along grid columns; 1 GPU per process, gpus_per_node processes
        // share the node NIC.
        let nic_share = platform.nic_bw / platform.gpus_per_node as f64;
        let shift_bytes = (spec.a.bytes() as f64 * c as f64 + spec.b.bytes() as f64 * r as f64)
            / procs as f64;
        let t_comm = COMM_FACTOR * shift_bytes / nic_share;
        // Bulk-synchronous steps: communication and compute do not overlap.
        let makespan = t_compute + t_comm;
        let candidate = DbcsrReport {
            grid: (r, c),
            makespan_s: makespan,
            total_flops: flops,
            mem_per_gpu,
        };
        if best.map(|b| makespan < b.makespan_s).unwrap_or(true) {
            best = Some(candidate);
        }
    }
    Ok(best.expect("at least the 1 x procs grid exists"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bst_sparse::generate::{generate, SyntheticParams};

    fn spec(m: u64, nk: u64, density: f64, tmin: u64, tmax: u64) -> ProblemSpec {
        let prob = generate(&SyntheticParams {
            m,
            n: nk,
            k: nk,
            density,
            tile_min: tmin,
            tile_max: tmax,
            seed: 3,
        });
        ProblemSpec::new(prob.a, prob.b, None)
    }

    #[test]
    fn small_problem_runs() {
        let s = spec(2_000, 8_000, 1.0, 128, 512);
        let r = simulate_dbcsr(&s, &Platform::summit(2)).unwrap();
        assert!(r.makespan_s > 0.0);
        assert!(r.tflops() > 0.0);
        let (gr, gc) = r.grid;
        assert_eq!(gr * gc, 12);
    }

    #[test]
    fn large_dense_problem_ooms() {
        // Scaled-down analogue of the paper's (48k, 192k, 192k) dense
        // failure: memory scaled so the panels exceed capacity.
        let s = spec(3_000, 24_000, 1.0, 128, 512);
        let mut platform = Platform::summit(2);
        platform.gpu_mem_bytes = 64 << 20; // 64 MiB GPUs
        let err = simulate_dbcsr(&s, &platform).unwrap_err();
        assert!(err.needed > err.capacity);
    }

    #[test]
    fn lower_density_admits_larger_problems() {
        let mut platform = Platform::summit(2);
        platform.gpu_mem_bytes = 1 << 30;
        let dense = spec(3_000, 40_000, 1.0, 128, 512);
        let sparse = spec(3_000, 40_000, 0.1, 128, 512);
        assert!(simulate_dbcsr(&dense, &platform).is_err());
        assert!(simulate_dbcsr(&sparse, &platform).is_ok());
    }

    #[test]
    fn paper_dense_square_48k_comparison() {
        use bst_contract::DeviceConfig;
        // The paper's M = N = K = 48k dense square point on 16 nodes:
        // PaRSEC 203 Tflop/s vs libDBCSR 109 Tflop/s (a factor ≈ 2).
        let s = spec(48_000, 48_000, 1.0, 512, 2048);
        let platform = Platform::summit(16);
        let device = DeviceConfig {
            gpus_per_node: 6,
            gpu_mem_bytes: platform.gpu_mem_bytes,
        };
        let (_p, parsec) = crate::replay::simulate_best_p(&s, &platform, device).unwrap();
        let dbcsr = simulate_dbcsr(&s, &platform).unwrap();
        // Both in the paper's ballpark and PaRSEC clearly ahead.
        assert!(
            (120.0..320.0).contains(&parsec.tflops()),
            "parsec {}",
            parsec.tflops()
        );
        assert!(
            (60.0..180.0).contains(&dbcsr.tflops()),
            "dbcsr {}",
            dbcsr.tflops()
        );
        assert!(
            parsec.tflops() > 1.3 * dbcsr.tflops(),
            "parsec {} vs dbcsr {}",
            parsec.tflops(),
            dbcsr.tflops()
        );
    }
}

//! CPU-only execution model — the MPQC comparison of §5.2.
//!
//! The paper evaluates the same ABCD contraction with the CPU-only MPQC
//! code on {8, 16} Summit nodes (672 cores total at 16 nodes) and measures
//! {308, 158} s, estimating ≈17% efficiency of a ≈2 Tflop/s per-node peak.
//! This model reproduces that estimate: time = flops / (nodes ·
//! effective-rate), plus the same inter-node A-broadcast term as the GPU
//! path (the CPU code is also bandwidth-limited at scale).

use crate::platform::Platform;
use bst_sparse::structure::{product_flops_screened, product_structure};
use bst_contract::ProblemSpec;

/// Simulated CPU-only execution time (s) of the contraction on `nodes`
/// nodes of `platform`.
pub fn simulate_cpu_only(spec: &ProblemSpec, platform: &Platform) -> f64 {
    let cshape = match &spec.c_shape {
        Some(cs) => cs.clone(),
        None => product_structure(&spec.a, &spec.b, 0.0).shape().clone(),
    };
    let flops = product_flops_screened(&spec.a, &spec.b, &cshape) as f64;
    let compute = flops / (platform.nodes as f64 * platform.cpu_flops_effective);
    // A broadcast across the flat node row (p = 1 layout).
    let q = platform.nodes as f64;
    let a_bytes = spec.a.bytes() as f64;
    let network = a_bytes * (q - 1.0) / q / platform.nic_bw;
    compute.max(network)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bst_sparse::generate::{generate, SyntheticParams};

    fn spec() -> ProblemSpec {
        let prob = generate(&SyntheticParams {
            m: 4_000,
            n: 16_000,
            k: 16_000,
            density: 1.0,
            tile_min: 256,
            tile_max: 512,
            seed: 2,
        });
        ProblemSpec::new(prob.a, prob.b, None)
    }

    #[test]
    fn doubling_nodes_halves_compute_bound_time() {
        let s = spec();
        let t8 = simulate_cpu_only(&s, &Platform::summit(8));
        let t16 = simulate_cpu_only(&s, &Platform::summit(16));
        assert!(t16 < t8);
        assert!((t8 / t16 - 2.0).abs() < 0.2, "ratio {}", t8 / t16);
    }

    #[test]
    fn cpu_is_much_slower_than_gpus() {
        use bst_contract::{DeviceConfig, GridConfig, PlannerConfig};
        let s = spec();
        let platform = Platform::summit(2);
        let config = PlannerConfig::paper(
            GridConfig::from_nodes(2, 1),
            DeviceConfig {
                gpus_per_node: 6,
                gpu_mem_bytes: platform.gpu_mem_bytes,
            },
        );
        let plan = bst_contract::ExecutionPlan::build(&s, config).unwrap();
        let gpu_time = crate::replay::simulate(&s, &plan, &platform).makespan_s;
        let cpu_time = simulate_cpu_only(&s, &platform);
        assert!(
            cpu_time > 3.0 * gpu_time,
            "cpu {cpu_time} vs gpu {gpu_time}"
        );
    }
}

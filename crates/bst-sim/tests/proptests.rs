//! Property tests for the performance simulator: structural lower bounds,
//! monotonicity in machine parameters, and accounting consistency.

use bst_contract::{DeviceConfig, ExecutionPlan, GridConfig, PlannerConfig, ProblemSpec};
use bst_sim::{simulate, Platform};
use bst_sparse::generate::{generate, SyntheticParams};
use proptest::prelude::*;

fn make_spec(m: u64, nk: u64, density: f64, seed: u64) -> ProblemSpec {
    let prob = generate(&SyntheticParams {
        m,
        n: nk,
        k: nk,
        density,
        tile_min: 32,
        tile_max: 128,
        seed,
    });
    ProblemSpec::new(prob.a, prob.b, None)
}

fn plan_for(spec: &ProblemSpec, platform: &Platform, p: usize) -> ExecutionPlan {
    let config = PlannerConfig::paper(
        GridConfig::from_nodes(platform.nodes, p),
        DeviceConfig {
            gpus_per_node: platform.gpus_per_node,
            gpu_mem_bytes: platform.gpu_mem_bytes,
        },
    );
    ExecutionPlan::build(spec, config).expect("plan")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Makespan always respects the structural lower bounds, and perf never
    /// exceeds the machine's aggregate kernel peak.
    #[test]
    fn bounds_hold(
        m in 500u64..3000,
        nk in 4000u64..16000,
        density in 0.2f64..1.0,
        nodes in 1usize..4,
        seed in 0u64..100,
    ) {
        let spec = make_spec(m, nk, density, seed);
        let platform = Platform::summit(nodes);
        let plan = plan_for(&spec, &platform, 1);
        let r = simulate(&spec, &plan, &platform);
        prop_assert!(r.makespan_s.is_finite() && r.makespan_s > 0.0);
        prop_assert!(r.makespan_s >= r.compute_bound_s * 0.999);
        prop_assert!(r.makespan_s >= r.h2d_bound_s * 0.999);
        prop_assert!(r.makespan_s >= r.bgen_bound_s * 0.999);
        let peak = platform.total_gpus() as f64 * platform.gemm_peak_flops;
        prop_assert!(r.flops_per_s() < peak);
    }

    /// A faster machine is never slower: doubling the GEMM peak, the H2D
    /// bandwidth or the NIC bandwidth must not increase the makespan.
    #[test]
    fn monotone_in_machine_parameters(
        density in 0.2f64..1.0,
        seed in 0u64..100,
    ) {
        let spec = make_spec(1500, 8000, density, seed);
        let base = Platform::summit(2);
        let plan = plan_for(&spec, &base, 1);
        let t0 = simulate(&spec, &plan, &base).makespan_s;

        let mut faster_gemm = base;
        faster_gemm.gemm_peak_flops *= 2.0;
        prop_assert!(simulate(&spec, &plan, &faster_gemm).makespan_s <= t0 * 1.0001);

        let mut faster_h2d = base;
        faster_h2d.h2d_bw *= 2.0;
        faster_h2d.d2h_bw *= 2.0;
        prop_assert!(simulate(&spec, &plan, &faster_h2d).makespan_s <= t0 * 1.0001);

        let mut faster_nic = base;
        faster_nic.nic_bw *= 2.0;
        prop_assert!(simulate(&spec, &plan, &faster_nic).makespan_s <= t0 * 1.0001);

        let mut faster_gen = base;
        faster_gen.cpu_gen_rate *= 2.0;
        prop_assert!(simulate(&spec, &plan, &faster_gen).makespan_s <= t0 * 1.0001);
    }

    /// Flops and tasks are invariant across p (the work does not depend on
    /// the grid shape), while B generation grows proportionally to p.
    #[test]
    fn work_invariant_across_p(density in 0.3f64..1.0, seed in 0u64..100) {
        let spec = make_spec(2000, 8000, density, seed);
        let platform = Platform::summit(4);
        let plan1 = plan_for(&spec, &platform, 1);
        let plan2 = plan_for(&spec, &platform, 2);
        let r1 = simulate(&spec, &plan1, &platform);
        let r2 = simulate(&spec, &plan2, &platform);
        prop_assert_eq!(r1.total_flops, r2.total_flops);
        prop_assert_eq!(r1.total_tasks, r2.total_tasks);
        let s1 = plan1.stats(&spec);
        let s2 = plan2.stats(&spec);
        prop_assert_eq!(s2.b_generated_bytes, 2 * s1.b_generated_bytes);
        prop_assert!(s2.a_network_bytes <= s1.a_network_bytes);
    }
}

//! Structural parity between the numeric engine and the DAG replay.
//!
//! Both consume the same inspector lowering
//! (`bst_contract::engine::inspector::lower`), so a numeric run and a
//! simulated run of the same `(spec, plan, opts)` must execute structurally
//! identical DAGs: the same multiset of task labels on the same workers, and
//! schedules that both pass the engine's trace-invariant checker.

use std::collections::BTreeMap;
use std::sync::Arc;

use bst_contract::exec::execute_numeric_with;
use bst_contract::{
    validate_trace_invariants, DeviceConfig, ExecOptions, ExecReport, ExecutionPlan, GridConfig,
    PlannerConfig, ProblemSpec,
};
use bst_sim::dag::{makespan_s, replay_dag};
use bst_sim::Platform;
use bst_sparse::generate::{generate, SyntheticParams};
use bst_sparse::matrix::tile_seed;
use bst_sparse::BlockSparseMatrix;
use bst_tile::pool::TilePool;

fn problem() -> (ProblemSpec, ExecutionPlan, PlannerConfig) {
    let prob = generate(&SyntheticParams {
        m: 40,
        n: 120,
        k: 100,
        density: 0.5,
        tile_min: 5,
        tile_max: 17,
        seed: 7,
    });
    let spec = ProblemSpec::new(prob.a, prob.b, None);
    let config = PlannerConfig::paper(
        GridConfig { p: 2, q: 2 },
        DeviceConfig {
            gpus_per_node: 2,
            gpu_mem_bytes: 1 << 20,
        },
    );
    let plan = ExecutionPlan::build(&spec, config).unwrap();
    (spec, plan, config)
}

/// `(worker, detail) -> count` of a traced report — the structural
/// fingerprint of the executed DAG.
fn fingerprint(report: &ExecReport) -> BTreeMap<(usize, usize, String), u64> {
    let mut map = BTreeMap::new();
    for r in &report.trace.as_ref().expect("traced report").records {
        *map.entry((r.worker.node, r.worker.lane, r.detail.clone()))
            .or_insert(0) += 1;
    }
    map
}

#[test]
fn numeric_and_simulated_runs_execute_the_same_dag() {
    let (spec, plan, config) = problem();
    let opts = ExecOptions::builder().tracing(true).build();

    let a = BlockSparseMatrix::random_from_structure(spec.a.clone(), 3);
    let b_gen = |k: usize, j: usize, r: usize, c: usize, pool: &TilePool| {
        Ok(Arc::new(pool.random(r, c, tile_seed(3 ^ 0xB, k, j))))
    };
    let (_c, numeric) = execute_numeric_with(&spec, &plan, &a, &b_gen, opts).unwrap();

    let mut platform = Platform::summit(4);
    platform.gpus_per_node = 2;
    let simulated = replay_dag(&spec, &plan, &platform, &opts);

    // Identical task multisets, worker by worker: the DAG is shared, not
    // re-derived, so the fingerprints must match exactly.
    assert_eq!(fingerprint(&numeric), fingerprint(&simulated));
    assert_eq!(numeric.gemm_tasks, simulated.gemm_tasks);
    assert_eq!(numeric.b_tiles_generated, simulated.b_tiles_generated);
    assert_eq!(numeric.a_messages, simulated.a_messages);
    assert_eq!(numeric.a_forward_messages, simulated.a_forward_messages);
    assert_eq!(numeric.a_network_bytes, simulated.a_network_bytes);
    assert_eq!(numeric.devices.len(), simulated.devices.len());

    // One checker gates both schedules.
    let cap = config.device.gpu_mem_bytes;
    assert_eq!(
        validate_trace_invariants(&numeric, opts, cap),
        Vec::<String>::new()
    );
    assert_eq!(
        validate_trace_invariants(&simulated, opts, cap),
        Vec::<String>::new()
    );
    assert!(makespan_s(&simulated) > 0.0);
}

#[test]
fn simulated_device_accounting_matches_numeric_peaks() {
    let (spec, plan, _config) = problem();
    let opts = ExecOptions::builder().tracing(true).build();

    let a = BlockSparseMatrix::random_from_structure(spec.a.clone(), 3);
    let b_gen = |k: usize, j: usize, r: usize, c: usize, pool: &TilePool| {
        Ok(Arc::new(pool.random(r, c, tile_seed(3 ^ 0xB, k, j))))
    };
    let (_c, numeric) = execute_numeric_with(&spec, &plan, &a, &b_gen, opts).unwrap();
    let mut platform = Platform::summit(4);
    platform.gpus_per_node = 2;
    let simulated = replay_dag(&spec, &plan, &platform, &opts);

    // Same loads, same evictions, same byte accounting → identical per
    // device peaks and h2d volumes (d2d attribution may differ with thread
    // timing, so compare their sum).
    for (((nk, ns_), (sk, ss)), _) in numeric.devices.iter().zip(&simulated.devices).zip(0..) {
        assert_eq!(nk, sk);
        assert_eq!(ns_.peak_bytes, ss.peak_bytes, "peak differs on {nk:?}");
        assert_eq!(
            ns_.h2d_bytes + ns_.d2d_bytes,
            ss.h2d_bytes + ss.d2d_bytes,
            "load volume differs on {nk:?}"
        );
        assert_eq!(ns_.d2h_bytes, ss.d2h_bytes, "writeback differs on {nk:?}");
    }

    // Every simulated device drains to zero, like the numeric engine.
    let trace = simulated.trace.as_ref().unwrap();
    assert_eq!(trace.mem_samples.len(), simulated.devices.len());
    for (_, samples) in &trace.mem_samples {
        assert_eq!(samples.last().unwrap().1, 0, "simulated memory leaked");
    }
}

#[test]
fn genb_fanout_lowers_identically_for_both_consumers() {
    // The fan-out knob changes the lowering (GenB moves to dedicated
    // lanes); both consumers must see the same moved DAG.
    let (spec, plan, config) = problem();
    let opts = ExecOptions::builder().tracing(true).genb_workers(3).build();

    let a = BlockSparseMatrix::random_from_structure(spec.a.clone(), 3);
    let b_gen = |k: usize, j: usize, r: usize, c: usize, pool: &TilePool| {
        Ok(Arc::new(pool.random(r, c, tile_seed(3 ^ 0xB, k, j))))
    };
    let (_c, numeric) = execute_numeric_with(&spec, &plan, &a, &b_gen, opts).unwrap();
    let mut platform = Platform::summit(4);
    platform.gpus_per_node = 2;
    let simulated = replay_dag(&spec, &plan, &platform, &opts);

    assert_eq!(fingerprint(&numeric), fingerprint(&simulated));
    let cap = config.device.gpu_mem_bytes;
    assert_eq!(
        validate_trace_invariants(&simulated, opts, cap),
        Vec::<String>::new()
    );
    // The fan-out lanes actually appear in the simulated schedule.
    let sim_lanes: std::collections::BTreeSet<usize> = simulated
        .trace
        .as_ref()
        .unwrap()
        .records
        .iter()
        .filter(|r| r.kind == "GenB")
        .map(|r| r.worker.lane)
        .collect();
    assert!(sim_lanes.iter().any(|&l| l > 2), "no dedicated GenB lane used");
}

#[test]
fn compression_model_shrinks_replayed_bytes_but_not_the_dag() {
    let (spec, plan, config) = problem();
    let dense_opts = ExecOptions::builder().tracing(true).build();
    let lossy_opts = ExecOptions::builder().tracing(true).compress_tol(1e-4).build();

    let mut platform = Platform::summit(4);
    platform.gpus_per_node = 2;
    let dense = replay_dag(&spec, &plan, &platform, &dense_opts);
    let lossy = replay_dag(&spec, &plan, &platform, &lossy_opts);

    // Compression is a data-plane change: the task DAG is untouched.
    assert_eq!(fingerprint(&dense), fingerprint(&lossy));
    assert_eq!(dense.gemm_tasks, lossy.gemm_tasks);

    // Modeled A wire bytes and device load volumes shrink strictly.
    assert!(
        lossy.a_network_bytes < dense.a_network_bytes,
        "modeled A bytes did not shrink ({} vs {})",
        lossy.a_network_bytes,
        dense.a_network_bytes
    );
    let h2d = |r: &ExecReport| {
        r.devices.iter().map(|(_, d)| d.h2d_bytes + d.d2d_bytes).sum::<u64>()
    };
    assert!(h2d(&lossy) < h2d(&dense), "modeled device loads did not shrink");

    // The compressed schedule still passes the shared invariant checker.
    let cap = config.device.gpu_mem_bytes;
    assert_eq!(
        validate_trace_invariants(&lossy, lossy_opts, cap),
        Vec::<String>::new()
    );
}

//! Criterion benches of the dataflow runtime itself: task throughput of the
//! engine (the per-task overhead a PaRSEC-style system pays), PTG compile
//! cost, and the numeric end-to-end pipeline at small scale.

use bst_contract::{DeviceConfig, ExecutionPlan, GridConfig, PlannerConfig, ProblemSpec};
use bst_runtime::engine::{infallible, Engine};
use bst_runtime::graph::{TaskGraph, WorkerId};
use bst_runtime::ptg::{space_2d, PtgProgram};
use bst_sparse::generate::{generate, SyntheticParams};
use bst_sparse::matrix::tile_seed;
use bst_sparse::BlockSparseMatrix;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn w(node: usize, lane: usize) -> WorkerId {
    WorkerId { node, lane }
}

fn bench_engine_throughput(c: &mut Criterion) {
    // A wide fan of trivial tasks over 8 workers: measures scheduler
    // overhead per task.
    let n = 20_000usize;
    let mut g: TaskGraph<usize> = TaskGraph::new();
    for i in 0..n {
        g.add_task(i, w(i % 4, i % 2));
    }
    let workers: Vec<WorkerId> = (0..4)
        .flat_map(|node| (0..2).map(move |lane| w(node, lane)))
        .collect();
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    group.bench_function("independent_tasks", |b| {
        b.iter(|| {
            match Engine::new().run(
                &g,
                &workers,
                |_| 0u64,
                infallible(|&i: &usize, _, acc: &mut u64| {
                    *acc = acc.wrapping_add(i as u64);
                }),
            ) {
                Ok(_) => (),
                Err(abort) => match abort.error {},
            }
        });
    });

    // A dependency chain per worker: measures completion-propagation cost.
    let mut g2: TaskGraph<usize> = TaskGraph::new();
    let mut prev = [None; 8];
    for i in 0..n {
        let wi = i % 8;
        let t = g2.add_task(i, workers[wi]);
        if let Some(p) = prev[wi] {
            g2.add_dep(t, p);
        }
        prev[wi] = Some(t);
    }
    group.bench_function("chained_tasks", |b| {
        b.iter(|| {
            match Engine::new().run(
                &g2,
                &workers,
                |_| (),
                infallible(|_: &usize, _, _: &mut ()| {}),
            ) {
                Ok(_) => (),
                Err(abort) => match abort.error {},
            }
        });
    });
    group.finish();
}

fn bench_ptg_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("ptg");
    group.sample_size(10);
    group.bench_function("compile_wavefront_64x64", |b| {
        b.iter(|| {
            let mut prog = PtgProgram::new();
            prog.add_class(
                "cell",
                space_2d(64, 64),
                |p| WorkerId {
                    node: (p[0] % 4) as usize,
                    lane: 0,
                },
                |p| {
                    let mut d = Vec::new();
                    if p[0] > 0 {
                        d.push((0, vec![p[0] - 1, p[1]]));
                    }
                    if p[1] > 0 {
                        d.push((0, vec![p[0], p[1] - 1]));
                    }
                    d
                },
            );
            prog.compile()
        });
    });
    group.finish();
}

fn bench_numeric_end_to_end(c: &mut Criterion) {
    let prob = generate(&SyntheticParams {
        m: 120,
        n: 600,
        k: 600,
        density: 0.5,
        tile_min: 16,
        tile_max: 48,
        seed: 5,
    });
    let spec = ProblemSpec::new(prob.a.clone(), prob.b.clone(), None);
    let config = PlannerConfig::paper(
        GridConfig { p: 2, q: 2 },
        DeviceConfig {
            gpus_per_node: 2,
            gpu_mem_bytes: 1 << 20,
        },
    );
    let plan = ExecutionPlan::build(&spec, config).unwrap();
    let a = BlockSparseMatrix::random_from_structure(prob.a, 1);
    let flops = plan.stats(&spec).total_flops as u64;
    let mut group = c.benchmark_group("numeric_pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(flops));
    group.bench_function("execute_numeric_4nodes_8gpus", |b| {
        b.iter(|| {
            let b_gen = |k: usize, j: usize, r: usize, cc: usize, pool: &bst_tile::TilePool| {
                Ok(std::sync::Arc::new(pool.random(r, cc, tile_seed(2, k, j))))
            };
            bst_contract::exec::execute_numeric(&spec, &plan, &a, &b_gen).unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_throughput,
    bench_ptg_compile,
    bench_numeric_end_to_end
);
criterion_main!(benches);

//! Criterion benches over the figure-regeneration pipeline at reduced
//! scale: one representative point per paper figure, exercising the full
//! generate → plan → simulate path. (Full-scale regeneration lives in the
//! `repro_*` binaries; these benches keep the pipeline itself honest and
//! measurable.)

use bst_chem::{CcsdProblem, Molecule, ScreeningParams, TilingSpec};
use bst_contract::{DeviceConfig, ExecutionPlan, GridConfig, PlannerConfig, ProblemSpec};
use bst_sim::dbcsr::simulate_dbcsr;
use bst_sim::{simulate, Platform};
use bst_sparse::generate::{generate, SyntheticParams};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig2_point(c: &mut Criterion) {
    // One synthetic Fig-2 point at reduced scale.
    let prob = generate(&SyntheticParams {
        m: 4_000,
        n: 24_000,
        k: 24_000,
        density: 0.5,
        tile_min: 256,
        tile_max: 1024,
        seed: 42,
    });
    let spec = ProblemSpec::new(prob.a, prob.b, None);
    let platform = Platform::summit(2);
    let config = PlannerConfig::paper(
        GridConfig::from_nodes(2, 1),
        DeviceConfig {
            gpus_per_node: 6,
            gpu_mem_bytes: platform.gpu_mem_bytes,
        },
    );
    let mut group = c.benchmark_group("fig2_point");
    group.sample_size(10);
    group.bench_function("parsec_plan_and_simulate", |b| {
        b.iter(|| {
            let plan = ExecutionPlan::build(&spec, config).unwrap();
            simulate(&spec, &plan, &platform)
        });
    });
    group.bench_function("dbcsr_model", |b| {
        b.iter(|| simulate_dbcsr(&spec, &platform).unwrap());
    });
    group.finish();
}

fn bench_scaling_point(c: &mut Criterion) {
    // One C65H132-style scaling point at reduced molecule size.
    let molecule = Molecule::alkane(20);
    let problem = CcsdProblem::build(
        &molecule,
        TilingSpec::v2().scaled_for(&molecule),
        ScreeningParams::default(),
        42,
    );
    let spec = ProblemSpec::new(
        problem.t.clone(),
        problem.v.clone(),
        Some(problem.r.shape().clone()),
    );
    let platform = Platform::summit(2);
    let config = PlannerConfig::paper(
        GridConfig::from_nodes(2, 1),
        DeviceConfig {
            gpus_per_node: 6,
            gpu_mem_bytes: platform.gpu_mem_bytes,
        },
    );
    let mut group = c.benchmark_group("scaling_point");
    group.sample_size(10);
    group.bench_function("ccsd_plan_and_simulate", |b| {
        b.iter(|| {
            let plan = ExecutionPlan::build(&spec, config).unwrap();
            simulate(&spec, &plan, &platform)
        });
    });
    group.finish();
}

fn bench_problem_build(c: &mut Criterion) {
    // Workload-generation cost: molecule → screened structures.
    let molecule = Molecule::alkane(20);
    let mut group = c.benchmark_group("workload_generation");
    group.sample_size(10);
    group.bench_function("ccsd_problem_build", |b| {
        b.iter(|| {
            CcsdProblem::build(
                &molecule,
                TilingSpec::v1().scaled_for(&molecule),
                ScreeningParams::default(),
                42,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig2_point, bench_scaling_point, bench_problem_build);
criterion_main!(benches);

//! Criterion benches of the tile GEMM kernels — the compute substrate the
//! simulated GPU executors run on. Measures the naive / blocked / parallel
//! kernels across the tile shapes the paper cares about (small irregular
//! tiles up to the ~728-edge "peak" tile).

use bst_tile::gemm::{
    gemm_blocked, gemm_naive, gemm_packed, gemm_packed_4x8, gemm_packed_8x4, gemm_packed_8x8,
    gemm_parallel,
};
use bst_tile::kernel::select_heuristic;
use bst_tile::Tile;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_kernels(c: &mut Criterion) {
    let variants: [(&str, fn(f64, &Tile, &Tile, &mut Tile)); 7] = [
        ("naive", gemm_naive),
        ("blocked", gemm_blocked),
        ("packed4x4", gemm_packed),
        ("packed8x4", gemm_packed_8x4),
        ("packed4x8", gemm_packed_4x8),
        ("packed8x8", gemm_packed_8x8),
        ("parallel", gemm_parallel),
    ];
    let mut group = c.benchmark_group("tile_gemm");
    for &edge in &[32usize, 64, 128, 256] {
        let a = Tile::random(edge, edge, 1);
        let b = Tile::random(edge, edge, 2);
        let flops = 2 * (edge as u64).pow(3);
        group.throughput(Throughput::Elements(flops));
        for (name, kernel) in variants {
            group.bench_with_input(BenchmarkId::new(name, edge), &edge, |bench, _| {
                let mut out = Tile::zeros(edge, edge);
                bench.iter(|| kernel(1.0, &a, &b, &mut out));
            });
        }
        // The dispatch path the executor takes: shape rule + kernel call.
        group.bench_with_input(BenchmarkId::new("dispatch", edge), &edge, |bench, _| {
            let mut out = Tile::zeros(edge, edge);
            bench.iter(|| select_heuristic(edge, edge, edge).run(1.0, &a, &b, &mut out));
        });
    }
    group.finish();

    // The paper's skinny shapes: short-and-wide destination tiles.
    let mut group = c.benchmark_group("tile_gemm_skinny");
    for &(m, n, k) in &[(16usize, 256usize, 256usize), (64, 512, 128)] {
        let a = Tile::random(m, k, 1);
        let b = Tile::random(k, n, 2);
        group.throughput(Throughput::Elements(2 * (m * n * k) as u64));
        group.bench_with_input(
            BenchmarkId::new("blocked", format!("{m}x{n}x{k}")),
            &m,
            |bench, _| {
                let mut out = Tile::zeros(m, n);
                bench.iter(|| gemm_blocked(1.0, &a, &b, &mut out));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);

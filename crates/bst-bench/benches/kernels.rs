//! Criterion benches of the tile GEMM kernels — the compute substrate the
//! simulated GPU executors run on. Measures the naive / blocked / parallel
//! kernels across the tile shapes the paper cares about (small irregular
//! tiles up to the ~728-edge "peak" tile).

use bst_tile::gemm::{gemm_blocked, gemm_naive, gemm_packed, gemm_parallel};
use bst_tile::Tile;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_gemm");
    for &edge in &[32usize, 64, 128, 256] {
        let a = Tile::random(edge, edge, 1);
        let b = Tile::random(edge, edge, 2);
        let flops = 2 * (edge as u64).pow(3);
        group.throughput(Throughput::Elements(flops));
        group.bench_with_input(BenchmarkId::new("naive", edge), &edge, |bench, _| {
            let mut out = Tile::zeros(edge, edge);
            bench.iter(|| gemm_naive(1.0, &a, &b, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("blocked", edge), &edge, |bench, _| {
            let mut out = Tile::zeros(edge, edge);
            bench.iter(|| gemm_blocked(1.0, &a, &b, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("packed", edge), &edge, |bench, _| {
            let mut out = Tile::zeros(edge, edge);
            bench.iter(|| gemm_packed(1.0, &a, &b, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("parallel", edge), &edge, |bench, _| {
            let mut out = Tile::zeros(edge, edge);
            bench.iter(|| gemm_parallel(1.0, &a, &b, &mut out));
        });
    }
    group.finish();

    // The paper's skinny shapes: short-and-wide destination tiles.
    let mut group = c.benchmark_group("tile_gemm_skinny");
    for &(m, n, k) in &[(16usize, 256usize, 256usize), (64, 512, 128)] {
        let a = Tile::random(m, k, 1);
        let b = Tile::random(k, n, 2);
        group.throughput(Throughput::Elements(2 * (m * n * k) as u64));
        group.bench_with_input(
            BenchmarkId::new("blocked", format!("{m}x{n}x{k}")),
            &m,
            |bench, _| {
                let mut out = Tile::zeros(m, n);
                bench.iter(|| gemm_blocked(1.0, &a, &b, &mut out));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);

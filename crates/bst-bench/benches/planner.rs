//! Criterion benches of the inspector — validating the paper's §3.2.4
//! claim that the inspection phase costs
//! `O(N^(t) log N^(t) + nnz_B)`, i.e. stays linear in the number of
//! non-zero B tiles and "has a negligible cost on execution".

use bst_contract::{DeviceConfig, ExecutionPlan, GridConfig, PlannerConfig, ProblemSpec};
use bst_sparse::generate::{generate, SyntheticParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn spec(nk: u64, density: f64) -> ProblemSpec {
    let prob = generate(&SyntheticParams {
        m: 2_000,
        n: nk,
        k: nk,
        density,
        tile_min: 64,
        tile_max: 256,
        seed: 17,
    });
    ProblemSpec::new(prob.a, prob.b, None)
}

fn bench_planner(c: &mut Criterion) {
    let config = PlannerConfig::paper(
        GridConfig { p: 1, q: 4 },
        DeviceConfig {
            gpus_per_node: 6,
            gpu_mem_bytes: 256 << 20,
        },
    );

    // Inspection cost as the problem (hence nnz_B) grows.
    let mut group = c.benchmark_group("inspector_scaling");
    group.sample_size(10);
    for &nk in &[8_000u64, 16_000, 32_000] {
        let s = spec(nk, 0.5);
        let nnz_b = s.b.nnz_tiles() as u64;
        group.throughput(Throughput::Elements(nnz_b));
        group.bench_with_input(BenchmarkId::new("plan", nk), &s, |bench, s| {
            bench.iter(|| ExecutionPlan::build(s, config).unwrap());
        });
    }
    group.finish();

    // Inspection cost across densities at fixed size.
    let mut group = c.benchmark_group("inspector_density");
    group.sample_size(10);
    for &d in &[1.0f64, 0.5, 0.1] {
        let s = spec(16_000, d);
        group.bench_with_input(BenchmarkId::new("plan", format!("{d}")), &s, |bench, s| {
            bench.iter(|| ExecutionPlan::build(s, config).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);

//! Parity gates for the collapsed engine: every tracing / clock / retry
//! combination is a policy stack on `Engine::run` — gated byte-identical
//! against the plain stack on a deterministic dataflow graph — plus one
//! canary for the `infallible` handler adapter and the numeric
//! fault-free-vs-faulted agreement gate.
//!
//! Two levels:
//!
//! * **runtime level** — a deterministic dataflow graph (every task's value
//!   is a pure function of its dependencies' values) executed through each
//!   `Engine` policy stack, gated **byte-identical**, with every recorded
//!   trace invariant-clean. One test exercises the [`infallible`] adapter
//!   (the migration target of the removed `TaskGraph::execute*` wrappers)
//!   as a compatibility canary;
//! * **core level** — the repro binaries' tiny numeric instance
//!   (`repro_trace --numeric --tiny`), fault-free vs `--faults`-style
//!   transient injection, gated at ≤ 1e-10 (fp accumulation order may
//!   differ across schedules) with both traces invariant-clean.

use std::sync::atomic::{AtomicU64, Ordering};

use bst_bench::{tiny_numeric_spec, traced_numeric_run};
use bst_contract::{validate_trace_invariants, ExecOptions, FaultPlan};
use bst_runtime::engine::{infallible, Engine};
use bst_runtime::graph::{RetryOptions, TaskError, TaskGraph, WorkerId};

/// A layered deterministic DAG: task `t`'s value is a pure fold of its
/// dependencies' values, so *any* valid schedule produces bit-identical
/// results — which is exactly what lets us gate the policy stacks
/// byte-for-byte.
fn build_graph() -> (TaskGraph<usize>, Vec<WorkerId>) {
    let workers: Vec<WorkerId> = (0..2)
        .flat_map(|node| (0..3).map(move |lane| WorkerId { node, lane }))
        .collect();
    let mut graph = TaskGraph::new();
    for t in 0..60usize {
        let id = graph.add_task(t, workers[t % workers.len()]);
        // A couple of cross-lane edges per task keeps every policy stack's
        // scheduler honest without serialising the graph.
        if t >= 1 {
            graph.add_dep(id, id - 1);
        }
        if t >= 7 {
            graph.add_dep(id, id - 7);
        }
    }
    (graph, workers)
}

/// The task body: fold the dependencies' results through a few
/// transcendental ops. Infallible form.
fn value_of(graph: &TaskGraph<usize>, out: &[AtomicU64], id: usize) -> f64 {
    let mut acc = 1.0f64 + id as f64;
    for &d in graph.deps(id) {
        acc += f64::from_bits(out[d].load(Ordering::SeqCst));
    }
    (acc.sqrt() + (id as f64).sin()).ln_1p()
}

fn bits(out: &[AtomicU64]) -> Vec<u64> {
    out.iter().map(|b| b.load(Ordering::SeqCst)).collect()
}

/// Whether this task fails (transiently) on its first attempt in the
/// fault-injected legs — deterministic in the task id.
fn faulty(id: usize) -> bool {
    id % 7 == 3
}

/// Tracing and a shared clock are pure observation: the traced and clocked
/// policy stacks produce the same bytes as the plain stack, and their
/// traces are invariant-clean.
#[test]
fn tracing_and_clock_policies_match_plain_engine_byte_for_byte() {
    let (graph, workers) = build_graph();
    let n = graph.len();
    let run_with = |exec: &dyn Fn(&TaskGraph<usize>, &[AtomicU64])| {
        let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        exec(&graph, &out);
        bits(&out)
    };
    let plain = run_with(&|g, out| {
        let h = |&id: &usize, _w: WorkerId, _c: &mut (), _a: u32| {
            out[id].store(value_of(g, out, id).to_bits(), Ordering::SeqCst);
            Ok::<(), TaskError<std::convert::Infallible>>(())
        };
        Engine::new().run(g, &workers, |_| (), h).unwrap();
    });

    let traced = run_with(&|g, out| {
        let h = |&id: &usize, _w: WorkerId, _c: &mut (), _a: u32| {
            out[id].store(value_of(g, out, id).to_bits(), Ordering::SeqCst);
            Ok::<(), TaskError<std::convert::Infallible>>(())
        };
        let run = Engine::new().tracing().run(g, &workers, |_| (), h).unwrap();
        let trace = run.trace.expect("tracing policy records");
        assert!(trace.validate(g).is_empty(), "traced run has violations");
        assert_eq!(trace.event_count(), 3 * g.len());
    });
    assert_eq!(plain, traced, "tracing policy changed the bytes");

    let clocked = run_with(&|g, out| {
        let h = |&id: &usize, _w: WorkerId, _c: &mut (), _a: u32| {
            out[id].store(value_of(g, out, id).to_bits(), Ordering::SeqCst);
            Ok::<(), TaskError<std::convert::Infallible>>(())
        };
        let clock = bst_runtime::trace::TraceClock::start();
        let run = Engine::new()
            .tracing()
            .with_clock(clock)
            .run(g, &workers, |_| (), h)
            .unwrap();
        assert!(run.trace.expect("traced").validate(g).is_empty());
    });
    assert_eq!(plain, clocked, "shared-clock policy changed the bytes");
}

/// Compatibility canary for the `execute*` wrapper removal: an infallible
/// handler wrapped through [`infallible`] must delegate to the same
/// scheduler — byte-identical to an explicit `Result`-returning handler on
/// `Engine::new().run` over the same graph.
#[test]
fn infallible_adapter_matches_explicit_handler() {
    let (graph, workers) = build_graph();
    let n = graph.len();

    let engine_out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    {
        let (g, o) = (&graph, &engine_out);
        Engine::new()
            .run(
                g,
                &workers,
                |_| (),
                |&id: &usize, _w, _c: &mut (), _a| {
                    o[id].store(value_of(g, o, id).to_bits(), Ordering::SeqCst);
                    Ok::<(), TaskError<std::convert::Infallible>>(())
                },
            )
            .unwrap();
    }

    let adapted_out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    {
        let (g, o) = (&graph, &adapted_out);
        match Engine::new().run(
            g,
            &workers,
            |_| (),
            infallible(|&id: &usize, _w, _c: &mut ()| {
                o[id].store(value_of(g, o, id).to_bits(), Ordering::SeqCst);
            }),
        ) {
            Ok(_) => (),
            Err(abort) => match abort.error {},
        }
    }
    assert_eq!(
        bits(&engine_out),
        bits(&adapted_out),
        "infallible() canary diverged from the explicit handler"
    );
}

/// Retry policy stacks: transient failures recover to the same bytes as a
/// fault-free run, with and without tracing, and the retry counters agree
/// with the deterministic fault pattern.
#[test]
fn retry_policy_stacks_recover_to_identical_bytes() {
    let (graph, workers) = build_graph();
    let n = graph.len();
    let retry = RetryOptions::default();

    // One shared fallible body: first attempt of a "faulty" task fails
    // transiently; the retry recomputes the identical value.
    let run_with = |exec: &dyn Fn(
        &TaskGraph<usize>,
        &[AtomicU64],
        &(dyn Fn(&usize, WorkerId, &mut (), u32) -> Result<(), TaskError<String>> + Sync),
    )| {
        let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let (g, o) = (&graph, &out);
        let body = move |&id: &usize, _w: WorkerId, _c: &mut (), attempt: u32| {
            if faulty(id) && attempt == 1 {
                return Err(TaskError::Transient(format!("task {id} flaked")));
            }
            o[id].store(value_of(g, o, id).to_bits(), Ordering::SeqCst);
            Ok(())
        };
        exec(&graph, &out, &body);
        bits(&out)
    };

    let expected_retries = (0..n).filter(|&t| faulty(t)).count() as u64;

    let plain_retry = run_with(&|g, _out, body| {
        let run = Engine::new()
            .with_retry(retry)
            .run(g, &workers, |_| (), body)
            .expect("transient faults must recover");
        assert_eq!(run.retried_tasks(), expected_retries);
    });

    let traced_retry = run_with(&|g, _out, body| {
        let run = Engine::new()
            .tracing()
            .with_retry(retry)
            .run(g, &workers, |_| (), body)
            .expect("traced retry stack must recover");
        assert_eq!(run.retried_tasks(), expected_retries);
        let trace = run.trace.expect("tracing was requested");
        assert!(trace.validate(g).is_empty(), "faulted trace invalid");
    });
    assert_eq!(plain_retry, traced_retry, "tracing + retry changed the bytes");

    let clocked_retry = run_with(&|g, _out, body| {
        let clock = bst_runtime::trace::TraceClock::start();
        let run = Engine::new()
            .tracing()
            .with_clock(clock)
            .with_retry(retry)
            .run(g, &workers, |_| (), body)
            .expect("clocked retry stack must recover");
        assert!(run.trace.expect("traced").validate(g).is_empty());
    });
    assert_eq!(plain_retry, clocked_retry, "clock + retry changed the bytes");

    // A fault-free run of the same graph lands on the same bytes: retries
    // are pure re-execution, never a different computation.
    let fault_free = run_with(&|g, _out, body| {
        let wrapped = |id: &usize, w: WorkerId, c: &mut (), _a: u32| body(id, w, c, 2);
        Engine::new().run(g, &workers, |_| (), wrapped).unwrap();
    });
    assert_eq!(plain_retry, fault_free, "recovered bytes differ from fault-free");
}

/// The `repro_trace --numeric --tiny` instance: a fault-free run and a
/// `--faults`-style transient-injection run must agree to ≤ 1e-10, both
/// traces must be invariant-clean, and only the faulted run may report
/// recovery activity.
#[test]
fn tiny_numeric_instance_agrees_fault_free_vs_faulted() {
    let gpu_mem = 1 << 21;
    let spec = tiny_numeric_spec(42);

    let clean_opts = ExecOptions::builder().tracing(true).build();
    let (c_clean, r_clean) = traced_numeric_run(&spec, 2, 2, gpu_mem, 42, clean_opts);

    let faulted_opts = ExecOptions::builder()
        .tracing(true)
        .fault_plan(FaultPlan::transient(42, 0.08))
        .build();
    let (c_faulted, r_faulted) = traced_numeric_run(&spec, 2, 2, gpu_mem, 42, faulted_opts);

    let diff = c_clean.max_abs_diff(&c_faulted);
    assert!(diff <= 1e-10, "faulted run diverged by {diff}");
    assert!(!r_clean.recovery.any(), "clean run reported recovery");
    assert!(r_faulted.recovery.any(), "0.08 injection rate never fired");

    assert_eq!(
        validate_trace_invariants(&r_clean, clean_opts, gpu_mem),
        Vec::<String>::new()
    );
    assert_eq!(
        validate_trace_invariants(&r_faulted, faulted_opts, gpu_mem),
        Vec::<String>::new()
    );
}

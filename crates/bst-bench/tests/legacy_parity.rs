//! Parity gates for the engine collapse: the six legacy `execute*` wrappers
//! must behave identically to the policy stacks on `Engine::run` they now
//! delegate to, and the numeric engine must produce the same answer with
//! and without injected faults.
//!
//! Two levels:
//!
//! * **runtime level** — a deterministic dataflow graph (every task's value
//!   is a pure function of its dependencies' values) executed through each
//!   legacy wrapper and through the equivalent `Engine` policy stack, gated
//!   **byte-identical**, with every recorded trace invariant-clean;
//! * **core level** — the repro binaries' tiny numeric instance
//!   (`repro_trace --numeric --tiny`), fault-free vs `--faults`-style
//!   transient injection, gated at ≤ 1e-10 (fp accumulation order may
//!   differ across schedules) with both traces invariant-clean.

#![allow(deprecated)] // exercising the legacy wrappers is the point

use std::sync::atomic::{AtomicU64, Ordering};

use bst_bench::{tiny_numeric_spec, traced_numeric_run};
use bst_contract::{validate_trace_invariants, ExecOptions, FaultPlan};
use bst_runtime::engine::Engine;
use bst_runtime::graph::{RetryOptions, TaskError, TaskGraph, WorkerId};

/// A layered deterministic DAG: task `t`'s value is a pure fold of its
/// dependencies' values, so *any* valid schedule produces bit-identical
/// results — which is exactly what lets us gate the wrappers byte-for-byte.
fn build_graph() -> (TaskGraph<usize>, Vec<WorkerId>) {
    let workers: Vec<WorkerId> = (0..2)
        .flat_map(|node| (0..3).map(move |lane| WorkerId { node, lane }))
        .collect();
    let mut graph = TaskGraph::new();
    for t in 0..60usize {
        let id = graph.add_task(t, workers[t % workers.len()]);
        // A couple of cross-lane edges per task keeps every wrapper's
        // scheduler honest without serialising the graph.
        if t >= 1 {
            graph.add_dep(id, id - 1);
        }
        if t >= 7 {
            graph.add_dep(id, id - 7);
        }
    }
    (graph, workers)
}

/// The task body: fold the dependencies' results through a few
/// transcendental ops. Infallible form.
fn value_of(graph: &TaskGraph<usize>, out: &[AtomicU64], id: usize) -> f64 {
    let mut acc = 1.0f64 + id as f64;
    for &d in graph.deps(id) {
        acc += f64::from_bits(out[d].load(Ordering::SeqCst));
    }
    (acc.sqrt() + (id as f64).sin()).ln_1p()
}

fn bits(out: &[AtomicU64]) -> Vec<u64> {
    out.iter().map(|b| b.load(Ordering::SeqCst)).collect()
}

/// Whether this task fails (transiently) on its first attempt in the
/// fault-injected legs — deterministic in the task id.
fn faulty(id: usize) -> bool {
    id % 7 == 3
}

#[test]
fn infallible_wrappers_match_engine_byte_for_byte() {
    let (graph, workers) = build_graph();
    let n = graph.len();
    let run_with = |exec: &dyn Fn(&TaskGraph<usize>, &[AtomicU64])| {
        let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        exec(&graph, &out);
        bits(&out)
    };

    let engine = run_with(&|g, out| {
        let handler = |&id: &usize, _w: WorkerId, _c: &mut (), _a: u32| {
            out[id].store(value_of(g, out, id).to_bits(), Ordering::SeqCst);
            Ok::<(), TaskError<std::convert::Infallible>>(())
        };
        Engine::new()
            .run(g, &workers, |_| (), handler)
            .unwrap();
    });

    let legacy_execute = run_with(&|g, out| {
        g.execute(&workers, |_| (), |&id, _w, _c: &mut ()| {
            out[id].store(value_of(g, out, id).to_bits(), Ordering::SeqCst);
        });
    });
    assert_eq!(engine, legacy_execute, "execute() diverged from Engine::run");

    let legacy_traced = run_with(&|g, out| {
        let trace = g.execute_traced(&workers, |_| (), |&id, _w, _c: &mut ()| {
            out[id].store(value_of(g, out, id).to_bits(), Ordering::SeqCst);
        });
        assert!(trace.validate(g).is_empty(), "legacy trace has violations");
        assert_eq!(trace.event_count(), 3 * g.len());
    });
    assert_eq!(engine, legacy_traced, "execute_traced() diverged");

    let legacy_clocked = run_with(&|g, out| {
        let clock = bst_runtime::trace::TraceClock::start();
        let trace = g.execute_traced_with_clock(
            &workers,
            |_| (),
            |&id, _w, _c: &mut ()| {
                out[id].store(value_of(g, out, id).to_bits(), Ordering::SeqCst);
            },
            clock,
        );
        assert!(trace.validate(g).is_empty());
    });
    assert_eq!(engine, legacy_clocked, "execute_traced_with_clock() diverged");
}

#[test]
fn fallible_wrappers_match_engine_with_and_without_faults() {
    let (graph, workers) = build_graph();
    let n = graph.len();
    let retry = RetryOptions::default();

    // One shared fallible body: first attempt of a "faulty" task fails
    // transiently; the retry recomputes the identical value.
    let run_with = |exec: &dyn Fn(
        &TaskGraph<usize>,
        &[AtomicU64],
        &(dyn Fn(&usize, WorkerId, &mut (), u32) -> Result<(), TaskError<String>> + Sync),
    )| {
        let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let (g, o) = (&graph, &out);
        let body = move |&id: &usize, _w: WorkerId, _c: &mut (), attempt: u32| {
            if faulty(id) && attempt == 1 {
                return Err(TaskError::Transient(format!("task {id} flaked")));
            }
            o[id].store(value_of(g, o, id).to_bits(), Ordering::SeqCst);
            Ok(())
        };
        exec(&graph, &out, &body);
        bits(&out)
    };

    let engine = run_with(&|g, _out, body| {
        let run = Engine::new()
            .with_retry(retry)
            .run(g, &workers, |_| (), body)
            .expect("transient faults must recover");
        assert_eq!(run.retried_tasks(), (0..n).filter(|&t| faulty(t)).count() as u64);
    });

    let legacy_plain = run_with(&|g, _out, body| {
        g.execute_fallible(&workers, |_| (), body, retry)
            .expect("legacy wrapper must recover");
    });
    assert_eq!(engine, legacy_plain, "execute_fallible() diverged");

    let legacy_traced = run_with(&|g, _out, body| {
        let run = g
            .execute_fallible_traced(&workers, |_| (), body, retry)
            .expect("legacy traced wrapper must recover");
        let trace = run.trace.expect("tracing was requested");
        assert!(trace.validate(g).is_empty(), "legacy faulted trace invalid");
    });
    assert_eq!(engine, legacy_traced, "execute_fallible_traced() diverged");

    let legacy_clocked = run_with(&|g, _out, body| {
        let clock = bst_runtime::trace::TraceClock::start();
        let run = g
            .execute_fallible_traced_with_clock(&workers, |_| (), body, retry, clock)
            .expect("legacy clocked wrapper must recover");
        assert!(run.trace.expect("traced").validate(g).is_empty());
    });
    assert_eq!(engine, legacy_clocked, "execute_fallible_traced_with_clock() diverged");
}

/// The `repro_trace --numeric --tiny` instance: a fault-free run and a
/// `--faults`-style transient-injection run must agree to ≤ 1e-10, both
/// traces must be invariant-clean, and only the faulted run may report
/// recovery activity.
#[test]
fn tiny_numeric_instance_agrees_fault_free_vs_faulted() {
    let gpu_mem = 1 << 21;
    let spec = tiny_numeric_spec(42);

    let clean_opts = ExecOptions::builder().tracing(true).build();
    let (c_clean, r_clean) = traced_numeric_run(&spec, 2, 2, gpu_mem, 42, clean_opts);

    let faulted_opts = ExecOptions::builder()
        .tracing(true)
        .fault_plan(FaultPlan::transient(42, 0.08))
        .build();
    let (c_faulted, r_faulted) = traced_numeric_run(&spec, 2, 2, gpu_mem, 42, faulted_opts);

    let diff = c_clean.max_abs_diff(&c_faulted);
    assert!(diff <= 1e-10, "faulted run diverged by {diff}");
    assert!(!r_clean.recovery.any(), "clean run reported recovery");
    assert!(r_faulted.recovery.any(), "0.08 injection rate never fired");

    assert_eq!(
        validate_trace_invariants(&r_clean, clean_opts, gpu_mem),
        Vec::<String>::new()
    );
    assert_eq!(
        validate_trace_invariants(&r_faulted, faulted_opts, gpu_mem),
        Vec::<String>::new()
    );
}

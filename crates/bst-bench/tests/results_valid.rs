//! Gate sweep over the committed benchmark artifacts: every
//! `results/BENCH_*.json` must re-parse and still satisfy the pass/gate
//! fields it was generated under (the same gates CI's python steps
//! re-check on freshly generated copies). A regressed or hand-edited
//! artifact fails `cargo test` instead of silently shipping.

use bst_bench::minijson::{parse, Value};
use std::path::{Path, PathBuf};

fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

fn load(path: &Path) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{}: unreadable: {e}", path.display()));
    parse(&text).unwrap_or_else(|e| panic!("{}: does not parse: {e}", path.display()))
}

/// `doc[key]` as a number, or panic naming the file and field.
fn num(doc: &Value, file: &str, key: &str) -> f64 {
    doc.get(key)
        .and_then(Value::as_num)
        .unwrap_or_else(|| panic!("{file}: missing numeric \"{key}\""))
}

fn arr<'a>(doc: &'a Value, file: &str, key: &str) -> &'a [Value] {
    doc.get(key)
        .and_then(Value::as_arr)
        .unwrap_or_else(|| panic!("{file}: missing array \"{key}\""))
}

fn assert_validated(doc: &Value, file: &str) {
    assert_eq!(
        doc.get("validated").and_then(Value::as_bool),
        Some(true),
        "{file}: validated flag is not true"
    );
}

fn check_comm(doc: &Value, f: &str) {
    assert_eq!(num(doc, f, "nodes"), 16.0, "{f}: wrong node count");
    assert_eq!(num(doc, f, "node_size"), 4.0, "{f}: wrong node size");
    let moved = num(doc, f, "bytes_moved");
    assert!(moved > 0.0, "{f}: no bytes moved");
    assert_eq!(moved, num(doc, f, "recv_bytes"), "{f}: byte conservation violated");
    assert_eq!(num(doc, f, "reorder_max_diff"), 0.0, "{f}: reorder leg not bit-identical");
    assert_eq!(num(doc, f, "shaped_max_diff"), 0.0, "{f}: shaped leg not bit-identical");
    assert_eq!(num(doc, f, "faulted_max_diff"), 0.0, "{f}: faulted leg not bit-identical");
    assert!(num(doc, f, "faulted_drops") > 0.0, "{f}: fault leg dropped nothing");
    assert!(
        num(doc, f, "inter_bytes_moved") <= num(doc, f, "unicast_inter_bytes"),
        "{f}: tree moved more inter-node bytes than unicast"
    );
    assert!(num(doc, f, "a_inter_reduction") >= 2.0, "{f}: broadcast tree below 2x");
    assert_eq!(arr(doc, f, "per_node").len(), 16, "{f}: per_node row count");
    for row in arr(doc, f, "sweep") {
        assert!(
            num(row, f, "tree_inter_bytes") <= num(row, f, "unicast_inter_bytes"),
            "{f}: a sweep point regressed above unicast"
        );
    }
}

fn check_service(doc: &Value, f: &str) {
    assert_validated(doc, f);
    assert!(num(doc, f, "plan_hits") > 0.0, "{f}: plan cache never hit");
    assert_eq!(num(doc, f, "warm_vs_cold_max_diff"), 0.0, "{f}: warm results not bit-identical");
    assert!(num(doc, f, "b_gen_reduction") >= 5.0, "{f}: B-generation reduction below 5x");
}

fn check_einsum(doc: &Value, f: &str) {
    assert_validated(doc, f);
    let abcd = doc.get("abcd").unwrap_or_else(|| panic!("{f}: missing \"abcd\""));
    assert_eq!(num(abcd, f, "bit_diff"), 0.0, "{f}: ABCD not bit-identical");
    let chain = doc.get("chain").unwrap_or_else(|| panic!("{f}: missing \"chain\""));
    assert!(num(chain, f, "max_diff") <= 1e-10, "{f}: chain above 1e-10");
    assert_eq!(num(chain, f, "terms"), 2.0, "{f}: chain term count");
}

fn check_lowrank(doc: &Value, f: &str) {
    assert_validated(doc, f);
    assert!(num(doc, f, "compression_ratio") >= 2.0, "{f}: compression below 2x");
    let requested = num(doc, f, "requested_relative_error");
    assert!(
        num(doc, f, "worst_tile_relative_error") <= requested,
        "{f}: a tile exceeded the requested tolerance"
    );
    assert!(
        num(doc, f, "achieved_relative_error") <= 50.0 * requested,
        "{f}: result error above the acceptance bound"
    );
    assert!(
        num(doc, f, "lossy_wire_bytes") < num(doc, f, "dense_wire_bytes"),
        "{f}: compression saved no wire bytes"
    );
    assert_eq!(num(doc, f, "max_stressor_diff"), 0.0, "{f}: tol=0.0 stressor diverged");
}

fn check_kernels(doc: &Value, f: &str) {
    let shapes = arr(doc, f, "shapes");
    assert!(!shapes.is_empty(), "{f}: no shapes benchmarked");
    for s in shapes {
        let winner = s
            .get("winner")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("{f}: shape without winner"));
        let gflops = s.get("gflops").unwrap_or_else(|| panic!("{f}: shape without gflops"));
        let rate = gflops
            .get(winner)
            .and_then(Value::as_num)
            .unwrap_or_else(|| panic!("{f}: winner \"{winner}\" not among the measured kernels"));
        assert!(rate > 0.0, "{f}: winner at zero throughput");
    }
}

fn check_net(doc: &Value, f: &str) {
    assert_validated(doc, f);
    assert_eq!(num(doc, f, "bit_identity_max_diff"), 0.0, "{f}: socket legs not bit-identical");
    assert!(num(doc, f, "kill_max_diff") <= 1e-10, "{f}: degraded run above 1e-10");
    assert_eq!(doc.get("kill_recovered").and_then(Value::as_bool), Some(true), "{f}: kill leg never recovered");
    assert_eq!(num(doc, f, "kill_attempts"), 2.0, "{f}: kill leg attempts");
    let legs = arr(doc, f, "legs");
    assert_eq!(legs.len(), 4, "{f}: leg count");
    for leg in legs {
        assert!(num(leg, f, "sent_frames") > 0.0, "{f}: a leg moved no frames");
    }
}

/// Sweeps every committed `BENCH_*.json`. Unknown artifacts fail loudly:
/// adding a benchmark without registering its gates here would otherwise
/// reopen the silent-regression hole this test closes.
#[test]
fn every_committed_bench_artifact_passes_its_gates() {
    let dir = results_dir();
    let mut seen = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("results/ directory") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let doc = load(&path);
        match name.as_str() {
            "BENCH_comm.json" => check_comm(&doc, &name),
            "BENCH_service.json" => check_service(&doc, &name),
            "BENCH_einsum.json" => check_einsum(&doc, &name),
            "BENCH_lowrank.json" => check_lowrank(&doc, &name),
            "BENCH_kernels.json" => check_kernels(&doc, &name),
            "BENCH_net.json" => check_net(&doc, &name),
            other => panic!(
                "{other}: committed benchmark artifact with no registered gates — \
add a checker to results_valid.rs"
            ),
        }
        seen.push(name);
    }
    // The sweep must actually cover the committed set; an empty results/
    // would vacuously pass otherwise.
    for required in [
        "BENCH_comm.json",
        "BENCH_service.json",
        "BENCH_einsum.json",
        "BENCH_lowrank.json",
        "BENCH_kernels.json",
        "BENCH_net.json",
    ] {
        assert!(seen.iter().any(|s| s == required), "missing committed artifact {required}");
    }
}

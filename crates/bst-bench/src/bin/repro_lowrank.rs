//! Measures representation-polymorphic (low-rank) tile compression through
//! the full engine and emits a self-validated `results/BENCH_lowrank.json`.
//!
//! The workload is a low-rank-friendly contraction: every A and B tile has a
//! geometrically decaying spectrum (`σ_p = e^{-decay·p}`, the shape
//! electronic-structure amplitude blocks exhibit after screening), so a
//! rank-revealing truncation at a few-digit tolerance keeps a fraction of
//! each tile's dense bytes. Three legs over identical inputs:
//!
//! * **dense** — `compress_tol = 0.0`: the engine's bitwise-reference path;
//! * **lossy** — `compress_tol = tol`: A tiles truncate as they seed the
//!   stores, B tiles truncate at generation, rank-aware GEMMs consume the
//!   factors, and every byte counter sees stored (compressed) sizes;
//! * **stressors** — `compress_tol = 0.0` re-runs under delivery reorder,
//!   shaped links and transient-fault recovery: each must stay
//!   **bit-identical** (`max |diff| == 0.0`) to the dense leg, proving the
//!   zero tolerance takes literally no compression code path.
//!
//! Self-validation gates: B-tile stored bytes shrink ≥ 2× at the requested
//! tolerance, per-tile achieved truncation error ≤ requested everywhere, the
//! lossy result lands within a small multiple of the tolerance, A wire bytes
//! shrink, every stressor diff is exactly 0.0, and the emitted JSON
//! re-parses with the expected keys. Any violation exits non-zero, so CI can
//! gate on this binary directly.
//!
//! Usage:
//! ```text
//! repro_lowrank [--tiny] [--tol T] [--decay D] [--out FILE]
//! ```

use bst_bench::minijson;
use bst_contract::{
    DeviceConfig, ExecOptions, ExecutionPlan, FaultPlan, GridConfig, PlannerConfig, ProblemSpec,
};
use bst_runtime::comm::{DeliveryPolicy, LinkShaper};
use bst_sparse::matrix::tile_seed;
use bst_sparse::{BlockSparseMatrix, MatrixStructure};
use bst_tile::{Tile, Tiling};
use std::sync::Arc;

const USAGE: &str = "usage: repro_lowrank [--tiny] [--tol T] [--decay D] [--out FILE]";
const A_SEED: u64 = 42;
const B_SEED: u64 = 42 ^ 0xB;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tiny = false;
    let mut tol = 1e-3f64;
    let mut decay = 1.5f64;
    let mut out_path = "results/BENCH_lowrank.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiny" => tiny = true,
            "--tol" => {
                let s = it.next().unwrap_or_else(|| panic!("--tol needs a value"));
                tol = s.parse().unwrap_or_else(|_| panic!("--tol must be an f64, got {s}"));
                assert!(tol > 0.0 && tol < 1.0, "--tol must be in (0, 1)");
            }
            "--decay" => {
                let s = it.next().unwrap_or_else(|| panic!("--decay needs a value"));
                decay = s.parse().unwrap_or_else(|_| panic!("--decay must be an f64, got {s}"));
                assert!(decay > 0.0, "--decay must be positive");
            }
            "--out" => {
                out_path = it.next().unwrap_or_else(|| panic!("--out needs a file path")).clone()
            }
            other => panic!("unknown argument {other}\n{USAGE}"),
        }
    }

    // Uniform 32-edge tiles: the profitability ceiling of a 32x32 tile is
    // rank 15 while a decay-1.5 spectrum reaches 1e-3 around rank 5, so
    // compression is decisively profitable without being trivial.
    let (m, k, n) = if tiny { (96, 128, 96) } else { (192, 256, 256) };
    let edge = 32u64;
    let a_struct = MatrixStructure::dense(Tiling::uniform(m, edge), Tiling::uniform(k, edge));
    let b_struct = MatrixStructure::dense(Tiling::uniform(k, edge), Tiling::uniform(n, edge));
    let spec = ProblemSpec::new(a_struct, b_struct, None);
    let config = PlannerConfig::paper(
        GridConfig { p: 2, q: 2 },
        DeviceConfig { gpus_per_node: 2, gpu_mem_bytes: 1 << 21 },
    );
    let plan = ExecutionPlan::build(&spec, config).expect("plan");

    println!(
        "# low-rank compression benchmark — {m}x{n}x{k} (32-edge tiles), decay {decay}, tol {tol:e}"
    );

    let a = BlockSparseMatrix::from_structure(spec.a.clone(), |r, c, rows, cols| {
        Tile::random_lowrank(rows, cols, tile_seed(A_SEED, r, c), decay)
    });
    let b_gen = |kk: usize, j: usize, rows: usize, cols: usize, _p: &bst_tile::TilePool| {
        Ok(Arc::new(Tile::random_lowrank(rows, cols, tile_seed(B_SEED, kk, j), decay)))
    };
    let run = |opts: ExecOptions| {
        bst_contract::exec::execute_numeric_with(&spec, &plan, &a, &b_gen, opts).expect("run")
    };
    let sent = |rep: &bst_contract::exec::ExecReport| {
        rep.comm.iter().map(|s| s.sent_bytes).sum::<u64>()
    };

    // ---- Leg 1: dense reference ------------------------------------------
    let (c_dense, rep_dense) = run(ExecOptions::default());
    let dense_wire = sent(&rep_dense);

    // ---- Leg 2: lossy ----------------------------------------------------
    let (c_lossy, rep_lossy) = run(ExecOptions::builder().compress_tol(tol).build());
    let lossy_wire = sent(&rep_lossy);

    // ---- B-tile storage accounting ---------------------------------------
    // The engine truncates each generated B tile with the same
    // `Tile::compressed(tol)` call measured here, so this offline sweep
    // reproduces the stored-byte accounting of the run exactly — and lets
    // us read back the per-tile achieved truncation error.
    let (mut b_dense_bytes, mut b_stored_bytes) = (0u64, 0u64);
    let mut worst_tile_err = 0.0f64;
    for (kk, j) in spec.b.shape().iter_nonzero() {
        let rows = spec.b.row_tiling().size(kk) as usize;
        let cols = spec.b.col_tiling().size(j) as usize;
        let t = Tile::random_lowrank(rows, cols, tile_seed(B_SEED, kk, j), decay);
        b_dense_bytes += t.bytes();
        match t.compressed(tol) {
            Some(lr) => {
                b_stored_bytes += lr.stored_bytes();
                let norm = t.frobenius_norm();
                if norm > 0.0 {
                    let mut err2 = 0.0;
                    for c in 0..cols {
                        for r in 0..rows {
                            let d = t.get(r, c) - lr.get(r, c);
                            err2 += d * d;
                        }
                    }
                    worst_tile_err = worst_tile_err.max(err2.sqrt() / norm);
                }
            }
            None => b_stored_bytes += t.stored_bytes(),
        }
    }
    let compression_ratio = b_dense_bytes as f64 / b_stored_bytes.max(1) as f64;
    let bytes_saved = b_dense_bytes.saturating_sub(b_stored_bytes);

    // ---- Result accuracy --------------------------------------------------
    let mut err2 = 0.0f64;
    let mut ref2 = 0.0f64;
    for (&(i, j), t) in c_dense.iter_tiles() {
        let lt = c_lossy.tile(i, j).expect("lossy result lost a C tile");
        for c in 0..t.cols() {
            for r in 0..t.rows() {
                let d = t.get(r, c) - lt.get(r, c);
                err2 += d * d;
                let v = t.get(r, c);
                ref2 += v * v;
            }
        }
    }
    let achieved = (err2 / ref2.max(f64::MIN_POSITIVE)).sqrt();

    // ---- Leg 3: tol = 0.0 stressors must stay bit-identical ---------------
    let zero = |b: bst_contract::ExecOptionsBuilder| b.compress_tol(0.0).build();
    let stressors: Vec<(&str, ExecOptions)> = vec![
        ("reorder", zero(ExecOptions::builder().delivery(DeliveryPolicy::Reorder {
            seed: 7,
            window: 4,
        }))),
        ("shaped", zero(ExecOptions::builder()
            .link_shaper(LinkShaper::summit_nic())
            .intra_shaper(LinkShaper::summit_intra()))),
        ("faults", zero(ExecOptions::builder().fault_plan(FaultPlan::transient(5, 0.08)))),
    ];
    let mut stressor_diffs = Vec::new();
    for (name, opts) in stressors {
        let (c_s, _) = run(opts);
        stressor_diffs.push((name, c_s.max_abs_diff(&c_dense)));
    }
    let max_stressor_diff = stressor_diffs.iter().map(|(_, d)| *d).fold(0.0, f64::max);

    println!(
        "# B tiles: {b_dense_bytes} B dense -> {b_stored_bytes} B stored \
({compression_ratio:.2}x, {bytes_saved} B saved)"
    );
    println!("# wire: {dense_wire} B dense -> {lossy_wire} B compressed");
    println!(
        "# accuracy: worst per-tile truncation {worst_tile_err:.3e}, \
result relative error {achieved:.3e} (requested {tol:e})"
    );
    for (name, d) in &stressor_diffs {
        println!("# tol=0.0 under {name}: max |diff| = {d:.3e}");
    }

    let validated = compression_ratio >= 2.0
        && worst_tile_err <= tol
        && achieved <= tol * 50.0
        && lossy_wire < dense_wire
        && max_stressor_diff == 0.0;

    let json = format!(
        "{{\n  \"problem\": {{\"m\": {m}, \"n\": {n}, \"k\": {k}, \"tiny\": {tiny}}},\n  \
\"tolerance\": {tol:e},\n  \"decay\": {decay},\n  \
\"b_dense_bytes\": {b_dense_bytes},\n  \"b_stored_bytes\": {b_stored_bytes},\n  \
\"compression_ratio\": {compression_ratio:.3},\n  \"bytes_saved\": {bytes_saved},\n  \
\"dense_wire_bytes\": {dense_wire},\n  \"lossy_wire_bytes\": {lossy_wire},\n  \
\"worst_tile_relative_error\": {worst_tile_err:.3e},\n  \
\"achieved_relative_error\": {achieved:.3e},\n  \
\"requested_relative_error\": {tol:e},\n  \
\"max_stressor_diff\": {max_stressor_diff:.3e},\n  \
\"gemm_tasks\": {},\n  \"validated\": {validated}\n}}\n",
        rep_lossy.gemm_tasks,
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write BENCH JSON");

    // ---- Self-validation --------------------------------------------------
    let mut errors = Vec::new();
    if compression_ratio < 2.0 {
        errors.push(format!(
            "B-tile compression {compression_ratio:.2}x below the 2x gate \
({b_dense_bytes} B dense vs {b_stored_bytes} B stored)"
        ));
    }
    if worst_tile_err > tol {
        errors.push(format!(
            "per-tile truncation error {worst_tile_err:.3e} exceeds requested tolerance {tol:e}"
        ));
    }
    if achieved > tol * 50.0 {
        errors.push(format!(
            "result relative error {achieved:.3e} above the {:.1e} acceptance bound",
            tol * 50.0
        ));
    }
    if lossy_wire >= dense_wire {
        errors.push(format!(
            "compressed run shipped no fewer wire bytes ({lossy_wire} vs {dense_wire})"
        ));
    }
    for (name, d) in &stressor_diffs {
        if *d != 0.0 {
            errors.push(format!(
                "tol=0.0 under {name} diverged by {d:.3e} (must be bit-identical)"
            ));
        }
    }
    match minijson::parse(&json) {
        Ok(doc) => {
            for key in [
                "problem",
                "tolerance",
                "b_dense_bytes",
                "b_stored_bytes",
                "compression_ratio",
                "bytes_saved",
                "worst_tile_relative_error",
                "achieved_relative_error",
                "requested_relative_error",
                "max_stressor_diff",
                "validated",
            ] {
                if doc.get(key).is_none() {
                    errors.push(format!("emitted JSON lacks \"{key}\""));
                }
            }
            if doc.get("validated").and_then(minijson::Value::as_bool) != Some(true) {
                errors.push("emitted JSON carries validated != true".into());
            }
        }
        Err(e) => errors.push(format!("emitted JSON does not re-parse: {e}")),
    }
    if !errors.is_empty() {
        eprintln!("error: BENCH_lowrank self-validation failed:");
        for e in &errors {
            eprintln!("  {e}");
        }
        std::process::exit(1);
    }
    println!("# wrote {out_path}: self-validation OK");
}

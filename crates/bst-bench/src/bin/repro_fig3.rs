//! Reproduces **Figure 3**: maximum (theoretical) arithmetic intensity of
//! the synthetic problem — total flops divided by the aggregate stored
//! bytes of A, B and C — as a function of N = K and density.
//!
//! Paper shape targets: intensity grows with N = K (more operations per
//! byte of the short-and-wide A) and collapses with density (fewer
//! operations per loaded tile); the dense curve reaches thousands of
//! flop/byte while density 0.1 stays far below.
//!
//! Usage: `repro_fig3 [--quick]`

use bst_bench::{synthetic_spec, Args, DENSITIES};
use bst_sparse::structure::{max_arithmetic_intensity, product_structure};

fn main() {
    let args = Args::parse();
    println!("# Fig 3 — Theoretical arithmetic intensity (flop/byte) vs N=K and density");
    println!(
        "{:>8} {}",
        "N=K",
        DENSITIES
            .iter()
            .map(|d| format!("{:>12}", format!("d={d}")))
            .collect::<String>()
    );
    for &nk in args.sizes() {
        let mut row = format!("{nk:>8}");
        for &density in &DENSITIES {
            let spec = synthetic_spec(nk, density, 42);
            let c = product_structure(&spec.a, &spec.b, 0.0);
            let ai = max_arithmetic_intensity(&spec.a, &spec.b, &c);
            row.push_str(&format!("{ai:>12.0}"));
        }
        println!("{row}");
    }
}

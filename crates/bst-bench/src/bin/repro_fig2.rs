//! Reproduces **Figure 2**: performance (Tflop/s) of the block-sparse
//! product as a function of N = K and density, on 16 Summit nodes
//! (96 GPUs, aggregate GEMM peak ≈ 672 Tflop/s), for the PaRSEC-style
//! implementation (left panel) and the libDBCSR baseline (right panel,
//! including its capacity failures).
//!
//! Paper shape targets: density dominates performance; PaRSEC peaks around
//! 250–300 Tflop/s for large dense problems and stays well below 100 for
//! density 0.1; libDBCSR runs out of memory from (48k, 192k, 192k) dense
//! upward and reaches ≈ half of PaRSEC's throughput where it runs
//! (109 vs 203 Tflop/s at the dense square 48k point).
//!
//! Usage: `repro_fig2 [--quick]`

use bst_bench::{synthetic_sweep, Args};

fn main() {
    let args = Args::parse();
    let points = synthetic_sweep(args.sizes(), 16, true);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|pt| {
            vec![
                pt.nk.to_string(),
                pt.density.to_string(),
                format!("{:.2}", pt.parsec.tflops()),
                match &pt.dbcsr {
                    Ok(r) => format!("{:.2}", r.tflops()),
                    Err(_) => "OOM".to_string(),
                },
            ]
        })
        .collect();
    bst_bench::write_csv("fig2.csv", &["nk", "density", "parsec_tflops", "dbcsr_tflops"], &rows)
        .expect("write results/fig2.csv");

    println!("# Fig 2 — Performance (Tflop/s) vs N=K and density, 16 nodes of Summit");
    println!("# aggregate GEMM peak: 672 Tflop/s (16 x 6 x 7 Tflop/s)");
    println!(
        "{:>8} {:>8} {:>6} {:>16} {:>16}",
        "N=K", "density", "p", "PaRSEC (Tf/s)", "libDBCSR (Tf/s)"
    );
    for pt in &points {
        let dbcsr = match &pt.dbcsr {
            Ok(r) => format!("{:.1}", r.tflops()),
            Err(oom) => format!("OOM({:.1}GB)", oom.needed as f64 / 1e9),
        };
        println!(
            "{:>8} {:>8} {:>6} {:>16.1} {:>16}",
            pt.nk,
            pt.density,
            pt.best_p,
            pt.parsec.tflops(),
            dbcsr
        );
    }
}

//! Measures the `bst-comm` transport on a traced numeric contraction and
//! emits a self-validated `results/BENCH_comm.json`.
//!
//! Three legs over the same problem and seed:
//!
//! * **reference** — default options (FIFO delivery, unshaped link);
//! * **reorder** — seeded [`DeliveryPolicy::Reorder`] stressor; the result
//!   must be *byte-identical* to the reference (the reduction's canonical
//!   accumulation order makes delivery order unobservable);
//! * **shaped** — [`LinkShaper::summit_nic`] (23 GB/s, 3 µs), the leg the
//!   transport metrics are read from: per-node bytes/messages moved, the
//!   effective link rate over the recorded `Sent -> Received` spans, and
//!   the fraction of in-flight communication time overlapped with `Gemm`
//!   execution.
//!
//! The emitted JSON is re-parsed and checked — conservation (every byte
//! sent is received), byte-identity across legs, effective rate within the
//! calibrated NIC peak — and any violation exits non-zero, so CI can gate
//! on this binary directly.
//!
//! Usage:
//! ```text
//! repro_comm [--tiny] [--nodes N] [--out FILE]
//! ```

use bst_bench::{minijson, tiny_numeric_spec, traced_numeric_run};
use bst_contract::{DeliveryPolicy, ExecOptions, ExecReport, LinkShaper, ProblemSpec};
use bst_runtime::trace::TracePhase;
use bst_sparse::generate::{generate, SyntheticParams};
use std::collections::HashMap;

const USAGE: &str = "usage: repro_comm [--tiny] [--nodes N] [--out FILE]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tiny = false;
    let mut nodes = 4usize;
    let mut out_path = "results/BENCH_comm.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiny" => tiny = true,
            "--nodes" => {
                let s = it.next().unwrap_or_else(|| panic!("--nodes needs a count"));
                nodes = s.parse().unwrap_or_else(|_| panic!("--nodes must be a usize, got {s}"));
                assert!(nodes >= 1, "--nodes must be >= 1");
            }
            "--out" => {
                out_path = it.next().unwrap_or_else(|| panic!("--out needs a file path")).clone()
            }
            other => panic!("unknown argument {other}\n{USAGE}"),
        }
    }

    let (spec, gpu_mem): (ProblemSpec, u64) = if tiny {
        (tiny_numeric_spec(42), 1 << 21)
    } else {
        let prob = generate(&SyntheticParams {
            m: 400,
            n: 3200,
            k: 3200,
            density: 0.5,
            tile_min: 48,
            tile_max: 128,
            seed: 42,
        });
        (ProblemSpec::new(prob.a, prob.b, None), 1 << 23)
    };

    println!(
        "# transport benchmark — {}x{}x{} on {nodes} nodes x 2 GPUs",
        spec.a.rows(),
        spec.b.cols(),
        spec.a.cols()
    );

    // Leg 1: the reference run (FIFO, unshaped).
    let reference = ExecOptions::builder().tracing(true).build();
    let (c_ref, _) = traced_numeric_run(&spec, nodes, 2, gpu_mem, 42, reference);

    // Leg 2: the delivery-reorder stressor must not change a single bit.
    let reorder = ExecOptions::builder()
        .tracing(true)
        .delivery(DeliveryPolicy::Reorder { seed: 0xC0FFEE, window: 8 })
        .build();
    let (c_reorder, _) = traced_numeric_run(&spec, nodes, 2, gpu_mem, 42, reorder);
    let reorder_diff = c_reorder.max_abs_diff(&c_ref);

    // Leg 3: the shaped link — the metrics leg.
    let shaped = ExecOptions::builder()
        .tracing(true)
        .link_shaper(LinkShaper::summit_nic())
        .build();
    let (c_shaped, report) = traced_numeric_run(&spec, nodes, 2, gpu_mem, 42, shaped);
    let shaped_diff = c_shaped.max_abs_diff(&c_ref);

    let m = transport_metrics(&report);
    let (sent_bytes, recv_bytes): (u64, u64) = report
        .comm
        .iter()
        .fold((0, 0), |(s, r), n| (s + n.sent_bytes, r + n.recv_bytes));
    let (sent_msgs, recv_msgs): (u64, u64) = report
        .comm
        .iter()
        .fold((0, 0), |(s, r), n| (s + n.sent_msgs, r + n.recv_msgs));

    println!("# bytes moved: {sent_bytes} over {sent_msgs} messages");
    println!(
        "# effective link rate: {:.3} GB/s over {} matched transfers (NIC peak 23.0)",
        m.effective_gbps, m.matched_transfers
    );
    println!(
        "# comm/Gemm overlap: {:.1}% of {:.3} ms in-flight time",
        m.overlap_fraction * 100.0,
        m.comm_busy_s * 1e3
    );
    println!("# reorder max |diff| = {reorder_diff:.3e}, shaped max |diff| = {shaped_diff:.3e}");

    let per_node: Vec<String> = report
        .comm
        .iter()
        .enumerate()
        .map(|(n, s)| {
            format!(
                "    {{\"node\": {n}, \"sent_bytes\": {}, \"sent_msgs\": {}, \
\"recv_bytes\": {}, \"recv_msgs\": {}, \"dropped_msgs\": {}, \"duplicate_msgs\": {}, \
\"max_in_flight\": {}, \"credit_window\": {}}}",
                s.sent_bytes,
                s.sent_msgs,
                s.recv_bytes,
                s.recv_msgs,
                s.dropped_msgs,
                s.duplicate_msgs,
                s.max_in_flight,
                s.credit_window
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"problem\": {{\"m\": {}, \"n\": {}, \"k\": {}, \"tiny\": {tiny}}},\n  \
\"nodes\": {nodes},\n  \
\"bytes_moved\": {sent_bytes},\n  \"messages\": {sent_msgs},\n  \
\"recv_bytes\": {recv_bytes},\n  \"recv_msgs\": {recv_msgs},\n  \
\"effective_gbps\": {:.4},\n  \"matched_transfers\": {},\n  \
\"comm_busy_s\": {:.6},\n  \"overlap_fraction\": {:.4},\n  \
\"reorder_max_diff\": {reorder_diff:.3e},\n  \"shaped_max_diff\": {shaped_diff:.3e},\n  \
\"per_node\": [\n{}\n  ]\n}}\n",
        spec.a.rows(),
        spec.b.cols(),
        spec.a.cols(),
        m.effective_gbps,
        m.matched_transfers,
        m.comm_busy_s,
        m.overlap_fraction,
        per_node.join(",\n")
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write BENCH JSON");

    // ---- Self-validation --------------------------------------------------
    let mut errors = Vec::new();
    if reorder_diff != 0.0 {
        errors.push(format!(
            "delivery reorder changed the result by {reorder_diff:.3e} (must be byte-identical)"
        ));
    }
    if shaped_diff != 0.0 {
        errors.push(format!(
            "link shaping changed the result by {shaped_diff:.3e} (must be byte-identical)"
        ));
    }
    if sent_bytes != recv_bytes || sent_msgs != recv_msgs {
        errors.push(format!(
            "conservation violated: sent {sent_bytes} B / {sent_msgs} msgs vs \
received {recv_bytes} B / {recv_msgs} msgs"
        ));
    }
    if nodes > 1 && sent_bytes == 0 {
        errors.push("no bytes crossed the fabric on a multi-node run".into());
    }
    if nodes > 1 && !(0.0 < m.effective_gbps && m.effective_gbps <= 23.0 + 1e-9) {
        errors.push(format!(
            "effective rate {:.3} GB/s outside (0, 23] — shaping is miscalibrated",
            m.effective_gbps
        ));
    }
    if !(0.0..=1.0).contains(&m.overlap_fraction) {
        errors.push(format!("overlap fraction {} outside [0, 1]", m.overlap_fraction));
    }
    match minijson::parse(&json) {
        Ok(doc) => {
            for key in [
                "problem",
                "nodes",
                "bytes_moved",
                "messages",
                "effective_gbps",
                "overlap_fraction",
                "per_node",
            ] {
                if doc.get(key).is_none() {
                    errors.push(format!("emitted JSON lacks \"{key}\""));
                }
            }
            let n_rows = doc.get("per_node").and_then(minijson::Value::as_arr).map(|a| a.len());
            if n_rows != Some(nodes) {
                errors.push(format!("per_node has {n_rows:?} rows, want {nodes}"));
            }
        }
        Err(e) => errors.push(format!("emitted JSON does not re-parse: {e}")),
    }
    if !errors.is_empty() {
        eprintln!("error: BENCH_comm self-validation failed:");
        for e in &errors {
            eprintln!("  {e}");
        }
        std::process::exit(1);
    }
    println!("# wrote {out_path}: self-validation OK");
}

/// Transport metrics read from one traced shaped run.
struct TransportMetrics {
    /// Bytes over seconds of the matched `Sent -> Received` spans, in GB/s.
    effective_gbps: f64,
    /// Received events with a matching Sent.
    matched_transfers: usize,
    /// Union length of the in-flight spans (seconds).
    comm_busy_s: f64,
    /// Fraction of `comm_busy_s` during which some `Gemm` was running.
    overlap_fraction: f64,
}

fn transport_metrics(report: &ExecReport) -> TransportMetrics {
    let trace = report.trace.as_ref().expect("tracing was enabled");
    let mut sent_at: HashMap<(String, usize, usize, u32), u64> = HashMap::new();
    for e in &trace.comm_events {
        if e.phase == TracePhase::Sent {
            sent_at.entry((format!("{:?}", e.key), e.src, e.dst, e.epoch)).or_insert(e.t_ns);
        }
    }
    let mut spans: Vec<(u64, u64)> = Vec::new();
    let (mut bytes, mut dt_ns) = (0u64, 0u64);
    for e in &trace.comm_events {
        if e.phase != TracePhase::Received {
            continue;
        }
        if let Some(&s) = sent_at.get(&(format!("{:?}", e.key), e.src, e.dst, e.epoch)) {
            if e.t_ns > s {
                spans.push((s, e.t_ns));
                bytes += e.bytes;
                dt_ns += e.t_ns - s;
            }
        }
    }
    let matched_transfers = spans.len();
    let effective_gbps = if dt_ns > 0 {
        bytes as f64 / (dt_ns as f64 / 1e9) / 1e9
    } else {
        0.0
    };
    let comm_union = union_intervals(spans);
    let gemm_union = union_intervals(
        trace
            .records
            .iter()
            .filter(|r| r.kind == "Gemm")
            .map(|r| (r.span.start_ns, r.span.end_ns))
            .collect(),
    );
    let comm_busy: u64 = comm_union.iter().map(|(a, b)| b - a).sum();
    let overlap = intersection_len(&comm_union, &gemm_union);
    TransportMetrics {
        effective_gbps,
        matched_transfers,
        comm_busy_s: comm_busy as f64 / 1e9,
        overlap_fraction: if comm_busy > 0 {
            overlap as f64 / comm_busy as f64
        } else {
            0.0
        },
    }
}

/// Sorts and merges intervals into a disjoint union.
fn union_intervals(mut spans: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    spans.retain(|(a, b)| b > a);
    spans.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(spans.len());
    for (a, b) in spans {
        match out.last_mut() {
            Some((_, e)) if a <= *e => *e = (*e).max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

/// Total overlap length of two disjoint sorted interval unions.
fn intersection_len(xs: &[(u64, u64)], ys: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut total) = (0, 0, 0u64);
    while i < xs.len() && j < ys.len() {
        let lo = xs[i].0.max(ys[j].0);
        let hi = xs[i].1.min(ys[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if xs[i].1 <= ys[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

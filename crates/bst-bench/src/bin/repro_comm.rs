//! Measures the `bst-comm` transport on a traced numeric contraction and
//! emits a self-validated `results/BENCH_comm.json`.
//!
//! Five legs over the same problem and seed, all on a node-aware topology
//! (`--node-size` ranks per physical node, rank-major packing):
//!
//! * **reference** — tree collectives (the default), FIFO delivery,
//!   unshaped links;
//! * **reorder** — seeded [`DeliveryPolicy::Reorder`] stressor; the result
//!   must be *byte-identical* to the reference (canonical accumulation
//!   order makes delivery timing unobservable);
//! * **shaped** — [`LinkShaper::summit_nic`] (23 GB/s, 3 µs) on the
//!   inter-node link and [`LinkShaper::summit_intra`] (50 GB/s, 1 µs)
//!   intra-node, the leg the transport metrics are read from;
//! * **faulted** — seeded frame drops on the `SendA` wire, which on a
//!   broadcast tree exercises *interior* hops (a forwarder loses the frame
//!   and the retry re-traverses the subtree); byte-identical recovery
//!   required;
//! * **unicast** — [`Collectives::Unicast`] baseline (star broadcast,
//!   every C partial shipped straight to the root): the comparison point
//!   for the collective-communication savings. Its different summation
//!   bracketing means it matches to 1e-10, not bit-for-bit.
//!
//! The headline deltas — total bytes moved and inter-node A-tile bytes,
//! tree vs unicast — are also swept over `P ∈ {4,16,64} ×
//! node_size ∈ {1,4}` (skip with `--no-sweep`).
//!
//! `effective_gbps` measures **per-link busy time**: matched
//! `Sent -> Received` spans are grouped per directed `(src,dst)` link and
//! unioned within each link, so concurrent transfers on *different* links
//! don't inflate (or deflate) the apparent rate of any one link. The rate
//! is reported for the inter-node (NIC) class, which the Summit shaper
//! caps at 23 GB/s.
//!
//! The emitted JSON is re-parsed and checked — conservation (every byte
//! sent is received), byte-identity across same-bracketing legs, tree
//! never moving more bytes than unicast, the ≥2× inter-node A-byte saving
//! on multi-rank nodes — and any violation exits non-zero, so CI gates on
//! this binary directly.
//!
//! Usage:
//! ```text
//! repro_comm [--tiny] [--nodes N] [--node-size S] [--no-sweep] [--out FILE]
//! ```

use bst_bench::{minijson, tiny_numeric_spec, traced_numeric_run};
use bst_contract::{
    Collectives, DeliveryPolicy, ExecOptions, ExecReport, FaultPlan, LinkShaper, ProblemSpec,
};
use bst_runtime::comm::LinkClass;
use bst_runtime::trace::TracePhase;
use bst_sparse::generate::{generate, SyntheticParams};
use std::collections::HashMap;

const USAGE: &str = "usage: repro_comm [--tiny] [--nodes N] [--node-size S] [--no-sweep] [--out FILE]";

/// The `(P, node_size)` grid of the sweep section.
const SWEEP: [(usize, usize); 6] = [(4, 1), (4, 4), (16, 1), (16, 4), (64, 1), (64, 4)];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tiny = false;
    let mut nodes = 16usize;
    let mut node_size = 4usize;
    let mut sweep = true;
    let mut out_path = "results/BENCH_comm.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiny" => tiny = true,
            "--no-sweep" => sweep = false,
            "--nodes" => {
                let s = it.next().unwrap_or_else(|| panic!("--nodes needs a count"));
                nodes = s.parse().unwrap_or_else(|_| panic!("--nodes must be a usize, got {s}"));
                assert!(nodes >= 1, "--nodes must be >= 1");
            }
            "--node-size" => {
                let s = it.next().unwrap_or_else(|| panic!("--node-size needs a count"));
                node_size =
                    s.parse().unwrap_or_else(|_| panic!("--node-size must be a usize, got {s}"));
                assert!(node_size >= 1, "--node-size must be >= 1");
            }
            "--out" => {
                out_path = it.next().unwrap_or_else(|| panic!("--out needs a file path")).clone()
            }
            other => panic!("unknown argument {other}\n{USAGE}"),
        }
    }

    let (spec, gpu_mem): (ProblemSpec, u64) = if tiny {
        (tiny_numeric_spec(42), 1 << 21)
    } else {
        let prob = generate(&SyntheticParams {
            m: 400,
            n: 3200,
            k: 3200,
            density: 0.5,
            tile_min: 48,
            tile_max: 128,
            seed: 42,
        });
        (ProblemSpec::new(prob.a, prob.b, None), 1 << 23)
    };

    println!(
        "# transport benchmark — {}x{}x{} on {nodes} ranks x 2 GPUs, {node_size} ranks/physical node",
        spec.a.rows(),
        spec.b.cols(),
        spec.a.cols()
    );

    // Leg 1: the reference run (tree collectives, FIFO, unshaped).
    let reference = ExecOptions::builder().tracing(true).node_size(node_size).build();
    let (c_ref, _) = traced_numeric_run(&spec, nodes, 2, gpu_mem, 42, reference);

    // Leg 2: the delivery-reorder stressor must not change a single bit —
    // tree reductions combine in canonical (i, j, origin) order whatever
    // the arrival interleaving.
    let reorder = ExecOptions::builder()
        .tracing(true)
        .node_size(node_size)
        .delivery(DeliveryPolicy::Reorder { seed: 0xC0FFEE, window: 8 })
        .build();
    let (c_reorder, _) = traced_numeric_run(&spec, nodes, 2, gpu_mem, 42, reorder);
    let reorder_diff = c_reorder.max_abs_diff(&c_ref);

    // Leg 3: per-class link shaping — the metrics leg.
    let shaped = ExecOptions::builder()
        .tracing(true)
        .node_size(node_size)
        .link_shaper(LinkShaper::summit_nic())
        .intra_shaper(LinkShaper::summit_intra())
        .build();
    let (c_shaped, report) = traced_numeric_run(&spec, nodes, 2, gpu_mem, 42, shaped);
    let shaped_diff = c_shaped.max_abs_diff(&c_ref);

    // Leg 4: dropped frames on the SendA wire. On a broadcast tree this
    // hits interior forwarding hops, not just the owner's first send; the
    // epoch-tagged retries must reconverge to the identical bits.
    let faulted = ExecOptions::builder()
        .tracing(true)
        .node_size(node_size)
        .fault_plan(FaultPlan {
            seed: 0xFA17,
            send_rate: 0.05,
            ..FaultPlan::default()
        })
        .build();
    let (c_faulted, faulted_report) = traced_numeric_run(&spec, nodes, 2, gpu_mem, 42, faulted);
    let faulted_diff = c_faulted.max_abs_diff(&c_ref);
    let faulted_drops: u64 = faulted_report.comm.iter().map(|n| n.dropped_msgs).sum();

    // Leg 5: the unicast baseline (star broadcast, ship-everything-to-root
    // reduction). Its summation bracketing differs from the tree's, so the
    // comparison is ≤ 1e-10, not == 0.
    let unicast = ExecOptions::builder()
        .tracing(true)
        .node_size(node_size)
        .collectives(Collectives::Unicast)
        .build();
    let (c_unicast, unicast_report) = traced_numeric_run(&spec, nodes, 2, gpu_mem, 42, unicast);
    let unicast_diff = c_unicast.max_abs_diff(&c_ref);

    let m = transport_metrics(&report);
    let tree = LegBytes::of(&report);
    let uni = LegBytes::of(&unicast_report);
    let bytes_reduction = ratio(uni.total, tree.total);
    let a_inter_reduction = ratio(uni.a_inter, tree.a_inter);

    println!("# tree:    {} B total, {} B inter-node, {} B inter-node A tiles", tree.total, tree.inter, tree.a_inter);
    println!("# unicast: {} B total, {} B inter-node, {} B inter-node A tiles", uni.total, uni.inter, uni.a_inter);
    println!("# savings: {bytes_reduction:.2}x total, {a_inter_reduction:.2}x inter-node A bytes");
    println!(
        "# effective NIC rate: {:.3} GB/s over {} matched transfers (peak 23.0); intra {:.3} GB/s (peak 50.0)",
        m.effective_gbps, m.matched_transfers, m.intra_gbps
    );
    println!(
        "# comm/Gemm overlap: {:.1}% of {:.3} ms in-flight time ({:.3} ms summed per-link busy)",
        m.overlap_fraction * 100.0,
        m.comm_busy_s * 1e3,
        m.link_busy_s * 1e3
    );
    println!(
        "# reorder |diff| = {reorder_diff:.3e}, shaped |diff| = {shaped_diff:.3e}, \
faulted |diff| = {faulted_diff:.3e} ({faulted_drops} drops), unicast |diff| = {unicast_diff:.3e}"
    );

    // The P × node_size sweep: tree vs unicast bytes, FIFO, unshaped.
    let sweep_rows: Vec<SweepRow> = if sweep {
        SWEEP
            .iter()
            .map(|&(p, s)| sweep_point(&spec, p, s, gpu_mem))
            .collect()
    } else {
        Vec::new()
    };

    let per_node: Vec<String> = report
        .comm
        .iter()
        .enumerate()
        .map(|(n, s)| {
            format!(
                "    {{\"node\": {n}, \"sent_bytes\": {}, \"sent_msgs\": {}, \
\"recv_bytes\": {}, \"recv_msgs\": {}, \"inter_sent_bytes\": {}, \"inter_recv_bytes\": {}, \
\"dropped_msgs\": {}, \"duplicate_msgs\": {}, \
\"max_in_flight\": {}, \"credit_window\": {}, \
\"intra_max_in_flight\": {}, \"intra_credit_window\": {}}}",
                s.sent_bytes,
                s.sent_msgs,
                s.recv_bytes,
                s.recv_msgs,
                s.inter_sent_bytes,
                s.inter_recv_bytes,
                s.dropped_msgs,
                s.duplicate_msgs,
                s.max_in_flight,
                s.credit_window,
                s.intra_max_in_flight,
                s.intra_credit_window
            )
        })
        .collect();
    let sweep_json: Vec<String> = sweep_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"nodes\": {}, \"node_size\": {}, \
\"tree_bytes\": {}, \"tree_inter_bytes\": {}, \"tree_a_inter_bytes\": {}, \
\"unicast_bytes\": {}, \"unicast_inter_bytes\": {}, \"unicast_a_inter_bytes\": {}, \
\"a_inter_reduction\": {:.4}}}",
                r.nodes,
                r.node_size,
                r.tree.total,
                r.tree.inter,
                r.tree.a_inter,
                r.unicast.total,
                r.unicast.inter,
                r.unicast.a_inter,
                ratio(r.unicast.a_inter, r.tree.a_inter)
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"problem\": {{\"m\": {}, \"n\": {}, \"k\": {}, \"tiny\": {tiny}}},\n  \
\"nodes\": {nodes},\n  \"node_size\": {node_size},\n  \"collectives\": \"tree\",\n  \
\"bytes_moved\": {},\n  \"messages\": {},\n  \
\"recv_bytes\": {},\n  \"recv_msgs\": {},\n  \
\"inter_bytes_moved\": {},\n  \"a_inter_bytes\": {},\n  \
\"unicast_bytes_moved\": {},\n  \"unicast_inter_bytes\": {},\n  \"unicast_a_inter_bytes\": {},\n  \
\"bytes_reduction\": {bytes_reduction:.4},\n  \"a_inter_reduction\": {a_inter_reduction:.4},\n  \
\"effective_gbps\": {:.4},\n  \"intra_gbps\": {:.4},\n  \"matched_transfers\": {},\n  \
\"link_busy_s\": {:.6},\n  \"comm_busy_s\": {:.6},\n  \"overlap_fraction\": {:.4},\n  \
\"reorder_max_diff\": {reorder_diff:.3e},\n  \"shaped_max_diff\": {shaped_diff:.3e},\n  \
\"faulted_max_diff\": {faulted_diff:.3e},\n  \"faulted_drops\": {faulted_drops},\n  \
\"unicast_max_diff\": {unicast_diff:.3e},\n  \
\"per_node\": [\n{}\n  ],\n  \"sweep\": [\n{}\n  ]\n}}\n",
        spec.a.rows(),
        spec.b.cols(),
        spec.a.cols(),
        tree.total,
        tree.msgs,
        tree.recv_total,
        tree.recv_msgs,
        tree.inter,
        tree.a_inter,
        uni.total,
        uni.inter,
        uni.a_inter,
        m.effective_gbps,
        m.intra_gbps,
        m.matched_transfers,
        m.link_busy_s,
        m.comm_busy_s,
        m.overlap_fraction,
        per_node.join(",\n"),
        sweep_json.join(",\n")
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write BENCH JSON");

    // ---- Self-validation --------------------------------------------------
    let mut errors = Vec::new();
    if reorder_diff != 0.0 {
        errors.push(format!(
            "delivery reorder changed the result by {reorder_diff:.3e} (must be byte-identical)"
        ));
    }
    if shaped_diff != 0.0 {
        errors.push(format!(
            "link shaping changed the result by {shaped_diff:.3e} (must be byte-identical)"
        ));
    }
    if faulted_diff != 0.0 {
        errors.push(format!(
            "fault recovery changed the result by {faulted_diff:.3e} (must be byte-identical)"
        ));
    }
    if nodes > 1 && faulted_drops == 0 {
        errors.push("the faulted leg dropped no frames — injection never exercised the wire".into());
    }
    if unicast_diff > 1e-10 {
        errors.push(format!(
            "unicast baseline differs by {unicast_diff:.3e} (> 1e-10 — beyond re-bracketing noise)"
        ));
    }
    if tree.total != tree.recv_total || tree.msgs != tree.recv_msgs {
        errors.push(format!(
            "conservation violated: sent {} B / {} msgs vs received {} B / {} msgs",
            tree.total, tree.msgs, tree.recv_total, tree.recv_msgs
        ));
    }
    if nodes > 1 && tree.total == 0 {
        errors.push("no bytes crossed the fabric on a multi-node run".into());
    }
    if tree.inter > uni.inter {
        errors.push(format!(
            "tree collectives moved MORE inter-node bytes than unicast ({} > {})",
            tree.inter, uni.inter
        ));
    }
    // The headline claim: on multi-rank physical nodes the broadcast trees
    // cut the A tiles' NIC traffic at least in half vs point-to-point.
    if node_size > 1 && nodes >= 2 * node_size && uni.a_inter > 0 && 2 * tree.a_inter > uni.a_inter
    {
        errors.push(format!(
            "inter-node A bytes only fell from {} to {} ({a_inter_reduction:.2}x, need >= 2x)",
            uni.a_inter, tree.a_inter
        ));
    }
    if m.matched_inter > 0 && !(0.0 < m.effective_gbps && m.effective_gbps <= 23.0 + 1e-9) {
        errors.push(format!(
            "effective NIC rate {:.3} GB/s outside (0, 23] — shaping is miscalibrated",
            m.effective_gbps
        ));
    }
    if m.matched_intra > 0 && !(0.0 < m.intra_gbps && m.intra_gbps <= 50.0 + 1e-9) {
        errors.push(format!(
            "intra-node rate {:.3} GB/s outside (0, 50] — shaping is miscalibrated",
            m.intra_gbps
        ));
    }
    if !(0.0..=1.0).contains(&m.overlap_fraction) {
        errors.push(format!("overlap fraction {} outside [0, 1]", m.overlap_fraction));
    }
    for row in &sweep_rows {
        if row.tree.inter > row.unicast.inter {
            errors.push(format!(
                "sweep P={} S={}: tree moved more inter-node bytes than unicast ({} > {})",
                row.nodes, row.node_size, row.tree.inter, row.unicast.inter
            ));
        }
    }
    match minijson::parse(&json) {
        Ok(doc) => {
            for key in [
                "problem",
                "nodes",
                "node_size",
                "bytes_moved",
                "messages",
                "inter_bytes_moved",
                "a_inter_bytes",
                "unicast_a_inter_bytes",
                "a_inter_reduction",
                "effective_gbps",
                "overlap_fraction",
                "faulted_drops",
                "per_node",
                "sweep",
            ] {
                if doc.get(key).is_none() {
                    errors.push(format!("emitted JSON lacks \"{key}\""));
                }
            }
            let n_rows = doc.get("per_node").and_then(minijson::Value::as_arr).map(|a| a.len());
            if n_rows != Some(nodes) {
                errors.push(format!("per_node has {n_rows:?} rows, want {nodes}"));
            }
            let s_rows = doc.get("sweep").and_then(minijson::Value::as_arr).map(|a| a.len());
            if s_rows != Some(sweep_rows.len()) {
                errors.push(format!("sweep has {s_rows:?} rows, want {}", sweep_rows.len()));
            }
        }
        Err(e) => errors.push(format!("emitted JSON does not re-parse: {e}")),
    }
    if !errors.is_empty() {
        eprintln!("error: BENCH_comm self-validation failed:");
        for e in &errors {
            eprintln!("  {e}");
        }
        std::process::exit(1);
    }
    println!("# wrote {out_path}: self-validation OK");
}

/// Byte totals of one leg's transport, summed over nodes.
#[derive(Clone, Copy)]
struct LegBytes {
    total: u64,
    msgs: u64,
    recv_total: u64,
    recv_msgs: u64,
    inter: u64,
    a_inter: u64,
}

impl LegBytes {
    fn of(report: &ExecReport) -> Self {
        let mut out = Self {
            total: 0,
            msgs: 0,
            recv_total: 0,
            recv_msgs: 0,
            inter: 0,
            a_inter: report.a_network_inter_bytes,
        };
        for n in &report.comm {
            out.total += n.sent_bytes;
            out.msgs += n.sent_msgs;
            out.recv_total += n.recv_bytes;
            out.recv_msgs += n.recv_msgs;
            out.inter += n.inter_sent_bytes;
        }
        out
    }
}

/// `num / den` with a sensible value when nothing was moved: 1.0 when both
/// sides are zero (no saving, no regression), `num` when only the
/// denominator is (all traffic eliminated).
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        if num == 0 {
            1.0
        } else {
            num as f64
        }
    } else {
        num as f64 / den as f64
    }
}

/// One `(P, node_size)` comparison point: tree vs unicast bytes on the
/// same problem (FIFO delivery, unshaped links).
struct SweepRow {
    nodes: usize,
    node_size: usize,
    tree: LegBytes,
    unicast: LegBytes,
}

fn sweep_point(spec: &ProblemSpec, nodes: usize, node_size: usize, gpu_mem: u64) -> SweepRow {
    let run = |collectives: Collectives| {
        let opts = ExecOptions::builder()
            .tracing(true)
            .node_size(node_size)
            .collectives(collectives)
            .build();
        LegBytes::of(&traced_numeric_run(spec, nodes, 2, gpu_mem, 42, opts).1)
    };
    let tree = run(Collectives::Tree);
    let unicast = run(Collectives::Unicast);
    eprintln!(
        "  [sweep] P={nodes} S={node_size}: inter-node A bytes {} (tree) vs {} (unicast), {:.2}x",
        tree.a_inter,
        unicast.a_inter,
        ratio(unicast.a_inter, tree.a_inter)
    );
    SweepRow {
        nodes,
        node_size,
        tree,
        unicast,
    }
}

/// Transport metrics read from one traced shaped run.
struct TransportMetrics {
    /// Inter-node bytes over the time the inter-node links were actually
    /// busy moving them (the transport's per-endpoint, per-class shaping
    /// accounting), in GB/s — the NIC rate the shaper caps at 23. Unlike
    /// dividing by matched `Sent -> Received` spans, this excludes credit
    /// and endpoint queueing time, which is *waiting*, not link busyness.
    effective_gbps: f64,
    /// The same rate for the intra-node link class (cap 50).
    intra_gbps: f64,
    /// Received events with a matching Sent.
    matched_transfers: usize,
    /// Matched transfers on inter-node links.
    matched_inter: usize,
    /// Matched transfers on intra-node links.
    matched_intra: usize,
    /// Summed per-link busy time (seconds, all classes).
    link_busy_s: f64,
    /// Union length of all in-flight spans (wall-clock seconds some
    /// transfer was in flight, queueing included).
    comm_busy_s: f64,
    /// Fraction of `comm_busy_s` during which some `Gemm` was running.
    overlap_fraction: f64,
}

fn transport_metrics(report: &ExecReport) -> TransportMetrics {
    let trace = report.trace.as_ref().expect("tracing was enabled");
    let mut sent_at: HashMap<(String, usize, usize, u32), u64> = HashMap::new();
    for e in &trace.comm_events {
        if e.phase == TracePhase::Sent {
            sent_at.entry((format!("{:?}", e.key), e.src, e.dst, e.epoch)).or_insert(e.t_ns);
        }
    }
    let mut all_spans: Vec<(u64, u64)> = Vec::new();
    let (mut matched_inter, mut matched_intra) = (0usize, 0usize);
    let (mut inter_bytes, mut intra_bytes) = (0u64, 0u64);
    for e in &trace.comm_events {
        if e.phase != TracePhase::Received {
            continue;
        }
        if let Some(&s) = sent_at.get(&(format!("{:?}", e.key), e.src, e.dst, e.epoch)) {
            if e.t_ns > s {
                all_spans.push((s, e.t_ns));
                match e.class {
                    LinkClass::Inter => {
                        matched_inter += 1;
                        inter_bytes += e.bytes;
                    }
                    _ => {
                        matched_intra += 1;
                        intra_bytes += e.bytes;
                    }
                }
            }
        }
    }
    let matched_transfers = all_spans.len();
    // Per-link busy time, as the transport measured it: each endpoint
    // accounts the shaping delay of every frame it delivered against the
    // frame's link class.
    let (inter_busy_ns, intra_busy_ns) = report
        .comm
        .iter()
        .fold((0u64, 0u64), |(e, a), n| (e + n.inter_busy_ns, a + n.intra_busy_ns));
    let rate = |bytes: u64, busy_ns: u64| {
        if busy_ns > 0 {
            bytes as f64 / (busy_ns as f64 / 1e9) / 1e9
        } else {
            0.0
        }
    };
    let comm_union = union_intervals(all_spans);
    let gemm_union = union_intervals(
        trace
            .records
            .iter()
            .filter(|r| r.kind == "Gemm")
            .map(|r| (r.span.start_ns, r.span.end_ns))
            .collect(),
    );
    let comm_busy: u64 = comm_union.iter().map(|(a, b)| b - a).sum();
    let overlap = intersection_len(&comm_union, &gemm_union);
    TransportMetrics {
        effective_gbps: rate(inter_bytes, inter_busy_ns),
        intra_gbps: rate(intra_bytes, intra_busy_ns),
        matched_transfers,
        matched_inter,
        matched_intra,
        link_busy_s: (inter_busy_ns + intra_busy_ns) as f64 / 1e9,
        comm_busy_s: comm_busy as f64 / 1e9,
        overlap_fraction: if comm_busy > 0 {
            overlap as f64 / comm_busy as f64
        } else {
            0.0
        },
    }
}

/// Sorts and merges intervals into a disjoint union.
fn union_intervals(mut spans: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    spans.retain(|(a, b)| b > a);
    spans.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(spans.len());
    for (a, b) in spans {
        match out.last_mut() {
            Some((_, e)) if a <= *e => *e = (*e).max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

/// Total overlap length of two disjoint sorted interval unions.
fn intersection_len(xs: &[(u64, u64)], ys: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut total) = (0, 0, 0u64);
    while i < xs.len() && j < ys.len() {
        let lo = xs[i].0.max(ys[j].0);
        let hi = xs[i].1.min(ys[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if xs[i].1 <= ys[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

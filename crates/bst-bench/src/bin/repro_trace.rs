//! Renders the execution profile behind the paper's §5.2 observation that
//! "the arithmetic intensity ... is too low to fully exploit the GPUs" and
//! "GPU I/O dominates the execution time".
//!
//! Two modes:
//!
//! * **Simulator** (default): an ASCII Gantt of the simulated GPUs (`#`
//!   compute, `-` host↔device transfer) for a reduced C65H132-style run,
//!   plus per-GPU compute utilisation.
//! * **Numeric** (`--numeric`): actually executes the contraction on the
//!   `bst-runtime` dataflow engine with tracing on, prints the per-kind /
//!   per-device text summary, and writes a `chrome://tracing` JSON profile.
//!   The emitted JSON is re-parsed and the executor-level trace invariants
//!   are checked; any violation exits non-zero, so CI can gate on it.
//!
//! A third mode smoke-tests the fault-injection subsystem: with
//! `--faults SEED` the same problem is executed twice — once fault-free,
//! once with ~8% transient GenB/alloc/transfer faults (plus lane stalls)
//! seeded from `SEED` — and the run exits non-zero unless the executor
//! recovered, the two results agree within 1e-10, and the faulted trace
//! still satisfies every invariant.
//!
//! Usage:
//! ```text
//! repro_trace [v1|v2|v3]                                        # simulator Gantt
//! repro_trace --numeric [--tiny] [--out FILE] [--faults SEED]   # traced numeric run
//! ```

use bst_bench::{check_chrome_trace, tiny_numeric_spec, traced_numeric_report, traced_numeric_run};
use bst_chem::{CcsdProblem, Molecule, ScreeningParams, TilingSpec};
use bst_contract::{
    validate_trace_invariants, DeviceConfig, ExecOptions, ExecutionPlan, FaultPlan, GridConfig,
    PlannerConfig, ProblemSpec,
};
use bst_sim::replay::{simulate_traced, Trace};
use bst_sim::Platform;
use bst_sparse::generate::{generate, SyntheticParams};

const USAGE: &str = "usage: repro_trace [v1|v2|v3] | repro_trace --numeric \
[--tiny] [--nodes N] [--out FILE] [--faults SEED]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--numeric") {
        numeric_mode(&args);
    } else {
        let tiling = args.first().cloned().unwrap_or_else(|| "v1".to_string());
        simulator_mode(&tiling);
    }
}

/// The traced numeric run: execute, summarise, export, self-validate.
fn numeric_mode(args: &[String]) {
    let mut tiny = false;
    let mut nodes = 2usize;
    let mut out_path = "results/trace.json".to_string();
    let mut faults: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--numeric" => {}
            "--tiny" => tiny = true,
            "--nodes" => {
                let s = it.next().unwrap_or_else(|| panic!("--nodes needs a count"));
                nodes = s.parse().unwrap_or_else(|_| panic!("--nodes must be a usize, got {s}"));
                assert!(nodes >= 1, "--nodes must be >= 1");
            }
            "--out" => {
                out_path = it.next().unwrap_or_else(|| panic!("--out needs a file path")).clone()
            }
            "--faults" => {
                let s = it.next().unwrap_or_else(|| panic!("--faults needs a seed"));
                faults = Some(s.parse().unwrap_or_else(|_| panic!("--faults seed must be a u64, got {s}")));
            }
            other => panic!("unknown argument {other}\n{USAGE}"),
        }
    }

    // --tiny: the CI-sized problem (sub-second). Default: a ~10x larger
    // synthetic contraction so the profile has visible phases.
    let (spec, gpu_mem): (ProblemSpec, u64) = if tiny {
        (tiny_numeric_spec(42), 1 << 21)
    } else {
        let prob = generate(&SyntheticParams {
            m: 400,
            n: 3200,
            k: 3200,
            density: 0.5,
            tile_min: 48,
            tile_max: 128,
            seed: 42,
        });
        (ProblemSpec::new(prob.a, prob.b, None), 1 << 23)
    };

    if let Some(seed) = faults {
        faults_mode(&spec, nodes, gpu_mem, seed, &out_path);
        return;
    }
    // Three legs. The Gemm comparison (baseline vs kernel leg) holds the
    // thread structure fixed — GenB serialized in both — so per-task spans
    // are not skewed by preemption from extra worker threads; the fan-out
    // effect is then shown separately as GenB span overlap.
    let baseline_opts = ExecOptions {
        kernel: bst_contract::KernelSelect::Baseline,
        genb_workers: 0,
        ..ExecOptions::default()
    };
    let kernel_opts = ExecOptions {
        kernel: bst_contract::KernelSelect::Autotune,
        genb_workers: 0,
        ..ExecOptions::default()
    };
    let opts = ExecOptions {
        kernel: bst_contract::KernelSelect::Autotune,
        ..ExecOptions::default()
    };
    // Interleave the two timing legs three times and score each leg by its
    // per-task best-of-3 Gemm time: the same deterministic task set runs in
    // every repetition, so taking each task's fastest span filters out the
    // preemption hits an oversubscribed host injects, and interleaving
    // cancels slow drift. (Totals of a single run swing by 2x on a busy
    // single-core box — per-task minima are stable.)
    let mut baseline: Option<bst_contract::ExecReport> = None;
    let mut kernel_leg: Option<bst_contract::ExecReport> = None;
    let mut baseline_best: std::collections::HashMap<String, u64> = Default::default();
    let mut kernel_best: std::collections::HashMap<String, u64> = Default::default();
    let fold_best = |best: &mut std::collections::HashMap<String, u64>,
                     r: &bst_contract::ExecReport| {
        for rec in &r.trace.as_ref().expect("traced").records {
            if rec.kind == "Gemm" {
                let ns = rec.span.end_ns - rec.span.start_ns;
                best.entry(rec.detail.clone())
                    .and_modify(|b| *b = (*b).min(ns))
                    .or_insert(ns);
            }
        }
    };
    for _ in 0..3 {
        let b = traced_numeric_report(&spec, nodes, 2, gpu_mem, 42, baseline_opts);
        fold_best(&mut baseline_best, &b);
        baseline = Some(b);
        let k = traced_numeric_report(&spec, nodes, 2, gpu_mem, 42, kernel_opts);
        fold_best(&mut kernel_best, &k);
        kernel_leg = Some(k);
    }
    let (baseline, kernel_leg) = (baseline.unwrap(), kernel_leg.unwrap());
    let gemm_best_ms =
        |best: &std::collections::HashMap<String, u64>| best.values().sum::<u64>() as f64 / 1e6;
    let (baseline_gemm_ms, kernel_gemm_ms) = (gemm_best_ms(&baseline_best), gemm_best_ms(&kernel_best));
    let report = traced_numeric_report(&spec, nodes, 2, gpu_mem, 42, opts);

    println!(
        "# traced numeric contraction — {}x{}x{} on {nodes} nodes x 2 GPUs ({} MiB each)",
        spec.a.rows(),
        spec.b.cols(),
        spec.a.cols(),
        gpu_mem >> 20
    );
    print!("{}", report.text_summary(gpu_mem));
    print_hot_path_comparison(baseline_gemm_ms, kernel_gemm_ms, &baseline, &kernel_leg, &report);

    let trace = report.trace.as_ref().expect("tracing was enabled");
    let json = trace.chrome_trace_json();
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write trace JSON");

    // Self-validation: the emitted document must re-parse as a Chrome
    // trace, and the schedule must satisfy the §3.2/§4 trace invariants.
    match check_chrome_trace(&json) {
        Ok(n) => println!("# wrote {out_path}: {n} events (open in chrome://tracing)"),
        Err(e) => {
            eprintln!("error: emitted trace does not validate: {e}");
            std::process::exit(1);
        }
    }
    let violations = validate_trace_invariants(&report, opts, gpu_mem);
    if !violations.is_empty() {
        eprintln!("error: trace invariants violated:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    println!("# trace invariants OK ({} task records)", trace.records.len());
}

/// The fault-injection smoke run: execute fault-free, re-execute with ~8%
/// transient faults on every injection site, and gate on recovery —
/// matching numbers (1e-10), intact trace invariants, populated recovery
/// counters. Exits non-zero on any violation so CI can run this directly.
fn faults_mode(spec: &ProblemSpec, nodes: usize, gpu_mem: u64, seed: u64, out_path: &str) {
    let clean_opts = ExecOptions::builder().tracing(true).build();
    let (c_clean, _) = traced_numeric_run(spec, nodes, 2, gpu_mem, 42, clean_opts);

    let plan = FaultPlan::transient(seed, 0.08);
    let opts = ExecOptions::builder().tracing(true).fault_plan(plan).build();
    let (c_faulted, report) = traced_numeric_run(spec, nodes, 2, gpu_mem, 42, opts);

    println!(
        "# fault-injection smoke — {}x{}x{} on {nodes} nodes x 2 GPUs, seed {seed}, 8% transient faults",
        spec.a.rows(),
        spec.b.cols(),
        spec.a.cols()
    );
    print!("{}", report.text_summary(gpu_mem));

    let r = &report.recovery;
    if r.injected_genb + r.injected_alloc + r.injected_send == 0 {
        eprintln!("error: 8% fault rates injected nothing — injection sites are dead");
        std::process::exit(1);
    }
    let diff = c_faulted.max_abs_diff(&c_clean);
    if diff > 1e-10 {
        eprintln!("error: recovered result diverged from the fault-free run by {diff:.3e}");
        std::process::exit(1);
    }
    println!("# recovered result matches fault-free run (max |diff| = {diff:.3e})");

    let violations = validate_trace_invariants(&report, opts, gpu_mem);
    if !violations.is_empty() {
        eprintln!("error: trace invariants violated under faults:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    let trace = report.trace.as_ref().expect("tracing was enabled");
    let json = trace.chrome_trace_json();
    if let Some(dir) = std::path::Path::new(out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(out_path, &json).expect("write trace JSON");
    match check_chrome_trace(&json) {
        Ok(n) => println!("# wrote {out_path}: {n} events (retried tasks carry an \"attempts\" arg)"),
        Err(e) => {
            eprintln!("error: emitted trace does not validate: {e}");
            std::process::exit(1);
        }
    }
    println!("# fault-injection smoke OK ({} task records)", trace.records.len());
}

/// Prints the baseline-vs-tuned hot-path deltas the PR-1 tracer measures:
/// per-kind Gemm time (kernel dispatch, at identical thread structure), the
/// kernel mix the autotuner chose, GenB span overlap from the worker
/// fan-out, and tile-pool recycling.
fn print_hot_path_comparison(
    baseline_gemm_ms: f64,
    kernel_gemm_ms: f64,
    baseline: &bst_contract::ExecReport,
    kernel_leg: &bst_contract::ExecReport,
    tuned: &bst_contract::ExecReport,
) {
    println!("# hot path vs baseline (blocked kernel, serialized GenB):");
    println!(
        "#   Gemm time, per-task best of 3 (autotuned dispatch, same thread layout): {baseline_gemm_ms:.1} ms -> {kernel_gemm_ms:.1} ms ({:+.1}%)",
        (kernel_gemm_ms - baseline_gemm_ms) / baseline_gemm_ms * 100.0
    );
    let kernels: Vec<String> = kernel_leg
        .gemm_kernel_counts
        .iter()
        .map(|(name, n)| format!("{name}:{n}"))
        .collect();
    println!("#   kernel mix: {}", kernels.join(" "));
    println!(
        "#   GenB max concurrency per node: {} -> {} (workers fanned out)",
        baseline.max_concurrent_genb(),
        tuned.max_concurrent_genb()
    );
    let (hits, misses): (u64, u64) = tuned
        .pool_stats
        .iter()
        .fold((0, 0), |(h, m), s| (h + s.hits, m + s.misses));
    println!(
        "#   tile-pool reuse: {hits} hits / {misses} misses ({:.0}% recycled)",
        hits as f64 / (hits + misses).max(1) as f64 * 100.0
    );
}

/// The original simulator Gantt mode.
fn simulator_mode(tiling: &str) {
    let spec_t = match tiling {
        "v1" => TilingSpec::v1(),
        "v2" => TilingSpec::v2(),
        "v3" => TilingSpec::v3(),
        other => panic!("unknown tiling {other}\n{USAGE}"),
    };
    let molecule = Molecule::alkane(40);
    let spec_t = spec_t.scaled_for(&molecule);
    let problem = CcsdProblem::build(&molecule, spec_t, ScreeningParams::default(), 42);
    let spec = ProblemSpec::new(
        problem.t.clone(),
        problem.v.clone(),
        Some(problem.r.shape().clone()),
    );

    let platform = Platform::summit(2);
    let config = PlannerConfig::paper(
        GridConfig::from_nodes(2, 1),
        DeviceConfig {
            gpus_per_node: platform.gpus_per_node,
            gpu_mem_bytes: platform.gpu_mem_bytes,
        },
    );
    let plan = ExecutionPlan::build(&spec, config).expect("plan");
    let mut trace = Trace::default();
    let report = simulate_traced(&spec, &plan, &platform, Some(&mut trace));

    println!(
        "# GPU execution profile — {} tiling {tiling}, 2 nodes x 6 GPUs",
        molecule.formula()
    );
    println!(
        "# makespan {:.2} s, {:.1} Tflop/s total ({:.2} per GPU)",
        report.makespan_s,
        report.tflops(),
        report.tflops_per_gpu(platform.total_gpus())
    );
    println!("# '#' compute, '-' transfer; right column = compute utilisation");
    print!("{}", trace.gantt(report.makespan_s, 100));
    let mean_util: f64 = trace
        .gpus
        .iter()
        .map(|g| g.compute_utilization(report.makespan_s))
        .sum::<f64>()
        / trace.gpus.len() as f64;
    println!(
        "# mean compute utilisation: {:.0}% — the rest is GPU I/O and dependencies",
        mean_util * 100.0
    );
}

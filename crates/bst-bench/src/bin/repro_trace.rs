//! Renders the execution profile behind the paper's §5.2 observation that
//! "the arithmetic intensity ... is too low to fully exploit the GPUs" and
//! "GPU I/O dominates the execution time": an ASCII Gantt of the simulated
//! GPUs (`#` compute, `-` host↔device transfer) for a reduced C65H132-style
//! run, plus per-GPU compute utilisation.
//!
//! Usage: `repro_trace [v1|v2|v3]`

use bst_chem::{CcsdProblem, Molecule, ScreeningParams, TilingSpec};
use bst_contract::{DeviceConfig, ExecutionPlan, GridConfig, PlannerConfig, ProblemSpec};
use bst_sim::replay::{simulate_traced, Trace};
use bst_sim::Platform;

fn main() {
    let tiling = std::env::args().nth(1).unwrap_or_else(|| "v1".to_string());
    let spec_t = match tiling.as_str() {
        "v1" => TilingSpec::v1(),
        "v2" => TilingSpec::v2(),
        "v3" => TilingSpec::v3(),
        other => panic!("unknown tiling {other}"),
    };
    let molecule = Molecule::alkane(40);
    let spec_t = spec_t.scaled_for(&molecule);
    let problem = CcsdProblem::build(&molecule, spec_t, ScreeningParams::default(), 42);
    let spec = ProblemSpec::new(
        problem.t.clone(),
        problem.v.clone(),
        Some(problem.r.shape().clone()),
    );

    let platform = Platform::summit(2);
    let config = PlannerConfig::paper(
        GridConfig::from_nodes(2, 1),
        DeviceConfig {
            gpus_per_node: platform.gpus_per_node,
            gpu_mem_bytes: platform.gpu_mem_bytes,
        },
    );
    let plan = ExecutionPlan::build(&spec, config).expect("plan");
    let mut trace = Trace::default();
    let report = simulate_traced(&spec, &plan, &platform, Some(&mut trace));

    println!(
        "# GPU execution profile — {} tiling {tiling}, 2 nodes x 6 GPUs",
        molecule.formula()
    );
    println!(
        "# makespan {:.2} s, {:.1} Tflop/s total ({:.2} per GPU)",
        report.makespan_s,
        report.tflops(),
        report.tflops_per_gpu(platform.total_gpus())
    );
    println!("# '#' compute, '-' transfer; right column = compute utilisation");
    print!("{}", trace.gantt(report.makespan_s, 100));
    let mean_util: f64 = trace
        .gpus
        .iter()
        .map(|g| g.compute_utilization(report.makespan_s))
        .sum::<f64>()
        / trace.gpus.len() as f64;
    println!("# mean compute utilisation: {:.0}% — the rest is GPU I/O and dependencies", mean_util * 100.0);
}

//! Ablation study of the algorithm's design choices (not a paper figure —
//! it quantifies the §3.2 decisions the paper motivates in prose):
//!
//! 1. **column assignment** — mirrored-cyclic (paper) vs plain cyclic vs
//!    LPT greedy: load imbalance and simulated time;
//! 2. **block packing** — worst-fit (paper) vs first-fit vs best-fit:
//!    block counts, A re-transfer volume and simulated time;
//! 3. **prefetch depth** — 0 (no overlap) vs 1 (paper) vs 2: simulated
//!    time (depth 2 shrinks the chunk fraction to stay within memory);
//! 4. **the grid-row parameter p** — the §3.2 trade-off between `B`
//!    replication and `A` broadcast volume.
//!
//! Usage: `repro_ablations [--quick]`

use bst_bench::{ccsd_spec, synthetic_spec, Args};
use bst_chem::{CcsdProblem, TilingSpec};
use bst_contract::config::{AssignPolicy, PackPolicy};
use bst_contract::{DeviceConfig, ExecutionPlan, GridConfig, PlannerConfig, ProblemSpec};
use bst_sim::{simulate, Platform};

fn base_config(platform: &Platform, p: usize) -> PlannerConfig {
    PlannerConfig::paper(
        GridConfig::from_nodes(platform.nodes, p),
        DeviceConfig {
            gpus_per_node: platform.gpus_per_node,
            gpu_mem_bytes: platform.gpu_mem_bytes,
        },
    )
}

fn run(spec: &ProblemSpec, platform: &Platform, config: PlannerConfig) -> (f64, f64, u64, u64) {
    let plan = ExecutionPlan::build(spec, config).expect("plan");
    let stats = plan.stats(spec);
    let report = simulate(spec, &plan, platform);
    (
        report.makespan_s,
        stats.load_imbalance,
        stats.num_blocks,
        stats.a_h2d_bytes,
    )
}

fn main() {
    let args = Args::parse();
    let nk = if args.quick { 96_000 } else { 192_000 };
    let platform = Platform::summit(16);
    let spec = synthetic_spec(nk, 0.5, 42);
    println!("# Ablations — synthetic N=K={nk}, density 0.5, 16 nodes of Summit");

    println!("\n## 1. Column assignment (§3.2.1)");
    println!(
        "{:<16} {:>10} {:>12}",
        "policy", "time (s)", "imbalance"
    );
    for (name, policy) in [
        ("mirrored-cyclic", AssignPolicy::MirroredCyclic),
        ("cyclic", AssignPolicy::Cyclic),
        ("LPT greedy", AssignPolicy::Lpt),
    ] {
        let mut config = base_config(&platform, 2);
        config.assign_policy = policy;
        let (t, imb, _, _) = run(&spec, &platform, config);
        println!("{name:<16} {t:>10.3} {imb:>12.3}");
    }

    println!("\n## 2. Block packing (§3.2.2)");
    println!(
        "{:<16} {:>10} {:>10} {:>14}",
        "policy", "time (s)", "#blocks", "A h2d (GB)"
    );
    for (name, policy) in [
        ("worst-fit", PackPolicy::WorstFit),
        ("first-fit", PackPolicy::FirstFit),
        ("best-fit", PackPolicy::BestFit),
    ] {
        let mut config = base_config(&platform, 2);
        config.pack_policy = policy;
        let (t, _, blocks, a_h2d) = run(&spec, &platform, config);
        println!(
            "{name:<16} {t:>10.3} {blocks:>10} {:>14.1}",
            a_h2d as f64 / 1e9
        );
    }

    println!("\n## 3. Prefetch depth (§3.2.3)");
    println!("{:<16} {:>10}", "depth", "time (s)");
    for depth in [0usize, 1, 2] {
        let mut config = base_config(&platform, 2);
        config.prefetch_depth = depth;
        // Keep total chunk memory at 50%: fraction = 0.5 / (depth + 1).
        config.chunk_mem_fraction = 0.5 / (depth as f64 + 1.0);
        let (t, _, _, _) = run(&spec, &platform, config);
        let label = if depth == 1 { format!("{depth} (paper)") } else { depth.to_string() };
        println!("{label:<16} {t:>10.3}");
    }

    println!("\n## 4. The rejected alternative of §3.1: C reductions vs column replication");
    // "Technically, this amounts to simulating the product B <- A^T x C and
    // to perform a final reduction of C tiles across grid columns. To avoid
    // these costly reductions, an alternative is to distribute full columns
    // of B to processors..." — quantify both C volumes for C65H132 v2.
    {
        let problem = CcsdProblem::c65h132(TilingSpec::v2(), 42);
        let cspec = ccsd_spec(&problem);
        let c_bytes = problem.r.bytes();
        let q = 16u64;
        println!(
            "reduction variant: every C tile reduced across q=16 grid columns: {:.2} GB of C traffic",
            ((q - 1) * c_bytes) as f64 / 1e9
        );
        let config = base_config(&platform, 1);
        let plan = ExecutionPlan::build(&cspec, config).expect("plan");
        let stats = plan.stats(&cspec);
        println!(
            "the paper's variant: final C moves only: {:.2} GB (C is produced where it lives or moved once)",
            stats.c_network_bytes as f64 / 1e9
        );
    }

    println!("\n## 5. Grid rows p (§3.2 trade-off) — C65H132 v2 on 16 nodes");
    let problem = CcsdProblem::c65h132(TilingSpec::v2(), 42);
    let cspec = ccsd_spec(&problem);
    println!(
        "{:<8} {:>10} {:>16} {:>16}",
        "p", "time (s)", "A network (GB)", "B generated (GB)"
    );
    for p in [1usize, 2, 4, 8, 16] {
        let config = base_config(&platform, p);
        match ExecutionPlan::build(&cspec, config) {
            Ok(plan) => {
                let stats = plan.stats(&cspec);
                let report = simulate(&cspec, &plan, &platform);
                println!(
                    "{p:<8} {:>10.2} {:>16.2} {:>16.2}",
                    report.makespan_s,
                    stats.a_network_bytes as f64 / 1e9,
                    stats.b_generated_bytes as f64 / 1e9
                );
            }
            Err(e) => println!("{p:<8} plan failed: {e}"),
        }
    }
}

//! Reproduces **Table 1** of the paper: problem traits of the C65H132 /
//! def2-SVP ABCD contraction for the three tilings v1 (finest) … v3
//! (coarsest).
//!
//! Paper values for comparison:
//!   M×N×K            26576 × 2464900 × 2464900   (ours: M = O² = 38416 —
//!                    the paper's M reflects a symmetry-reduced ij range)
//!   #flop            877 / 923 / 1237 Tflop
//!   #flop (opt.)     850 / 899 / 1209 Tflop
//!   #GEMM tasks      1 899 971 / 468 368 / 67 818
//!   #tasks (opt.)    1 843 309 / 455 159 / 66 315
//!   rows/block       700 / \[500;2500\] / \[1000;5000\]
//!   density T        9.8 / 10.2 / 13.2 %
//!   density V        2.4 / 2.6 / 3.1 %
//!   density R (opt.) 14.9 / 16.1 / 21.7 %
//!
//! Usage: `repro_table1 [--carbons N] [--trace FILE.json]` (default 65;
//! smaller = faster). `--trace` rides along a tiny traced *numeric*
//! execution and writes its Chrome-trace profile.

use bst_chem::{CcsdProblem, Molecule, ProblemTraits, ScreeningParams, TilingSpec};

fn main() {
    let mut carbons = 65usize;
    let mut trace: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--carbons" => {
                carbons = args
                    .next()
                    .expect("--carbons needs a value")
                    .parse()
                    .expect("--carbons must be an integer");
            }
            "--trace" => trace = Some(args.next().expect("--trace needs a file path")),
            other => panic!("unknown argument {other}"),
        }
    }

    let molecule = Molecule::alkane(carbons);
    println!(
        "# Table 1 reproduction — {} (O = {}, U = {})",
        molecule.formula(),
        bst_chem::basis::occupied_rank(&molecule),
        bst_chem::basis::ao_rank(&molecule)
    );
    println!(
        "{:<22} {:>14} {:>14} {:>14}",
        "trait", "v1", "v2", "v3"
    );

    let mut all = Vec::new();
    for spec in [TilingSpec::v1(), TilingSpec::v2(), TilingSpec::v3()] {
        let spec = if carbons == 65 { spec } else { spec.scaled_for(&molecule) };
        let p = CcsdProblem::build(&molecule, spec, ScreeningParams::default(), 42);
        all.push(ProblemTraits::compute(&p));
    }

    let row = |name: &str, f: &dyn Fn(&ProblemTraits) -> String| {
        println!(
            "{:<22} {:>14} {:>14} {:>14}",
            name,
            f(&all[0]),
            f(&all[1]),
            f(&all[2])
        );
    };
    row("M x N x K", &|t| format!("{}x{}x{}", t.m, t.n, t.k));
    row("#flop (Tflop)", &|t| format!("{:.0}", t.flops as f64 / 1e12));
    row("#flop opt (Tflop)", &|t| format!("{:.0}", t.flops_opt as f64 / 1e12));
    row("#GEMM tasks", &|t| format!("{}", t.gemm_tasks));
    row("#GEMM tasks opt", &|t| format!("{}", t.gemm_tasks_opt));
    row("mean rows/block", &|t| format!("{:.0}", t.mean_block_rows));
    row("rows/block range", &|t| {
        format!("[{};{}]", t.block_rows_range.0, t.block_rows_range.1)
    });
    row("density T (%)", &|t| format!("{:.1}", t.density_t * 100.0));
    row("density V (%)", &|t| format!("{:.1}", t.density_v * 100.0));
    row("density R opt (%)", &|t| format!("{:.1}", t.density_r_opt * 100.0));

    if let Some(path) = &trace {
        let summary =
            bst_bench::emit_numeric_trace(path).expect("traced numeric run must validate");
        println!("# traced numeric reference run — wrote {path}");
        print!("{summary}");
    }
}

//! Reproduces the paper's §5.1 comparison with its reference \[22\]:
//! "Comparing with the results that were obtained in \[22\] on the same
//! machine ... 80% to 90% of the GEMM-peak should be achievable. This
//! difference is due to the problem shape, which required a different
//! algorithm."
//!
//! Runs the dense-oriented *stationary-C* algorithm and the paper's
//! *stationary-B* algorithm on (a) the square dense 48k problem and (b) a
//! short-and-wide CCSD-shaped problem, showing the crossover that
//! motivated the paper's design.
//!
//! Usage: `repro_dense_comparison`

use bst_bench::synthetic_spec;
use bst_contract::stationary_c::StationaryCPlan;
use bst_contract::{DeviceConfig, ExecutionPlan, GridConfig, PlannerConfig, ProblemSpec};
use bst_sim::replay::simulate_best_p;
use bst_sim::stationary::simulate_stationary_c;
use bst_sim::{simulate, Platform};
use bst_sparse::generate::{generate, SyntheticParams};

fn stationary_c_best_p(
    spec: &ProblemSpec,
    platform: &Platform,
) -> (usize, bst_sim::stationary::StationaryCReport) {
    let mut best: Option<(usize, bst_sim::stationary::StationaryCReport)> = None;
    for p in 1..=platform.nodes {
        if platform.nodes % p != 0 {
            continue;
        }
        let config = PlannerConfig::paper(
            GridConfig::from_nodes(platform.nodes, p),
            DeviceConfig {
                gpus_per_node: platform.gpus_per_node,
                gpu_mem_bytes: platform.gpu_mem_bytes,
            },
        );
        if let Ok(plan) = StationaryCPlan::build(spec, config) {
            let blocks: usize = plan
                .nodes
                .iter()
                .flat_map(|n| n.iter())
                .map(|g| g.blocks.len())
                .sum();
            let r = simulate_stationary_c(spec, &plan, platform);
            eprintln!(
                "  [stationary-C] p={p}: {:.3} s, {:.1} Tflop/s, {blocks} blocks, {:.1} GB h2d",
                r.makespan_s,
                r.tflops(),
                r.h2d_bytes as f64 / 1e9
            );
            if best.as_ref().map(|(_, b)| r.makespan_s < b.makespan_s).unwrap_or(true) {
                best = Some((p, r));
            }
        }
    }
    best.expect("at least p = 1 plans")
}

fn main() {
    let platform = Platform::summit(16);
    let device = DeviceConfig {
        gpus_per_node: platform.gpus_per_node,
        gpu_mem_bytes: platform.gpu_mem_bytes,
    };

    println!("# [22] comparison — 16 nodes of Summit (aggregate GEMM peak ~672 Tflop/s)");
    println!("\n## (a) square dense M = N = K = 48k");
    // [22] picks its own uniform tiling for a dense problem; the paper's
    // Fig-2 benchmark uses the irregular tiling for the B-stationary run.
    let t = bst_tile::Tiling::uniform(48_000, 1_600);
    let square_uniform = ProblemSpec::new(
        bst_sparse::MatrixStructure::dense(t.clone(), t.clone()),
        bst_sparse::MatrixStructure::dense(t.clone(), t),
        None,
    );
    let square = synthetic_spec(48_000, 1.0, 42);
    let (pc, sc) = stationary_c_best_p(&square_uniform, &platform);
    let (pb, sb) = simulate_best_p(&square, &platform, device).unwrap();
    println!(
        "stationary-C (dense-oriented, [22], uniform tiles): {:.1} Tflop/s = {:.0}% of peak (p={pc}) — paper expects 80-90%",
        sc.tflops(),
        sc.tflops() / 672.0 * 100.0
    );
    println!(
        "stationary-B (the paper's, irregular tiles):        {:.1} Tflop/s = {:.0}% of peak (p={pb}) — paper measured 203 (30%)",
        sb.tflops(),
        sb.tflops() / 672.0 * 100.0
    );

    println!("\n## (b) network circulation on the CCSD shape (M = 26k, N = K = 640k, d = 0.25)");
    println!("# the paper's §3.1 rationale: \"to minimize network traffic, avoid circulating");
    println!("# the largest of the matrices, so B will be stationary\"");
    let prob = generate(&SyntheticParams {
        m: 26_000,
        n: 640_000,
        k: 640_000,
        density: 0.25,
        tile_min: 512,
        tile_max: 2048,
        seed: 42,
    });
    let wide = ProblemSpec::new(prob.a, prob.b, None);
    // Stationary-C on a square grid (what a dense 2-d algorithm uses): B
    // panels circulate along grid columns.
    let sc_plan = StationaryCPlan::build(
        &wide,
        PlannerConfig::paper(GridConfig::from_nodes(16, 4), device),
    )
    .unwrap();
    let mut sc_b_net = 0u64;
    let (p, q) = (4usize, 4usize);
    for (ni, gpu_plans) in sc_plan.nodes.iter().enumerate() {
        let pr = ni / q;
        let mut seen = std::collections::HashSet::new();
        for gp in gpu_plans {
            for block in &gp.blocks {
                for chunk in &block.k_chunks {
                    for &k in &chunk.ks {
                        for &j in &block.cols {
                            if wide.b.shape().is_nonzero(k as usize, j as usize)
                                && (k as usize) % p != pr
                                && seen.insert((k, j))
                            {
                                sc_b_net += wide.b.row_tiling().size(k as usize)
                                    * wide.b.col_tiling().size(j as usize)
                                    * 8;
                            }
                        }
                    }
                }
            }
        }
    }
    let config = PlannerConfig::paper(GridConfig::from_nodes(16, 1), device);
    let plan = ExecutionPlan::build(&wide, config).unwrap();
    let sb = simulate(&wide, &plan, &platform);
    println!(
        "stationary-C (4x4 grid): circulates {:.2} TB of B over the network",
        sc_b_net as f64 / 1e12
    );
    println!(
        "stationary-B (1x16 grid): circulates 0 B of B, {:.3} TB of A",
        sb.a_network_bytes as f64 / 1e12
    );
    println!("# B circulation exceeds A circulation by >10x — the paper's design rationale");
}

//! Reproduces **Figure 8**: performance *per GPU* (Tflop/s) vs GPU count
//! for the C65H132 contraction, tilings v1/v2/v3.
//!
//! Paper shape targets: per-GPU performance follows the inverse of tiling
//! fineness — v3 (coarsest, biggest tiles) peaks around 2.5 Tflop/s (≈35%
//! of practical peak) at few GPUs and degrades to ≈11% at 108 GPUs; v1
//! (finest) stays lowest throughout. Sparsity limits tile re-use, so GPU
//! I/O dominates.
//!
//! Usage: `repro_fig8 [--quick]`

use bst_bench::{scaling_sweep, Args};

fn main() {
    let args = Args::parse();
    let points = scaling_sweep(args.gpu_counts(), 42);

    println!("# Fig 8 — Performance per GPU (Tflop/s) vs #GPUs, C65H132");
    println!("{:>6} {:>10} {:>10} {:>10}", "#GPUs", "v1", "v2", "v3");
    for &g in args.gpu_counts() {
        let v = |label: &str| {
            points
                .iter()
                .find(|p| p.tiling == label && p.gpus == g)
                .map(|p| p.report.tflops_per_gpu(g))
                .unwrap()
        };
        println!(
            "{:>6} {:>10.2} {:>10.2} {:>10.2}",
            g,
            v("v1"),
            v("v2"),
            v("v3")
        );
    }
}

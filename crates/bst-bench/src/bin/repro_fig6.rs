//! Reproduces **Figure 6**: tile-size distribution (fused-tile megabytes)
//! for the three tilings of the C65H132 test case.
//!
//! Paper shape targets: v1 concentrates around 2.5–5.5 MB tiles, v2 spreads
//! over 0–40 MB, v3 over 0–200 MB — coarser clustering makes tiles larger
//! and more irregular.
//!
//! Usage: `repro_fig6`

use bst_bench::c65h132_problems;

fn main() {
    println!("# Fig 6 — Tile size distribution (MB) of the B/C column tiling, C65H132");
    for (label, p) in c65h132_problems(42) {
        // Tile bytes of the fused cd x ab grid: row size x col size x 8.
        let t = p.v.row_tiling().clone();
        let sizes: Vec<f64> = t
            .sizes()
            .flat_map(|r| t.sizes().map(move |c| (r * c * 8) as f64 / 1e6))
            .collect();
        let max = sizes.iter().cloned().fold(0.0, f64::max);
        let bins = 16usize;
        let mut hist = vec![0usize; bins];
        for &s in &sizes {
            let b = ((s / max) * bins as f64) as usize;
            hist[b.min(bins - 1)] += 1;
        }
        let peak = *hist.iter().max().unwrap();
        println!(
            "\n{label}: {} fused tiles, min {:.2} MB, mean {:.2} MB, max {:.2} MB",
            sizes.len(),
            sizes.iter().cloned().fold(f64::INFINITY, f64::min),
            sizes.iter().sum::<f64>() / sizes.len() as f64,
            max
        );
        for (b, &count) in hist.iter().enumerate() {
            let lo = b as f64 * max / bins as f64;
            let hi = (b + 1) as f64 * max / bins as f64;
            let bar = "#".repeat((count * 50).div_ceil(peak.max(1)));
            println!("  [{lo:7.2},{hi:7.2}) {count:>7} {bar}");
        }
    }
}

//! Multi-process socket-transport reproduction: runs the same contraction
//! as a fleet of real OS processes over loopback sockets and emits a
//! self-validated `results/BENCH_net.json`.
//!
//! Four legs, each gated against an **in-process channel-transport
//! reference** computed with identical spec/plan/seeds:
//!
//! * **uds** — P workers over Unix-domain sockets: must be bit-identical
//!   (`max |diff| == 0.0`);
//! * **tcp** — the same fleet over loopback TCP: bit-identical;
//! * **reorder** — UDS with every worker's local delivery pipeline
//!   shuffling frames inside a window: bit-identical, proving the
//!   deterministic combine order absorbs network nondeterminism;
//! * **kill** — one worker is SIGKILLed after its first few data-frame
//!   sends; the launcher's heartbeat/EOF detection must catch it, respawn
//!   the fleet with the dead node written off, and the degraded re-plan
//!   must agree with the fault-free reference to 1e-10 (the accumulation
//!   order changes, so this leg is not bitwise).
//!
//! The binary re-executes **itself** as the worker processes: when the
//! first argument is `worker` it delegates straight to
//! [`bst_cli::run_worker`], so the fleet runs exactly the code path of
//! `bst worker` without needing the `bst` binary on disk.
//!
//! Usage:
//! ```text
//! repro_net [--tiny] [--out FILE]
//! repro_net worker --rank R --ranks N --connect ADDR ...   (internal)
//! ```

use bst_bench::minijson;
use bst_cli::{launch_config, run_launch, NetRunReport};

const USAGE: &str = "usage: repro_net [--tiny] [--out FILE]";

/// One leg's launch parameters and gates.
struct Leg {
    name: &'static str,
    transport: &'static str,
    reorder: Option<u64>,
    /// `Some((rank, die_after_sends))` arms the crash drill.
    kill: Option<(usize, u64)>,
}

/// One leg's measured outcome, ready for the JSON emitter.
struct LegResult {
    name: &'static str,
    transport: &'static str,
    workers: usize,
    attempts: usize,
    max_diff: f64,
    recovered_dead: Option<usize>,
    sent_frames: u64,
    recv_frames: u64,
}

fn run_leg(leg: &Leg, workers: usize, problem: &str, exe: &str) -> LegResult {
    let mut args: Vec<String> = vec![
        "launch".into(),
        "--synthetic".into(),
        problem.into(),
        "-n".into(),
        workers.to_string(),
        "--transport".into(),
        leg.transport.into(),
    ];
    if let Some(seed) = leg.reorder {
        args.push("--reorder".into());
        args.push(seed.to_string());
    }
    if let Some((rank, after)) = leg.kill {
        args.push("--kill".into());
        args.push(rank.to_string());
        args.push("--die-after".into());
        args.push(after.to_string());
    }
    let cli = bst_cli::parse(&args).unwrap_or_else(|e| panic!("leg {}: {}", leg.name, e.0));
    let lc = launch_config(&cli, vec![exe.to_string(), "worker".into()])
        .unwrap_or_else(|e| panic!("leg {}: {e}", leg.name));
    let NetRunReport { max_diff, outcome, .. } =
        run_launch(&cli, &lc).unwrap_or_else(|e| panic!("leg {}: {e}", leg.name));
    LegResult {
        name: leg.name,
        transport: leg.transport,
        workers,
        attempts: outcome.attempts,
        max_diff,
        recovered_dead: outcome.recovered_dead,
        sent_frames: outcome.stats.iter().map(|s| s.sent_msgs).sum(),
        recv_frames: outcome.stats.iter().map(|s| s.recv_msgs).sum(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Worker re-entry: `repro_net worker --rank R ...` IS a `bst worker`.
    if args.first().map(String::as_str) == Some("worker") {
        let cli = bst_cli::parse(&args).unwrap_or_else(|e| {
            eprintln!("repro_net worker: {}", e.0);
            std::process::exit(2);
        });
        if let Err(e) = bst_cli::run_worker(&cli) {
            eprintln!("repro_net worker: {e}");
            std::process::exit(1);
        }
        return;
    }

    let mut tiny = false;
    let mut out_path = "results/BENCH_net.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiny" => tiny = true,
            "--out" => {
                out_path = it.next().unwrap_or_else(|| panic!("--out needs a file path")).clone()
            }
            other => panic!("unknown argument {other}\n{USAGE}"),
        }
    }

    let workers = 4usize;
    let problem = if tiny { "64x320x320:0.6" } else { "100x800x800:0.6" };
    let exe = std::env::current_exe()
        .expect("own executable path")
        .to_string_lossy()
        .into_owned();

    println!("# multi-process socket transport — {workers} workers, problem {problem}");

    let legs = [
        Leg { name: "uds", transport: "uds", reorder: None, kill: None },
        Leg { name: "tcp", transport: "tcp", reorder: None, kill: None },
        Leg { name: "reorder", transport: "uds", reorder: Some(99), kill: None },
        Leg { name: "kill", transport: "uds", reorder: None, kill: Some((2, 3)) },
    ];
    let results: Vec<LegResult> =
        legs.iter().map(|leg| run_leg(leg, workers, problem, &exe)).collect();

    for r in &results {
        let recovered = match r.recovered_dead {
            Some(rank) => format!(", rank {rank} died and was written off"),
            None => String::new(),
        };
        println!(
            "# {}: {} workers over {}, {} attempt(s), {} frames sent / {} received, \
max |diff| = {:.3e}{recovered}",
            r.name, r.workers, r.transport, r.attempts, r.sent_frames, r.recv_frames, r.max_diff
        );
    }

    // ---- Gates -------------------------------------------------------------
    // Clean/reorder legs must be *bitwise* equal to the channel transport;
    // the kill leg runs a degraded re-plan (different accumulation order)
    // and must agree to 1e-10 after a detected death and one respawn.
    let leg = |name: &str| results.iter().find(|r| r.name == name).expect("leg ran");
    let bit_identity_max = ["uds", "tcp", "reorder"]
        .iter()
        .map(|n| leg(n).max_diff)
        .fold(0.0, f64::max);
    let kill = leg("kill");
    let validated = bit_identity_max == 0.0
        && results.iter().all(|r| r.sent_frames > 0 && r.recv_frames > 0)
        && kill.recovered_dead == Some(2)
        && kill.attempts == 2
        && kill.max_diff <= 1e-10;

    let legs_json: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"transport\": \"{}\", \"workers\": {}, \
\"attempts\": {}, \"max_diff\": {:.3e}, \"recovered_dead\": {}, \
\"sent_frames\": {}, \"recv_frames\": {}}}",
                r.name,
                r.transport,
                r.workers,
                r.attempts,
                r.max_diff,
                r.recovered_dead.map_or("null".into(), |d| d.to_string()),
                r.sent_frames,
                r.recv_frames
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"workers\": {workers},\n  \"problem\": \"{problem}\",\n  \
\"tiny\": {tiny},\n  \"legs\": [\n{}\n  ],\n  \
\"bit_identity_max_diff\": {bit_identity_max:.3e},\n  \
\"kill_max_diff\": {:.3e},\n  \"kill_recovered\": {},\n  \
\"kill_attempts\": {},\n  \"validated\": {validated}\n}}\n",
        legs_json.join(",\n"),
        kill.max_diff,
        kill.recovered_dead.is_some(),
        kill.attempts,
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write BENCH JSON");

    // ---- Self-validation ---------------------------------------------------
    let mut errors = Vec::new();
    if bit_identity_max != 0.0 {
        errors.push(format!(
            "socket transports are not bit-identical to the channel transport \
(max |diff| = {bit_identity_max:.3e})"
        ));
    }
    for r in &results {
        if r.sent_frames == 0 || r.recv_frames == 0 {
            errors.push(format!("leg {} moved no frames over the wire", r.name));
        }
    }
    if kill.recovered_dead != Some(2) {
        errors.push(format!(
            "kill drill: expected rank 2 to die and be written off, got {:?}",
            kill.recovered_dead
        ));
    }
    if kill.attempts != 2 {
        errors.push(format!("kill drill: expected 2 fleet attempts, got {}", kill.attempts));
    }
    if kill.max_diff > 1e-10 {
        errors.push(format!(
            "kill drill: degraded run disagrees with the fault-free reference \
({:.3e} > 1e-10)",
            kill.max_diff
        ));
    }
    match minijson::parse(&json) {
        Ok(doc) => {
            for key in [
                "workers",
                "problem",
                "legs",
                "bit_identity_max_diff",
                "kill_max_diff",
                "kill_recovered",
                "kill_attempts",
                "validated",
            ] {
                if doc.get(key).is_none() {
                    errors.push(format!("emitted JSON lacks \"{key}\""));
                }
            }
            let n_legs =
                doc.get("legs").and_then(minijson::Value::as_arr).map_or(0, |a| a.len());
            if n_legs != 4 {
                errors.push(format!("emitted JSON carries {n_legs} legs, expected 4"));
            }
            if doc.get("validated").and_then(minijson::Value::as_bool) != Some(true) {
                errors.push("emitted JSON carries validated != true".into());
            }
        }
        Err(e) => errors.push(format!("emitted JSON does not re-parse: {e}")),
    }
    if !errors.is_empty() {
        eprintln!("error: BENCH_net self-validation failed:");
        for e in &errors {
            eprintln!("  {e}");
        }
        std::process::exit(1);
    }
    println!("# wrote {out_path}: self-validation OK");
}

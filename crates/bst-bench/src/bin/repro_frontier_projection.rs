//! Forward projection motivated by the paper's §1 ("The forthcoming
//! Frontier exascale system is announced with four AMD Radeon GPUs per
//! node") and §7 ("solve problems of unprecedented scale and complexity"):
//! replays the C65H132 contraction and a ~2× longer chain on a
//! Frontier-like platform next to Summit.
//!
//! Usage: `repro_frontier_projection`

use bst_chem::{CcsdProblem, Molecule, ScreeningParams, TilingSpec};
use bst_contract::{DeviceConfig, ExecutionPlan, GridConfig, PlannerConfig, ProblemSpec};
use bst_sim::{simulate, Platform};

fn run(spec: &ProblemSpec, platform: &Platform, label: &str) {
    let config = PlannerConfig::paper(
        GridConfig::from_nodes(platform.nodes, 1),
        DeviceConfig {
            gpus_per_node: platform.gpus_per_node,
            gpu_mem_bytes: platform.gpu_mem_bytes,
        },
    );
    match ExecutionPlan::build(spec, config) {
        Ok(plan) => {
            let r = simulate(spec, &plan, platform);
            println!(
                "{label:<28} {:>6} GPUs {:>10.2} s {:>10.1} Tflop/s {:>8.2} Tf/s/GPU",
                platform.total_gpus(),
                r.makespan_s,
                r.tflops(),
                r.tflops_per_gpu(platform.total_gpus())
            );
        }
        Err(e) => println!("{label:<28} plan failed: {e}"),
    }
}

fn main() {
    println!("# Frontier projection — same contraction, next-generation nodes (16 nodes each)");
    let molecules = [
        ("C65H132 (the paper's)", 65usize),
        ("C120H242 (2x longer)", 120),
    ];
    for (name, carbons) in molecules {
        let molecule = Molecule::alkane(carbons);
        let spec_t = if carbons == 65 {
            TilingSpec::v2()
        } else {
            TilingSpec::v2().scaled_for(&molecule)
        };
        let problem = CcsdProblem::build(&molecule, spec_t, ScreeningParams::default(), 42);
        let spec = ProblemSpec::new(
            problem.t.clone(),
            problem.v.clone(),
            Some(problem.r.shape().clone()),
        );
        println!(
            "\n{name}: U = {}, V is {:.2} TB at {:.1}% fill",
            problem.dims.u,
            problem.v.bytes() as f64 / 1e12,
            problem.v.element_density() * 100.0
        );
        run(&spec, &Platform::summit(16), "  Summit (6 x V100/node)");
        run(&spec, &Platform::frontier(16), "  Frontier (4 x MI250X-class)");
    }
    println!("\n# expectation: Frontier's larger devices and faster links cut time-to-solution");
    println!("# severalfold, moving minutes-scale CC sweeps toward interactive turnaround (§1).");
}

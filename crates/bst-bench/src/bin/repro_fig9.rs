//! Reproduces **Figure 9**: total performance (Tflop/s) vs GPU count for
//! the C65H132 contraction, tilings v1/v2/v3.
//!
//! Paper shape targets: despite the degrading per-GPU efficiency (Fig. 8),
//! total performance keeps increasing up to 108 GPUs (to ≈80 Tflop/s for
//! the coarser tilings), because the added flops of coarser tilings overlap
//! with the data transfers that dominate the runtime.
//!
//! Usage: `repro_fig9 [--quick]`

use bst_bench::{scaling_sweep, Args};

fn main() {
    let args = Args::parse();
    let points = scaling_sweep(args.gpu_counts(), 42);

    println!("# Fig 9 — Total performance (Tflop/s) vs #GPUs, C65H132");
    println!("{:>6} {:>10} {:>10} {:>10}", "#GPUs", "v1", "v2", "v3");
    for &g in args.gpu_counts() {
        let v = |label: &str| {
            points
                .iter()
                .find(|p| p.tiling == label && p.gpus == g)
                .map(|p| p.report.tflops())
                .unwrap()
        };
        println!(
            "{:>6} {:>10.1} {:>10.1} {:>10.1}",
            g,
            v("v1"),
            v("v2"),
            v("v3")
        );
    }
}

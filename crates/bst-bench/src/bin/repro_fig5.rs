//! Reproduces **Figure 5**: pictorial representation of the matricised
//! block-sparse tensors T, V and R for the C65H132 example (tiling v1).
//!
//! Writes PGM density maps (`fig5_{t,v,r}.pgm`, darker = larger tile norm)
//! into `results/` and prints coarse ASCII previews. The paper's hallmark:
//! extreme banded sparsity from the quasi-one-dimensional molecule — T and
//! R are short-and-wide with diagonal-block bands; V is a huge square
//! banded matrix.
//!
//! Usage: `repro_fig5`

use bst_chem::{CcsdProblem, TilingSpec};
use bst_sparse::MatrixStructure;
use std::io::Write;

fn write_pgm(path: &str, s: &MatrixStructure) -> std::io::Result<()> {
    let (rows, cols) = (s.tile_rows(), s.tile_cols());
    // Downsample huge grids to at most 1024 pixels per edge.
    let step_r = rows.div_ceil(1024).max(1);
    let step_c = cols.div_ceil(1024).max(1);
    let (h, w) = (rows.div_ceil(step_r), cols.div_ceil(step_c));
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "P2\n{w} {h}\n255")?;
    for pr in 0..h {
        let mut line = String::new();
        for pc in 0..w {
            // Max norm within the pixel's tile patch.
            let mut m = 0f32;
            for r in (pr * step_r)..((pr + 1) * step_r).min(rows) {
                for c in (pc * step_c)..((pc + 1) * step_c).min(cols) {
                    m = m.max(s.shape().norm(r, c));
                }
            }
            let px = 255 - (m.clamp(0.0, 1.0) * 255.0) as u32;
            line.push_str(&format!("{px} "));
        }
        writeln!(f, "{line}")?;
    }
    Ok(())
}

fn ascii_preview(label: &str, s: &MatrixStructure) {
    let (rows, cols) = (s.tile_rows(), s.tile_cols());
    let (h, w) = (16usize.min(rows), 64usize.min(cols));
    println!(
        "\n{label}: {} x {} tiles, {:.1}% element density",
        rows,
        cols,
        s.element_density() * 100.0
    );
    for pr in 0..h {
        let mut line = String::new();
        for pc in 0..w {
            let r0 = pr * rows / h;
            let r1 = ((pr + 1) * rows / h).max(r0 + 1);
            let c0 = pc * cols / w;
            let c1 = ((pc + 1) * cols / w).max(c0 + 1);
            // Shade by the fraction of non-zero tiles in the patch, so the
            // preview reflects density rather than a single surviving tile.
            let mut nnz = 0usize;
            for r in r0..r1 {
                for c in c0..c1 {
                    if s.shape().is_nonzero(r, c) {
                        nnz += 1;
                    }
                }
            }
            let frac = nnz as f64 / ((r1 - r0) * (c1 - c0)) as f64;
            line.push(match frac {
                x if x <= 0.0 => ' ',
                x if x < 0.05 => '.',
                x if x < 0.3 => 'o',
                _ => '#',
            });
        }
        println!("|{line}|");
    }
}

fn main() {
    println!("# Fig 5 — Matricised block-sparse T, V, R for C65H132 (tiling v1)");
    let p = CcsdProblem::c65h132(TilingSpec::v1(), 42);
    std::fs::create_dir_all("results").expect("create results dir");
    for (label, s, path) in [
        ("T (the A operand)", &p.t, "results/fig5_t.pgm"),
        ("V (the B operand)", &p.v, "results/fig5_v.pgm"),
        ("R (the C result)", &p.r, "results/fig5_r.pgm"),
    ] {
        write_pgm(path, s).expect("write PGM");
        ascii_preview(label, s);
        println!("  -> {path}");
    }
}

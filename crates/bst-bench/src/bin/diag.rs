//! Developer diagnostic: prints replay breakdowns for a given synthetic
//! configuration. Not part of the reproduction harness.

use bst_contract::{DeviceConfig, ExecutionPlan, GridConfig, PlannerConfig, ProblemSpec};
use bst_sim::{simulate, Platform};
use bst_sparse::generate::{generate, SyntheticParams};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let m: u64 = args.first().map(|s| s.parse().unwrap()).unwrap_or(48_000);
    let nk: u64 = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(48_000);
    let density: f64 = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(1.0);
    let nodes: usize = args.get(3).map(|s| s.parse().unwrap()).unwrap_or(16);
    let p: usize = args.get(4).map(|s| s.parse().unwrap()).unwrap_or(1);

    let prob = generate(&SyntheticParams {
        m,
        n: nk,
        k: nk,
        density,
        tile_min: 512,
        tile_max: 2048,
        seed: 3,
    });
    let spec = ProblemSpec::new(prob.a, prob.b, None);
    let platform = Platform::summit(nodes);
    let config = PlannerConfig::paper(
        GridConfig::from_nodes(nodes, p),
        DeviceConfig {
            gpus_per_node: 6,
            gpu_mem_bytes: platform.gpu_mem_bytes,
        },
    );
    let plan = ExecutionPlan::build(&spec, config).unwrap();
    let stats = plan.stats(&spec);
    let r = simulate(&spec, &plan, &platform);
    println!("tile cols B: {}, tile rows A: {}", spec.b.tile_cols(), spec.a.tile_rows());
    println!("blocks={} chunks={} maxblock={:.2}GB", stats.num_blocks, stats.num_chunks, stats.max_block_bytes as f64 / 1e9);
    println!("imbalance={:.3}", stats.load_imbalance);
    println!(
        "makespan={:.3}s tflops={:.1} perGPU={:.2}",
        r.makespan_s,
        r.tflops(),
        r.tflops_per_gpu(platform.total_gpus())
    );
    println!(
        "bounds: compute={:.3}s h2d={:.3}s nic={:.3}s bgen={:.3}s",
        r.compute_bound_s, r.h2d_bound_s, r.nic_bound_s, r.bgen_bound_s
    );
    println!(
        "h2d={:.2}GB a_net={:.2}GB flops={:.2}T tasks={}",
        r.h2d_bytes as f64 / 1e9,
        r.a_network_bytes as f64 / 1e9,
        r.total_flops as f64 / 1e12,
        r.total_tasks
    );
}

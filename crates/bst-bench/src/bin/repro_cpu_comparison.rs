//! Reproduces the **§5.2 CPU comparison**: the CPU-only MPQC evaluation of
//! the C65H132 ABCD term on {8, 16} Summit nodes (measured {308, 158} s in
//! the paper) against the GPU implementation with the most performant
//! tiling (v3) on the same nodes — the paper reports a ≈10× speedup.
//!
//! Usage: `repro_cpu_comparison`

use bst_bench::{c65h132_problems, ccsd_spec};
use bst_contract::{DeviceConfig, ExecutionPlan, GridConfig, PlannerConfig};
use bst_sim::cpu::simulate_cpu_only;
use bst_sim::{simulate, Platform};

fn main() {
    println!("# §5.2 — CPU-only (MPQC model) vs GPU (tiling v3), C65H132");
    let problems = c65h132_problems(42);
    let (_, v3) = problems.into_iter().find(|(l, _)| *l == "v3").unwrap();
    let spec = ccsd_spec(&v3);

    println!(
        "{:>6} {:>14} {:>14} {:>10}",
        "nodes", "CPU-only (s)", "GPU v3 (s)", "speedup"
    );
    for nodes in [8usize, 16] {
        let platform = Platform::summit(nodes);
        let cpu = simulate_cpu_only(&spec, &platform);
        let config = PlannerConfig::paper(
            GridConfig::from_nodes(nodes, 1),
            DeviceConfig {
                gpus_per_node: platform.gpus_per_node,
                gpu_mem_bytes: platform.gpu_mem_bytes,
            },
        );
        let plan = ExecutionPlan::build(&spec, config).expect("plan");
        let gpu = simulate(&spec, &plan, &platform).makespan_s;
        println!(
            "{:>6} {:>14.1} {:>14.1} {:>9.1}x",
            nodes,
            cpu,
            gpu,
            cpu / gpu
        );
    }
    println!("# paper: 308 s (8 nodes), 158 s (16 nodes) CPU-only; ≈10x GPU speedup");
}

//! Exercises the einsum frontend end to end and emits a self-validated
//! `results/BENCH_einsum.json`.
//!
//! Two legs, both gated:
//!
//! * **ABCD as a generated instance** — the fused term
//!   `R^{ij}_{ab} = Σ_{cd} T^{ij}_{cd} V^{cd}_{ab}` evaluated twice over
//!   identical inputs: through the legacy `contract_abcd` entry point and
//!   through `Einsum::new("ijcd,cdab->ijab")` directly. The two must be
//!   **bit-identical** (`max |diff| == 0.0`): the shim *is* the spec-driven
//!   path, and this leg holds that collapse honest;
//! * **chain vs dense** — the two-term chain `"ij,jk,kl->il"` with the last
//!   factor generated on demand, lowered into two planned products with a
//!   screened intermediate, gated at ≤ 1e-10 against a dense reference
//!   evaluation.
//!
//! Any gate violation exits non-zero, so CI can gate on this binary
//! directly; the emitted JSON re-parses through `minijson` with the
//! expected keys.
//!
//! Usage:
//! ```text
//! repro_einsum [--tiny] [--out FILE]
//! ```

use std::sync::Arc;
use std::time::Instant;

use bst_bench::{minijson, tiny_numeric_spec};
use bst_contract::api::contract_abcd;
use bst_contract::einsum::Einsum;
use bst_contract::{DeviceConfig, GridConfig, PlannerConfig, ProblemSpec};
use bst_sparse::generate::{generate, SyntheticParams};
use bst_sparse::matrix::tile_seed;
use bst_sparse::tensor::{BlockSparseTensor4, Tensor4Meta};
use bst_sparse::{BlockSparseMatrix, MatrixStructure};
use bst_tile::{Tile, Tiling};

const USAGE: &str = "usage: repro_einsum [--tiny] [--out FILE]";
const V_SEED: u64 = 42 ^ 0xABCD;
const D_SEED: u64 = 42 ^ 0xD;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tiny = false;
    let mut out_path = "results/BENCH_einsum.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiny" => tiny = true,
            "--out" => {
                out_path = it.next().unwrap_or_else(|| panic!("--out needs a file path")).clone()
            }
            other => panic!("unknown argument {other}\n{USAGE}"),
        }
    }

    let config = PlannerConfig::paper(
        GridConfig { p: 1, q: 2 },
        DeviceConfig { gpus_per_node: 2, gpu_mem_bytes: 1 << 22 },
    );

    // ---- Leg 1: ABCD bit-identity — shim vs spec-driven path --------------
    let (o, u) = if tiny {
        (Tiling::from_sizes(&[2, 2]), Tiling::from_sizes(&[3, 2, 3]))
    } else {
        (Tiling::from_sizes(&[4, 4, 3]), Tiling::from_sizes(&[6, 5, 4, 5]))
    };
    let t_meta = Tensor4Meta::new([o.clone(), o.clone(), u.clone(), u.clone()]);
    let t_struct = t_meta.matricise(|_, _, _, _| 1.0);
    let t = BlockSparseTensor4::random_from_structure(t_meta, t_struct, 11);
    let v_meta = Tensor4Meta::new([u.clone(), u.clone(), u.clone(), u.clone()]);
    let v_struct = v_meta.matricise(|_, _, _, _| 1.0);
    let v_gen = |k: usize, j: usize, r: usize, c: usize, pool: &bst_tile::TilePool| {
        Ok(Arc::new(pool.random(r, c, tile_seed(V_SEED, k, j))))
    };

    let t0 = Instant::now();
    let (r_legacy, legacy_report) =
        contract_abcd(&t, &v_struct, &v_gen, None, config).expect("contract_abcd");
    let legacy_elapsed = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let abcd = Einsum::new("ijcd,cdab->ijab")
        .tensor(&t)
        .on_demand_tensor4(&v_meta, &v_struct, &v_gen)
        .contract(config)
        .expect("einsum ijcd,cdab->ijab");
    let einsum_elapsed = t1.elapsed().as_secs_f64();
    let r_einsum = abcd.tensor4().expect("rank-4 outcome");
    let abcd_diff = r_einsum.matricised().max_abs_diff(r_legacy.matricised());
    let abcd_gemms = abcd.report().gemm_tasks;

    println!(
        "# ABCD {}x{} · {}x{}: {} GEMMs, einsum-vs-contract_abcd max |diff| = {abcd_diff:.3e}",
        t.matricised().structure().rows(),
        t.matricised().structure().cols(),
        v_struct.rows(),
        v_struct.cols(),
        abcd_gemms
    );

    // ---- Leg 2: chain "ij,jk,kl->il" vs the dense reference ---------------
    let spec: ProblemSpec = if tiny {
        tiny_numeric_spec(42)
    } else {
        let prob = generate(&SyntheticParams {
            m: 200,
            n: 1600,
            k: 1600,
            density: 0.5,
            tile_min: 32,
            tile_max: 96,
            seed: 42,
        });
        ProblemSpec::new(prob.a, prob.b, None)
    };
    let a = BlockSparseMatrix::random_from_structure(spec.a.clone(), 42);
    let b = BlockSparseMatrix::random_from_structure(spec.b.clone(), 42 ^ 0xB);
    let d_struct =
        MatrixStructure::dense(spec.b.col_tiling().clone(), spec.b.col_tiling().clone());
    let d_gen = |k: usize, j: usize, r: usize, c: usize, pool: &bst_tile::TilePool| {
        Ok(Arc::new(pool.random(r, c, tile_seed(D_SEED, k, j))))
    };
    let t2 = Instant::now();
    let chain = Einsum::new("ij,jk,kl->il")
        .operand(&a)
        .operand(&b)
        .on_demand(&d_struct, &d_gen)
        .contract(config)
        .expect("einsum ij,jk,kl->il");
    let chain_elapsed = t2.elapsed().as_secs_f64();
    let chain_gemms: u64 = chain.reports.iter().map(|r| r.gemm_tasks).sum();

    let d = BlockSparseMatrix::from_structure(d_struct.clone(), |k, j, r, cc| {
        Tile::random(r, cc, tile_seed(D_SEED, k, j))
    });
    let mut ab =
        BlockSparseMatrix::zeros(spec.a.row_tiling().clone(), spec.b.col_tiling().clone());
    ab.gemm_acc_reference(&a, &b);
    let mut c_ref =
        BlockSparseMatrix::zeros(spec.a.row_tiling().clone(), d_struct.col_tiling().clone());
    c_ref.gemm_acc_reference(&ab, &d);
    let chain_diff = chain.matrix().max_abs_diff(&c_ref);

    println!(
        "# chain {}x{}x{}x{}: {} terms, {} GEMMs, max |C - C_ref| = {chain_diff:.3e}",
        spec.a.rows(),
        spec.a.cols(),
        spec.b.cols(),
        d_struct.cols(),
        chain.reports.len(),
        chain_gemms
    );

    let validated = abcd_diff == 0.0 && chain_diff <= 1e-10 && chain.reports.len() == 2;
    let json = format!(
        "{{\n  \"tiny\": {tiny},\n  \
\"abcd\": {{\"rows\": {}, \"cols\": {}, \"gemm_tasks\": {abcd_gemms}, \
\"legacy_gemm_tasks\": {}, \"bit_diff\": {abcd_diff:.3e}, \
\"einsum_s\": {einsum_elapsed:.4}, \"contract_abcd_s\": {legacy_elapsed:.4}}},\n  \
\"chain\": {{\"m\": {}, \"n\": {}, \"terms\": {}, \"gemm_tasks\": {chain_gemms}, \
\"max_diff\": {chain_diff:.3e}, \"elapsed_s\": {chain_elapsed:.4}}},\n  \
\"validated\": {validated}\n}}\n",
        t.matricised().structure().rows(),
        v_struct.cols(),
        legacy_report.gemm_tasks,
        spec.a.rows(),
        d_struct.cols(),
        chain.reports.len(),
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write BENCH JSON");

    // ---- Self-validation ---------------------------------------------------
    let mut errors = Vec::new();
    if abcd_diff != 0.0 {
        errors.push(format!(
            "einsum \"ijcd,cdab->ijab\" diverged from contract_abcd by {abcd_diff:.3e} \
(must be bit-identical)"
        ));
    }
    if chain_diff > 1e-10 {
        errors.push(format!(
            "chain \"ij,jk,kl->il\" diverged from the dense reference by {chain_diff:.3e} \
(gate: 1e-10)"
        ));
    }
    if chain.reports.len() != 2 {
        errors.push(format!("chain lowered into {} terms, expected 2", chain.reports.len()));
    }
    match minijson::parse(&json) {
        Ok(doc) => {
            for key in ["tiny", "abcd", "chain", "validated"] {
                if doc.get(key).is_none() {
                    errors.push(format!("emitted JSON lacks \"{key}\""));
                }
            }
            if doc.get("validated").and_then(minijson::Value::as_bool) != Some(true) {
                errors.push("emitted JSON carries validated != true".into());
            }
        }
        Err(e) => errors.push(format!("emitted JSON does not re-parse: {e}")),
    }
    if !errors.is_empty() {
        eprintln!("error: BENCH_einsum self-validation failed:");
        for e in &errors {
            eprintln!("  {e}");
        }
        std::process::exit(1);
    }
    println!("# wrote {out_path}: self-validation OK");
}

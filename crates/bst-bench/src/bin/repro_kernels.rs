//! Micro-benchmark of the tile GEMM kernel family on the shapes a real
//! plan executes, emitting `BENCH_kernels.json`.
//!
//! The paper's executor spends its GPU time in many small, irregular tile
//! GEMMs; §5 observes that their arithmetic intensity, not peak flops,
//! decides throughput. This binary grounds the kernel-dispatch layer
//! (`bst_tile::kernel`) in that regime:
//!
//! 1. builds a synthetic contraction and takes the *plan-derived* GEMM
//!    shape histogram (the exact `(m, n, k)` mix the executor would run);
//! 2. for the heaviest shapes, checks every candidate kernel against
//!    `gemm_naive` to 1e-10 (any divergence exits non-zero — this is the
//!    same bar as the property tests, but on the real shapes);
//! 3. measures each candidate's flop rate through the cache-cold operand
//!    ring used by the autotuner, and records the measured winner;
//! 4. runs the one-shot autotuner on the full histogram and records its
//!    per-shape-class choices;
//! 5. writes everything as JSON and re-parses the document with
//!    [`bst_bench::minijson`] — a malformed file also exits non-zero, so
//!    CI can gate on this binary end to end.
//!
//! Usage:
//! ```text
//! repro_kernels [--tiny] [--out BENCH_kernels.json]
//! ```

use bst_bench::{minijson, tiny_numeric_spec};
use bst_contract::{
    DeviceConfig, ExecutionPlan, GridConfig, PlannerConfig, ProblemSpec,
};
use bst_sparse::generate::{generate, SyntheticParams};
use bst_tile::gemm::{gemm_flops, gemm_naive};
use bst_tile::kernel::{candidates, measure_gflops, KernelKind, KernelTable};
use bst_tile::Tile;
use std::fmt::Write as _;

const USAGE: &str = "usage: repro_kernels [--tiny] [--out FILE]";

/// Shapes benchmarked in full (the heaviest by total flops; the histogram
/// tail only feeds the autotuner).
const MAX_SHAPES: usize = 8;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tiny = false;
    let mut out_path = "results/BENCH_kernels.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiny" => tiny = true,
            "--out" => {
                out_path = it.next().unwrap_or_else(|| panic!("--out needs a file path")).clone()
            }
            other => panic!("unknown argument {other}\n{USAGE}"),
        }
    }

    // The same problems the traced reproduction (`repro_trace --numeric`)
    // runs, so the shape mix matches the executor measurements.
    let (spec, gpu_mem): (ProblemSpec, u64) = if tiny {
        (tiny_numeric_spec(42), 1 << 21)
    } else {
        let prob = generate(&SyntheticParams {
            m: 400,
            n: 3200,
            k: 3200,
            density: 0.5,
            tile_min: 48,
            tile_max: 128,
            seed: 42,
        });
        (ProblemSpec::new(prob.a, prob.b, None), 1 << 23)
    };
    let config = PlannerConfig::paper(
        GridConfig::from_nodes(2, 1),
        DeviceConfig {
            gpus_per_node: 2,
            gpu_mem_bytes: gpu_mem,
        },
    );
    let plan = ExecutionPlan::build(&spec, config).expect("plan must build");
    let hist = plan.gemm_shape_histogram(&spec);
    assert!(!hist.is_empty(), "plan has no GEMM tasks");

    // Heaviest shapes by total flops.
    let mut weighted: Vec<((usize, usize, usize), u64, u128)> = hist
        .iter()
        .map(|&((m, n, k), count)| {
            let fl = gemm_flops(m as u64, n as u64, k as u64) as u128 * count as u128;
            ((m, n, k), count, fl)
        })
        .collect();
    weighted.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    weighted.truncate(MAX_SHAPES);

    println!(
        "# kernel micro-benchmark — {} distinct shapes in plan, benchmarking top {}",
        hist.len(),
        weighted.len()
    );

    let mut shapes_json = String::new();
    for (si, &((m, n, k), count, _)) in weighted.iter().enumerate() {
        let cands = candidates(m, n, k);

        // Correctness gate: every candidate must agree with the naive
        // triple loop on this exact shape.
        let a = Tile::random(m, k, 0xA0 + si as u64);
        let b = Tile::random(k, n, 0xB0 + si as u64);
        let c0 = Tile::random(m, n, 0xC0 + si as u64);
        let mut c_ref = c0.clone();
        gemm_naive(1.0, &a, &b, &mut c_ref);
        for &kind in &cands {
            let mut c = c0.clone();
            kind.run(1.0, &a, &b, &mut c);
            let diff = c.max_abs_diff(&c_ref);
            if diff >= 1e-10 {
                eprintln!(
                    "error: kernel {} diverges from naive on {m}x{n}x{k}: max |Δ| = {diff:.3e}",
                    kind.name()
                );
                std::process::exit(1);
            }
        }

        // Flop rates through the cache-cold ring (the executor streams
        // distinct operand tiles, so a hot single-pair loop would lie).
        // Naive is always measured — it is the reference the others are
        // judged against, even where it is no dispatch candidate.
        let mut measured = cands.clone();
        if !measured.contains(&KernelKind::Naive) {
            measured.insert(0, KernelKind::Naive);
        }
        let mut rates: Vec<(KernelKind, f64)> = measured
            .iter()
            .map(|&kind| (kind, measure_gflops(kind, m, n, k)))
            .collect();
        let winner = rates
            .iter()
            .cloned()
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .map(|(kind, _)| kind)
            .expect("at least one candidate");
        rates.sort_by_key(|&(kind, _)| kind.index());

        let mut rate_strs = Vec::new();
        let mut rate_json = String::new();
        for (i, &(kind, g)) in rates.iter().enumerate() {
            rate_strs.push(format!("{}={:.2}", kind.name(), g));
            if i > 0 {
                rate_json.push_str(", ");
            }
            write!(rate_json, "\"{}\": {:.4}", kind.name(), g).unwrap();
        }
        println!(
            "  {m}x{n}x{k} (x{count}): {}  -> {}",
            rate_strs.join(" "),
            winner.name()
        );

        if si > 0 {
            shapes_json.push_str(",\n");
        }
        write!(
            shapes_json,
            "    {{\"m\": {m}, \"n\": {n}, \"k\": {k}, \"tasks\": {count}, \
             \"gflops\": {{{rate_json}}}, \"winner\": \"{}\"}}",
            winner.name()
        )
        .unwrap();
    }

    // The autotuner's verdict on the full histogram (what the executor's
    // `KernelSelect::Autotune` mode would dispatch).
    let table = KernelTable::autotune(&hist);
    let mut table_json = String::new();
    for (i, (key, kind)) in table.entries().enumerate() {
        if i > 0 {
            table_json.push_str(",\n");
        }
        write!(
            table_json,
            "    {{\"class\": \"{key:#06x}\", \"kernel\": \"{}\"}}",
            kind.name()
        )
        .unwrap();
    }
    println!("# autotuned {} shape classes", table.len());

    let json = format!(
        "{{\n  \"problem\": {{\"m\": {}, \"n\": {}, \"k\": {}, \"tiny\": {tiny}}},\n  \
         \"shapes\": [\n{shapes_json}\n  ],\n  \"autotune\": [\n{table_json}\n  ]\n}}\n",
        spec.a.rows(),
        spec.b.cols(),
        spec.a.cols(),
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write BENCH JSON");

    // Self-validation: the emitted document must re-parse, and must carry a
    // measured rate for every candidate of every shape.
    let doc = match minijson::parse(&json) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: emitted JSON does not parse: {e}");
            std::process::exit(1);
        }
    };
    let shapes = doc
        .get("shapes")
        .and_then(|v| v.as_arr())
        .unwrap_or_else(|| {
            eprintln!("error: emitted JSON has no shapes array");
            std::process::exit(1);
        });
    for s in shapes {
        let (m, n, k) = (
            s.get("m").and_then(|v| v.as_num()).unwrap() as usize,
            s.get("n").and_then(|v| v.as_num()).unwrap() as usize,
            s.get("k").and_then(|v| v.as_num()).unwrap() as usize,
        );
        for kind in candidates(m, n, k) {
            let rate = s
                .get("gflops")
                .and_then(|g| g.get(kind.name()))
                .and_then(|v| v.as_num());
            match rate {
                Some(r) if r > 0.0 => {}
                _ => {
                    eprintln!(
                        "error: shape {m}x{n}x{k} lacks a positive rate for {}",
                        kind.name()
                    );
                    std::process::exit(1);
                }
            }
        }
    }
    println!(
        "# wrote {out_path}: {} shapes, all kernels verified against naive to 1e-10",
        shapes.len()
    );
}

//! Reproduces **Figure 4**: time to completion (s) of the synthetic
//! problem as a function of N = K and density, on 16 Summit nodes.
//!
//! Paper shape targets: although Tflop/s *drops* with sparsity (Fig. 2),
//! the flop count drops faster, so the *time to solution decreases with
//! the density* at every problem size; the dense curve grows steeply with
//! N = K (up to ~100 s at N = K = 750k).
//!
//! Usage: `repro_fig4 [--quick] [--trace FILE.json]` — `--trace` rides
//! along a tiny traced *numeric* execution and writes its Chrome-trace
//! profile next to the simulated sweep.

use bst_bench::{emit_numeric_trace, synthetic_sweep, Args, DENSITIES};

fn main() {
    let args = Args::parse();
    let points = synthetic_sweep(args.sizes(), 16, false);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|pt| {
            vec![
                pt.nk.to_string(),
                pt.density.to_string(),
                format!("{:.4}", pt.parsec.makespan_s),
            ]
        })
        .collect();
    bst_bench::write_csv("fig4.csv", &["nk", "density", "time_s"], &rows)
        .expect("write results/fig4.csv");

    println!("# Fig 4 — Time to completion (s) vs N=K and density, 16 nodes of Summit");
    println!(
        "{:>8} {}",
        "N=K",
        DENSITIES
            .iter()
            .map(|d| format!("{:>12}", format!("d={d}")))
            .collect::<String>()
    );
    for &nk in args.sizes() {
        let mut row = format!("{nk:>8}");
        for &density in &DENSITIES {
            let t = points
                .iter()
                .find(|p| p.nk == nk && p.density == density)
                .map(|p| p.parsec.makespan_s)
                .unwrap();
            row.push_str(&format!("{t:>12.2}"));
        }
        println!("{row}");
    }

    if let Some(path) = &args.trace {
        let summary = emit_numeric_trace(path).expect("traced numeric run must validate");
        println!("# traced numeric reference run — wrote {path}");
        print!("{summary}");
    }
}

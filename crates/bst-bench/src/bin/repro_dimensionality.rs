//! Tests the paper's §7 conjecture: "different molecules have the potential
//! to provide much denser and compute-intensive input matrices, thereby
//! (likely) enabling our algorithm to reach higher peak performance."
//!
//! Compares three molecules of comparable AO rank but different
//! dimensionality — a quasi-1-d alkane chain, a quasi-2-d CH₂ sheet and a
//! compact 3-d cluster — on the same simulated machine: tensor densities,
//! arithmetic intensity and sustained per-GPU performance.
//!
//! Usage: `repro_dimensionality`

use bst_chem::basis::{ao_rank, occupied_rank};
use bst_chem::{CcsdProblem, Molecule, ScreeningParams, TilingSpec};
use bst_contract::{DeviceConfig, ExecutionPlan, GridConfig, PlannerConfig, ProblemSpec};
use bst_sim::{simulate, Platform};

fn main() {
    println!("# §7 conjecture — dimensionality vs density vs per-GPU performance");
    // Comparable AO ranks: chain C24 (456 AOs), sheet 5x5 (418), cluster
    // 3x3x3 (~593).
    let molecules: Vec<(&str, Molecule)> = vec![
        ("chain C24H50 (1-d)", Molecule::alkane(24)),
        ("sheet 5x5 CH2 (2-d)", Molecule::sheet(5, 5)),
        ("cluster 3x3x3 (3-d)", Molecule::cluster3d(3)),
    ];
    let platform = Platform::summit_gpus(6);
    println!(
        "{:<22} {:>5} {:>6} {:>8} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "molecule", "O", "U", "dT (%)", "dV (%)", "Tflop", "time (s)", "Tf/s/GPU", "AI (f/B)"
    );
    for (label, m) in molecules {
        let spec_t = TilingSpec {
            occ_clusters: (occupied_rank(&m) / 24).max(1),
            ao_clusters: (ao_rank(&m) / 26).max(2),
        };
        let problem = CcsdProblem::build(&m, spec_t, ScreeningParams::default(), 42);
        let spec = ProblemSpec::new(
            problem.t.clone(),
            problem.v.clone(),
            Some(problem.r.shape().clone()),
        );
        let config = PlannerConfig::paper(
            GridConfig::from_nodes(platform.nodes, 1),
            DeviceConfig {
                gpus_per_node: platform.gpus_per_node,
                gpu_mem_bytes: platform.gpu_mem_bytes,
            },
        );
        let ai = bst_sparse::structure::max_arithmetic_intensity(
            &spec.a,
            &spec.b,
            &problem.r,
        );
        match ExecutionPlan::build(&spec, config) {
            Ok(plan) => {
                let report = simulate(&spec, &plan, &platform);
                println!(
                    "{label:<22} {:>5} {:>6} {:>8.1} {:>8.1} {:>8.1} {:>10.2} {:>10.2} {:>10.0}",
                    problem.dims.o,
                    problem.dims.u,
                    problem.t.element_density() * 100.0,
                    problem.v.element_density() * 100.0,
                    report.total_flops as f64 / 1e12,
                    report.makespan_s,
                    report.tflops_per_gpu(platform.total_gpus()),
                    ai
                );
            }
            Err(e) => println!("{label:<22} plan failed: {e}"),
        }
    }
    println!("# expectation: density, arithmetic intensity and per-GPU rate all rise with dimensionality");
}

//! Reproduces **Figure 7**: time to completion (s) of the C65H132 ABCD
//! contraction vs GPU count (3–108), for tilings v1/v2/v3, with the
//! perfect-scaling reference from the 3-GPU point.
//!
//! Paper shape targets: v1 goes 272 s (3 GPUs) → 34.9 s (108 GPUs) at ≈21%
//! parallel efficiency; v2 and v3 have similar wall-clock despite v3 doing
//! ≈34% more flops, both scaling at ≈35% efficiency; all curves fall well
//! short of the dotted perfect-scaling lines because the A broadcast grows
//! with the node count.
//!
//! Usage: `repro_fig7 [--quick]`

use bst_bench::{scaling_sweep, Args};

fn main() {
    let args = Args::parse();
    let points = scaling_sweep(args.gpu_counts(), 42);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|pt| {
            vec![
                pt.tiling.to_string(),
                pt.gpus.to_string(),
                format!("{:.3}", pt.report.makespan_s),
                format!("{:.3}", pt.report.tflops()),
                format!("{:.4}", pt.report.tflops_per_gpu(pt.gpus)),
            ]
        })
        .collect();
    bst_bench::write_csv(
        "fig789.csv",
        &["tiling", "gpus", "time_s", "tflops", "tflops_per_gpu"],
        &rows,
    )
    .expect("write results/fig789.csv");

    println!("# Fig 7 — Time to completion (s) vs #GPUs, C65H132");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>12}",
        "#GPUs", "v1", "v2", "v3", "ideal(v1)"
    );
    let t3_v1 = points
        .iter()
        .find(|p| p.tiling == "v1")
        .map(|p| (p.gpus, p.report.makespan_s))
        .unwrap();
    for &g in args.gpu_counts() {
        let t = |label: &str| {
            points
                .iter()
                .find(|p| p.tiling == label && p.gpus == g)
                .map(|p| p.report.makespan_s)
                .unwrap()
        };
        println!(
            "{:>6} {:>10.1} {:>10.1} {:>10.1} {:>12.1}",
            g,
            t("v1"),
            t("v2"),
            t("v3"),
            t3_v1.1 * t3_v1.0 as f64 / g as f64
        );
    }
    // Parallel efficiency at the largest point, as quoted in the text.
    let gmax = *args.gpu_counts().last().unwrap();
    for label in ["v1", "v2", "v3"] {
        let t0 = points
            .iter()
            .find(|p| p.tiling == label)
            .map(|p| (p.gpus, p.report.makespan_s))
            .unwrap();
        let t1 = points
            .iter()
            .find(|p| p.tiling == label && p.gpus == gmax)
            .map(|p| p.report.makespan_s)
            .unwrap();
        let eff = t0.1 * t0.0 as f64 / (t1 * gmax as f64) * 100.0;
        println!("# parallel efficiency {label} at {gmax} GPUs: {eff:.1}%");
    }
}

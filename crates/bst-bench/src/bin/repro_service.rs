//! Measures the persistent contraction service on a CCSD-iteration-shaped
//! workload and emits a self-validated `results/BENCH_service.json`.
//!
//! The workload is the solver pattern of §5: `SWEEPS` contractions with a
//! **stationary B** (the integral operand, same structure, same generator)
//! and a fresh A per sweep (the amplitudes change every iteration). Two
//! legs over identical inputs:
//!
//! * **one-shot** — the classic API: every sweep rebuilds the plan and
//!   regenerates every B tile from scratch;
//! * **service** — one [`ContractionService`]: the plan is built once and
//!   cached, B tiles stay resident across sweeps, so sweeps 2..N generate
//!   (nearly) nothing.
//!
//! Both legs instrument the generator itself, so "bytes of B generation"
//! is measured where the work happens, not inferred. Self-validation
//! gates: every sweep's service result **bit-identical** to the one-shot
//! result (`max |diff| == 0.0`), B-generation reduction ≥ 5× on the warm
//! workload, plan-cache hit on every warm sweep, a traced service run
//! invariant-clean, and the emitted JSON re-parses with the expected keys.
//! Any violation exits non-zero, so CI can gate on this binary directly.
//!
//! Usage:
//! ```text
//! repro_service [--tiny] [--nodes N] [--sweeps S] [--out FILE]
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bst_bench::{minijson, tiny_numeric_spec};
use bst_contract::{
    validate_trace_invariants, ContractionRequest, ContractionService, DeviceConfig, ExecOptions,
    ExecutionPlan, GridConfig, PlannerConfig, ProblemSpec, ServiceBGen, ServiceConfig,
};
use bst_sparse::generate::{generate, SyntheticParams};
use bst_sparse::matrix::tile_seed;
use bst_sparse::BlockSparseMatrix;

const USAGE: &str = "usage: repro_service [--tiny] [--nodes N] [--sweeps S] [--out FILE]";
const B_SEED: u64 = 42 ^ 0xB;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tiny = false;
    let mut nodes = 2usize;
    let mut sweeps = 12usize;
    let mut out_path = "results/BENCH_service.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiny" => tiny = true,
            "--nodes" => {
                let s = it.next().unwrap_or_else(|| panic!("--nodes needs a count"));
                nodes = s.parse().unwrap_or_else(|_| panic!("--nodes must be a usize, got {s}"));
                assert!(nodes >= 1, "--nodes must be >= 1");
            }
            "--sweeps" => {
                let s = it.next().unwrap_or_else(|| panic!("--sweeps needs a count"));
                sweeps = s.parse().unwrap_or_else(|_| panic!("--sweeps must be a usize, got {s}"));
                assert!(sweeps >= 2, "--sweeps must be >= 2 (need at least one warm sweep)");
            }
            "--out" => {
                out_path = it.next().unwrap_or_else(|| panic!("--out needs a file path")).clone()
            }
            other => panic!("unknown argument {other}\n{USAGE}"),
        }
    }

    let (spec, gpu_mem): (ProblemSpec, u64) = if tiny {
        (tiny_numeric_spec(42), 1 << 21)
    } else {
        let prob = generate(&SyntheticParams {
            m: 200,
            n: 1600,
            k: 1600,
            density: 0.5,
            tile_min: 32,
            tile_max: 96,
            seed: 42,
        });
        (ProblemSpec::new(prob.a, prob.b, None), 1 << 22)
    };
    let config = PlannerConfig::paper(
        GridConfig::from_nodes(nodes, 1),
        DeviceConfig { gpus_per_node: 2, gpu_mem_bytes: gpu_mem },
    );

    println!(
        "# service benchmark — {}x{}x{} on {nodes} nodes x 2 GPUs, {sweeps} sweeps, stationary B",
        spec.a.rows(),
        spec.b.cols(),
        spec.a.cols()
    );

    // The per-sweep amplitudes: same structure (so the plan key is
    // stationary), fresh values each sweep (so the contraction isn't).
    let amplitudes: Vec<Arc<BlockSparseMatrix>> = (0..sweeps)
        .map(|s| Arc::new(BlockSparseMatrix::random_from_structure(spec.a.clone(), 42 + s as u64)))
        .collect();

    // ---- Leg 1: one-shot — plan + full B generation every sweep ----------
    let oneshot_gen_bytes = AtomicU64::new(0);
    let oneshot_gen_tiles = AtomicU64::new(0);
    let b_gen = |k: usize, j: usize, r: usize, c: usize, pool: &bst_tile::TilePool| {
        oneshot_gen_bytes.fetch_add((r * c * 8) as u64, Ordering::Relaxed);
        oneshot_gen_tiles.fetch_add(1, Ordering::Relaxed);
        Ok(Arc::new(pool.random(r, c, tile_seed(B_SEED, k, j))))
    };
    let t0 = Instant::now();
    let mut oneshot_results = Vec::with_capacity(sweeps);
    for a in &amplitudes {
        let plan = ExecutionPlan::build(&spec, config).expect("plan");
        let (c, _) = bst_contract::exec::execute_numeric_with(
            &spec,
            &plan,
            a,
            &b_gen,
            ExecOptions::default(),
        )
        .expect("one-shot sweep");
        oneshot_results.push(c);
    }
    let oneshot_elapsed = t0.elapsed().as_secs_f64();
    let oneshot_bytes = oneshot_gen_bytes.load(Ordering::Relaxed);

    // ---- Leg 2: the service — plan cached, B resident across sweeps ------
    let service_gen_bytes = Arc::new(AtomicU64::new(0));
    let service_gen: ServiceBGen = {
        let counter = Arc::clone(&service_gen_bytes);
        Arc::new(move |k, j, r, c, pool: &bst_tile::TilePool| {
            counter.fetch_add((r * c * 8) as u64, Ordering::Relaxed);
            Ok(Arc::new(pool.random(r, c, tile_seed(B_SEED, k, j))))
        })
    };
    let service = ContractionService::start(ServiceConfig {
        workers: 1, // sequential sweeps: each iteration consumes the last
        ..ServiceConfig::default()
    });
    let make_req = |a: &Arc<BlockSparseMatrix>, opts: ExecOptions| ContractionRequest {
        a: Arc::clone(a),
        b_structure: spec.b.clone(),
        b_gen: Arc::clone(&service_gen),
        b_key: 0xCC5D,
        c_shape: None,
        config,
        opts,
    };
    let t1 = Instant::now();
    let mut max_diff = 0.0f64;
    let mut warm_plan_hits = 0u64;
    for (s, a) in amplitudes.iter().enumerate() {
        let out = service.run(make_req(a, ExecOptions::default())).expect("service sweep");
        if s > 0 && out.stats.plan_cache_hit {
            warm_plan_hits += 1;
        }
        max_diff = max_diff.max(out.c.max_abs_diff(&oneshot_results[s]));
    }
    let service_elapsed = t1.elapsed().as_secs_f64();
    let service_bytes = service_gen_bytes.load(Ordering::Relaxed);

    // ---- Traced service run: the invariants must hold through the cache --
    let traced_opts = ExecOptions::builder().tracing(true).build();
    let traced = service.run(make_req(&amplitudes[0], traced_opts)).expect("traced sweep");
    let violations = validate_trace_invariants(&traced.report, traced_opts, gpu_mem);
    let stats = service.stats();
    service.shutdown();

    // `.max(1)` keeps the ratio finite (and the JSON valid) in the
    // degenerate case where the cold sweep generated nothing.
    let reduction = oneshot_bytes as f64 / service_bytes.max(1) as f64;
    let service_rps = sweeps as f64 / service_elapsed.max(1e-9);
    let oneshot_rps = sweeps as f64 / oneshot_elapsed.max(1e-9);

    println!(
        "# B generation: one-shot {oneshot_bytes} B, service {service_bytes} B ({reduction:.1}x less)"
    );
    println!(
        "# throughput: service {service_rps:.2} req/s vs one-shot {oneshot_rps:.2} req/s"
    );
    println!(
        "# caches: plan {} hits / {} misses, B {} hits / {} misses, {} B saved",
        stats.plan_hits, stats.plan_misses, stats.b_hits, stats.b_misses, stats.b_bytes_saved
    );
    println!("# warm-vs-cold max |diff| = {max_diff:.3e}");

    let validated = max_diff == 0.0
        && reduction >= 5.0
        && warm_plan_hits == (sweeps as u64 - 1)
        && violations.is_empty();
    let json = format!(
        "{{\n  \"problem\": {{\"m\": {}, \"n\": {}, \"k\": {}, \"tiny\": {tiny}}},\n  \
\"nodes\": {nodes},\n  \"sweeps\": {sweeps},\n  \
\"oneshot_b_gen_bytes\": {oneshot_bytes},\n  \"service_b_gen_bytes\": {service_bytes},\n  \
\"b_gen_reduction\": {reduction:.2},\n  \"b_cache_bytes_saved\": {},\n  \
\"service_requests_per_s\": {service_rps:.3},\n  \"oneshot_requests_per_s\": {oneshot_rps:.3},\n  \
\"plan_hits\": {},\n  \"plan_misses\": {},\n  \"b_hits\": {},\n  \"b_misses\": {},\n  \
\"queue_depth_highwater\": {},\n  \
\"warm_vs_cold_max_diff\": {max_diff:.3e},\n  \"trace_violations\": {},\n  \
\"validated\": {validated}\n}}\n",
        spec.a.rows(),
        spec.b.cols(),
        spec.a.cols(),
        stats.b_bytes_saved,
        stats.plan_hits,
        stats.plan_misses,
        stats.b_hits,
        stats.b_misses,
        stats.queue_depth_highwater,
        violations.len(),
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write BENCH JSON");

    // ---- Self-validation --------------------------------------------------
    let mut errors = Vec::new();
    if max_diff != 0.0 {
        errors.push(format!(
            "cache-hit sweeps diverged from one-shot by {max_diff:.3e} (must be bit-identical)"
        ));
    }
    if reduction < 5.0 {
        errors.push(format!(
            "B-generation reduction {reduction:.2}x below the 5x gate \
({oneshot_bytes} B one-shot vs {service_bytes} B service)"
        ));
    }
    if warm_plan_hits != sweeps as u64 - 1 {
        errors.push(format!(
            "only {warm_plan_hits}/{} warm sweeps hit the plan cache",
            sweeps - 1
        ));
    }
    for v in &violations {
        errors.push(format!("traced service run violates invariant: {v}"));
    }
    if stats.requests_failed > 0 {
        errors.push(format!("{} service requests failed", stats.requests_failed));
    }
    match minijson::parse(&json) {
        Ok(doc) => {
            for key in [
                "problem",
                "sweeps",
                "oneshot_b_gen_bytes",
                "service_b_gen_bytes",
                "b_gen_reduction",
                "service_requests_per_s",
                "plan_hits",
                "warm_vs_cold_max_diff",
                "validated",
            ] {
                if doc.get(key).is_none() {
                    errors.push(format!("emitted JSON lacks \"{key}\""));
                }
            }
            if doc.get("validated").and_then(minijson::Value::as_bool) != Some(true) {
                errors.push("emitted JSON carries validated != true".into());
            }
        }
        Err(e) => errors.push(format!("emitted JSON does not re-parse: {e}")),
    }
    if !errors.is_empty() {
        eprintln!("error: BENCH_service self-validation failed:");
        for e in &errors {
            eprintln!("  {e}");
        }
        std::process::exit(1);
    }
    println!("# wrote {out_path}: self-validation OK");
}

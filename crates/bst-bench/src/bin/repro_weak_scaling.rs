//! Weak-scaling study (an extension — the paper's Figs. 7–9 are strong
//! scaling only): grow the molecule with the machine and track the
//! *per-GPU throughput* — the honest weak-scaling metric here, because the
//! screened flop count of a chain grows superlinearly with its length
//! (wider amplitude halos), so time cannot stay flat even on an ideal
//! machine. Retained per-GPU Tflop/s = the machine scales with the science.
//!
//! Usage: `repro_weak_scaling`

use bst_chem::{CcsdProblem, Molecule, ScreeningParams, TilingSpec};
use bst_contract::{DeviceConfig, ExecutionPlan, GridConfig, PlannerConfig, ProblemSpec};
use bst_sim::{simulate, Platform};

fn main() {
    println!("# Weak scaling — chain length grows with the node count");
    println!(
        "{:>10} {:>8} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "molecule", "nodes", "Tflop", "time (s)", "Tflop/s", "Tf/s/GPU", "ret (%)"
    );
    let mut base: Option<f64> = None;
    let cases = [(33usize, 4usize), (65, 8), (130, 16)];
    for (carbons, nodes) in cases {
        let molecule = Molecule::alkane(carbons);
        let spec_t = TilingSpec::v2().scaled_for(&molecule);
        let problem = CcsdProblem::build(&molecule, spec_t, ScreeningParams::default(), 42);
        let spec = ProblemSpec::new(
            problem.t.clone(),
            problem.v.clone(),
            Some(problem.r.shape().clone()),
        );
        let platform = Platform::summit(nodes);
        let config = PlannerConfig::paper(
            GridConfig::from_nodes(nodes, 1),
            DeviceConfig {
                gpus_per_node: platform.gpus_per_node,
                gpu_mem_bytes: platform.gpu_mem_bytes,
            },
        );
        match ExecutionPlan::build(&spec, config) {
            Ok(plan) => {
                let r = simulate(&spec, &plan, &platform);
                let gpus = platform.total_gpus();
                let per_gpu = r.tflops_per_gpu(gpus);
                let base_per_gpu = *base.get_or_insert(per_gpu);
                println!(
                    "{:>10} {:>8} {:>10.1} {:>12.2} {:>12.1} {:>12.2} {:>10.1}",
                    molecule.formula(),
                    nodes,
                    r.total_flops as f64 / 1e12,
                    r.makespan_s,
                    r.tflops(),
                    per_gpu,
                    per_gpu / base_per_gpu * 100.0
                );
            }
            Err(e) => println!("{:>10} plan failed: {e}", molecule.formula()),
        }
    }
    println!("# ret = per-GPU throughput retained vs the smallest configuration;");
    println!("# ~100% means the machine keeps pace with the growing chemistry.");
}

//! A minimal strict JSON parser, just enough to *validate* the Chrome-trace
//! files the repro binaries emit (no external deps — serde is unavailable
//! offline). Parses the full grammar of RFC 8259 except `\u` surrogate
//! pairing (lone escapes are accepted as-is) and returns a tree, so tests
//! can assert structure, not just "it didn't crash".

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (duplicate keys are kept).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Looks up the first `key` member, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses `src` as one JSON document (trailing whitespace allowed, trailing
/// garbage is an error).
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        b: src.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.i)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.ws();
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                    self.ws();
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.ws();
        let mut out = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            let k = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            out.push((k, self.value()?));
            self.ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                    self.ws();
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.i += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.i))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so valid).
                    let rest = &self.b[self.i..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.i;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.i += 1;
            }
            p.i > s
        };
        if !digits(self) {
            return Err(format!("bad number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
        assert_eq!(parse("\"\\u00e9\"").unwrap(), Value::Str("é".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"[{"name":"Gemm","ts":1.25,"args":{"node":0}},[]]"#).unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("name").and_then(Value::as_str), Some("Gemm"));
        assert_eq!(arr[0].get("ts").and_then(Value::as_num), Some(1.25));
        assert_eq!(
            arr[0].get("args").and_then(|a| a.get("node")).unwrap(),
            &Value::Num(0.0)
        );
        assert_eq!(arr[1], Value::Arr(vec![]));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "[", "[1,]", "{\"a\":}", "[1] x", "nul", "\"unterminated",
            "{\"a\" 1}", "01x", "[1 2]", "\"\x01\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}

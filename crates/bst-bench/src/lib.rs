//! Shared driver code for the reproduction binaries (`src/bin/repro_*.rs`)
//! and Criterion benches.
//!
//! Each binary regenerates one table or figure of the paper; this library
//! holds the sweep logic they share:
//!
//! * [`synthetic_sweep`] — the §5.1 synthetic benchmark grid (M = 48k, N = K
//!   swept, densities {1, .75, .5, .25, .1}, 16 Summit nodes) for Figures
//!   2, 3 and 4;
//! * [`scaling_sweep`] — the §5.2 C65H132 strong-scaling sweep (3–108 GPUs,
//!   tilings v1/v2/v3) for Figures 7, 8 and 9.

use bst_chem::{CcsdProblem, TilingSpec};
use bst_contract::exec::execute_numeric_with;
use bst_contract::{
    DeviceConfig, ExecOptions, ExecReport, ExecutionPlan, GridConfig, PlannerConfig, ProblemSpec,
};
use bst_sim::dbcsr::{simulate_dbcsr, DbcsrOom, DbcsrReport};
use bst_sim::replay::simulate_best_p;
use bst_sim::{simulate, Platform, SimReport};
use bst_sparse::generate::{generate, SyntheticParams};
use bst_sparse::BlockSparseMatrix;

pub mod minijson;

/// The densities of the paper's Fig. 2.
pub const DENSITIES: [f64; 5] = [1.0, 0.75, 0.5, 0.25, 0.1];

/// The default N = K sweep of Fig. 2 (up to 750k).
pub const SIZES: [u64; 6] = [48_000, 96_000, 192_000, 384_000, 576_000, 750_000];

/// A reduced sweep for `--quick` runs.
pub const SIZES_QUICK: [u64; 3] = [48_000, 192_000, 384_000];

/// The GPU counts of Figs. 7–9.
pub const GPU_COUNTS: [usize; 7] = [3, 6, 12, 24, 48, 96, 108];

/// One measured point of the synthetic sweep.
pub struct SyntheticPoint {
    /// `N = K`.
    pub nk: u64,
    /// Target density.
    pub density: f64,
    /// Best grid-row count `p` for the PaRSEC-style run.
    pub best_p: usize,
    /// PaRSEC-style simulated report.
    pub parsec: SimReport,
    /// DBCSR simulated report, or the capacity failure.
    pub dbcsr: Result<DbcsrReport, DbcsrOom>,
    /// The problem structures (for arithmetic-intensity queries).
    pub spec: ProblemSpec,
}

/// Builds the §5.1 synthetic problem for one grid point.
pub fn synthetic_spec(nk: u64, density: f64, seed: u64) -> ProblemSpec {
    let prob = generate(&SyntheticParams::paper(nk, density, seed));
    ProblemSpec::new(prob.a, prob.b, None)
}

/// Runs the synthetic sweep on `nodes` Summit nodes. `sizes` is the N = K
/// sweep; every density of [`DENSITIES`] is evaluated.
pub fn synthetic_sweep(sizes: &[u64], nodes: usize, with_dbcsr: bool) -> Vec<SyntheticPoint> {
    let platform = Platform::summit(nodes);
    let device = DeviceConfig {
        gpus_per_node: platform.gpus_per_node,
        gpu_mem_bytes: platform.gpu_mem_bytes,
    };
    let mut out = Vec::new();
    for &nk in sizes {
        for &density in &DENSITIES {
            let spec = synthetic_spec(nk, density, 42);
            let (best_p, parsec) =
                simulate_best_p(&spec, &platform, device).expect("synthetic plan must build");
            let dbcsr = if with_dbcsr {
                simulate_dbcsr(&spec, &platform)
            } else {
                Err(DbcsrOom {
                    needed: 0,
                    capacity: 0,
                })
            };
            eprintln!(
                "  [sweep] N=K={nk} density={density}: parsec {:.1} Tflop/s (p={best_p}), dbcsr {}",
                parsec.tflops(),
                match &dbcsr {
                    Ok(r) => format!("{:.1} Tflop/s", r.tflops()),
                    Err(_) => "OOM/skipped".to_string(),
                }
            );
            out.push(SyntheticPoint {
                nk,
                density,
                best_p,
                parsec,
                dbcsr,
                spec,
            });
        }
    }
    out
}

/// One measured point of the C65H132 strong-scaling sweep.
pub struct ScalingPoint {
    /// Tiling variant label ("v1", "v2", "v3").
    pub tiling: &'static str,
    /// GPU count.
    pub gpus: usize,
    /// Simulated report.
    pub report: SimReport,
}

/// Builds the three C65H132 problems (tilings v1/v2/v3).
pub fn c65h132_problems(seed: u64) -> Vec<(&'static str, CcsdProblem)> {
    vec![
        ("v1", CcsdProblem::c65h132(TilingSpec::v1(), seed)),
        ("v2", CcsdProblem::c65h132(TilingSpec::v2(), seed)),
        ("v3", CcsdProblem::c65h132(TilingSpec::v3(), seed)),
    ]
}

/// Problem spec of a CCSD problem (T·V with the screened R shape).
pub fn ccsd_spec(p: &CcsdProblem) -> ProblemSpec {
    ProblemSpec::new(p.t.clone(), p.v.clone(), Some(p.r.shape().clone()))
}

/// Runs the strong-scaling sweep of Figs. 7–9 over [`GPU_COUNTS`].
pub fn scaling_sweep(gpu_counts: &[usize], seed: u64) -> Vec<ScalingPoint> {
    let mut out = Vec::new();
    for (label, problem) in c65h132_problems(seed) {
        let spec = ccsd_spec(&problem);
        for &gpus in gpu_counts {
            let platform = Platform::summit_gpus(gpus);
            let config = PlannerConfig::paper(
                GridConfig::from_nodes(platform.nodes, 1),
                DeviceConfig {
                    gpus_per_node: platform.gpus_per_node,
                    gpu_mem_bytes: platform.gpu_mem_bytes,
                },
            );
            let plan = ExecutionPlan::build(&spec, config).expect("ccsd plan must build");
            let report = simulate(&spec, &plan, &platform);
            eprintln!(
                "  [scaling] {label} on {gpus} GPUs: {:.1} s, {:.1} Tflop/s (bounds: compute {:.1}s h2d {:.1}s nic {:.1}s bgen {:.1}s)",
                report.makespan_s,
                report.tflops(),
                report.compute_bound_s,
                report.h2d_bound_s,
                report.nic_bound_s,
                report.bgen_bound_s
            );
            out.push(ScalingPoint {
                tiling: label,
                gpus,
                report,
            });
        }
    }
    out
}

/// A small synthetic problem sized so a *numeric* traced execution finishes
/// in well under a second — used by the repro binaries' `--trace` modes and
/// the CI trace check.
pub fn tiny_numeric_spec(seed: u64) -> ProblemSpec {
    let prob = generate(&SyntheticParams {
        m: 160,
        n: 1280,
        k: 1280,
        density: 0.6,
        tile_min: 8,
        tile_max: 24,
        seed,
    });
    ProblemSpec::new(prob.a, prob.b, None)
}

/// Runs a numeric execution of `spec` with tracing enabled on a simulated
/// `nodes`-node machine (`gpus` per node, `gpu_mem` bytes each) and returns
/// the result matrix plus the traced report. The `--faults` smoke mode
/// compares the matrices of a faulted and a fault-free run, so unlike
/// [`traced_numeric_report`] this keeps the numbers.
pub fn traced_numeric_run(
    spec: &ProblemSpec,
    nodes: usize,
    gpus: usize,
    gpu_mem: u64,
    seed: u64,
    opts: ExecOptions,
) -> (BlockSparseMatrix, ExecReport) {
    let config = PlannerConfig::paper(
        GridConfig::from_nodes(nodes, 1),
        DeviceConfig {
            gpus_per_node: gpus,
            gpu_mem_bytes: gpu_mem,
        },
    );
    let plan = ExecutionPlan::build(spec, config).expect("traced plan must build");
    let a = BlockSparseMatrix::random_from_structure(spec.a.clone(), seed);
    let b_gen = bst_sparse::matrix::random_b_gen(seed ^ 0xB);
    execute_numeric_with(
        spec,
        &plan,
        &a,
        &b_gen,
        ExecOptions {
            tracing: true,
            ..opts
        },
    )
    .expect("traced execution must recover")
}

/// Runs a numeric execution of `spec` with tracing enabled on a simulated
/// `nodes`-node machine (`gpus` per node, `gpu_mem` bytes each) and returns
/// the traced report. The result matrix is discarded — callers want the
/// trace, summary and metrics.
pub fn traced_numeric_report(
    spec: &ProblemSpec,
    nodes: usize,
    gpus: usize,
    gpu_mem: u64,
    seed: u64,
    opts: ExecOptions,
) -> ExecReport {
    traced_numeric_run(spec, nodes, gpus, gpu_mem, seed, opts).1
}

/// Runs the tiny traced numeric problem on a 2-node × 2-GPU machine with a
/// 2 MiB device budget (small enough to force several blocks per GPU),
/// writes its Chrome trace to `path`, self-validates the emitted JSON and
/// the executor-level trace invariants, and returns the text summary.
pub fn emit_numeric_trace(path: &str) -> Result<String, String> {
    let gpu_mem = 1 << 21;
    let opts = ExecOptions::default();
    let spec = tiny_numeric_spec(42);
    let report = traced_numeric_report(&spec, 2, 2, gpu_mem, 42, opts);
    let json = report
        .trace
        .as_ref()
        .expect("traced_numeric_report enables tracing")
        .chrome_trace_json();
    std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    check_chrome_trace(&json).map_err(|e| format!("{path} is not a valid trace: {e}"))?;
    let violations = bst_contract::validate_trace_invariants(&report, opts, gpu_mem);
    if !violations.is_empty() {
        return Err(format!(
            "trace invariants violated:\n  {}",
            violations.join("\n  ")
        ));
    }
    Ok(report.text_summary(gpu_mem))
}

/// Validates an emitted Chrome-trace JSON document: it must parse, be a
/// non-empty array, and every element must be an object carrying at least
/// `name`/`ph`/`pid`/`ts` (ts non-negative). Returns the event count.
pub fn check_chrome_trace(json: &str) -> Result<usize, String> {
    let doc = minijson::parse(json)?;
    let events = doc.as_arr().ok_or("top level is not an array")?;
    if events.is_empty() {
        return Err("trace array is empty".into());
    }
    for (i, e) in events.iter().enumerate() {
        for key in ["name", "ph", "pid"] {
            if e.get(key).is_none() {
                return Err(format!("event {i} lacks \"{key}\""));
            }
        }
        if e.get("ph").and_then(minijson::Value::as_str) == Some("M") {
            continue; // metadata events carry no timestamp
        }
        match e.get("ts").and_then(minijson::Value::as_num) {
            Some(ts) if ts >= 0.0 => {}
            Some(_) => return Err(format!("event {i} has negative ts")),
            None => return Err(format!("event {i} lacks \"ts\"")),
        }
    }
    Ok(events.len())
}

/// Writes a CSV file into `results/` (creating the directory), one header
/// row plus data rows — so every figure can be re-plotted with the gnuplot
/// script in `results/plot.gp`.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    use std::io::Write;
    std::fs::create_dir_all("results")?;
    let mut f = std::io::BufWriter::new(std::fs::File::create(format!("results/{name}"))?);
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

/// Parses the common `--quick` / `--carbons N` style flags.
pub struct Args {
    /// Reduced sweep requested.
    pub quick: bool,
    /// `--trace PATH`: also run a tiny traced *numeric* execution and write
    /// its Chrome-trace JSON here.
    pub trace: Option<String>,
}

impl Args {
    /// Parses process arguments; panics on unknown flags.
    pub fn parse() -> Self {
        let mut quick = false;
        let mut trace = None;
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--trace" => {
                    trace = Some(it.next().expect("--trace needs a file path"));
                }
                other => {
                    panic!("unknown argument {other} (supported: --quick, --trace PATH)")
                }
            }
        }
        Self { quick, trace }
    }

    /// The size sweep to use.
    pub fn sizes(&self) -> &'static [u64] {
        if self.quick {
            &SIZES_QUICK
        } else {
            &SIZES
        }
    }

    /// The GPU-count sweep to use.
    pub fn gpu_counts(&self) -> &'static [usize] {
        if self.quick {
            &GPU_COUNTS[..4]
        } else {
            &GPU_COUNTS
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_numeric_trace_emits_and_validates() {
        let path = std::env::temp_dir().join("bst_bench_tiny_trace.json");
        let summary = emit_numeric_trace(path.to_str().unwrap()).unwrap();
        assert!(summary.contains("trace summary:"), "{summary}");
        assert!(summary.contains("Gemm"), "{summary}");
        assert!(summary.contains("n0.g0"), "{summary}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(check_chrome_trace(&json).unwrap() > 10);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chrome_checker_rejects_bad_documents() {
        assert!(check_chrome_trace("").is_err());
        assert!(check_chrome_trace("[]").is_err());
        assert!(check_chrome_trace("{\"a\":1}").is_err());
        assert!(check_chrome_trace("[{\"name\":\"x\"}]").is_err());
        assert!(check_chrome_trace(r#"[{"name":"x","ph":"X","pid":0,"ts":-1}]"#).is_err());
        assert!(check_chrome_trace(r#"[{"name":"x","ph":"X","pid":0,"ts":0.5}]"#).is_ok());
        assert!(check_chrome_trace(r#"[{"name":"p","ph":"M","pid":0}]"#).is_ok());
    }
}

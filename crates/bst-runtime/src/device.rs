//! Simulated GPU memory with strict accounting.
//!
//! The correctness-critical property of the paper's algorithm is that GPU
//! memory is *never* oversubscribed: blocks fit in half the device, the
//! active chunk in a quarter, the prefetched chunk in the last quarter, and
//! no B/C tile is ever flushed before its last use. [`DeviceMemory`] turns a
//! violation of that discipline into a hard error instead of a silent
//! slowdown (or a CUDA OOM), so the planner's budget arithmetic is testable.
//!
//! [`NodeResidency`] is the node-level registry that lets a GPU discover a
//! sibling device already holding a tile, modelling the NVLink
//! device-to-device path of §4 ("the second GPU may use the copy residing on
//! the first one").

use crate::data::DataKey;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Where a loaded tile came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadSource {
    /// Already on this device — no transfer.
    Resident,
    /// Host-to-device transfer (PCIe/NVLink from CPU memory).
    Host,
    /// Device-to-device transfer from a sibling GPU (NVLink).
    Peer,
}

/// Error raised when a load would exceed device capacity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceOom {
    /// The datum being loaded.
    pub key: DataKey,
    /// Bytes requested.
    pub bytes: u64,
    /// Bytes currently in use.
    pub used: u64,
    /// Device capacity.
    pub capacity: u64,
}

impl std::fmt::Display for DeviceOom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device OOM loading {:?}: {} B requested, {}/{} B used",
            self.key, self.bytes, self.used, self.capacity
        )
    }
}

impl std::error::Error for DeviceOom {}

/// Transfer and occupancy statistics of one device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Bytes moved host → device.
    pub h2d_bytes: u64,
    /// Bytes moved device → device (from a sibling GPU).
    pub d2d_bytes: u64,
    /// Bytes moved device → host.
    pub d2h_bytes: u64,
    /// High-water mark of resident bytes.
    pub peak_bytes: u64,
    /// Number of load calls that required a transfer.
    pub loads: u64,
    /// Number of data frees (last reference dropped and bytes reclaimed).
    pub evictions: u64,
}

/// Tracked memory of one simulated GPU.
pub struct DeviceMemory {
    gpu: usize,
    capacity: u64,
    used: u64,
    /// bytes and reference count per resident datum: overlapping consumers
    /// (e.g. a prefetched chunk re-loading a tile the previous chunk still
    /// holds) share one copy, as PaRSEC's data-copy refcounting does.
    resident: HashMap<DataKey, (u64, u32)>,
    stats: DeviceStats,
    registry: Arc<NodeResidency>,
}

impl DeviceMemory {
    /// A device of `capacity` bytes, GPU index `gpu` within its node,
    /// registered in the node's residency registry.
    pub fn new(gpu: usize, capacity: u64, registry: Arc<NodeResidency>) -> Self {
        Self {
            gpu,
            capacity,
            used: 0,
            resident: HashMap::new(),
            stats: DeviceStats::default(),
            registry,
        }
    }

    /// Loads `bytes` of datum `key` onto the device; no-op if already
    /// resident. Consults the node registry to prefer a peer copy (NVLink
    /// d2d) over a host transfer.
    pub fn load(&mut self, key: DataKey, bytes: u64) -> Result<LoadSource, DeviceOom> {
        if let Some(entry) = self.resident.get_mut(&key) {
            entry.1 += 1;
            return Ok(LoadSource::Resident);
        }
        if self.used + bytes > self.capacity {
            return Err(DeviceOom {
                key,
                bytes,
                used: self.used,
                capacity: self.capacity,
            });
        }
        self.used += bytes;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.used);
        self.stats.loads += 1;
        self.resident.insert(key, (bytes, 1));
        let source = if self.registry.present_elsewhere(key, self.gpu) {
            self.stats.d2d_bytes += bytes;
            LoadSource::Peer
        } else {
            self.stats.h2d_bytes += bytes;
            LoadSource::Host
        };
        self.registry.add(key, self.gpu);
        Ok(source)
    }

    /// Reserves `bytes` for datum `key` without any transfer — used for
    /// result tiles allocated and zero-initialised directly on the device
    /// (§5: "C empty, the necessary tiles will be allocated and initialized
    /// to zero when needed").
    pub fn alloc(&mut self, key: DataKey, bytes: u64) -> Result<(), DeviceOom> {
        if let Some(entry) = self.resident.get_mut(&key) {
            entry.1 += 1;
            return Ok(());
        }
        if self.used + bytes > self.capacity {
            return Err(DeviceOom {
                key,
                bytes,
                used: self.used,
                capacity: self.capacity,
            });
        }
        self.used += bytes;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.used);
        self.resident.insert(key, (bytes, 1));
        self.registry.add(key, self.gpu);
        Ok(())
    }

    /// Releases one reference to datum `key`; frees its bytes when the last
    /// reference drops. `writeback` adds the bytes to the d2h counter when
    /// freed (used when flushing C tiles). Returns whether the datum was
    /// actually freed.
    ///
    /// # Panics
    /// Panics if the datum is not resident.
    pub fn evict(&mut self, key: DataKey, writeback: bool) -> bool {
        let entry = self
            .resident
            .get_mut(&key)
            .unwrap_or_else(|| panic!("evicting non-resident {key:?}"));
        entry.1 -= 1;
        if entry.1 > 0 {
            return false;
        }
        let bytes = entry.0;
        self.resident.remove(&key);
        self.used -= bytes;
        self.stats.evictions += 1;
        if writeback {
            self.stats.d2h_bytes += bytes;
        }
        self.registry.remove(key, self.gpu);
        true
    }

    /// Whether `key` is resident.
    pub fn is_resident(&self, key: DataKey) -> bool {
        self.resident.contains_key(&key)
    }

    /// Bytes currently in use.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }
}

/// Node-level registry of which GPUs hold which data (enables d2d sourcing).
#[derive(Default)]
pub struct NodeResidency {
    map: Mutex<HashMap<DataKey, HashSet<usize>>>,
}

impl NodeResidency {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn present_elsewhere(&self, key: DataKey, gpu: usize) -> bool {
        self.map
            .lock()
            .get(&key)
            .map(|s| s.iter().any(|&g| g != gpu))
            .unwrap_or(false)
    }

    fn add(&self, key: DataKey, gpu: usize) {
        self.map.lock().entry(key).or_default().insert(gpu);
    }

    fn remove(&self, key: DataKey, gpu: usize) {
        let mut map = self.map.lock();
        if let Some(s) = map.get_mut(&key) {
            s.remove(&gpu);
            if s.is_empty() {
                map.remove(&key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(cap: u64) -> DeviceMemory {
        DeviceMemory::new(0, cap, Arc::new(NodeResidency::new()))
    }

    #[test]
    fn load_and_residency() {
        let mut d = dev(100);
        assert_eq!(d.load(DataKey::A(0, 0), 40).unwrap(), LoadSource::Host);
        assert_eq!(d.load(DataKey::A(0, 0), 40).unwrap(), LoadSource::Resident);
        assert_eq!(d.used(), 40);
        assert_eq!(d.stats().h2d_bytes, 40);
        assert_eq!(d.stats().loads, 1);
    }

    #[test]
    fn oom_on_overflow() {
        let mut d = dev(100);
        d.load(DataKey::A(0, 0), 60).unwrap();
        let err = d.load(DataKey::A(0, 1), 60).unwrap_err();
        assert_eq!(err.used, 60);
        assert_eq!(err.capacity, 100);
        // The failed load changed nothing.
        assert_eq!(d.used(), 60);
        assert!(!d.is_resident(DataKey::A(0, 1)));
    }

    #[test]
    fn evict_frees_and_counts_writeback() {
        let mut d = dev(100);
        d.load(DataKey::C(0, 0), 50).unwrap();
        d.evict(DataKey::C(0, 0), true);
        assert_eq!(d.used(), 0);
        assert_eq!(d.stats().d2h_bytes, 50);
        d.load(DataKey::A(1, 1), 30).unwrap();
        d.evict(DataKey::A(1, 1), false);
        assert_eq!(d.stats().d2h_bytes, 50);
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn evict_missing_panics() {
        dev(10).evict(DataKey::A(0, 0), false);
    }

    #[test]
    fn peak_high_water() {
        let mut d = dev(100);
        d.load(DataKey::A(0, 0), 70).unwrap();
        d.evict(DataKey::A(0, 0), false);
        d.load(DataKey::A(0, 1), 20).unwrap();
        assert_eq!(d.stats().peak_bytes, 70);
    }

    #[test]
    fn refcounted_overlapping_loads() {
        // A prefetched chunk re-loading a tile the previous chunk still
        // holds must not lose the tile when the previous chunk evicts.
        let mut d = dev(100);
        assert_eq!(d.load(DataKey::A(0, 0), 40).unwrap(), LoadSource::Host);
        assert_eq!(d.load(DataKey::A(0, 0), 40).unwrap(), LoadSource::Resident);
        assert_eq!(d.used(), 40, "one copy, two references");
        assert!(!d.evict(DataKey::A(0, 0), false), "first release keeps it");
        assert!(d.is_resident(DataKey::A(0, 0)));
        assert!(d.evict(DataKey::A(0, 0), false), "last release frees");
        assert!(!d.is_resident(DataKey::A(0, 0)));
        assert_eq!(d.used(), 0);
        // h2d counted once; only the final free is an eviction.
        assert_eq!(d.stats().h2d_bytes, 40);
        assert_eq!(d.stats().evictions, 1);
    }

    #[test]
    fn refcounted_alloc() {
        let mut d = dev(100);
        d.alloc(DataKey::C(0, 0), 30).unwrap();
        d.alloc(DataKey::C(0, 0), 30).unwrap();
        assert_eq!(d.used(), 30);
        assert!(!d.evict(DataKey::C(0, 0), true));
        assert_eq!(d.stats().d2h_bytes, 0, "writeback only on the final free");
        assert!(d.evict(DataKey::C(0, 0), true));
        assert_eq!(d.stats().d2h_bytes, 30);
    }

    #[test]
    fn d2d_from_sibling() {
        let reg = Arc::new(NodeResidency::new());
        let mut g0 = DeviceMemory::new(0, 100, reg.clone());
        let mut g1 = DeviceMemory::new(1, 100, reg.clone());
        assert_eq!(g0.load(DataKey::A(2, 3), 10).unwrap(), LoadSource::Host);
        assert_eq!(g1.load(DataKey::A(2, 3), 10).unwrap(), LoadSource::Peer);
        assert_eq!(g1.stats().d2d_bytes, 10);
        assert_eq!(g1.stats().h2d_bytes, 0);
        // After both evict, a fresh load is a host transfer again.
        g0.evict(DataKey::A(2, 3), false);
        g1.evict(DataKey::A(2, 3), false);
        assert_eq!(g0.load(DataKey::A(2, 3), 10).unwrap(), LoadSource::Host);
    }
}

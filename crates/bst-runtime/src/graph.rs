//! Generic task DAG: tasks pinned to workers.
//!
//! A [`TaskGraph`] is a DAG of payload-carrying tasks, each pinned to a
//! [`WorkerId`] (a lane of a simulated node). Edges are plain dependencies;
//! the caller decides whether an edge means "data flows here" or "control
//! only" — the scheduler treats both identically, as PaRSEC's PTG does.
//!
//! Execution lives in [`crate::engine`]:
//! [`Engine::run`](crate::engine::Engine::run) spawns one OS thread per
//! worker; each worker pulls ready tasks from its own FIFO; completing a
//! task decrements the indegree of its successors, enqueueing those that
//! become ready onto *their* worker's FIFO. Worker panics propagate to the
//! caller. Tracing, clocks and retry are composed as policies on
//! [`Engine`](crate::engine::Engine) (fluent
//! `.tracing()/.with_clock()/.with_retry()`); infallible handlers go
//! through the [`infallible`](crate::engine::infallible) adapter.

use crate::trace::ExecTrace;

/// Address of an execution lane: a node and a lane within it.
///
/// By convention lane 0 is the node's CPU (communication, B generation) and
/// lanes `1..=g` are its GPUs — but the engine imposes no semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId {
    /// Simulated node index.
    pub node: usize,
    /// Lane within the node.
    pub lane: usize,
}

/// Identifier of a task within its graph.
pub type TaskId = usize;

/// Retry options for the engine's
/// [`RetryPolicy`](crate::engine::RetryPolicy): how many attempts each
/// task gets and how long the worker backs off between them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryOptions {
    /// Maximum handler attempts per task (≥ 1; a value of 0 is treated as
    /// 1). The first attempt counts, so `budget = 4` allows 3 retries.
    pub budget: u32,
    /// Backoff before the first retry, in microseconds; each further retry
    /// doubles it (exponential backoff).
    pub backoff_base_us: u64,
    /// Upper bound on a single backoff, in microseconds.
    pub backoff_max_us: u64,
}

impl Default for RetryOptions {
    fn default() -> Self {
        Self { budget: 4, backoff_base_us: 20, backoff_max_us: 500 }
    }
}

impl RetryOptions {
    /// No retries: every transient error is terminal.
    pub fn none() -> Self {
        Self { budget: 1, backoff_base_us: 0, backoff_max_us: 0 }
    }

    /// Backoff after failed attempt number `attempt` (1-based):
    /// `min(base · 2^(attempt-1), max)` microseconds.
    pub fn backoff_us(&self, attempt: u32) -> u64 {
        let doubling = attempt.saturating_sub(1).min(16);
        self.backoff_base_us
            .saturating_mul(1u64 << doubling)
            .min(self.backoff_max_us)
    }
}

/// A handler error, classified by whether retrying could help.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TaskError<E> {
    /// The failure may resolve on retry (e.g. an injected transient fault);
    /// the engine re-enqueues the task while its retry budget lasts.
    Transient(E),
    /// Retrying cannot help; the execution aborts immediately.
    Fatal(E),
}

impl<E> TaskError<E> {
    /// The wrapped error.
    pub fn into_inner(self) -> E {
        match self {
            Self::Transient(e) | Self::Fatal(e) => e,
        }
    }
}

/// Why a fallible execution stopped early (returned by
/// [`Engine::run`](crate::engine::Engine::run) as the `Err` case).
#[derive(Clone, Debug)]
pub struct RunAbort<E> {
    /// The task whose failure ended the run.
    pub task: TaskId,
    /// Handler attempts that task had made (including the failing one).
    pub attempts: u32,
    /// `true` if the error was transient but the retry budget ran out;
    /// `false` for a fatal error.
    pub budget_exhausted: bool,
    /// The error of the final attempt.
    pub error: E,
}

/// Outcome of a completed fallible execution.
#[derive(Clone, Debug, Default)]
pub struct FallibleRun {
    /// Handler attempts per task id (1 = no retries).
    pub attempts: Vec<u32>,
    /// The recorded trace, when tracing was requested.
    pub trace: Option<ExecTrace>,
}

impl FallibleRun {
    /// Number of tasks that needed more than one attempt.
    pub fn retried_tasks(&self) -> u64 {
        self.attempts.iter().filter(|&&a| a > 1).count() as u64
    }

    /// Total failed attempts across all tasks (`Σ max(attempts - 1, 0)`).
    pub fn failed_attempts(&self) -> u64 {
        self.attempts.iter().map(|&a| u64::from(a.saturating_sub(1))).sum()
    }

    /// Largest per-task attempt count (0 for an empty graph).
    pub fn max_attempts(&self) -> u32 {
        self.attempts.iter().copied().max().unwrap_or(0)
    }
}

struct TaskNode<T> {
    payload: T,
    worker: WorkerId,
    deps: Vec<TaskId>,
}

/// A DAG of tasks pinned to workers.
pub struct TaskGraph<T> {
    tasks: Vec<TaskNode<T>>,
}

impl<T> Default for TaskGraph<T> {
    fn default() -> Self {
        Self { tasks: Vec::new() }
    }
}

impl<T> TaskGraph<T> {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a task pinned to `worker`; returns its id.
    pub fn add_task(&mut self, payload: T, worker: WorkerId) -> TaskId {
        self.tasks.push(TaskNode {
            payload,
            worker,
            deps: Vec::new(),
        });
        self.tasks.len() - 1
    }

    /// Declares that `task` depends on `dep` (dep must complete first).
    ///
    /// # Panics
    /// Panics if either id is out of range or `dep >= task` is violated in a
    /// way that would create a cycle (dependencies must point at
    /// previously-created tasks, which makes the graph acyclic by
    /// construction).
    pub fn add_dep(&mut self, task: TaskId, dep: TaskId) {
        assert!(task < self.tasks.len(), "unknown task {task}");
        assert!(dep < task, "dependency {dep} must be created before task {task}");
        self.tasks[task].deps.push(dep);
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Payload of a task.
    pub fn payload(&self, id: TaskId) -> &T {
        &self.tasks[id].payload
    }

    /// Worker of a task.
    pub fn worker(&self, id: TaskId) -> WorkerId {
        self.tasks[id].worker
    }

    /// Dependencies of a task.
    pub fn deps(&self, id: TaskId) -> &[TaskId] {
        &self.tasks[id].deps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{infallible, Engine};
    use std::sync::atomic::Ordering;
    use parking_lot::Mutex;

    fn w(node: usize, lane: usize) -> WorkerId {
        WorkerId { node, lane }
    }

    /// Runs `g` with an infallible handler through the engine.
    fn exec<T: Sync, C: Send>(
        g: &TaskGraph<T>,
        workers: &[WorkerId],
        mk_ctx: impl Fn(WorkerId) -> C + Sync,
        run: impl Fn(&T, WorkerId, &mut C) + Sync,
    ) {
        match Engine::new().run(g, workers, mk_ctx, infallible(run)) {
            Ok(_) => (),
            Err(abort) => match abort.error {},
        }
    }

    /// [`exec`] with tracing on, returning the recorded trace.
    fn exec_traced<T: Sync, C: Send>(
        g: &TaskGraph<T>,
        workers: &[WorkerId],
        mk_ctx: impl Fn(WorkerId) -> C + Sync,
        run: impl Fn(&T, WorkerId, &mut C) + Sync,
    ) -> ExecTrace {
        match Engine::new().tracing().run(g, workers, mk_ctx, infallible(run)) {
            Ok(r) => r.trace.expect("tracing was requested"),
            Err(abort) => match abort.error {},
        }
    }

    #[test]
    fn builds_and_queries() {
        let mut g: TaskGraph<&'static str> = TaskGraph::new();
        let a = g.add_task("a", w(0, 0));
        let b = g.add_task("b", w(0, 1));
        g.add_dep(b, a);
        assert_eq!(g.len(), 2);
        assert_eq!(*g.payload(a), "a");
        assert_eq!(g.worker(b), w(0, 1));
        assert_eq!(g.deps(b), &[a]);
    }

    #[test]
    #[should_panic]
    fn forward_dep_rejected() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let a = g.add_task(0, w(0, 0));
        g.add_dep(a, a);
    }

    #[test]
    fn executes_in_dependency_order() {
        let mut g: TaskGraph<usize> = TaskGraph::new();
        let n = 50;
        // A chain alternating between two workers.
        let mut prev = None;
        for i in 0..n {
            let t = g.add_task(i, w(0, i % 2));
            if let Some(p) = prev {
                g.add_dep(t, p);
            }
            prev = Some(t);
        }
        let log = Mutex::new(Vec::new());
        exec(&g, &[w(0, 0), w(0, 1)], |_| (), |&i, _, _| {
            log.lock().push(i);
        });
        assert_eq!(*log.lock(), (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn fan_out_fan_in() {
        let mut g: TaskGraph<&'static str> = TaskGraph::new();
        let src = g.add_task("src", w(0, 0));
        let mids: Vec<_> = (0..8)
            .map(|i| {
                let t = g.add_task("mid", w(i % 3, 0));
                g.add_dep(t, src);
                t
            })
            .collect();
        let sink = g.add_task("sink", w(0, 0));
        for m in mids {
            g.add_dep(sink, m);
        }
        let order = Mutex::new(Vec::new());
        exec(&g, &[w(0, 0), w(1, 0), w(2, 0)], |_| (), |&s, _, _| {
            order.lock().push(s);
        });
        let order = order.lock();
        assert_eq!(order.first(), Some(&"src"));
        assert_eq!(order.last(), Some(&"sink"));
        assert_eq!(order.len(), 10);
    }

    #[test]
    fn per_worker_context_is_private() {
        let mut g: TaskGraph<u64> = TaskGraph::new();
        for i in 0..100 {
            g.add_task(i, w(i as usize % 4, 0));
        }
        let sums = Mutex::new(std::collections::HashMap::new());
        exec(&g, 
            &[w(0, 0), w(1, 0), w(2, 0), w(3, 0)],
            |_| 0u64,
            |&v, wid, acc| {
                *acc += v;
                // Record the running value; last write wins per worker.
                sums.lock().insert(wid, *acc);
            },
        );
        let sums = sums.lock();
        let total: u64 = sums.values().sum();
        assert_eq!(total, (0..100).sum::<u64>());
    }

    #[test]
    fn empty_graph_is_noop() {
        let g: TaskGraph<u32> = TaskGraph::new();
        exec(&g, &[w(0, 0)], |_| (), |_, _, _| panic!("no tasks"));
    }

    #[test]
    fn control_edges_enforce_ordering_across_workers() {
        // Two independent pipelines with cross control edges pinning an
        // interleaving: b0 before a1.
        let mut g: TaskGraph<&'static str> = TaskGraph::new();
        let a0 = g.add_task("a0", w(0, 0));
        let b0 = g.add_task("b0", w(1, 0));
        let a1 = g.add_task("a1", w(0, 0));
        g.add_dep(a1, a0);
        g.add_dep(a1, b0); // control edge
        let log = Mutex::new(Vec::new());
        exec(&g, &[w(0, 0), w(1, 0)], |_| (), |&s, _, _| {
            log.lock().push(s);
        });
        let log = log.lock();
        let pos = |s: &str| log.iter().position(|&x| x == s).unwrap();
        assert!(pos("b0") < pos("a1"));
        assert!(pos("a0") < pos("a1"));
    }

    #[test]
    fn traced_execution_produces_valid_trace() {
        // Diamond across three workers plus an independent chain.
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let src = g.add_task(0, w(0, 0));
        let l = g.add_task(1, w(0, 1));
        let r = g.add_task(2, w(1, 0));
        g.add_dep(l, src);
        g.add_dep(r, src);
        let sink = g.add_task(3, w(0, 0));
        g.add_dep(sink, l);
        g.add_dep(sink, r);
        let mut prev = g.add_task(4, w(1, 0));
        for i in 5..20 {
            let t = g.add_task(i, w(1, 0));
            g.add_dep(t, prev);
            prev = t;
        }
        let trace = exec_traced(&g, &[w(0, 0), w(0, 1), w(1, 0)], |_| (), |_, _, _| {
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert_eq!(trace.validate(&g), Vec::new());
        // One Ready + Running + Done per task.
        assert_eq!(trace.event_count(), 3 * g.len());
        // Exactly the dependency-free tasks were seeded.
        assert_eq!(trace.seed_events.len(), 2);
        assert!(trace.total_ns > 0);
    }

    #[test]
    fn traced_empty_graph_yields_empty_trace() {
        let g: TaskGraph<u32> = TaskGraph::new();
        let trace = exec_traced(&g, &[w(0, 0)], |_| (), |_, _, _| panic!("no tasks"));
        assert_eq!(trace.event_count(), 0);
        assert!(trace.validate(&g).is_empty());
    }

    #[test]
    fn untraced_execution_unchanged_by_tracing_support() {
        // `execute` must keep returning unit and running everything exactly
        // once — tracing must be strictly opt-in.
        let mut g: TaskGraph<u64> = TaskGraph::new();
        for i in 0..200 {
            g.add_task(i, w(i as usize % 3, 0));
        }
        let count = std::sync::atomic::AtomicUsize::new(0);
        exec(&g, &[w(0, 0), w(1, 0), w(2, 0)], |_| (), |_, _, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 200);
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn traced_handler_panic_still_propagates() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        g.add_task(1, w(0, 0));
        exec_traced(&g, &[w(0, 0)], |_| (), |_, _, _| panic!("boom"));
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn handler_panic_propagates() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        g.add_task(1, w(0, 0));
        exec(&g, &[w(0, 0)], |_| (), |_, _, _| panic!("boom"));
    }

    #[test]
    fn fallible_retries_transient_failures_to_success() {
        // A diamond whose left task fails twice before succeeding; the run
        // must complete, respect the DAG, and report the attempt counts.
        let mut g: TaskGraph<&'static str> = TaskGraph::new();
        let src = g.add_task("src", w(0, 0));
        let flaky = g.add_task("flaky", w(0, 1));
        let solid = g.add_task("solid", w(1, 0));
        g.add_dep(flaky, src);
        g.add_dep(solid, src);
        let sink = g.add_task("sink", w(0, 0));
        g.add_dep(sink, flaky);
        g.add_dep(sink, solid);

        let order = Mutex::new(Vec::new());
        let run = Engine::new()
            .tracing()
            .with_retry(RetryOptions { budget: 4, backoff_base_us: 1, backoff_max_us: 10 })
            .run(
                &g,
                &[w(0, 0), w(0, 1), w(1, 0)],
                |_| (),
                |&name: &&str, _, _, attempt| {
                    if name == "flaky" && attempt <= 2 {
                        return Err(TaskError::Transient(format!("attempt {attempt}")));
                    }
                    order.lock().push(name);
                    Ok(())
                },
            )
            .expect("recovers within budget");
        assert_eq!(run.attempts[flaky], 3);
        assert_eq!(run.retried_tasks(), 1);
        assert_eq!(run.failed_attempts(), 2);
        assert_eq!(run.max_attempts(), 3);
        let order = order.lock();
        // The sink still ran last: retrying must not release successors.
        assert_eq!(order.last(), Some(&"sink"));
        // The retried trace still validates (Failed/Retried bookkeeping).
        let trace = run.trace.expect("traced");
        assert_eq!(trace.validate(&g), Vec::new());
        assert_eq!(trace.task_attempts()[&flaky], 3);
    }

    #[test]
    fn fallible_budget_exhaustion_aborts_with_error() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let a = g.add_task(7, w(0, 0));
        let b = g.add_task(8, w(1, 0));
        g.add_dep(b, a);
        let abort = Engine::new()
            .with_retry(RetryOptions { budget: 3, backoff_base_us: 1, backoff_max_us: 2 })
            .run(
                &g,
                &[w(0, 0), w(1, 0)],
                |_| (),
                |_, _, _, _| Err::<(), _>(TaskError::Transient("still down")),
            )
            .expect_err("budget must run out");
        assert_eq!(abort.task, a);
        assert_eq!(abort.attempts, 3);
        assert!(abort.budget_exhausted);
        assert_eq!(abort.error, "still down");
    }

    #[test]
    fn fallible_fatal_error_aborts_immediately() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let a = g.add_task(1, w(0, 0));
        // A dependent on another worker must not hang when the run aborts.
        let b = g.add_task(2, w(1, 0));
        g.add_dep(b, a);
        let abort = Engine::new()
            .with_retry(RetryOptions::default())
            .run(
                &g,
                &[w(0, 0), w(1, 0)],
                |_| (),
                |_, _, _, _| Err::<(), _>(TaskError::Fatal("corrupt")),
            )
            .expect_err("fatal error must abort");
        assert_eq!(abort.attempts, 1);
        assert!(!abort.budget_exhausted);
        assert_eq!(abort.error, "corrupt");
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let r = RetryOptions { budget: 8, backoff_base_us: 10, backoff_max_us: 65 };
        assert_eq!(r.backoff_us(1), 10);
        assert_eq!(r.backoff_us(2), 20);
        assert_eq!(r.backoff_us(3), 40);
        assert_eq!(r.backoff_us(4), 65);
        assert_eq!(r.backoff_us(60), 65); // shift stays in range
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn panic_does_not_hang_other_workers() {
        // Worker 1 waits on a task that can never become ready because
        // worker 0 panics; the engine must poison the queues so the test
        // terminates (with the propagated panic) instead of deadlocking.
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let a = g.add_task(0, w(0, 0));
        let b = g.add_task(1, w(1, 0));
        g.add_dep(b, a);
        exec(&g, &[w(0, 0), w(1, 0)], |_| (), |&v, _, _| {
            if v == 0 {
                panic!("boom");
            }
        });
    }
}

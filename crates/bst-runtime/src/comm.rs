//! The inter-node message-passing transport (the "NIC" of the simulated
//! cluster).
//!
//! The paper's machine model is distributed-memory: every MPI rank owns its
//! tiles, and a tile is usable only after its message has arrived. This
//! module makes that model real inside one process. A [`CommFabric`] gives
//! each simulated node
//!
//! * a **bounded inbox** (a `crossbeam` bounded channel of frames) that
//!   is the only way data enters the node,
//! * a **progress thread** that drains the inbox into the node's private
//!   [`TileStore`] (and, for C partial sums, into a reduction buffer),
//! * **per-link-class credit gates**: a sender must acquire a credit on the
//!   destination's gate for the link class it crosses
//!   ([`topology::LinkClass::Intra`] vs [`topology::LinkClass::Inter`], see
//!   [`CommConfig::window`] / [`CommConfig::intra_window`]) before a frame
//!   may leave, and the credit returns only after the progress thread has
//!   *deposited* the frame — so a slow node cannot be flooded past its
//!   window, end to end, and a saturated NIC window cannot throttle
//!   intra-node traffic (or vice versa), and
//! * **per-link-class [`LinkShaper`]s** that charge per-message wall-clock
//!   time (latency + bytes/bandwidth) inside the progress thread:
//!   [`CommConfig::shaper`] for inter-node frames (calibrated to the
//!   23 GB/s Summit NIC of `bst-sim`'s platform model),
//!   [`CommConfig::intra_shaper`] for frames between ranks sharing a
//!   physical node (shared memory / NVLink). Loopback frames are never
//!   shaped.
//!
//! Which class a frame crosses is decided by the fabric's
//! [`topology::Topology`] ([`CommConfig::node_size`] ranks per physical
//! node); the collective tree shapes routed over it live in [`topology`].
//!
//! Frame vocabulary: `Frame::BcastA` carries one hop of an A-tile
//! broadcast tree ([`TileMsg`]: `{key, payload, epoch}` — the epoch is the
//! sending task's attempt number, which makes duplicate delivery
//! detectable), `Frame::ReduceC` carries a C-block partial sum
//! ([`CPart`]) one hop up the reduction tree, and `Frame::Shutdown` is
//! the completion control frame. Credits are the flow-control frames
//! collapsed into semaphores: releasing a credit *is* the credit-return
//! message.
//!
//! Delivery is idempotent: the progress thread tracks delivered keys and
//! drops (and counts) re-deliveries, so a retried send after a fault-
//! injected drop can never double-deposit. A seeded [`DeliveryPolicy`]
//! can shuffle delivery order within a window to prove the dataflow DAG —
//! not arrival order — is what orders the computation.

pub mod topology;
pub mod wire;

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use bst_tile::Tile;
use crossbeam::channel::{bounded, Receiver, Sender};

use crate::data::{DataKey, TileStore};
use crate::trace::{TraceClock, TracePhase};

pub use topology::{LinkClass, Topology};
pub use wire::{RemoteLink, Wire, WireError, WireFrame};

/// Default credit window (frames in flight per receiving node, per link
/// class).
pub const DEFAULT_CREDIT_WINDOW: usize = 16;

/// SplitMix64 finalizer (same mixing as the tile seeds / fault plans).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-message link cost model: a message of `b` bytes occupies the
/// receiving node's ingress for `latency_s + b / bandwidth_bps` seconds of
/// wall clock. [`LinkShaper::off`] charges nothing (the default for
/// numeric tests, where only ordering matters).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkShaper {
    /// Link bandwidth in bytes/second; `<= 0` disables the size term.
    pub bandwidth_bps: f64,
    /// Per-message latency in seconds.
    pub latency_s: f64,
}

impl LinkShaper {
    /// No shaping: messages are delivered as fast as threads move them.
    pub const fn off() -> Self {
        Self {
            bandwidth_bps: 0.0,
            latency_s: 0.0,
        }
    }

    /// A NIC with the given bandwidth (bytes/s) and per-message latency (s).
    pub const fn nic(bandwidth_bps: f64, latency_s: f64) -> Self {
        Self {
            bandwidth_bps,
            latency_s,
        }
    }

    /// The Summit-like NIC of `bst-sim`'s platform model: 23 GB/s,
    /// 3 µs latency. (`bst_sim::platform::Platform::summit().link_shaper()`
    /// returns exactly this — a calibration test keeps them in sync.)
    pub const fn summit_nic() -> Self {
        Self::nic(23e9, 3e-6)
    }

    /// The Summit-like intra-node link (shared memory / NVLink-class):
    /// 50 GB/s, 1 µs. (`Platform::summit().intra_shaper()` is pinned to
    /// this by the same calibration test.)
    pub const fn summit_intra() -> Self {
        Self::nic(50e9, 1e-6)
    }

    /// Whether this shaper charges any time at all.
    pub fn is_off(&self) -> bool {
        self.bandwidth_bps <= 0.0 && self.latency_s <= 0.0
    }

    /// Modeled transfer time of a `bytes`-byte message, in seconds.
    pub fn delay_s(&self, bytes: u64) -> f64 {
        let size_term = if self.bandwidth_bps > 0.0 {
            bytes as f64 / self.bandwidth_bps
        } else {
            0.0
        };
        (size_term + self.latency_s).max(0.0)
    }

    /// Modeled transfer time of a `bytes`-byte message.
    pub fn delay(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(self.delay_s(bytes))
    }
}

/// In what order a progress thread delivers the frames it has staged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DeliveryPolicy {
    /// Strict arrival (FIFO) order.
    #[default]
    InOrder,
    /// Seeded pseudo-random shuffling within a staging window of up to
    /// `window` frames — a determinism stressor: the numeric result must
    /// not depend on delivery order, only on the dataflow DAG.
    Reorder {
        /// Shuffle seed.
        seed: u64,
        /// Staging window (≥ 1; 1 degenerates to FIFO).
        window: usize,
    },
}

/// Configuration of a [`CommFabric`].
#[derive(Clone, Copy, Debug)]
pub struct CommConfig {
    /// Credit window per receiving node for **inter-node** frames (frames
    /// in flight over the NIC, ≥ 1).
    pub window: usize,
    /// Credit window per receiving node for **intra-node** (and loopback)
    /// frames. Defaults to [`DEFAULT_CREDIT_WINDOW`]; size it independently
    /// when the NIC window — not the link — is the throughput cap.
    pub intra_window: usize,
    /// Ranks per physical node (≥ 1; 1 = every link inter-node, the flat
    /// legacy behaviour). See [`topology::Topology`].
    pub node_size: usize,
    /// Link cost model of **inter-node** frames (default:
    /// [`LinkShaper::off`]).
    pub shaper: LinkShaper,
    /// Link cost model of **intra-node** frames (default:
    /// [`LinkShaper::off`]). Only meaningful with `node_size > 1`.
    pub intra_shaper: LinkShaper,
    /// Delivery ordering policy (default: FIFO).
    pub delivery: DeliveryPolicy,
    /// When set, every send/delivery records a [`CommEvent`] on this clock.
    pub clock: Option<TraceClock>,
}

impl Default for CommConfig {
    fn default() -> Self {
        Self {
            window: DEFAULT_CREDIT_WINDOW,
            intra_window: DEFAULT_CREDIT_WINDOW,
            node_size: 1,
            shaper: LinkShaper::off(),
            intra_shaper: LinkShaper::off(),
            delivery: DeliveryPolicy::InOrder,
            clock: None,
        }
    }
}

/// One A-tile broadcast hop: tile `key` moving to a destination node.
#[derive(Clone, Debug)]
pub struct TileMsg {
    /// Identity of the tile.
    pub key: DataKey,
    /// The tile payload (moved, never shared across stores: the receiving
    /// store holds its own reference).
    pub payload: Arc<Tile>,
    /// The sending task's attempt number (1-based). A re-sent message after
    /// a drop carries a higher epoch; duplicate delivery of any epoch is
    /// suppressed idempotently.
    pub epoch: u32,
    /// Sending node.
    pub src: usize,
    /// Consumer refcount the destination store registers the tile with.
    pub consumers: usize,
}

/// One C-block partial sum travelling one hop up the reduction tree.
#[derive(Clone, Debug)]
pub struct CPart {
    /// C block-row.
    pub i: usize,
    /// C block-column.
    pub j: usize,
    /// Deterministic ordinal of this partial — `(node, gpu, block)` of the
    /// flush that produced it; an interior tree node's combined partial
    /// carries the *minimum* origin of its subtree. Every combine step
    /// sorts on `(i, j, origin)`, so with the fixed tree shape the
    /// floating-point accumulation order is independent of delivery order.
    pub origin: (usize, usize, usize),
    /// The partial-sum tile.
    pub tile: Tile,
}

/// What travels on a node's inbox.
enum Frame {
    /// One hop of an A-tile broadcast tree.
    BcastA(TileMsg),
    /// A C partial sum moving one hop up the reduction tree, from `src`.
    ReduceC {
        /// The partial.
        part: CPart,
        /// Sending node.
        src: usize,
    },
    /// Completion control frame: the progress thread drains and exits.
    Shutdown,
}

/// Error of [`CommFabric::send_tile`] / [`CommFabric::reduce`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SendError {
    /// The message was dropped in flight (fault injection). The sender's
    /// tile was *not* consumed; a retry re-reads and re-sends it with a
    /// higher epoch — a **transient** failure by construction.
    Dropped,
    /// A remote peer's wire rejected the frame (multi-process transports
    /// only — the peer process is gone). **Fatal** to the sending task:
    /// recovery means a degraded re-plan, not a retry into a dead socket.
    Wire(WireError),
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::Dropped => write!(f, "message dropped in flight"),
            SendError::Wire(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SendError {}

/// One recorded transport event (only when [`CommConfig::clock`] is set).
///
/// `phase` uses the tracer's vocabulary: [`TracePhase::Sent`] when a frame
/// leaves the sender, [`TracePhase::Received`] when the progress thread
/// deposits it, [`TracePhase::Failed`] for an in-flight drop, and
/// [`TracePhase::Retried`] for a suppressed duplicate delivery.
#[derive(Clone, Copy, Debug)]
pub struct CommEvent {
    /// Transport phase (`Sent` / `Received` / `Failed` / `Retried`).
    pub phase: TracePhase,
    /// Identity of the datum moved.
    pub key: DataKey,
    /// Sending node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Link class the frame crossed (loopback frames are not recorded).
    pub class: LinkClass,
    /// Payload bytes.
    pub bytes: u64,
    /// Sending attempt (A tiles; 0 for C partials).
    pub epoch: u32,
    /// Nanoseconds on the fabric's [`TraceClock`].
    pub t_ns: u64,
}

/// Per-node transport totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeCommStats {
    /// Bytes this node put on the wire (including later-dropped frames).
    pub sent_bytes: u64,
    /// Messages this node put on the wire.
    pub sent_msgs: u64,
    /// Bytes delivered into this node.
    pub recv_bytes: u64,
    /// Messages delivered into this node.
    pub recv_msgs: u64,
    /// Of [`NodeCommStats::sent_bytes`], the bytes that crossed an
    /// **inter-node** (NIC) link; the remainder moved intra-node.
    pub inter_sent_bytes: u64,
    /// Of [`NodeCommStats::sent_msgs`], the messages that crossed an
    /// inter-node link.
    pub inter_sent_msgs: u64,
    /// Of [`NodeCommStats::recv_bytes`], the bytes that arrived over an
    /// inter-node link.
    pub inter_recv_bytes: u64,
    /// Of [`NodeCommStats::recv_msgs`], the messages that arrived over an
    /// inter-node link.
    pub inter_recv_msgs: u64,
    /// This node's messages dropped in flight (fault injection).
    pub dropped_msgs: u64,
    /// Duplicate deliveries this node suppressed.
    pub duplicate_msgs: u64,
    /// High-water mark of inter-node frames simultaneously in flight *to*
    /// this node.
    pub max_in_flight: usize,
    /// The inter-node credit window the high-water is bounded by.
    pub credit_window: usize,
    /// High-water mark of intra-node/loopback frames in flight to this node.
    pub intra_max_in_flight: usize,
    /// The intra-node credit window.
    pub intra_credit_window: usize,
    /// Nanoseconds this node's inter-node ingress spent shaped (busy).
    pub inter_busy_ns: u64,
    /// Nanoseconds this node's intra-node ingress spent shaped (busy).
    pub intra_busy_ns: u64,
}

impl NodeCommStats {
    /// Accumulates another run's totals for the same node into `self`:
    /// counters add, high-water marks take the maximum. A long-lived
    /// service uses this to aggregate per-request transport totals into
    /// lifetime per-node counters.
    pub fn merge(&mut self, other: &NodeCommStats) {
        self.sent_bytes += other.sent_bytes;
        self.sent_msgs += other.sent_msgs;
        self.recv_bytes += other.recv_bytes;
        self.recv_msgs += other.recv_msgs;
        self.inter_sent_bytes += other.inter_sent_bytes;
        self.inter_sent_msgs += other.inter_sent_msgs;
        self.inter_recv_bytes += other.inter_recv_bytes;
        self.inter_recv_msgs += other.inter_recv_msgs;
        self.dropped_msgs += other.dropped_msgs;
        self.duplicate_msgs += other.duplicate_msgs;
        self.max_in_flight = self.max_in_flight.max(other.max_in_flight);
        self.credit_window = self.credit_window.max(other.credit_window);
        self.intra_max_in_flight = self.intra_max_in_flight.max(other.intra_max_in_flight);
        self.intra_credit_window = self.intra_credit_window.max(other.intra_credit_window);
        self.inter_busy_ns += other.inter_busy_ns;
        self.intra_busy_ns += other.intra_busy_ns;
    }
}

/// Counting semaphore implementing the credit loop: `acquire` blocks the
/// sender while the receiving node's window is exhausted; the progress
/// thread `release`s after depositing a frame.
struct CreditGate {
    avail: Mutex<usize>,
    freed: Condvar,
    window: usize,
    max_in_flight: AtomicUsize,
}

impl CreditGate {
    fn new(window: usize) -> Self {
        Self {
            avail: Mutex::new(window),
            freed: Condvar::new(),
            window,
            max_in_flight: AtomicUsize::new(0),
        }
    }

    fn acquire(&self) {
        let mut avail = self.avail.lock().unwrap_or_else(|e| e.into_inner());
        while *avail == 0 {
            avail = self.freed.wait(avail).unwrap_or_else(|e| e.into_inner());
        }
        *avail -= 1;
        let in_flight = self.window - *avail;
        self.max_in_flight.fetch_max(in_flight, Ordering::Relaxed);
    }

    fn release(&self) {
        let mut avail = self.avail.lock().unwrap_or_else(|e| e.into_inner());
        *avail += 1;
        self.freed.notify_one();
    }
}

/// Index into an endpoint's credit-gate pair: intra-node/loopback vs
/// inter-node frames hold credits from independent windows.
fn gate_of(class: LinkClass) -> usize {
    match class {
        LinkClass::Inter => 1,
        LinkClass::Intra | LinkClass::Loopback => 0,
    }
}

/// One node's side of the fabric.
struct Endpoint {
    /// Inbox sender (bounded to the summed credit windows as
    /// belt-and-braces; with credits honored it never blocks).
    tx: Sender<Frame>,
    /// Inbox receiver, taken by the node's progress thread at start.
    rx: Mutex<Option<Receiver<Frame>>>,
    /// `[intra/loopback, inter]` credit gates (see [`gate_of`]).
    credits: [CreditGate; 2],
    /// Keys delivered into this node, ever (dedup + recv notification).
    delivered: Mutex<HashSet<DataKey>>,
    arrived: Condvar,
    /// C partials delivered to this node (its reduction-tree inbox).
    reduced: Mutex<Vec<CPart>>,
    /// Signalled on every `reduced` push (see
    /// [`CommFabric::take_reduced_at_least`]).
    part_arrived: Condvar,
    sent_bytes: AtomicU64,
    sent_msgs: AtomicU64,
    recv_bytes: AtomicU64,
    recv_msgs: AtomicU64,
    inter_sent_bytes: AtomicU64,
    inter_sent_msgs: AtomicU64,
    inter_recv_bytes: AtomicU64,
    inter_recv_msgs: AtomicU64,
    dropped_msgs: AtomicU64,
    duplicate_msgs: AtomicU64,
    inter_busy_ns: AtomicU64,
    intra_busy_ns: AtomicU64,
}

impl Endpoint {
    fn new(intra_window: usize, inter_window: usize) -> Self {
        let (tx, rx) = bounded(intra_window + inter_window);
        Self {
            tx,
            rx: Mutex::new(Some(rx)),
            credits: [CreditGate::new(intra_window), CreditGate::new(inter_window)],
            delivered: Mutex::new(HashSet::new()),
            arrived: Condvar::new(),
            reduced: Mutex::new(Vec::new()),
            part_arrived: Condvar::new(),
            sent_bytes: AtomicU64::new(0),
            sent_msgs: AtomicU64::new(0),
            recv_bytes: AtomicU64::new(0),
            recv_msgs: AtomicU64::new(0),
            inter_sent_bytes: AtomicU64::new(0),
            inter_sent_msgs: AtomicU64::new(0),
            inter_recv_bytes: AtomicU64::new(0),
            inter_recv_msgs: AtomicU64::new(0),
            dropped_msgs: AtomicU64::new(0),
            duplicate_msgs: AtomicU64::new(0),
            inter_busy_ns: AtomicU64::new(0),
            intra_busy_ns: AtomicU64::new(0),
        }
    }

    fn count_sent(&self, bytes: u64, class: LinkClass) {
        self.sent_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.sent_msgs.fetch_add(1, Ordering::Relaxed);
        if class == LinkClass::Inter {
            self.inter_sent_bytes.fetch_add(bytes, Ordering::Relaxed);
            self.inter_sent_msgs.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn count_recv(&self, bytes: u64, class: LinkClass) {
        self.recv_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.recv_msgs.fetch_add(1, Ordering::Relaxed);
        if class == LinkClass::Inter {
            self.inter_recv_bytes.fetch_add(bytes, Ordering::Relaxed);
            self.inter_recv_msgs.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The transport connecting the simulated nodes (see the module docs).
pub struct CommFabric {
    endpoints: Vec<Endpoint>,
    topology: Topology,
    shaper: LinkShaper,
    intra_shaper: LinkShaper,
    delivery: DeliveryPolicy,
    clock: Option<TraceClock>,
    events: Mutex<Vec<CommEvent>>,
    /// Multi-process mode: the one locally-hosted rank plus the wire to
    /// everyone else (`None` = every rank is in-process, the default).
    remote: Option<wire::RemoteLink>,
}

impl CommFabric {
    /// A fabric connecting `n_nodes` nodes under `cfg`.
    pub fn new(n_nodes: usize, cfg: CommConfig) -> Self {
        Self::with_remote(n_nodes, cfg, None)
    }

    /// A fabric whose frames to ranks other than `remote.rank` leave the
    /// process over `remote.wire` instead of an in-process inbox. Inbound
    /// wire frames must be fed back through [`CommFabric::inject`] (the
    /// caller runs the pump). With `remote: None` this is
    /// [`CommFabric::new`].
    pub fn with_remote(
        n_nodes: usize,
        cfg: CommConfig,
        remote: Option<wire::RemoteLink>,
    ) -> Self {
        let intra = cfg.intra_window.max(1);
        let inter = cfg.window.max(1);
        Self {
            endpoints: (0..n_nodes).map(|_| Endpoint::new(intra, inter)).collect(),
            topology: Topology::new(n_nodes, cfg.node_size.max(1)),
            shaper: cfg.shaper,
            intra_shaper: cfg.intra_shaper,
            delivery: cfg.delivery,
            clock: cfg.clock,
            events: Mutex::new(Vec::new()),
            remote,
        }
    }

    /// The remote rank/wire binding, when this fabric is one process of a
    /// multi-process run.
    pub fn remote(&self) -> Option<&wire::RemoteLink> {
        self.remote.as_ref()
    }

    /// Number of connected nodes.
    pub fn nodes(&self) -> usize {
        self.endpoints.len()
    }

    /// The node-aware topology frames are classified against.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The shaper charged for `class` frames (loopback is never shaped).
    fn shaper_of(&self, class: LinkClass) -> LinkShaper {
        match class {
            LinkClass::Inter => self.shaper,
            LinkClass::Intra => self.intra_shaper,
            LinkClass::Loopback => LinkShaper::off(),
        }
    }

    fn record(
        &self,
        phase: TracePhase,
        key: DataKey,
        src: usize,
        dst: usize,
        bytes: u64,
        epoch: u32,
    ) {
        if let Some(clock) = self.clock {
            self.events
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(CommEvent {
                    phase,
                    key,
                    src,
                    dst,
                    class: self.topology.link_class(src, dst),
                    bytes,
                    epoch,
                    t_ns: clock.now_ns(),
                });
        }
    }

    /// Spawns one progress thread per node into `scope`, each draining its
    /// node's inbox into that node's store in `stores`.
    ///
    /// # Panics
    /// Panics if `stores` and the fabric disagree on node count, if a
    /// store's owner doesn't match its index, or if called twice.
    pub fn start<'env, 'scope>(
        &'env self,
        scope: &'scope std::thread::Scope<'scope, 'env>,
        stores: &'env [TileStore],
    ) {
        assert_eq!(stores.len(), self.endpoints.len(), "one store per node");
        for (node, (ep, store)) in self.endpoints.iter().zip(stores).enumerate() {
            assert_eq!(store.owner(), node, "store {node} owned by {}", store.owner());
            let rx = ep
                .rx
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("progress thread already started");
            scope.spawn(move || self.progress_loop(node, rx, store));
        }
    }

    /// Sends one hop of an A-tile broadcast tree to `dst`, honoring `dst`'s
    /// credit window for the link class the hop crosses (blocks while it is
    /// exhausted — the backpressure path).
    ///
    /// With `drop_in_flight`, the frame is charged as sent and then dropped
    /// by the fabric (the fault-injection site): the destination never sees
    /// it, and [`SendError::Dropped`] tells the caller to retry — the retry
    /// re-sends with a higher [`TileMsg::epoch`].
    ///
    /// In multi-process mode ([`CommFabric::with_remote`]), a frame for a
    /// rank this process doesn't host is shipped over the wire instead;
    /// wire failures surface as the fatal [`SendError::Wire`]. Injected
    /// drops fire *before* the wire, so a remote peer observes exactly one
    /// delivery per key (re-sends carry a higher epoch and are suppressed
    /// by the peer's dedup, same as in-process).
    pub fn send_tile(
        &self,
        dst: usize,
        msg: TileMsg,
        drop_in_flight: bool,
    ) -> Result<(), SendError> {
        let bytes = msg.payload.stored_bytes();
        let class = self.topology.link_class(msg.src, dst);
        if let Some(remote) = self.remote.as_ref().filter(|r| dst != r.rank) {
            let src_ep = &self.endpoints[msg.src];
            src_ep.count_sent(bytes, class);
            self.record(TracePhase::Sent, msg.key, msg.src, dst, bytes, msg.epoch);
            if drop_in_flight {
                src_ep.dropped_msgs.fetch_add(1, Ordering::Relaxed);
                self.record(TracePhase::Failed, msg.key, msg.src, dst, bytes, msg.epoch);
                return Err(SendError::Dropped);
            }
            return remote
                .wire
                .send(WireFrame::Tile { dst, msg })
                .map_err(SendError::Wire);
        }
        let ep = &self.endpoints[dst];
        let gate = &ep.credits[gate_of(class)];
        gate.acquire();
        let src_ep = &self.endpoints[msg.src];
        src_ep.count_sent(bytes, class);
        self.record(TracePhase::Sent, msg.key, msg.src, dst, bytes, msg.epoch);
        if drop_in_flight {
            src_ep.dropped_msgs.fetch_add(1, Ordering::Relaxed);
            self.record(TracePhase::Failed, msg.key, msg.src, dst, bytes, msg.epoch);
            gate.release();
            return Err(SendError::Dropped);
        }
        ep.tx
            .send(Frame::BcastA(msg))
            .unwrap_or_else(|_| panic!("node {dst}'s progress thread is gone"));
        Ok(())
    }

    /// Sends a C partial sum from `src` one hop up the reduction tree to
    /// `dst`. Loopback (`src == dst`) frames still traverse the inbox (one
    /// code path) but are neither shaped nor counted as network traffic.
    /// In multi-process mode, partials for a remote rank leave over the
    /// wire ([`SendError::Wire`] on failure).
    pub fn reduce(&self, src: usize, dst: usize, part: CPart) -> Result<(), SendError> {
        let bytes = part.tile.stored_bytes();
        let class = self.topology.link_class(src, dst);
        if let Some(remote) = self.remote.as_ref().filter(|r| dst != r.rank) {
            self.endpoints[src].count_sent(bytes, class);
            let key = DataKey::C(part.i as u32, part.j as u32);
            self.record(TracePhase::Sent, key, src, dst, bytes, 0);
            return remote
                .wire
                .send(WireFrame::Part { dst, src, part })
                .map_err(SendError::Wire);
        }
        let ep = &self.endpoints[dst];
        ep.credits[gate_of(class)].acquire();
        if src != dst {
            self.endpoints[src].count_sent(bytes, class);
            let key = DataKey::C(part.i as u32, part.j as u32);
            self.record(TracePhase::Sent, key, src, dst, bytes, 0);
        }
        ep.tx
            .send(Frame::ReduceC { part, src })
            .unwrap_or_else(|_| panic!("node {dst}'s progress thread is gone"));
        Ok(())
    }

    /// Deposits an inbound wire frame into the destination rank's inbox —
    /// the receive half of multi-process mode, called by the pump thread
    /// draining [`Wire::recv`]. Acquires the destination's credit gate for
    /// the link class (end-to-end flow control extends across processes:
    /// the pump stalls, TCP/UDS backpressure stalls the sender). A frame
    /// arriving after the local fabric shut down is dropped harmlessly.
    pub fn inject(&self, frame: WireFrame) {
        match frame {
            WireFrame::Tile { dst, msg } => {
                let class = self.topology.link_class(msg.src, dst);
                let gate = &self.endpoints[dst].credits[gate_of(class)];
                gate.acquire();
                if self.endpoints[dst].tx.send(Frame::BcastA(msg)).is_err() {
                    // Progress thread already exited (late frame after
                    // shutdown): return the credit and drop the frame.
                    gate.release();
                }
            }
            WireFrame::Part { dst, src, part } => {
                let class = self.topology.link_class(src, dst);
                let gate = &self.endpoints[dst].credits[gate_of(class)];
                gate.acquire();
                if self
                    .endpoints[dst]
                    .tx
                    .send(Frame::ReduceC { part, src })
                    .is_err()
                {
                    gate.release();
                }
            }
        }
    }

    /// Blocks until `key` has been delivered into `node`'s store (the
    /// `RecvA` task body). Returns immediately if it already was.
    pub fn wait_delivered(&self, node: usize, key: DataKey) {
        let ep = &self.endpoints[node];
        let mut delivered = ep.delivered.lock().unwrap_or_else(|e| e.into_inner());
        while !delivered.contains(&key) {
            delivered = ep
                .arrived
                .wait(delivered)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Whether `key` has been delivered into `node` (non-blocking).
    pub fn is_delivered(&self, node: usize, key: DataKey) -> bool {
        self.endpoints[node]
            .delivered
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains(&key)
    }

    /// Sends the completion control frame to every node. Each progress
    /// thread finishes delivering everything already in flight (FIFO
    /// inboxes guarantee nothing is skipped), then exits. Call after all
    /// senders are done; the scope passed to [`CommFabric::start`] then
    /// joins the threads.
    pub fn shutdown(&self) {
        for ep in &self.endpoints {
            // The control frame obeys flow control like any other (local)
            // frame.
            ep.credits[gate_of(LinkClass::Loopback)].acquire();
            let _ = ep.tx.send(Frame::Shutdown);
        }
    }

    /// Takes the C partials delivered to `node` so far.
    pub fn take_reduced(&self, node: usize) -> Vec<CPart> {
        std::mem::take(
            &mut *self.endpoints[node]
                .reduced
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        )
    }

    /// Blocks until at least `expected` C partials have been delivered to
    /// `node` since the last take, then takes them — the `ReduceC` task
    /// body. The expected count is structural (from the lowering), so the
    /// taken set — and therefore the combine — is independent of delivery
    /// timing.
    pub fn take_reduced_at_least(&self, node: usize, expected: usize) -> Vec<CPart> {
        let ep = &self.endpoints[node];
        let mut reduced = ep.reduced.lock().unwrap_or_else(|e| e.into_inner());
        while reduced.len() < expected {
            reduced = ep
                .part_arrived
                .wait(reduced)
                .unwrap_or_else(|e| e.into_inner());
        }
        std::mem::take(&mut *reduced)
    }

    /// Takes the recorded transport events, sorted by time (empty unless
    /// the fabric was given a clock).
    pub fn take_events(&self) -> Vec<CommEvent> {
        let mut events =
            std::mem::take(&mut *self.events.lock().unwrap_or_else(|e| e.into_inner()));
        events.sort_by_key(|e| (e.t_ns, e.src, e.dst));
        events
    }

    /// Per-node transport totals (index = node).
    pub fn node_stats(&self) -> Vec<NodeCommStats> {
        self.endpoints
            .iter()
            .map(|ep| NodeCommStats {
                sent_bytes: ep.sent_bytes.load(Ordering::Relaxed),
                sent_msgs: ep.sent_msgs.load(Ordering::Relaxed),
                recv_bytes: ep.recv_bytes.load(Ordering::Relaxed),
                recv_msgs: ep.recv_msgs.load(Ordering::Relaxed),
                inter_sent_bytes: ep.inter_sent_bytes.load(Ordering::Relaxed),
                inter_sent_msgs: ep.inter_sent_msgs.load(Ordering::Relaxed),
                inter_recv_bytes: ep.inter_recv_bytes.load(Ordering::Relaxed),
                inter_recv_msgs: ep.inter_recv_msgs.load(Ordering::Relaxed),
                dropped_msgs: ep.dropped_msgs.load(Ordering::Relaxed),
                duplicate_msgs: ep.duplicate_msgs.load(Ordering::Relaxed),
                max_in_flight: ep.credits[1].max_in_flight.load(Ordering::Relaxed),
                credit_window: ep.credits[1].window,
                intra_max_in_flight: ep.credits[0].max_in_flight.load(Ordering::Relaxed),
                intra_credit_window: ep.credits[0].window,
                inter_busy_ns: ep.inter_busy_ns.load(Ordering::Relaxed),
                intra_busy_ns: ep.intra_busy_ns.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// The progress loop of `node`: stage (optionally reorder), shape,
    /// deposit, return credit — until the `Shutdown` frame.
    fn progress_loop(&self, node: usize, rx: Receiver<Frame>, store: &TileStore) {
        let window = match self.delivery {
            DeliveryPolicy::InOrder => 1,
            DeliveryPolicy::Reorder { window, .. } => window.max(1),
        };
        let mut staged: Vec<Frame> = Vec::with_capacity(window);
        let mut draws: u64 = 0;
        let mut closing = false;
        loop {
            // Stage up to `window` frames without blocking. Staged frames
            // still hold their credits, so staging never exceeds the window.
            while staged.len() < window {
                match rx.try_recv() {
                    Ok(Frame::Shutdown) => closing = true,
                    Ok(f) => staged.push(f),
                    Err(_) => break,
                }
            }
            if staged.is_empty() {
                if closing {
                    break;
                }
                match rx.recv() {
                    Ok(Frame::Shutdown) => closing = true,
                    Ok(f) => staged.push(f),
                    Err(_) => break, // every sender gone: nothing more can come
                }
                continue;
            }
            let idx = match self.delivery {
                DeliveryPolicy::InOrder => 0,
                DeliveryPolicy::Reorder { seed, .. } => {
                    draws += 1;
                    (mix(seed ^ mix(draws)) % staged.len() as u64) as usize
                }
            };
            let frame = staged.remove(idx);
            self.deliver(node, store, frame);
        }
    }

    /// Charges the link-shaping delay of a `class` frame arriving at
    /// `node`, crediting the busy time to that node's per-class counter.
    fn shape(&self, node: usize, class: LinkClass, bytes: u64) {
        let shaper = self.shaper_of(class);
        if shaper.is_off() {
            return;
        }
        let delay = shaper.delay(bytes);
        let busy = match class {
            LinkClass::Inter => &self.endpoints[node].inter_busy_ns,
            _ => &self.endpoints[node].intra_busy_ns,
        };
        busy.fetch_add(delay.as_nanos() as u64, Ordering::Relaxed);
        std::thread::sleep(delay);
    }

    fn deliver(&self, node: usize, store: &TileStore, frame: Frame) {
        let ep = &self.endpoints[node];
        match frame {
            Frame::BcastA(msg) => {
                let bytes = msg.payload.stored_bytes();
                let class = self.topology.link_class(msg.src, node);
                self.shape(node, class, bytes);
                let mut delivered = ep.delivered.lock().unwrap_or_else(|e| e.into_inner());
                if delivered.insert(msg.key) {
                    store.put(msg.key, msg.payload, msg.consumers);
                    ep.count_recv(bytes, class);
                    self.record(TracePhase::Received, msg.key, msg.src, node, bytes, msg.epoch);
                } else {
                    // Idempotent duplicate suppression: the key already
                    // arrived under an earlier epoch.
                    ep.duplicate_msgs.fetch_add(1, Ordering::Relaxed);
                    self.record(TracePhase::Retried, msg.key, msg.src, node, bytes, msg.epoch);
                }
                drop(delivered);
                ep.arrived.notify_all();
                ep.credits[gate_of(class)].release();
            }
            Frame::ReduceC { part, src } => {
                let bytes = part.tile.stored_bytes();
                let class = self.topology.link_class(src, node);
                if src != node {
                    self.shape(node, class, bytes);
                    ep.count_recv(bytes, class);
                    let key = DataKey::C(part.i as u32, part.j as u32);
                    self.record(TracePhase::Received, key, src, node, bytes, 0);
                }
                ep.reduced
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(part);
                ep.part_arrived.notify_all();
                ep.credits[gate_of(class)].release();
            }
            Frame::Shutdown => unreachable!("Shutdown is consumed by the progress loop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shaper_delay_model() {
        let off = LinkShaper::off();
        assert!(off.is_off());
        assert_eq!(off.delay_s(1 << 30), 0.0);

        let nic = LinkShaper::nic(1e9, 1e-6);
        assert!(!nic.is_off());
        // 1 MB at 1 GB/s = 1 ms, plus 1 µs latency.
        let d = nic.delay_s(1_000_000);
        assert!((d - 1.001e-3).abs() < 1e-12, "{d}");
        assert_eq!(nic.delay(0), Duration::from_secs_f64(1e-6));
    }

    #[test]
    fn summit_nic_constants() {
        let s = LinkShaper::summit_nic();
        assert_eq!(s.bandwidth_bps, 23e9);
        assert_eq!(s.latency_s, 3e-6);
        let i = LinkShaper::summit_intra();
        assert!(i.bandwidth_bps > s.bandwidth_bps, "intra-node is the fast link");
    }

    #[test]
    fn credit_gate_tracks_high_water() {
        let g = CreditGate::new(3);
        g.acquire();
        g.acquire();
        assert_eq!(g.max_in_flight.load(Ordering::Relaxed), 2);
        g.release();
        g.acquire();
        // Back to 2 in flight; high-water stays 2.
        assert_eq!(g.max_in_flight.load(Ordering::Relaxed), 2);
        g.acquire();
        assert_eq!(g.max_in_flight.load(Ordering::Relaxed), 3);
        g.release();
        g.release();
        g.release();
    }

    #[test]
    fn delivery_policy_default_is_fifo() {
        assert_eq!(DeliveryPolicy::default(), DeliveryPolicy::InOrder);
        let cfg = CommConfig::default();
        assert_eq!(cfg.window, DEFAULT_CREDIT_WINDOW);
        assert_eq!(cfg.intra_window, DEFAULT_CREDIT_WINDOW);
        assert_eq!(cfg.node_size, 1);
    }

    #[test]
    fn gate_indexing() {
        assert_eq!(gate_of(LinkClass::Loopback), 0);
        assert_eq!(gate_of(LinkClass::Intra), 0);
        assert_eq!(gate_of(LinkClass::Inter), 1);
    }

    /// A wire that records sent frames and never fails.
    struct RecordingWire {
        sent: Mutex<Vec<WireFrame>>,
    }

    impl Wire for RecordingWire {
        fn send(&self, frame: WireFrame) -> Result<(), WireError> {
            self.sent.lock().unwrap().push(frame);
            Ok(())
        }
        fn recv(&self) -> Option<WireFrame> {
            None
        }
        fn close_inbound(&self) {}
    }

    fn a_msg(src: usize, i: u32, k: u32) -> TileMsg {
        TileMsg {
            key: DataKey::A(i, k),
            payload: Arc::new(Tile::zeros(2, 2)),
            epoch: 1,
            src,
            consumers: 1,
        }
    }

    #[test]
    fn remote_send_routes_over_wire() {
        let wire = Arc::new(RecordingWire { sent: Mutex::new(Vec::new()) });
        let fabric = CommFabric::with_remote(
            4,
            CommConfig::default(),
            Some(RemoteLink { rank: 0, wire: wire.clone() }),
        );
        // A send to a remote rank leaves over the wire, never touches the
        // (unstarted) local inboxes, and still counts on the src endpoint.
        fabric.send_tile(2, a_msg(0, 3, 5), false).unwrap();
        fabric
            .reduce(0, 1, CPart { i: 0, j: 0, origin: (0, 0, 0), tile: Tile::zeros(2, 2) })
            .unwrap();
        let sent = wire.sent.lock().unwrap();
        assert_eq!(sent.len(), 2);
        assert_eq!(sent[0].dst(), 2);
        assert_eq!(sent[1].dst(), 1);
        let stats = fabric.node_stats();
        assert_eq!(stats[0].sent_msgs, 2);
        assert!(stats[0].sent_bytes > 0);
    }

    #[test]
    fn remote_drop_fires_before_wire() {
        let wire = Arc::new(RecordingWire { sent: Mutex::new(Vec::new()) });
        let fabric = CommFabric::with_remote(
            4,
            CommConfig::default(),
            Some(RemoteLink { rank: 0, wire: wire.clone() }),
        );
        let err = fabric.send_tile(3, a_msg(0, 1, 1), true).unwrap_err();
        assert_eq!(err, SendError::Dropped);
        assert!(wire.sent.lock().unwrap().is_empty(), "dropped frame hit the wire");
        assert_eq!(fabric.node_stats()[0].dropped_msgs, 1);
    }

    /// A wire whose peer is gone: every send fails.
    struct DeadWire;

    impl Wire for DeadWire {
        fn send(&self, frame: WireFrame) -> Result<(), WireError> {
            Err(WireError { dst: frame.dst(), reason: "broken pipe".into() })
        }
        fn recv(&self) -> Option<WireFrame> {
            None
        }
        fn close_inbound(&self) {}
    }

    #[test]
    fn dead_wire_surfaces_fatal_send_error() {
        let fabric = CommFabric::with_remote(
            2,
            CommConfig::default(),
            Some(RemoteLink { rank: 0, wire: Arc::new(DeadWire) }),
        );
        match fabric.send_tile(1, a_msg(0, 0, 0), false) {
            Err(SendError::Wire(e)) => assert_eq!(e.dst, 1),
            other => panic!("expected a wire error, got {other:?}"),
        }
    }

    #[test]
    fn inject_delivers_into_local_store() {
        let fabric = CommFabric::with_remote(
            2,
            CommConfig::default(),
            Some(RemoteLink { rank: 1, wire: Arc::new(DeadWire) }),
        );
        let stores = vec![TileStore::for_node(0), TileStore::for_node(1)];
        std::thread::scope(|s| {
            fabric.start(s, &stores);
            fabric.inject(WireFrame::Tile { dst: 1, msg: a_msg(0, 7, 2) });
            fabric.wait_delivered(1, DataKey::A(7, 2));
            fabric.inject(WireFrame::Part {
                dst: 1,
                src: 0,
                part: CPart { i: 4, j: 6, origin: (0, 0, 0), tile: Tile::zeros(2, 2) },
            });
            let parts = fabric.take_reduced_at_least(1, 1);
            assert_eq!(parts.len(), 1);
            assert_eq!((parts[0].i, parts[0].j), (4, 6));
            fabric.shutdown();
        });
        // A frame arriving after shutdown is dropped, not a panic.
        fabric.inject(WireFrame::Tile { dst: 1, msg: a_msg(0, 9, 9) });
    }
}

//! The inter-node message-passing transport (the "NIC" of the simulated
//! cluster).
//!
//! The paper's machine model is distributed-memory: every MPI rank owns its
//! tiles, and a tile is usable only after its message has arrived. This
//! module makes that model real inside one process. A [`CommFabric`] gives
//! each simulated node
//!
//! * a **bounded inbox** (a `crossbeam` bounded channel of frames) that
//!   is the only way data enters the node,
//! * a **progress thread** that drains the inbox into the node's private
//!   [`TileStore`] (and, for C partial sums, into a reduction buffer),
//! * a **credit gate** ([`CommConfig::window`] credits): a sender must
//!   acquire a credit on the destination before a frame may leave, and the
//!   credit returns only after the progress thread has *deposited* the
//!   frame — so a slow node cannot be flooded past its window, end to end
//!   (channel + reorder staging included), and
//! * a pluggable [`LinkShaper`] that charges per-message wall-clock time
//!   (latency + bytes/bandwidth, calibrated to the 23 GB/s Summit NIC of
//!   `bst-sim`'s platform model) inside the progress thread, so transfer
//!   times are visible between the `Sent` and `Received` trace events.
//!
//! Message vocabulary: [`TileMsg`] carries one A-tile broadcast hop
//! (`{key, payload, epoch}` — the epoch is the sending task's attempt
//! number, which makes duplicate delivery detectable), [`CPart`] carries a
//! C-block partial sum toward the reduction root, and `Shutdown` is the
//! completion control frame. Credits are the flow-control frames collapsed
//! into a semaphore: releasing a credit *is* the credit-return message.
//!
//! Delivery is idempotent: the progress thread tracks delivered keys and
//! drops (and counts) re-deliveries, so a retried send after a fault-
//! injected drop can never double-deposit. A seeded [`DeliveryPolicy`]
//! can shuffle delivery order within a window to prove the dataflow DAG —
//! not arrival order — is what orders the computation.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use bst_tile::Tile;
use crossbeam::channel::{bounded, Receiver, Sender};

use crate::data::{DataKey, TileStore};
use crate::trace::{TraceClock, TracePhase};

/// Default credit window (frames in flight per receiving node).
pub const DEFAULT_CREDIT_WINDOW: usize = 16;

/// SplitMix64 finalizer (same mixing as the tile seeds / fault plans).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-message link cost model: a message of `b` bytes occupies the
/// receiving node's ingress for `latency_s + b / bandwidth_bps` seconds of
/// wall clock. [`LinkShaper::off`] charges nothing (the default for
/// numeric tests, where only ordering matters).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkShaper {
    /// Link bandwidth in bytes/second; `<= 0` disables the size term.
    pub bandwidth_bps: f64,
    /// Per-message latency in seconds.
    pub latency_s: f64,
}

impl LinkShaper {
    /// No shaping: messages are delivered as fast as threads move them.
    pub const fn off() -> Self {
        Self {
            bandwidth_bps: 0.0,
            latency_s: 0.0,
        }
    }

    /// A NIC with the given bandwidth (bytes/s) and per-message latency (s).
    pub const fn nic(bandwidth_bps: f64, latency_s: f64) -> Self {
        Self {
            bandwidth_bps,
            latency_s,
        }
    }

    /// The Summit-like NIC of `bst-sim`'s platform model: 23 GB/s,
    /// 3 µs latency. (`bst_sim::platform::Platform::summit().link_shaper()`
    /// returns exactly this — a calibration test keeps them in sync.)
    pub const fn summit_nic() -> Self {
        Self::nic(23e9, 3e-6)
    }

    /// Whether this shaper charges any time at all.
    pub fn is_off(&self) -> bool {
        self.bandwidth_bps <= 0.0 && self.latency_s <= 0.0
    }

    /// Modeled transfer time of a `bytes`-byte message, in seconds.
    pub fn delay_s(&self, bytes: u64) -> f64 {
        let size_term = if self.bandwidth_bps > 0.0 {
            bytes as f64 / self.bandwidth_bps
        } else {
            0.0
        };
        (size_term + self.latency_s).max(0.0)
    }

    /// Modeled transfer time of a `bytes`-byte message.
    pub fn delay(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(self.delay_s(bytes))
    }
}

/// In what order a progress thread delivers the frames it has staged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DeliveryPolicy {
    /// Strict arrival (FIFO) order.
    #[default]
    InOrder,
    /// Seeded pseudo-random shuffling within a staging window of up to
    /// `window` frames — a determinism stressor: the numeric result must
    /// not depend on delivery order, only on the dataflow DAG.
    Reorder {
        /// Shuffle seed.
        seed: u64,
        /// Staging window (≥ 1; 1 degenerates to FIFO).
        window: usize,
    },
}

/// Configuration of a [`CommFabric`].
#[derive(Clone, Copy, Debug)]
pub struct CommConfig {
    /// Credit window per receiving node (frames in flight, ≥ 1).
    pub window: usize,
    /// Link cost model (default: [`LinkShaper::off`]).
    pub shaper: LinkShaper,
    /// Delivery ordering policy (default: FIFO).
    pub delivery: DeliveryPolicy,
    /// When set, every send/delivery records a [`CommEvent`] on this clock.
    pub clock: Option<TraceClock>,
}

impl Default for CommConfig {
    fn default() -> Self {
        Self {
            window: DEFAULT_CREDIT_WINDOW,
            shaper: LinkShaper::off(),
            delivery: DeliveryPolicy::InOrder,
            clock: None,
        }
    }
}

/// One A-tile broadcast hop: tile `key` moving to a destination node.
#[derive(Clone, Debug)]
pub struct TileMsg {
    /// Identity of the tile.
    pub key: DataKey,
    /// The tile payload (moved, never shared across stores: the receiving
    /// store holds its own reference).
    pub payload: Arc<Tile>,
    /// The sending task's attempt number (1-based). A re-sent message after
    /// a drop carries a higher epoch; duplicate delivery of any epoch is
    /// suppressed idempotently.
    pub epoch: u32,
    /// Sending node.
    pub src: usize,
    /// Consumer refcount the destination store registers the tile with.
    pub consumers: usize,
}

/// One C-block partial sum travelling to the reduction root.
#[derive(Clone, Debug)]
pub struct CPart {
    /// C block-row.
    pub i: usize,
    /// C block-column.
    pub j: usize,
    /// Deterministic ordinal of this partial — `(node, gpu, block)` of the
    /// flush that produced it. Reduction sorts on `(i, j, origin)` so the
    /// floating-point accumulation order is independent of delivery order.
    pub origin: (usize, usize, usize),
    /// The partial-sum tile.
    pub tile: Tile,
}

/// What travels on a node's inbox.
enum Frame {
    /// An A-tile broadcast hop.
    Tile(TileMsg),
    /// A C partial sum for reduction, from node `src`.
    Reduce {
        /// The partial.
        part: CPart,
        /// Sending node.
        src: usize,
    },
    /// Completion control frame: the progress thread drains and exits.
    Shutdown,
}

/// Error of [`CommFabric::send_tile`]: the message was dropped in flight
/// (fault injection). The sender's tile was *not* consumed; a retry re-reads
/// and re-sends it with a higher epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MessageDropped;

/// One recorded transport event (only when [`CommConfig::clock`] is set).
///
/// `phase` uses the tracer's vocabulary: [`TracePhase::Sent`] when a frame
/// leaves the sender, [`TracePhase::Received`] when the progress thread
/// deposits it, [`TracePhase::Failed`] for an in-flight drop, and
/// [`TracePhase::Retried`] for a suppressed duplicate delivery.
#[derive(Clone, Copy, Debug)]
pub struct CommEvent {
    /// Transport phase (`Sent` / `Received` / `Failed` / `Retried`).
    pub phase: TracePhase,
    /// Identity of the datum moved.
    pub key: DataKey,
    /// Sending node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: u64,
    /// Sending attempt (A tiles; 0 for C partials).
    pub epoch: u32,
    /// Nanoseconds on the fabric's [`TraceClock`].
    pub t_ns: u64,
}

/// Per-node transport totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeCommStats {
    /// Bytes this node put on the wire (including later-dropped frames).
    pub sent_bytes: u64,
    /// Messages this node put on the wire.
    pub sent_msgs: u64,
    /// Bytes delivered into this node.
    pub recv_bytes: u64,
    /// Messages delivered into this node.
    pub recv_msgs: u64,
    /// This node's messages dropped in flight (fault injection).
    pub dropped_msgs: u64,
    /// Duplicate deliveries this node suppressed.
    pub duplicate_msgs: u64,
    /// High-water mark of frames simultaneously in flight *to* this node.
    pub max_in_flight: usize,
    /// The credit window the high-water is bounded by.
    pub credit_window: usize,
}

impl NodeCommStats {
    /// Accumulates another run's totals for the same node into `self`:
    /// counters add, high-water marks take the maximum. A long-lived
    /// service uses this to aggregate per-request transport totals into
    /// lifetime per-node counters.
    pub fn merge(&mut self, other: &NodeCommStats) {
        self.sent_bytes += other.sent_bytes;
        self.sent_msgs += other.sent_msgs;
        self.recv_bytes += other.recv_bytes;
        self.recv_msgs += other.recv_msgs;
        self.dropped_msgs += other.dropped_msgs;
        self.duplicate_msgs += other.duplicate_msgs;
        self.max_in_flight = self.max_in_flight.max(other.max_in_flight);
        self.credit_window = self.credit_window.max(other.credit_window);
    }
}

/// Counting semaphore implementing the credit loop: `acquire` blocks the
/// sender while the receiving node's window is exhausted; the progress
/// thread `release`s after depositing a frame.
struct CreditGate {
    avail: Mutex<usize>,
    freed: Condvar,
    window: usize,
    max_in_flight: AtomicUsize,
}

impl CreditGate {
    fn new(window: usize) -> Self {
        Self {
            avail: Mutex::new(window),
            freed: Condvar::new(),
            window,
            max_in_flight: AtomicUsize::new(0),
        }
    }

    fn acquire(&self) {
        let mut avail = self.avail.lock().unwrap_or_else(|e| e.into_inner());
        while *avail == 0 {
            avail = self.freed.wait(avail).unwrap_or_else(|e| e.into_inner());
        }
        *avail -= 1;
        let in_flight = self.window - *avail;
        self.max_in_flight.fetch_max(in_flight, Ordering::Relaxed);
    }

    fn release(&self) {
        let mut avail = self.avail.lock().unwrap_or_else(|e| e.into_inner());
        *avail += 1;
        self.freed.notify_one();
    }
}

/// One node's side of the fabric.
struct Endpoint {
    /// Inbox sender (bounded to the credit window as belt-and-braces; with
    /// credits honored it never blocks).
    tx: Sender<Frame>,
    /// Inbox receiver, taken by the node's progress thread at start.
    rx: Mutex<Option<Receiver<Frame>>>,
    credits: CreditGate,
    /// Keys delivered into this node, ever (dedup + recv notification).
    delivered: Mutex<HashSet<DataKey>>,
    arrived: Condvar,
    /// C partials reduced at this node (only the root accumulates).
    reduced: Mutex<Vec<CPart>>,
    sent_bytes: AtomicU64,
    sent_msgs: AtomicU64,
    recv_bytes: AtomicU64,
    recv_msgs: AtomicU64,
    dropped_msgs: AtomicU64,
    duplicate_msgs: AtomicU64,
}

impl Endpoint {
    fn new(window: usize) -> Self {
        let (tx, rx) = bounded(window);
        Self {
            tx,
            rx: Mutex::new(Some(rx)),
            credits: CreditGate::new(window),
            delivered: Mutex::new(HashSet::new()),
            arrived: Condvar::new(),
            reduced: Mutex::new(Vec::new()),
            sent_bytes: AtomicU64::new(0),
            sent_msgs: AtomicU64::new(0),
            recv_bytes: AtomicU64::new(0),
            recv_msgs: AtomicU64::new(0),
            dropped_msgs: AtomicU64::new(0),
            duplicate_msgs: AtomicU64::new(0),
        }
    }
}

/// The transport connecting the simulated nodes (see the module docs).
pub struct CommFabric {
    endpoints: Vec<Endpoint>,
    shaper: LinkShaper,
    delivery: DeliveryPolicy,
    clock: Option<TraceClock>,
    events: Mutex<Vec<CommEvent>>,
}

impl CommFabric {
    /// A fabric connecting `n_nodes` nodes under `cfg`.
    pub fn new(n_nodes: usize, cfg: CommConfig) -> Self {
        let window = cfg.window.max(1);
        Self {
            endpoints: (0..n_nodes).map(|_| Endpoint::new(window)).collect(),
            shaper: cfg.shaper,
            delivery: cfg.delivery,
            clock: cfg.clock,
            events: Mutex::new(Vec::new()),
        }
    }

    /// Number of connected nodes.
    pub fn nodes(&self) -> usize {
        self.endpoints.len()
    }

    fn record(&self, phase: TracePhase, key: DataKey, src: usize, dst: usize, bytes: u64, epoch: u32) {
        if let Some(clock) = self.clock {
            self.events
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(CommEvent {
                    phase,
                    key,
                    src,
                    dst,
                    bytes,
                    epoch,
                    t_ns: clock.now_ns(),
                });
        }
    }

    /// Spawns one progress thread per node into `scope`, each draining its
    /// node's inbox into that node's store in `stores`.
    ///
    /// # Panics
    /// Panics if `stores` and the fabric disagree on node count, if a
    /// store's owner doesn't match its index, or if called twice.
    pub fn start<'env, 'scope>(
        &'env self,
        scope: &'scope std::thread::Scope<'scope, 'env>,
        stores: &'env [TileStore],
    ) {
        assert_eq!(stores.len(), self.endpoints.len(), "one store per node");
        for (node, (ep, store)) in self.endpoints.iter().zip(stores).enumerate() {
            assert_eq!(store.owner(), node, "store {node} owned by {}", store.owner());
            let rx = ep
                .rx
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("progress thread already started");
            scope.spawn(move || self.progress_loop(node, rx, store));
        }
    }

    /// Sends one A-tile broadcast hop to `dst`, honoring `dst`'s credit
    /// window (blocks while it is exhausted — the backpressure path).
    ///
    /// With `drop_in_flight`, the frame is charged as sent and then dropped
    /// by the fabric (the fault-injection site): the destination never sees
    /// it, and [`MessageDropped`] tells the caller to retry — the retry
    /// re-sends with a higher [`TileMsg::epoch`].
    pub fn send_tile(
        &self,
        dst: usize,
        msg: TileMsg,
        drop_in_flight: bool,
    ) -> Result<(), MessageDropped> {
        let ep = &self.endpoints[dst];
        let bytes = msg.payload.bytes();
        ep.credits.acquire();
        let src_ep = &self.endpoints[msg.src];
        src_ep.sent_bytes.fetch_add(bytes, Ordering::Relaxed);
        src_ep.sent_msgs.fetch_add(1, Ordering::Relaxed);
        self.record(TracePhase::Sent, msg.key, msg.src, dst, bytes, msg.epoch);
        if drop_in_flight {
            src_ep.dropped_msgs.fetch_add(1, Ordering::Relaxed);
            self.record(TracePhase::Failed, msg.key, msg.src, dst, bytes, msg.epoch);
            ep.credits.release();
            return Err(MessageDropped);
        }
        ep.tx
            .send(Frame::Tile(msg))
            .unwrap_or_else(|_| panic!("node {dst}'s progress thread is gone"));
        Ok(())
    }

    /// Sends a C partial sum from `src` to the reduction root `dst`.
    /// Loopback (`src == dst`) frames still traverse the inbox (one code
    /// path) but are neither shaped nor counted as network traffic.
    pub fn reduce(&self, src: usize, dst: usize, part: CPart) {
        let ep = &self.endpoints[dst];
        let bytes = part.tile.bytes();
        ep.credits.acquire();
        if src != dst {
            let src_ep = &self.endpoints[src];
            src_ep.sent_bytes.fetch_add(bytes, Ordering::Relaxed);
            src_ep.sent_msgs.fetch_add(1, Ordering::Relaxed);
            let key = DataKey::C(part.i as u32, part.j as u32);
            self.record(TracePhase::Sent, key, src, dst, bytes, 0);
        }
        ep.tx
            .send(Frame::Reduce { part, src })
            .unwrap_or_else(|_| panic!("node {dst}'s progress thread is gone"));
    }

    /// Blocks until `key` has been delivered into `node`'s store (the
    /// `RecvA` task body). Returns immediately if it already was.
    pub fn wait_delivered(&self, node: usize, key: DataKey) {
        let ep = &self.endpoints[node];
        let mut delivered = ep.delivered.lock().unwrap_or_else(|e| e.into_inner());
        while !delivered.contains(&key) {
            delivered = ep
                .arrived
                .wait(delivered)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Whether `key` has been delivered into `node` (non-blocking).
    pub fn is_delivered(&self, node: usize, key: DataKey) -> bool {
        self.endpoints[node]
            .delivered
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains(&key)
    }

    /// Sends the completion control frame to every node. Each progress
    /// thread finishes delivering everything already in flight (FIFO
    /// inboxes guarantee nothing is skipped), then exits. Call after all
    /// senders are done; the scope passed to [`CommFabric::start`] then
    /// joins the threads.
    pub fn shutdown(&self) {
        for ep in &self.endpoints {
            // The control frame obeys flow control like any other frame.
            ep.credits.acquire();
            let _ = ep.tx.send(Frame::Shutdown);
        }
    }

    /// Takes the C partials reduced at `node` (the reduction root).
    pub fn take_reduced(&self, node: usize) -> Vec<CPart> {
        std::mem::take(
            &mut *self.endpoints[node]
                .reduced
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        )
    }

    /// Takes the recorded transport events, sorted by time (empty unless
    /// the fabric was given a clock).
    pub fn take_events(&self) -> Vec<CommEvent> {
        let mut events =
            std::mem::take(&mut *self.events.lock().unwrap_or_else(|e| e.into_inner()));
        events.sort_by_key(|e| (e.t_ns, e.src, e.dst));
        events
    }

    /// Per-node transport totals (index = node).
    pub fn node_stats(&self) -> Vec<NodeCommStats> {
        self.endpoints
            .iter()
            .map(|ep| NodeCommStats {
                sent_bytes: ep.sent_bytes.load(Ordering::Relaxed),
                sent_msgs: ep.sent_msgs.load(Ordering::Relaxed),
                recv_bytes: ep.recv_bytes.load(Ordering::Relaxed),
                recv_msgs: ep.recv_msgs.load(Ordering::Relaxed),
                dropped_msgs: ep.dropped_msgs.load(Ordering::Relaxed),
                duplicate_msgs: ep.duplicate_msgs.load(Ordering::Relaxed),
                max_in_flight: ep.credits.max_in_flight.load(Ordering::Relaxed),
                credit_window: ep.credits.window,
            })
            .collect()
    }

    /// The progress loop of `node`: stage (optionally reorder), shape,
    /// deposit, return credit — until the `Shutdown` frame.
    fn progress_loop(&self, node: usize, rx: Receiver<Frame>, store: &TileStore) {
        let window = match self.delivery {
            DeliveryPolicy::InOrder => 1,
            DeliveryPolicy::Reorder { window, .. } => window.max(1),
        };
        let mut staged: Vec<Frame> = Vec::with_capacity(window);
        let mut draws: u64 = 0;
        let mut closing = false;
        loop {
            // Stage up to `window` frames without blocking. Staged frames
            // still hold their credits, so staging never exceeds the window.
            while staged.len() < window {
                match rx.try_recv() {
                    Ok(Frame::Shutdown) => closing = true,
                    Ok(f) => staged.push(f),
                    Err(_) => break,
                }
            }
            if staged.is_empty() {
                if closing {
                    break;
                }
                match rx.recv() {
                    Ok(Frame::Shutdown) => closing = true,
                    Ok(f) => staged.push(f),
                    Err(_) => break, // every sender gone: nothing more can come
                }
                continue;
            }
            let idx = match self.delivery {
                DeliveryPolicy::InOrder => 0,
                DeliveryPolicy::Reorder { seed, .. } => {
                    draws += 1;
                    (mix(seed ^ mix(draws)) % staged.len() as u64) as usize
                }
            };
            let frame = staged.remove(idx);
            self.deliver(node, store, frame);
        }
    }

    fn deliver(&self, node: usize, store: &TileStore, frame: Frame) {
        let ep = &self.endpoints[node];
        match frame {
            Frame::Tile(msg) => {
                let bytes = msg.payload.bytes();
                if msg.src != node && !self.shaper.is_off() {
                    std::thread::sleep(self.shaper.delay(bytes));
                }
                let mut delivered = ep.delivered.lock().unwrap_or_else(|e| e.into_inner());
                if delivered.insert(msg.key) {
                    store.put(msg.key, msg.payload, msg.consumers);
                    ep.recv_bytes.fetch_add(bytes, Ordering::Relaxed);
                    ep.recv_msgs.fetch_add(1, Ordering::Relaxed);
                    self.record(TracePhase::Received, msg.key, msg.src, node, bytes, msg.epoch);
                } else {
                    // Idempotent duplicate suppression: the key already
                    // arrived under an earlier epoch.
                    ep.duplicate_msgs.fetch_add(1, Ordering::Relaxed);
                    self.record(TracePhase::Retried, msg.key, msg.src, node, bytes, msg.epoch);
                }
                drop(delivered);
                ep.arrived.notify_all();
                ep.credits.release();
            }
            Frame::Reduce { part, src } => {
                let bytes = part.tile.bytes();
                if src != node {
                    if !self.shaper.is_off() {
                        std::thread::sleep(self.shaper.delay(bytes));
                    }
                    ep.recv_bytes.fetch_add(bytes, Ordering::Relaxed);
                    ep.recv_msgs.fetch_add(1, Ordering::Relaxed);
                    let key = DataKey::C(part.i as u32, part.j as u32);
                    self.record(TracePhase::Received, key, src, node, bytes, 0);
                }
                ep.reduced
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(part);
                ep.credits.release();
            }
            Frame::Shutdown => unreachable!("Shutdown is consumed by the progress loop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shaper_delay_model() {
        let off = LinkShaper::off();
        assert!(off.is_off());
        assert_eq!(off.delay_s(1 << 30), 0.0);

        let nic = LinkShaper::nic(1e9, 1e-6);
        assert!(!nic.is_off());
        // 1 MB at 1 GB/s = 1 ms, plus 1 µs latency.
        let d = nic.delay_s(1_000_000);
        assert!((d - 1.001e-3).abs() < 1e-12, "{d}");
        assert_eq!(nic.delay(0), Duration::from_secs_f64(1e-6));
    }

    #[test]
    fn summit_nic_constants() {
        let s = LinkShaper::summit_nic();
        assert_eq!(s.bandwidth_bps, 23e9);
        assert_eq!(s.latency_s, 3e-6);
    }

    #[test]
    fn credit_gate_tracks_high_water() {
        let g = CreditGate::new(3);
        g.acquire();
        g.acquire();
        assert_eq!(g.max_in_flight.load(Ordering::Relaxed), 2);
        g.release();
        g.acquire();
        // Back to 2 in flight; high-water stays 2.
        assert_eq!(g.max_in_flight.load(Ordering::Relaxed), 2);
        g.acquire();
        assert_eq!(g.max_in_flight.load(Ordering::Relaxed), 3);
        g.release();
        g.release();
        g.release();
    }

    #[test]
    fn delivery_policy_default_is_fifo() {
        assert_eq!(DeliveryPolicy::default(), DeliveryPolicy::InOrder);
        assert_eq!(CommConfig::default().window, DEFAULT_CREDIT_WINDOW);
    }
}

#![warn(missing_docs)]

//! A PaRSEC-like dataflow runtime substrate.
//!
//! The paper implements its algorithm as a Parameterized Task Graph over the
//! PaRSEC distributed task runtime (§4): the *inspector* materialises the
//! task DAG (dataflow edges carrying tiles, plus architecture-specific
//! *control-flow* edges that throttle GPU memory use), and the runtime
//! schedules tasks as their inputs become available, moving data in the
//! background.
//!
//! This crate reproduces that architecture in shared memory with honest
//! distributed-memory discipline:
//!
//! * [`graph`] — a generic task DAG ([`graph::TaskGraph`]) whose edges are
//!   dependencies (dataflow or control flow — the scheduler treats them
//!   uniformly, exactly like PTG control flows);
//! * [`engine`] — the single policy-driven scheduler ([`engine::Engine`]):
//!   one OS thread per *worker* (a CPU lane or a GPU lane of a simulated
//!   node), with tracing, timestamping and transient-failure retry chosen
//!   by composable [`engine::Tracer`] / [`engine::Clock`] /
//!   [`engine::RetryPolicy`] policy objects instead of hand-written entry
//!   points per combination;
//! * [`data`] — per-node [`data::TileStore`]s with consumer reference
//!   counts: a tile is retained while tasks still need it and dropped after
//!   its last consumer, reproducing PaRSEC's data life-cycle management;
//!   nodes never read each other's stores — inter-node edges must go
//!   through explicit send tasks;
//! * [`comm`] — the message-passing transport between nodes
//!   ([`comm::CommFabric`]): bounded per-node inboxes drained by progress
//!   threads into the node-private stores, credit-based backpressure, and a
//!   pluggable link-cost shaper, so "a tile is usable only after its
//!   message arrived" is enforced rather than simulated;
//! * [`device`] — [`device::DeviceMemory`], a strict accounting of simulated
//!   GPU memory (loads fail rather than silently exceed capacity) plus a
//!   node-level residency registry enabling device-to-device transfers when
//!   a sibling GPU already holds a tile (the NVLink path of §4);
//! * [`trace`] — lock-cheap per-worker task life-cycle recording (the
//!   [`engine::Recorder`] tracing policy), trace well-formedness
//!   validation, and exporters (Chrome-trace JSON, plain-text summary).
//!
//! Executors built on this crate allocate their working tiles through the
//! re-exported [`TilePool`] (one pool per simulated node), so hot-path
//! zero-fills and on-demand tile generation recycle buffers instead of
//! hitting the allocator — the PaRSEC arena idea at tile granularity.

pub mod comm;
pub mod data;
pub mod device;
pub mod engine;
pub mod graph;
pub mod ptg;
pub mod trace;

pub use bst_tile::pool::{PoolStats, TilePool};
pub use comm::{
    CommConfig, CommEvent, CommFabric, CPart, DeliveryPolicy, LinkShaper, NodeCommStats,
    RemoteLink, SendError, TileMsg, Wire, WireError, WireFrame,
};
pub use data::{BCacheKey, BCacheStats, BTileCache, DataKey, TileStore};
pub use device::{DeviceMemory, NodeResidency};
pub use engine::{infallible, Clock, Engine, NoTracer, Recorder, Tracer};
pub use graph::{FallibleRun, RetryOptions, RunAbort, TaskError, TaskGraph, WorkerId};
pub use ptg::PtgProgram;
pub use trace::{ExecTrace, TaskRecord, TraceEvent, TracePhase};

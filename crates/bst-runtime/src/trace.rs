//! Scheduler tracing and metrics.
//!
//! A tracing engine run
//! ([`Engine::tracing`](crate::engine::Engine::tracing))
//! records the full life-cycle of every task — *ready* (last dependency
//! completed, or initially dependency-free), *running* (a worker picked it
//! up), *done* (the handler returned) — into **per-worker event buffers**
//! with strict thread ownership: each worker thread appends only to its own
//! buffer, the main thread only to the submission buffer, so recording costs
//! one `Vec::push` per event and takes no locks. Timestamps come from one
//! shared monotonic epoch ([`TraceClock`]), so every buffer is individually
//! non-decreasing and buffers are mutually comparable.
//!
//! On top of the raw [`ExecTrace`] this module provides:
//!
//! * [`ExecTrace::task_spans`] — per-task (ready, start, end) reconstruction;
//! * [`ExecTrace::validate`] — the well-formedness invariants every trace
//!   must satisfy (used by the property tests and by `repro_trace
//!   --validate`);
//! * [`TaskRecord`] + [`chrome_trace_json`] — a `chrome://tracing` /
//!   Perfetto-compatible JSON exporter (hand-rolled; no serialization
//!   dependency);
//! * [`text_summary`] — a plain-text per-kind time breakdown.

use crate::graph::{TaskGraph, TaskId, WorkerId};
use std::collections::HashMap;
use std::time::Instant;

/// Shared monotonic epoch for one traced execution. All trace timestamps
/// are nanoseconds since this epoch.
#[derive(Clone, Copy, Debug)]
pub struct TraceClock {
    epoch: Instant,
}

impl TraceClock {
    /// Starts the clock now.
    pub fn start() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// Life-cycle phase of a task, in causal order.
///
/// The happy path is `Ready → Running → Done`. Under fallible execution
/// (a retrying [`Engine::run`](crate::engine::Engine::run))
/// a transient handler failure inserts `Failed → Retried → Running` cycles
/// before the final `Done`, so a task with `n` failures records `n + 1`
/// `Running` events, `n` `Failed` and `n` `Retried` — but still exactly one
/// `Ready` and one `Done`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TracePhase {
    /// All dependencies completed (or the task had none); the task was
    /// enqueued onto its worker's FIFO. Logged by the thread that released
    /// it (the completing worker, or the main thread for seed tasks).
    Ready,
    /// A worker dequeued the task and is about to run its handler.
    Running,
    /// The handler returned.
    Done,
    /// The handler returned a transient error; the attempt is abandoned.
    Failed,
    /// After backoff, the failed task was re-enqueued onto its worker's
    /// FIFO for another attempt.
    Retried,
    /// Transport phase (not a task life-cycle event): a message left its
    /// sending node. Recorded by [`crate::comm::CommFabric`] as
    /// [`crate::comm::CommEvent`]s, never in task event buffers.
    Sent,
    /// Transport phase: a message was deposited into its destination node's
    /// store by the progress thread. See [`TracePhase::Sent`].
    Received,
}

/// One recorded event: task `task` entered `phase` at `t_ns`.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// The task this event describes.
    pub task: TaskId,
    /// Which life-cycle phase was entered.
    pub phase: TracePhase,
    /// Nanoseconds since the execution's [`TraceClock`] epoch.
    pub t_ns: u64,
}

/// The event stream recorded by one worker thread (or, for
/// [`ExecTrace::seed_events`], by the submitting thread).
#[derive(Clone, Debug)]
pub struct WorkerTrace {
    /// The worker that recorded these events.
    pub worker: WorkerId,
    /// Events in recording order; timestamps are non-decreasing.
    pub events: Vec<TraceEvent>,
}

/// Per-task life-cycle times reconstructed from a trace.
#[derive(Clone, Copy, Debug, Default)]
pub struct TaskSpan {
    /// When the task became ready (ns since epoch).
    pub ready_ns: u64,
    /// When a worker started running it.
    pub start_ns: u64,
    /// When its handler returned.
    pub end_ns: u64,
}

impl TaskSpan {
    /// Handler execution time.
    pub fn exec_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Time spent ready in the worker FIFO before running.
    pub fn queue_ns(&self) -> u64 {
        self.start_ns.saturating_sub(self.ready_ns)
    }
}

/// A violation of trace well-formedness found by [`ExecTrace::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// A worker's buffer has decreasing timestamps.
    NonMonotoneWorker {
        /// The offending worker.
        worker: WorkerId,
        /// Index into its event buffer where time went backwards.
        at: usize,
    },
    /// A task has a wrong number of events for some phase (must be exactly
    /// one Ready, one Running, one Done).
    PhaseCount {
        /// The offending task.
        task: TaskId,
        /// The phase with the wrong multiplicity.
        phase: TracePhase,
        /// How many events of that phase were recorded.
        count: usize,
    },
    /// A task's retry bookkeeping is inconsistent: every `Failed` must be
    /// answered by exactly one `Retried` and one extra `Running` (the
    /// re-attempt), so `#Running = #Failed + 1` and `#Retried = #Failed`.
    RetryMismatch {
        /// The offending task.
        task: TaskId,
        /// `Running` events recorded.
        running: usize,
        /// `Failed` events recorded.
        failed: usize,
        /// `Retried` events recorded.
        retried: usize,
    },
    /// A task's phases are out of causal order (ready ≤ start ≤ end).
    PhaseOrder {
        /// The offending task.
        task: TaskId,
    },
    /// The number of traced tasks differs from the DAG size.
    TaskCount {
        /// Tasks with at least one event.
        traced: usize,
        /// Tasks in the DAG.
        expected: usize,
    },
    /// A task started running before one of its dependencies finished.
    DependencyOverlap {
        /// The offending task.
        task: TaskId,
        /// The dependency that had not finished.
        dep: TaskId,
    },
    /// A Running event was recorded by a different worker than the task is
    /// pinned to.
    WrongWorker {
        /// The offending task.
        task: TaskId,
        /// The worker that actually ran it.
        ran_on: WorkerId,
        /// The worker the task was pinned to.
        pinned: WorkerId,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonMonotoneWorker { worker, at } => {
                write!(f, "worker {worker:?}: timestamps decrease at event {at}")
            }
            Self::PhaseCount { task, phase, count } => {
                write!(f, "task {task}: {count} {phase:?} events (want 1)")
            }
            Self::RetryMismatch { task, running, failed, retried } => {
                write!(
                    f,
                    "task {task}: {running} Running / {failed} Failed / {retried} Retried events \
                     (want Running = Failed + 1 and Retried = Failed)"
                )
            }
            Self::PhaseOrder { task } => write!(f, "task {task}: phases out of order"),
            Self::TaskCount { traced, expected } => {
                write!(f, "{traced} traced tasks, DAG has {expected}")
            }
            Self::DependencyOverlap { task, dep } => {
                write!(f, "task {task} ran before dependency {dep} finished")
            }
            Self::WrongWorker { task, ran_on, pinned } => {
                write!(f, "task {task} ran on {ran_on:?}, pinned to {pinned:?}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// The full trace of one [`TaskGraph`] execution.
#[derive(Clone, Debug, Default)]
pub struct ExecTrace {
    /// One buffer per worker, each recorded exclusively by its own thread.
    pub workers: Vec<WorkerTrace>,
    /// Ready events of initially-dependency-free tasks, recorded by the
    /// submitting thread before the workers start.
    pub seed_events: Vec<TraceEvent>,
    /// Wall-clock span of the execution (ns from epoch to the last join).
    pub total_ns: u64,
}

impl ExecTrace {
    /// Total number of recorded events.
    pub fn event_count(&self) -> usize {
        self.seed_events.len() + self.workers.iter().map(|w| w.events.len()).sum::<usize>()
    }

    /// Iterates every event with the worker that recorded it (`None` for
    /// seed events).
    pub fn iter_events(&self) -> impl Iterator<Item = (Option<WorkerId>, &TraceEvent)> {
        self.seed_events
            .iter()
            .map(|e| (None, e))
            .chain(
                self.workers
                    .iter()
                    .flat_map(|w| w.events.iter().map(move |e| (Some(w.worker), e))),
            )
    }

    /// Reconstructs per-task life-cycle spans. Tasks missing a phase get 0
    /// for that time; [`ExecTrace::validate`] reports such malformations.
    ///
    /// For retried tasks, `start_ns` is the start of the **final** attempt
    /// (all `Running` events of a task sit in its pinned worker's buffer, in
    /// chronological order, so the last one wins); `Failed`/`Retried`
    /// events do not contribute to the span.
    pub fn task_spans(&self) -> HashMap<TaskId, TaskSpan> {
        let mut spans: HashMap<TaskId, TaskSpan> = HashMap::new();
        for (_, e) in self.iter_events() {
            let s = spans.entry(e.task).or_default();
            match e.phase {
                TracePhase::Ready => s.ready_ns = e.t_ns,
                TracePhase::Running => s.start_ns = e.t_ns,
                TracePhase::Done => s.end_ns = e.t_ns,
                TracePhase::Failed
                | TracePhase::Retried
                | TracePhase::Sent
                | TracePhase::Received => {}
            }
        }
        spans
    }

    /// Number of handler attempts per task (the count of `Running` events);
    /// 1 for every task of a fault-free execution.
    pub fn task_attempts(&self) -> HashMap<TaskId, u32> {
        let mut attempts: HashMap<TaskId, u32> = HashMap::new();
        for (_, e) in self.iter_events() {
            if e.phase == TracePhase::Running {
                *attempts.entry(e.task).or_default() += 1;
            }
        }
        attempts
    }

    /// Checks the trace against `graph`, returning every violated
    /// invariant:
    ///
    /// 1. per-worker timestamps are non-decreasing;
    /// 2. every task has exactly one Ready and one Done event, and its
    ///    Running/Failed/Retried counts are retry-consistent
    ///    (`#Running = #Failed + 1`, `#Retried = #Failed`);
    /// 3. ready ≤ start ≤ end per task;
    /// 4. the traced task set is exactly the DAG's task set;
    /// 5. no task starts before all its dependencies are done;
    /// 6. every task ran on the worker it was pinned to.
    pub fn validate<T>(&self, graph: &TaskGraph<T>) -> Vec<TraceError> {
        let mut errors = Vec::new();

        for w in &self.workers {
            for (i, pair) in w.events.windows(2).enumerate() {
                if pair[1].t_ns < pair[0].t_ns {
                    errors.push(TraceError::NonMonotoneWorker {
                        worker: w.worker,
                        at: i + 1,
                    });
                }
            }
        }

        let mut counts: HashMap<TaskId, [usize; 7]> = HashMap::new();
        let mut ran_on: HashMap<TaskId, WorkerId> = HashMap::new();
        for (wid, e) in self.iter_events() {
            let c = counts.entry(e.task).or_default();
            c[e.phase as usize] += 1;
            if e.phase == TracePhase::Running {
                if let Some(w) = wid {
                    ran_on.insert(e.task, w);
                }
            }
        }
        for (&task, c) in &counts {
            for (phase, n) in [TracePhase::Ready, TracePhase::Done].iter().zip([c[0], c[2]]) {
                if n != 1 {
                    errors.push(TraceError::PhaseCount {
                        task,
                        phase: *phase,
                        count: n,
                    });
                }
            }
            let (running, failed, retried) =
                (c[TracePhase::Running as usize], c[TracePhase::Failed as usize], c[TracePhase::Retried as usize]);
            if running != failed + 1 || retried != failed {
                errors.push(TraceError::RetryMismatch { task, running, failed, retried });
            }
        }

        if counts.len() != graph.len() {
            errors.push(TraceError::TaskCount {
                traced: counts.len(),
                expected: graph.len(),
            });
        }

        let spans = self.task_spans();
        for (&task, s) in &spans {
            if !(s.ready_ns <= s.start_ns && s.start_ns <= s.end_ns) {
                errors.push(TraceError::PhaseOrder { task });
            }
        }
        for task in 0..graph.len() {
            let Some(s) = spans.get(&task) else { continue };
            for &dep in graph.deps(task) {
                if let Some(d) = spans.get(&dep) {
                    if s.start_ns < d.end_ns {
                        errors.push(TraceError::DependencyOverlap { task, dep });
                    }
                }
            }
            if let Some(&w) = ran_on.get(&task) {
                if w != graph.worker(task) {
                    errors.push(TraceError::WrongWorker {
                        task,
                        ran_on: w,
                        pinned: graph.worker(task),
                    });
                }
            }
        }

        errors.sort_by_key(|e| match e {
            TraceError::NonMonotoneWorker { at, .. } => (0, *at),
            TraceError::PhaseCount { task, .. } => (1, *task),
            TraceError::RetryMismatch { task, .. } => (2, *task),
            TraceError::PhaseOrder { task } => (3, *task),
            TraceError::TaskCount { .. } => (4, 0),
            TraceError::DependencyOverlap { task, .. } => (5, *task),
            TraceError::WrongWorker { task, .. } => (6, *task),
        });
        errors
    }
}

// ---------------------------------------------------------------------------
// Labeled task records and exporters
// ---------------------------------------------------------------------------

/// A fully-labeled traced task — what the exporters consume. Produced by
/// whoever knows the payload semantics (e.g. `core::exec` labels its `Op`
/// vocabulary); the exporters below are payload-agnostic.
#[derive(Clone, Debug)]
pub struct TaskRecord {
    /// Task id within its graph.
    pub task: TaskId,
    /// Task kind, e.g. `"Gemm"` — the per-kind aggregation key.
    pub kind: &'static str,
    /// Human-readable instance detail, e.g. `"Gemm(2,7,3)"`.
    pub detail: String,
    /// Worker the task ran on.
    pub worker: WorkerId,
    /// Life-cycle times.
    pub span: TaskSpan,
    /// Handler attempts (1 unless the task was retried after transient
    /// failures).
    pub attempts: u32,
}

/// Per-kind aggregate metrics over a set of [`TaskRecord`]s.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KindMetrics {
    /// Task kind.
    pub kind: &'static str,
    /// Number of tasks of this kind.
    pub count: u64,
    /// Total handler execution time.
    pub total_exec_ns: u64,
    /// Largest single handler execution time.
    pub max_exec_ns: u64,
    /// Total time spent ready-but-queued.
    pub total_queue_ns: u64,
}

/// Aggregates records by kind, sorted by descending total execution time.
pub fn aggregate_by_kind(records: &[TaskRecord]) -> Vec<KindMetrics> {
    let mut by_kind: HashMap<&'static str, KindMetrics> = HashMap::new();
    for r in records {
        let m = by_kind.entry(r.kind).or_insert_with(|| KindMetrics {
            kind: r.kind,
            ..KindMetrics::default()
        });
        m.count += 1;
        m.total_exec_ns += r.span.exec_ns();
        m.max_exec_ns = m.max_exec_ns.max(r.span.exec_ns());
        m.total_queue_ns += r.span.queue_ns();
    }
    let mut v: Vec<_> = by_kind.into_values().collect();
    v.sort_by(|a, b| b.total_exec_ns.cmp(&a.total_exec_ns).then(a.kind.cmp(b.kind)));
    v
}

/// A memory-occupancy sample of one device: (`t_ns`, resident bytes).
pub type MemSample = (u64, u64);

/// Escapes `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builds Chrome-trace (`chrome://tracing` / Perfetto "JSON array format")
/// events by hand — the workspace intentionally has no serialization
/// dependency.
#[derive(Debug, Default)]
pub struct ChromeTraceBuilder {
    events: Vec<String>,
}

impl ChromeTraceBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a complete ("X") duration event. `args` are string key/value
    /// pairs shown in the trace viewer's detail pane.
    #[allow(clippy::too_many_arguments)]
    pub fn complete_event(
        &mut self,
        name: &str,
        category: &str,
        pid: usize,
        tid: usize,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, String)],
    ) {
        let args_json = args
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
            .collect::<Vec<_>>()
            .join(",");
        self.events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{{}}}}}",
            json_escape(name),
            json_escape(category),
            pid,
            tid,
            ts_us,
            dur_us.max(0.001), // zero-width slices vanish in the viewer
            args_json,
        ));
    }

    /// Adds a counter ("C") event: a named time series sample.
    pub fn counter_event(&mut self, name: &str, pid: usize, ts_us: f64, series: &[(&str, f64)]) {
        let args_json = series
            .iter()
            .map(|(k, v)| format!("\"{}\":{:.3}", json_escape(k), v))
            .collect::<Vec<_>>()
            .join(",");
        self.events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":{},\"ts\":{:.3},\"args\":{{{}}}}}",
            json_escape(name),
            pid,
            ts_us,
            args_json,
        ));
    }

    /// Adds a metadata ("M") event naming a process or thread in the
    /// viewer.
    pub fn name_event(&mut self, what: &str, pid: usize, tid: usize, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            json_escape(what),
            pid,
            tid,
            json_escape(name),
        ));
    }

    /// Renders the complete JSON document (an event array, the format
    /// `chrome://tracing` and Perfetto both load directly).
    pub fn finish(self) -> String {
        let mut out = String::from("[\n");
        out.push_str(&self.events.join(",\n"));
        out.push_str("\n]\n");
        out
    }
}

/// Renders labeled task records (plus optional per-device memory-occupancy
/// samples) as a Chrome-trace JSON document. Convention: `pid` = node,
/// `tid` = lane (0 = CPU, `1+g` = GPU g); one extra counter track per
/// sampled device.
pub fn chrome_trace_json(
    records: &[TaskRecord],
    mem_samples: &[((usize, usize), Vec<MemSample>)],
) -> String {
    chrome_trace_json_full(records, mem_samples, &[])
}

/// The `tid` of a node's NIC track in the Chrome export — far above any
/// real lane so the transport renders as its own row under each node.
pub const NIC_TID: usize = 999;

/// Like [`chrome_trace_json`], but also renders the transport's
/// [`CommEvent`](crate::comm::CommEvent) stream: each delivered message
/// becomes a slice on the destination node's `nic` track spanning `Sent →
/// Received` (so transfer/wait time is visible next to the compute lanes),
/// with byte counts and epoch in the detail pane; in-flight drops and
/// suppressed duplicates render as zero-width marker slices.
pub fn chrome_trace_json_full(
    records: &[TaskRecord],
    mem_samples: &[((usize, usize), Vec<MemSample>)],
    comm_events: &[crate::comm::CommEvent],
) -> String {
    let mut b = ChromeTraceBuilder::new();
    let mut nic_named: std::collections::HashSet<usize> = Default::default();
    // Match each non-Sent event to its Sent time by (key, src, dst, epoch).
    let mut sent_at: HashMap<(String, usize, usize, u32), u64> = HashMap::new();
    for e in comm_events {
        if e.phase == TracePhase::Sent {
            sent_at.insert((format!("{:?}", e.key), e.src, e.dst, e.epoch), e.t_ns);
        }
    }
    for e in comm_events {
        let (name_prefix, cat) = match e.phase {
            TracePhase::Sent => continue, // rendered as the slice start
            TracePhase::Received => ("recv", "Comm"),
            TracePhase::Failed => ("drop", "CommDrop"),
            TracePhase::Retried => ("dup", "CommDup"),
            _ => continue,
        };
        if nic_named.insert(e.dst) {
            b.name_event("thread_name", e.dst, NIC_TID, "nic");
        }
        let key_s = format!("{:?}", e.key);
        let start_ns = sent_at
            .get(&(key_s.clone(), e.src, e.dst, e.epoch))
            .copied()
            .unwrap_or(e.t_ns);
        b.complete_event(
            &format!("{name_prefix} {key_s} {}->{}", e.src, e.dst),
            cat,
            e.dst,
            NIC_TID,
            start_ns.min(e.t_ns) as f64 / 1e3,
            e.t_ns.saturating_sub(start_ns) as f64 / 1e3,
            &[
                ("bytes", e.bytes.to_string()),
                ("epoch", e.epoch.to_string()),
                ("src", e.src.to_string()),
            ],
        );
    }
    let mut seen_threads: std::collections::HashSet<(usize, usize)> = Default::default();
    for r in records {
        if seen_threads.insert((r.worker.node, r.worker.lane)) {
            b.name_event("process_name", r.worker.node, 0, &format!("node{}", r.worker.node));
            let tname = if r.worker.lane == 0 {
                "cpu".to_string()
            } else {
                format!("gpu{}", r.worker.lane - 1)
            };
            b.name_event("thread_name", r.worker.node, r.worker.lane, &tname);
        }
        let mut args = vec![
            ("task", r.task.to_string()),
            ("queue_us", format!("{:.3}", r.span.queue_ns() as f64 / 1e3)),
        ];
        if r.attempts > 1 {
            // Recovery visibility: retried tasks carry their attempt count
            // into the viewer's detail pane.
            args.push(("attempts", r.attempts.to_string()));
        }
        b.complete_event(
            &r.detail,
            r.kind,
            r.worker.node,
            r.worker.lane,
            r.span.start_ns as f64 / 1e3,
            r.span.exec_ns() as f64 / 1e3,
            &args,
        );
    }
    for ((node, gpu), samples) in mem_samples {
        let name = format!("node{node} gpu{gpu} resident");
        for &(t_ns, bytes) in samples {
            b.counter_event(&name, *node, t_ns as f64 / 1e3, &[("bytes", bytes as f64)]);
        }
    }
    b.finish()
}

/// Renders a plain-text summary: wall-clock, a per-kind time breakdown
/// table, and (when provided) per-device memory/transfer lines. `kinds` is
/// the output of [`aggregate_by_kind`]; `devices` rows are
/// `(node, gpu, peak_bytes, capacity, h2d, d2d, d2h, evictions)`.
#[allow(clippy::type_complexity)]
pub fn text_summary(
    kinds: &[KindMetrics],
    total_ns: u64,
    devices: &[(usize, usize, u64, u64, u64, u64, u64, u64)],
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let n_tasks: u64 = kinds.iter().map(|k| k.count).sum();
    let _ = writeln!(
        out,
        "trace summary: {} tasks, wall {:.3} ms",
        n_tasks,
        total_ns as f64 / 1e6
    );
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>12} {:>12} {:>12}",
        "kind", "count", "total ms", "max ms", "queued ms"
    );
    for k in kinds {
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>12.3} {:>12.3} {:>12.3}",
            k.kind,
            k.count,
            k.total_exec_ns as f64 / 1e6,
            k.max_exec_ns as f64 / 1e6,
            k.total_queue_ns as f64 / 1e6,
        );
    }
    if !devices.is_empty() {
        let _ = writeln!(
            out,
            "{:<12} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "device", "peak B", "of cap", "h2d B", "d2d B", "d2h B", "evict"
        );
        for &(node, gpu, peak, cap, h2d, d2d, d2h, evictions) in devices {
            let _ = writeln!(
                out,
                "{:<12} {:>12} {:>9.1}% {:>10} {:>10} {:>10} {:>10}",
                format!("n{node}.g{gpu}"),
                peak,
                if cap > 0 { 100.0 * peak as f64 / cap as f64 } else { 0.0 },
                h2d,
                d2d,
                d2h,
                evictions,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(node: usize, lane: usize) -> WorkerId {
        WorkerId { node, lane }
    }

    fn rec(task: TaskId, kind: &'static str, worker: WorkerId, ready: u64, start: u64, end: u64) -> TaskRecord {
        TaskRecord {
            task,
            kind,
            detail: format!("{kind}[{task}]"),
            worker,
            span: TaskSpan {
                ready_ns: ready,
                start_ns: start,
                end_ns: end,
            },
            attempts: 1,
        }
    }

    #[test]
    fn clock_is_monotone() {
        let clock = TraceClock::start();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn span_arithmetic() {
        let s = TaskSpan {
            ready_ns: 10,
            start_ns: 30,
            end_ns: 100,
        };
        assert_eq!(s.queue_ns(), 20);
        assert_eq!(s.exec_ns(), 70);
    }

    #[test]
    fn aggregation_groups_and_sorts() {
        let records = vec![
            rec(0, "Load", w(0, 1), 0, 10, 20),
            rec(1, "Gemm", w(0, 1), 0, 20, 120),
            rec(2, "Gemm", w(0, 1), 5, 120, 180),
            rec(3, "Load", w(0, 1), 0, 180, 185),
        ];
        let kinds = aggregate_by_kind(&records);
        assert_eq!(kinds.len(), 2);
        assert_eq!(kinds[0].kind, "Gemm");
        assert_eq!(kinds[0].count, 2);
        assert_eq!(kinds[0].total_exec_ns, 160);
        assert_eq!(kinds[0].max_exec_ns, 100);
        assert_eq!(kinds[1].kind, "Load");
        assert_eq!(kinds[1].total_exec_ns, 15);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("tab\there"), "tab\\there");
    }

    #[test]
    fn chrome_export_is_wellformed_json_array() {
        let records = vec![
            rec(0, "Load", w(0, 1), 0, 1_000, 2_000),
            rec(1, "Gemm", w(1, 2), 500, 2_000, 9_000),
        ];
        let samples = vec![((0usize, 0usize), vec![(1_000u64, 64u64), (2_000, 0)])];
        let json = chrome_trace_json(&records, &samples);
        // Structural sanity without a JSON parser dependency: balanced
        // brackets/braces, one object per event line.
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"cat\":\"Gemm\""));
        assert!(json.contains("gpu1"));
    }

    #[test]
    fn text_summary_contains_kinds_and_devices() {
        let records = vec![
            rec(0, "Gemm", w(0, 1), 0, 0, 2_000_000),
            rec(1, "Load", w(0, 1), 0, 2_000_000, 2_500_000),
        ];
        let s = text_summary(
            &aggregate_by_kind(&records),
            3_000_000,
            &[(0, 0, 512, 1024, 100, 0, 50, 3)],
        );
        assert!(s.contains("Gemm"), "{s}");
        assert!(s.contains("Load"), "{s}");
        assert!(s.contains("n0.g0"), "{s}");
        assert!(s.contains("50.0%"), "{s}");
    }

    #[test]
    fn validate_catches_malformed_traces() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let a = g.add_task(0, w(0, 0));
        let b = g.add_task(1, w(0, 0));
        g.add_dep(b, a);

        // A well-formed trace validates cleanly.
        let good = ExecTrace {
            workers: vec![WorkerTrace {
                worker: w(0, 0),
                events: vec![
                    TraceEvent { task: a, phase: TracePhase::Running, t_ns: 10 },
                    TraceEvent { task: a, phase: TracePhase::Done, t_ns: 20 },
                    TraceEvent { task: b, phase: TracePhase::Ready, t_ns: 20 },
                    TraceEvent { task: b, phase: TracePhase::Running, t_ns: 25 },
                    TraceEvent { task: b, phase: TracePhase::Done, t_ns: 30 },
                ],
            }],
            seed_events: vec![TraceEvent { task: a, phase: TracePhase::Ready, t_ns: 0 }],
            total_ns: 30,
        };
        assert!(good.validate(&g).is_empty(), "{:?}", good.validate(&g));

        // Dependency overlap: b runs before a is done.
        let mut bad = good.clone();
        bad.workers[0].events[3].t_ns = 15;
        bad.workers[0].events[2].t_ns = 15;
        let errors = bad.validate(&g);
        assert!(
            errors.iter().any(|e| matches!(
                e,
                TraceError::DependencyOverlap { task, dep } if *task == b && *dep == a
            )),
            "{errors:?}"
        );
        // The edit also made worker timestamps non-monotone.
        assert!(errors
            .iter()
            .any(|e| matches!(e, TraceError::NonMonotoneWorker { .. })));

        // Missing Done event.
        let mut truncated = good.clone();
        truncated.workers[0].events.pop();
        let errors = truncated.validate(&g);
        assert!(
            errors.iter().any(|e| matches!(
                e,
                TraceError::PhaseCount { task, phase: TracePhase::Done, count: 0 } if *task == b
            )),
            "{errors:?}"
        );

        // Wrong worker.
        let mut wrong = good;
        wrong.workers[0].worker = w(1, 0);
        let errors = wrong.validate(&g);
        assert!(errors
            .iter()
            .any(|e| matches!(e, TraceError::WrongWorker { .. })));
    }

    #[test]
    fn validate_accepts_retried_tasks_and_counts_attempts() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let a = g.add_task(0, w(0, 0));
        // a fails twice, is retried twice, then succeeds.
        let trace = ExecTrace {
            workers: vec![WorkerTrace {
                worker: w(0, 0),
                events: vec![
                    TraceEvent { task: a, phase: TracePhase::Running, t_ns: 10 },
                    TraceEvent { task: a, phase: TracePhase::Failed, t_ns: 12 },
                    TraceEvent { task: a, phase: TracePhase::Retried, t_ns: 14 },
                    TraceEvent { task: a, phase: TracePhase::Running, t_ns: 16 },
                    TraceEvent { task: a, phase: TracePhase::Failed, t_ns: 18 },
                    TraceEvent { task: a, phase: TracePhase::Retried, t_ns: 20 },
                    TraceEvent { task: a, phase: TracePhase::Running, t_ns: 22 },
                    TraceEvent { task: a, phase: TracePhase::Done, t_ns: 30 },
                ],
            }],
            seed_events: vec![TraceEvent { task: a, phase: TracePhase::Ready, t_ns: 0 }],
            total_ns: 30,
        };
        assert_eq!(trace.validate(&g), Vec::new());
        assert_eq!(trace.task_attempts()[&a], 3);
        // The reconstructed span uses the final attempt's start.
        assert_eq!(trace.task_spans()[&a].start_ns, 22);

        // A Failed without a matching Retried + re-Running is malformed.
        let mut bad = trace.clone();
        bad.workers[0].events.truncate(2); // Running, Failed — then nothing
        bad.workers[0].events.push(TraceEvent { task: a, phase: TracePhase::Done, t_ns: 30 });
        let errors = bad.validate(&g);
        assert!(
            errors.iter().any(|e| matches!(
                e,
                TraceError::RetryMismatch { task, running: 1, failed: 1, retried: 0 } if *task == a
            )),
            "{errors:?}"
        );
    }

    #[test]
    fn chrome_export_labels_retried_tasks() {
        let mut retried = rec(0, "GenB", w(0, 3), 0, 1_000, 2_000);
        retried.attempts = 3;
        let json = chrome_trace_json(&[retried, rec(1, "Gemm", w(0, 1), 0, 2_000, 3_000)], &[]);
        assert!(json.contains("\"attempts\":\"3\""), "{json}");
        // Single-attempt tasks stay unlabeled.
        assert_eq!(json.matches("attempts").count(), 1, "{json}");
    }

    #[test]
    fn validate_catches_task_count_mismatch() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        g.add_task(0, w(0, 0));
        g.add_task(1, w(0, 0));
        let trace = ExecTrace {
            workers: vec![WorkerTrace {
                worker: w(0, 0),
                events: vec![
                    TraceEvent { task: 0, phase: TracePhase::Running, t_ns: 1 },
                    TraceEvent { task: 0, phase: TracePhase::Done, t_ns: 2 },
                ],
            }],
            seed_events: vec![TraceEvent { task: 0, phase: TracePhase::Ready, t_ns: 0 }],
            total_ns: 2,
        };
        let errors = trace.validate(&g);
        assert!(errors.iter().any(|e| matches!(
            e,
            TraceError::TaskCount { traced: 1, expected: 2 }
        )));
    }
}

//! Node-aware process topology: which ranks share a physical node, and the
//! collective tree shapes that exploit it.
//!
//! The paper's machine model (and Irmler et al., *Node-Aware Processor
//! Grids*) distinguishes two link classes: ranks on the same physical node
//! talk over shared memory / NVLink at tens of GB/s, ranks on different
//! nodes cross the NIC at a fraction of that. A [`Topology`] models `P`
//! ranks packed `node_size` per physical node (rank-major, so consecutive
//! ranks share a node), classifies every `(src, dst)` pair into a
//! [`LinkClass`], and builds the two collective tree shapes the transport
//! uses:
//!
//! * [`Topology::bcast_children`] — a **hierarchical broadcast tree**: the
//!   member set is grouped by physical node, a binomial tree over the group
//!   *leaders* carries the payload across the slow inter-node links exactly
//!   `groups − 1` times (the provable minimum, ≤ ⌈P/node_size⌉ − 1), and
//!   each leader then fans out over a binomial tree inside its own node;
//! * [`Topology::reduce_parent`] / [`Topology::reduce_children`] — the
//!   **reduction tree** toward rank 0: ranks combine into their node
//!   leader over a binomial tree of intra-node links, and each leader
//!   sends its node's combined partials straight to the root — every C
//!   partial crosses the NIC exactly once (see [`Topology::reduce_parent`]
//!   for why the inter level is flat rather than binomial).
//!
//! Both shapes are pure functions of `(ranks, node_size, member set)` —
//! never of delivery timing — which is what lets the engine fix the
//! floating-point combination order up the tree and keep results
//! bit-identical across FIFO, reordered, shaped and fault-recovery runs.
//!
//! The grid placement is implicit: the engine numbers its `p × q` process
//! grid row-major, so a grid row (the A-broadcast set) is a contiguous rank
//! range and lands on ⌈q/node_size⌉ physical nodes — the placement that
//! maximises intra-node hops for the paper's row-broadcast-heavy
//! contraction shape.

/// Classification of one directed `(src, dst)` rank pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// `src == dst`: never shaped, never counted as traffic.
    Loopback,
    /// Different ranks on the same physical node (shared memory / NVLink).
    Intra,
    /// Ranks on different physical nodes (the NIC).
    Inter,
}

/// `P` ranks packed `node_size` per physical node, rank-major.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Total ranks (the engine's "nodes").
    pub ranks: usize,
    /// Ranks per physical node (≥ 1). `1` makes every link [`LinkClass::Inter`]
    /// — the flat, pre-node-aware behaviour.
    pub node_size: usize,
}

/// Binomial-tree parent of 1-based... no: parent of index `i > 0` in a
/// 0-indexed binomial tree — clear the highest set bit.
fn binomial_parent(i: usize) -> usize {
    debug_assert!(i > 0);
    i - (1 << (usize::BITS - 1 - i.leading_zeros()))
}

impl Topology {
    /// A topology of `ranks` ranks, `node_size` per physical node.
    ///
    /// # Panics
    /// Panics if `node_size == 0`.
    pub fn new(ranks: usize, node_size: usize) -> Self {
        assert!(node_size >= 1, "node_size must be >= 1");
        Self { ranks, node_size }
    }

    /// Every rank its own physical node (all remote links inter-node).
    pub fn flat(ranks: usize) -> Self {
        Self::new(ranks, 1)
    }

    /// The physical node hosting `rank`.
    pub fn physical_node(&self, rank: usize) -> usize {
        rank / self.node_size
    }

    /// Number of physical nodes (`⌈ranks/node_size⌉`).
    pub fn physical_nodes(&self) -> usize {
        self.ranks.div_ceil(self.node_size)
    }

    /// Whether two ranks share a physical node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.physical_node(a) == self.physical_node(b)
    }

    /// The link class of the directed pair `(src, dst)`.
    pub fn link_class(&self, src: usize, dst: usize) -> LinkClass {
        if src == dst {
            LinkClass::Loopback
        } else if self.same_node(src, dst) {
            LinkClass::Intra
        } else {
            LinkClass::Inter
        }
    }

    /// The node-aware broadcast tree over `root` plus `dests`: returns
    /// `(parent, child)` edges, parents always appearing (as root or as an
    /// earlier child) before they forward. `dests` need not be sorted and
    /// must not contain `root`; duplicates are ignored.
    ///
    /// Shape: members grouped by physical node (the root's group first,
    /// remaining groups by first member), a binomial tree over group
    /// leaders, then a binomial tree inside each group — so exactly
    /// `groups − 1` edges cross the inter-node link, the minimum possible.
    pub fn bcast_children(&self, root: usize, dests: &[usize]) -> Vec<(usize, usize)> {
        let mut members: Vec<usize> = dests.to_vec();
        members.sort_unstable();
        members.dedup();
        members.retain(|&m| m != root);

        // Group members by physical node; the root's group leads.
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut order: Vec<usize> = Vec::new(); // physical node of each group
        for &m in std::iter::once(&root).chain(&members) {
            let pn = self.physical_node(m);
            match order.iter().position(|&o| o == pn) {
                Some(g) => groups[g].push(m),
                None => {
                    order.push(pn);
                    groups.push(vec![m]);
                }
            }
        }

        let mut edges = Vec::with_capacity(members.len());
        // Inter-node backbone: binomial tree over the group leaders.
        for g in 1..groups.len() {
            edges.push((groups[binomial_parent(g)][0], groups[g][0]));
        }
        // Intra-node fan-out: binomial tree inside each group.
        for group in &groups {
            for i in 1..group.len() {
                edges.push((group[binomial_parent(i)], group[i]));
            }
        }
        edges
    }

    /// Number of inter-node edges in [`Topology::bcast_children`] for this
    /// member set — always `distinct physical nodes − 1`.
    pub fn bcast_inter_edges(&self, root: usize, dests: &[usize]) -> usize {
        self.bcast_children(root, dests)
            .iter()
            .filter(|&&(p, c)| self.link_class(p, c) == LinkClass::Inter)
            .count()
    }

    /// The parent of `rank` in the fixed reduction tree toward rank 0, or
    /// `None` for the root. Non-leader ranks combine into their physical
    /// node's leader (lowest rank on the node) over a binomial tree of
    /// intra-node links; each non-root leader then sends its node's
    /// combined partials straight to the root.
    ///
    /// The inter level is deliberately *flat*, unlike the broadcast's
    /// binomial backbone: reduction subtrees carry mostly-disjoint C keys
    /// (each C tile has one computing grid row), so an interior inter-node
    /// hop would re-transmit its whole subtree across the NIC without
    /// combining anything — every partial crosses the slow link exactly
    /// once, the minimum, and the tree never moves more inter-node bytes
    /// than the ship-everything-to-root baseline.
    pub fn reduce_parent(&self, rank: usize) -> Option<usize> {
        assert!(rank < self.ranks, "rank {rank} out of range");
        let leader = self.physical_node(rank) * self.node_size;
        if rank != leader {
            // Binomial tree inside the node, indexed from the leader.
            let idx = rank - leader;
            return Some(leader + binomial_parent(idx));
        }
        if self.physical_node(rank) == 0 {
            return None; // rank 0: the reduction root
        }
        Some(0)
    }

    /// The children of `rank` in the reduction tree (inverse of
    /// [`Topology::reduce_parent`]), in ascending rank order.
    pub fn reduce_children(&self, rank: usize) -> Vec<usize> {
        (0..self.ranks)
            .filter(|&r| self.reduce_parent(r) == Some(rank))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_classes() {
        let t = Topology::new(8, 4);
        assert_eq!(t.link_class(3, 3), LinkClass::Loopback);
        assert_eq!(t.link_class(0, 3), LinkClass::Intra);
        assert_eq!(t.link_class(3, 4), LinkClass::Inter);
        assert_eq!(t.physical_nodes(), 2);
        let flat = Topology::flat(8);
        assert_eq!(flat.link_class(0, 1), LinkClass::Inter);
        assert_eq!(flat.physical_nodes(), 8);
    }

    #[test]
    fn ragged_last_node() {
        let t = Topology::new(10, 4); // nodes {0..3}, {4..7}, {8,9}
        assert_eq!(t.physical_nodes(), 3);
        assert_eq!(t.physical_node(9), 2);
        assert!(t.same_node(8, 9));
        assert!(!t.same_node(7, 8));
    }

    /// Every destination is reached exactly once, parents forward only
    /// after they appear, and the inter-node crossing count meets the
    /// ⌈P/node_size⌉ − 1 bound.
    #[test]
    fn bcast_tree_covers_and_bounds_crossings() {
        for (ranks, node_size, root) in [(16, 4, 5), (16, 1, 0), (12, 5, 11), (9, 3, 4)] {
            let t = Topology::new(ranks, node_size);
            let dests: Vec<usize> = (0..ranks).filter(|&r| r != root).collect();
            let edges = t.bcast_children(root, &dests);
            assert_eq!(edges.len(), dests.len(), "one delivering edge per dest");
            let mut reached = vec![false; ranks];
            reached[root] = true;
            for &(p, c) in &edges {
                assert!(reached[p], "parent {p} forwards before receiving");
                assert!(!reached[c], "child {c} delivered twice");
                reached[c] = true;
            }
            assert!(reached.iter().all(|&r| r));
            let inter = t.bcast_inter_edges(root, &dests);
            assert!(
                inter <= t.physical_nodes() - 1,
                "{inter} inter-node crossings on {ranks}/{node_size}"
            );
            assert_eq!(inter, t.physical_nodes() - 1, "hierarchy is tight");
        }
    }

    /// A partial member set (a grid row) still crosses the NIC only once
    /// per *occupied* physical node beyond the first.
    #[test]
    fn bcast_tree_partial_membership() {
        let t = Topology::new(16, 4);
        // Grid row {4..7} ∪ {12}: two physical nodes → one crossing.
        let edges = t.bcast_children(4, &[5, 6, 7, 12]);
        assert_eq!(t.bcast_inter_edges(4, &[5, 6, 7, 12]), 1);
        assert_eq!(edges.len(), 4);
    }

    #[test]
    fn flat_topology_matches_plain_binomial() {
        let t = Topology::flat(8);
        let dests: Vec<usize> = (1..8).collect();
        let edges = t.bcast_children(0, &dests);
        // All inter-node, 7 edges, binomial shape: 0→{1,2,4}, 1→{3,5}, ...
        assert_eq!(edges.len(), 7);
        assert!(edges.iter().all(|&(p, c)| t.link_class(p, c) == LinkClass::Inter));
        assert!(edges.contains(&(0, 1)) && edges.contains(&(0, 2)) && edges.contains(&(0, 4)));
    }

    /// The reduction tree is a proper tree rooted at 0 whose inter-node
    /// edges number exactly `physical_nodes − 1`.
    #[test]
    fn reduce_tree_shape() {
        for (ranks, node_size) in [(16, 4), (16, 1), (10, 4), (7, 3), (1, 4)] {
            let t = Topology::new(ranks, node_size);
            assert_eq!(t.reduce_parent(0), None);
            let mut inter = 0;
            for r in 1..ranks {
                let mut hops = 0;
                let mut cur = r;
                while let Some(p) = t.reduce_parent(cur) {
                    assert!(p < cur, "parents descend toward the root");
                    if t.link_class(cur, p) == LinkClass::Inter {
                        hops += 1;
                    }
                    cur = p;
                }
                assert_eq!(cur, 0, "every rank reaches the root");
                let want = if t.same_node(r, 0) { 0 } else { 1 };
                assert_eq!(hops, want, "one NIC crossing per off-node rank's partials");
                let p = t.reduce_parent(r).unwrap();
                if t.link_class(r, p) == LinkClass::Inter {
                    inter += 1;
                }
            }
            assert_eq!(inter, t.physical_nodes() - 1, "{ranks}/{node_size}");
        }
    }

    #[test]
    fn reduce_children_inverts_parent() {
        let t = Topology::new(16, 4);
        for r in 0..16 {
            for &c in &t.reduce_children(r) {
                assert_eq!(t.reduce_parent(c), Some(r));
            }
        }
        // Rank 0's children: intra-node binomial {1, 2} plus every other
        // node's leader {4, 8, 12}.
        assert_eq!(t.reduce_children(0), vec![1, 2, 4, 8, 12]);
    }
}

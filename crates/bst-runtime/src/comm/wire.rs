//! The pluggable inter-process wire behind [`CommFabric`](super::CommFabric).
//!
//! The fabric's default transport is in-process: every rank is a thread and
//! frames move over crossbeam channels. A multi-process deployment plugs a
//! [`Wire`] into the fabric instead ([`RemoteLink`]): frames addressed to a
//! rank this process does not host are handed to [`Wire::send`] (which
//! serializes them onto a socket), and a pump thread drains [`Wire::recv`]
//! into [`CommFabric::inject`](super::CommFabric::inject), which puts each
//! arriving frame through the exact same credit-gated inbox path a local
//! send would take. The engine, handlers and progress loops are identical
//! either way — the wire only replaces the channel hop between processes.
//!
//! The socket implementation (binary codec, connection lifecycle,
//! heartbeats) lives in the `bst-net` crate; this module defines only the
//! seam so the runtime stays dependency-free.

use super::{CPart, TileMsg};

/// A frame crossing process boundaries: the inter-process image of the
/// fabric's internal frame vocabulary (`BcastA` / `ReduceC`). `Shutdown`
/// never crosses the wire — each process shuts its own fabric down once its
/// local engine completes.
#[derive(Clone, Debug)]
pub enum WireFrame {
    /// One hop of an A-tile broadcast tree, addressed to rank `dst`.
    Tile {
        /// Destination rank.
        dst: usize,
        /// The broadcast hop.
        msg: TileMsg,
    },
    /// A C partial sum moving one hop up the reduction tree.
    Part {
        /// Destination rank.
        dst: usize,
        /// Sending rank.
        src: usize,
        /// The partial.
        part: CPart,
    },
}

impl WireFrame {
    /// The destination rank the frame is addressed to.
    pub fn dst(&self) -> usize {
        match self {
            WireFrame::Tile { dst, .. } | WireFrame::Part { dst, .. } => *dst,
        }
    }
}

/// A wire-level send failure: the peer's connection is gone or refused the
/// bytes. Unlike an injected drop (which is transient by design), a wire
/// error is *fatal* to the sending task — the peer process is dead, and
/// recovery happens at the launcher (degraded re-plan), not by retrying
/// into a broken socket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Destination rank of the failed send.
    pub dst: usize,
    /// Human-readable cause (the underlying I/O error).
    pub reason: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire send to rank {} failed: {}", self.dst, self.reason)
    }
}

impl std::error::Error for WireError {}

/// The transport seam between processes (see the module docs).
///
/// Implementations must be safe to call from multiple threads: sends come
/// from any worker lane, `recv` from the fabric's single pump thread.
pub trait Wire: Send + Sync {
    /// Ships one frame to the process hosting `frame.dst()`.
    fn send(&self, frame: WireFrame) -> Result<(), WireError>;

    /// Blocks for the next inbound frame; `None` once
    /// [`Wire::close_inbound`] was called and the queue is drained.
    fn recv(&self) -> Option<WireFrame>;

    /// Unblocks [`Wire::recv`] permanently (frames still arriving are
    /// dropped). Called after the local engine completed and the fabric
    /// shut down — everything addressed here has been consumed.
    fn close_inbound(&self);
}

/// Binds a [`Wire`] to the rank this process hosts: the fabric routes
/// frames for `rank` through its in-process inboxes and everything else
/// through `wire`.
#[derive(Clone)]
pub struct RemoteLink {
    /// The one rank whose endpoint is local to this process.
    pub rank: usize,
    /// Transport to every other rank.
    pub wire: std::sync::Arc<dyn Wire>,
}

impl std::fmt::Debug for RemoteLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteLink").field("rank", &self.rank).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataKey;
    use bst_tile::Tile;
    use std::sync::Arc;

    #[test]
    fn frame_destinations() {
        let tile = WireFrame::Tile {
            dst: 3,
            msg: TileMsg {
                key: DataKey::A(0, 0),
                payload: Arc::new(Tile::zeros(2, 2)),
                epoch: 1,
                src: 0,
                consumers: 1,
            },
        };
        assert_eq!(tile.dst(), 3);
        let part = WireFrame::Part {
            dst: 0,
            src: 2,
            part: CPart { i: 0, j: 0, origin: (2, 0, 0), tile: Tile::zeros(2, 2) },
        };
        assert_eq!(part.dst(), 0);
    }

    #[test]
    fn wire_error_display() {
        let e = WireError { dst: 4, reason: "connection reset".into() };
        assert!(e.to_string().contains("rank 4"));
        assert!(e.to_string().contains("connection reset"));
    }
}

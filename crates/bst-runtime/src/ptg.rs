//! A miniature Parameterized Task Graph (PTG) layer.
//!
//! The paper's implementation is written in PaRSEC's PTG domain-specific
//! language (§4, ref \[13\]): the DAG is declared as "a concise and
//! parameterized collection of tasks that exchange data through flows" —
//! task *classes* indexed by integer parameters, with per-instance
//! conditions deciding which flows (dependencies) are enabled. Because the
//! block-sparse problem is irregular, the paper computes an execution plan
//! in an inspection phase and feeds it to a *generic* PTG whose conditions
//! consult the plan.
//!
//! This module reproduces that programming model: [`PtgProgram`] holds
//! [`TaskClass`]es whose parameter spaces and dependency conditions are
//! closures (free to consult any inspector product), and
//! [`PtgProgram::compile`] enumerates the instances into a concrete
//! [`TaskGraph`] for the engine in [`crate::graph`]. The contraction
//! executor in `bst-contract` lowers its plan directly for efficiency; this
//! layer exists for expressing *other* algorithms over the same runtime and
//! is exercised by wavefront/pipeline tests.

use crate::graph::{TaskGraph, WorkerId};
use std::collections::HashMap;

/// Parameters of one task instance.
pub type Params = Vec<i64>;

/// A reference to a task instance of some class: `(class index, params)`.
pub type InstanceRef = (usize, Params);

/// Maps an instance's parameters to its execution lane.
pub type WorkerFn = Box<dyn Fn(&[i64]) -> WorkerId>;

/// Maps an instance's parameters to its predecessor instances.
pub type DepsFn = Box<dyn Fn(&[i64]) -> Vec<InstanceRef>>;

/// A parameterized family of tasks.
pub struct TaskClass {
    /// Class name (diagnostics).
    pub name: String,
    /// Enumerates the parameter tuples of all instances of this class.
    pub space: Box<dyn Fn() -> Vec<Params>>,
    /// Maps an instance to its execution lane.
    pub worker: WorkerFn,
    /// Input flows: for an instance, the predecessor instances whose
    /// completion it awaits (dataflow and control flow alike).
    pub deps: DepsFn,
}

/// A program: a list of task classes.
#[derive(Default)]
pub struct PtgProgram {
    classes: Vec<TaskClass>,
}

/// A compiled program: a concrete task graph whose payloads identify the
/// original instances.
pub struct CompiledPtg {
    /// The concrete DAG; payloads are `(class index, params)`.
    pub graph: TaskGraph<InstanceRef>,
    /// Class names, indexed by class index.
    pub class_names: Vec<String>,
}

impl PtgProgram {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a task class; returns its class index for use in dependency
    /// references.
    pub fn add_class(
        &mut self,
        name: impl Into<String>,
        space: impl Fn() -> Vec<Params> + 'static,
        worker: impl Fn(&[i64]) -> WorkerId + 'static,
        deps: impl Fn(&[i64]) -> Vec<InstanceRef> + 'static,
    ) -> usize {
        self.classes.push(TaskClass {
            name: name.into(),
            space: Box::new(space),
            worker: Box::new(worker),
            deps: Box::new(deps),
        });
        self.classes.len() - 1
    }

    /// Enumerates every instance and resolves the flows into a concrete
    /// [`TaskGraph`].
    ///
    /// Instances are created class by class in declaration order; a
    /// dependency may reference any instance (forward references across
    /// classes are resolved in a second pass).
    ///
    /// # Panics
    /// Panics if a dependency references a non-existent instance, or if the
    /// dependency relation has a cycle.
    pub fn compile(&self) -> CompiledPtg {
        // Enumerate instances and assign ids.
        let mut instances: Vec<InstanceRef> = Vec::new();
        let mut ids: HashMap<InstanceRef, usize> = HashMap::new();
        for (ci, class) in self.classes.iter().enumerate() {
            for params in (class.space)() {
                let inst = (ci, params);
                let id = instances.len();
                let prev = ids.insert(inst.clone(), id);
                assert!(
                    prev.is_none(),
                    "duplicate instance {}({:?})",
                    class.name,
                    inst.1
                );
                instances.push(inst);
            }
        }

        // Resolve dependencies (may point forward), then emit the tasks in
        // a topological order so TaskGraph's dep<task invariant holds.
        let deps: Vec<Vec<usize>> = instances
            .iter()
            .map(|(ci, params)| {
                (self.classes[*ci].deps)(params)
                    .into_iter()
                    .map(|d| {
                        *ids.get(&d).unwrap_or_else(|| {
                            panic!(
                                "{}({:?}) depends on unknown instance {}({:?})",
                                self.classes[*ci].name,
                                params,
                                self.classes
                                    .get(d.0)
                                    .map(|c| c.name.as_str())
                                    .unwrap_or("<bad class>"),
                                d.1
                            )
                        })
                    })
                    .collect()
            })
            .collect();

        // Kahn topological sort.
        let n = instances.len();
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (t, ds) in deps.iter().enumerate() {
            indeg[t] = ds.len();
            for &d in ds {
                succ[d].push(t);
            }
        }
        let mut order: Vec<usize> = (0..n).filter(|&t| indeg[t] == 0).collect();
        let mut head = 0;
        while head < order.len() {
            let t = order[head];
            head += 1;
            for &s in &succ[t] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    order.push(s);
                }
            }
        }
        assert_eq!(order.len(), n, "cycle in the PTG dependency relation");

        let mut graph: TaskGraph<InstanceRef> = TaskGraph::new();
        let mut new_id = vec![usize::MAX; n];
        for &old in &order {
            let (ci, params) = &instances[old];
            let w = (self.classes[*ci].worker)(params);
            new_id[old] = graph.add_task((*ci, params.clone()), w);
        }
        for (old, ds) in deps.iter().enumerate() {
            for &d in ds {
                graph.add_dep(new_id[old], new_id[d]);
            }
        }

        CompiledPtg {
            graph,
            class_names: self.classes.iter().map(|c| c.name.clone()).collect(),
        }
    }
}

/// Helper: the rectangular parameter space `0..a × 0..b`.
pub fn space_2d(a: i64, b: i64) -> impl Fn() -> Vec<Params> {
    move || {
        let mut out = Vec::with_capacity((a * b) as usize);
        for i in 0..a {
            for j in 0..b {
                out.push(vec![i, j]);
            }
        }
        out
    }
}

/// Helper: the linear parameter space `0..n`.
pub fn space_1d(n: i64) -> impl Fn() -> Vec<Params> {
    move || (0..n).map(|i| vec![i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{infallible, Engine};
    use parking_lot::Mutex;

    fn w(node: usize, lane: usize) -> WorkerId {
        WorkerId { node, lane }
    }

    fn exec<T: Sync>(
        g: &TaskGraph<T>,
        workers: &[WorkerId],
        run: impl Fn(&T, WorkerId, &mut ()) + Sync,
    ) {
        match Engine::new().run(g, workers, |_| (), infallible(run)) {
            Ok(_) => (),
            Err(abort) => match abort.error {},
        }
    }

    #[test]
    fn pipeline_class() {
        // One class: chain(i) depends on chain(i-1).
        let mut prog = PtgProgram::new();
        let chain = prog.add_class(
            "chain",
            space_1d(20),
            |p| w(p[0] as usize % 3, 0),
            |p| {
                if p[0] > 0 {
                    vec![(0, vec![p[0] - 1])]
                } else {
                    vec![]
                }
            },
        );
        assert_eq!(chain, 0);
        let compiled = prog.compile();
        assert_eq!(compiled.graph.len(), 20);
        let log = Mutex::new(Vec::new());
        exec(
            &compiled.graph,
            &[w(0, 0), w(1, 0), w(2, 0)],
            |(_, params), _, _| log.lock().push(params[0]),
        );
        assert_eq!(*log.lock(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn wavefront_two_classes() {
        // gen(i) produces row seeds; cell(i,j) depends on cell(i-1,j),
        // cell(i,j-1) and (for j == 0) on gen(i) — a classic wavefront.
        let n = 6i64;
        let mut prog = PtgProgram::new();
        let gen = prog.add_class("gen", space_1d(n), |_| w(0, 0), |_| vec![]);
        let _cell = prog.add_class(
            "cell",
            space_2d(n, n),
            |p| w((p[0] + p[1]) as usize % 2, 1),
            move |p| {
                let (i, j) = (p[0], p[1]);
                let mut d = Vec::new();
                if i > 0 {
                    d.push((1, vec![i - 1, j]));
                }
                if j > 0 {
                    d.push((1, vec![i, j - 1]));
                } else {
                    d.push((gen, vec![i]));
                }
                d
            },
        );
        let compiled = prog.compile();
        assert_eq!(compiled.graph.len(), (n + n * n) as usize);
        assert_eq!(compiled.class_names, vec!["gen", "cell"]);

        let done = Mutex::new(std::collections::HashSet::new());
        exec(
            &compiled.graph,
            &[w(0, 0), w(0, 1), w(1, 1)],
            |(ci, params), _, _| {
                let mut done = done.lock();
                if *ci == 1 {
                    let (i, j) = (params[0], params[1]);
                    // All wavefront predecessors must already be done.
                    if i > 0 {
                        assert!(done.contains(&(1usize, vec![i - 1, j])));
                    }
                    if j > 0 {
                        assert!(done.contains(&(1usize, vec![i, j - 1])));
                    } else {
                        assert!(done.contains(&(0usize, vec![i])));
                    }
                }
                done.insert((*ci, params.clone()));
            },
        );
        assert_eq!(done.lock().len(), (n + n * n) as usize);
    }

    #[test]
    fn irregular_space_from_inspector() {
        // The paper's pattern: the parameter space and flows come from an
        // inspector product (here: a sparsity list).
        let nonzeros: std::sync::Arc<Vec<(i64, i64)>> =
            std::sync::Arc::new(vec![(0, 1), (1, 0), (2, 2), (2, 0)]);
        let mut prog = PtgProgram::new();
        let nz = nonzeros.clone();
        let _work = prog.add_class(
            "work",
            move || nz.iter().map(|&(i, j)| vec![i, j]).collect(),
            |p| w(p[0] as usize % 2, 0),
            |_| vec![],
        );
        let nz = nonzeros.clone();
        let _reduce = prog.add_class(
            "reduce",
            || vec![vec![0]],
            |_| w(0, 0),
            move |_| nz.iter().map(|&(i, j)| (0usize, vec![i, j])).collect(),
        );
        let compiled = prog.compile();
        assert_eq!(compiled.graph.len(), 5);
        let count = Mutex::new(0usize);
        exec(&compiled.graph, &[w(0, 0), w(1, 0)], |(ci, _), _, _| {
            let mut c = count.lock();
            if *ci == 1 {
                assert_eq!(*c, 4, "reduce must run last");
            }
            *c += 1;
        });
        assert_eq!(*count.lock(), 5);
    }

    #[test]
    #[should_panic(expected = "unknown instance")]
    fn dangling_flow_panics() {
        let mut prog = PtgProgram::new();
        prog.add_class("a", space_1d(1), |_| w(0, 0), |_| vec![(0, vec![99])]);
        prog.compile();
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detected() {
        let mut prog = PtgProgram::new();
        prog.add_class("a", space_1d(2), |_| w(0, 0), |p| {
            vec![(0, vec![1 - p[0]])] // 0 <-> 1
        });
        prog.compile();
    }

    #[test]
    #[should_panic(expected = "duplicate instance")]
    fn duplicate_instances_rejected() {
        let mut prog = PtgProgram::new();
        prog.add_class("a", || vec![vec![0], vec![0]], |_| w(0, 0), |_| vec![]);
        prog.compile();
    }
}

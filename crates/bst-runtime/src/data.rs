//! Per-node tile stores with PaRSEC-style data life-cycle management.
//!
//! Every simulated node owns a [`TileStore`] — its private host memory.
//! Producers [`TileStore::put`] a tile together with the number of consumer
//! tasks that will read it; each consumer calls [`TileStore::consume`] when
//! done, and the tile is dropped after its last consumer (PaRSEC §4: data is
//! "cached as long as needed by any task, and discarded after this").
//!
//! A tile crossing node boundaries must be `put` into the destination store
//! by an explicit communication task ([`crate::comm`]); nothing in this
//! module shares state between stores. Each store is tagged with the node
//! that owns it ([`TileStore::for_node`]): reads ([`TileStore::get`],
//! [`TileStore::consume`]) declare the reading node, and a cross-node read
//! panics in debug builds — the MPI-rank ownership discipline as an
//! enforced invariant.

use bst_tile::Tile;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Identity of a datum in the contraction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataKey {
    /// Tile `(i, k)` of `A`.
    A(u32, u32),
    /// Tile `(k, j)` of `B`.
    B(u32, u32),
    /// Tile `(i, j)` of `C`.
    C(u32, u32),
}

struct Entry {
    tile: Arc<Tile>,
    remaining: usize,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<DataKey, Entry>,
    current_bytes: u64,
    peak_bytes: u64,
}

/// A node-private host-memory tile store with consumer reference counting.
pub struct TileStore {
    inner: Mutex<Inner>,
    /// The node this store is the private memory of.
    owner: usize,
}

impl TileStore {
    /// An empty store owned by `node`. This is the only constructor — there
    /// is deliberately no node-less "global" store: every store belongs to
    /// exactly one simulated rank, and readers must identify themselves
    /// (see [`TileStore::get`]).
    pub fn for_node(node: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            owner: node,
        }
    }

    /// The node owning this store.
    pub fn owner(&self) -> usize {
        self.owner
    }

    /// Debug-build ownership gate: reading another node's store is a
    /// locality bug (on the paper's distributed-memory target it would be a
    /// wild remote read), so it panics rather than silently working.
    #[inline]
    fn check_reader(&self, reader: usize, key: DataKey) {
        debug_assert!(
            reader == self.owner,
            "cross-node access: node {reader} read {key:?} from node {}'s private store",
            self.owner
        );
        let _ = (reader, key);
    }

    /// Inserts `tile` under `key`, to be read by `consumers` tasks. With
    /// `consumers == 0` the tile is retained until [`Self::remove`] (used
    /// for result tiles awaiting collection).
    ///
    /// # Panics
    /// Panics if `key` is already present — each datum has exactly one
    /// producer per node.
    pub fn put(&self, key: DataKey, tile: Arc<Tile>, consumers: usize) {
        let mut inner = self.inner.lock();
        inner.current_bytes += tile.stored_bytes();
        inner.peak_bytes = inner.peak_bytes.max(inner.current_bytes);
        let prev = inner.entries.insert(
            key,
            Entry {
                tile,
                remaining: consumers,
            },
        );
        assert!(prev.is_none(), "duplicate producer for {key:?}");
    }

    /// Reads the tile under `key` without consuming it. `reader` is the
    /// node performing the read.
    ///
    /// # Panics
    /// Panics if absent — the task DAG must guarantee availability — and,
    /// in debug builds, if `reader` is not this store's owner.
    pub fn get(&self, reader: usize, key: DataKey) -> Arc<Tile> {
        self.check_reader(reader, key);
        self.inner
            .lock()
            .entries
            .get(&key)
            .unwrap_or_else(|| panic!("datum {key:?} not in store (missing dataflow edge?)"))
            .tile
            .clone()
    }

    /// Declares one consumer of `key` done; drops the tile after the last.
    /// Returns `true` if the tile was dropped. `reader` is the consuming
    /// node.
    ///
    /// # Panics
    /// Panics if absent or already fully consumed, and, in debug builds,
    /// if `reader` is not this store's owner.
    pub fn consume(&self, reader: usize, key: DataKey) -> bool {
        self.check_reader(reader, key);
        let mut inner = self.inner.lock();
        let e = inner
            .entries
            .get_mut(&key)
            .unwrap_or_else(|| panic!("consume of absent datum {key:?}"));
        assert!(e.remaining > 0, "over-consumption of {key:?}");
        e.remaining -= 1;
        if e.remaining == 0 {
            let bytes = e.tile.stored_bytes();
            inner.entries.remove(&key);
            inner.current_bytes -= bytes;
            true
        } else {
            false
        }
    }

    /// Removes and returns a tile regardless of its consumer count (used to
    /// collect result tiles).
    pub fn remove(&self, key: DataKey) -> Option<Arc<Tile>> {
        let mut inner = self.inner.lock();
        inner.entries.remove(&key).map(|e| {
            inner.current_bytes -= e.tile.stored_bytes();
            e.tile
        })
    }

    /// Whether `key` is currently present.
    pub fn contains(&self, key: DataKey) -> bool {
        self.inner.lock().entries.contains_key(&key)
    }

    /// All keys currently present (unspecified order).
    pub fn keys(&self) -> Vec<DataKey> {
        self.inner.lock().entries.keys().copied().collect()
    }

    /// Bytes currently resident.
    pub fn current_bytes(&self) -> u64 {
        self.inner.lock().current_bytes
    }

    /// High-water mark of resident bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.inner.lock().peak_bytes
    }
}

/// Identity of a cached generated tile in a [`BTileCache`].
///
/// `ident` names the *operand* the tile belongs to (the caller's hash of
/// the generator's content identity — different stationary operands served
/// by the same cache must use different idents), `(k, j)` the tile within
/// it. Entries with different idents share the cache's byte budget and
/// evict each other through the same LRU order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BCacheKey {
    /// Content identity of the generated operand.
    pub ident: u64,
    /// Tile row `k`.
    pub k: u32,
    /// Tile column `j`.
    pub j: u32,
}

/// Counters of one [`BTileCache`] since construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BCacheStats {
    /// Lookups that found the tile resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Tiles inserted.
    pub insertions: u64,
    /// Tiles evicted to stay within the byte budget.
    pub evictions: u64,
    /// Bytes of generation avoided (sum of hit tiles' sizes).
    pub bytes_saved: u64,
    /// Bytes currently resident.
    pub current_bytes: u64,
    /// High-water mark of resident bytes (never exceeds the budget).
    pub peak_bytes: u64,
    /// The configured byte budget.
    pub budget_bytes: u64,
}

struct BCacheEntry {
    tile: Arc<Tile>,
    stamp: u64,
}

#[derive(Default)]
struct BCacheInner {
    entries: HashMap<BCacheKey, BCacheEntry>,
    /// Recency order: stamp → key. Stamps are unique (monotonic counter),
    /// so eviction pops the smallest stamp in `O(log n)`.
    lru: BTreeMap<u64, BCacheKey>,
    next_stamp: u64,
    stats: BCacheStats,
}

/// A byte-budgeted LRU cache of generated (stationary-operand) tiles,
/// shared across executions of a long-lived node.
///
/// The one-shot engine generates every `B` tile from scratch on each run;
/// a persistent service keeps the generated tiles of the stationary operand
/// resident here between requests, handing the engine the cached `Arc`
/// instead of re-running the generator. Tiles are immutable (`Arc<Tile>`),
/// so a hit returns the *exact* bytes the original generation produced —
/// which is what makes warm-cache results bit-identical to cold runs.
///
/// Eviction is strict LRU against `budget_bytes`; a tile larger than the
/// whole budget is served but never cached. All methods take `&self`
/// (internally locked) so one cache can serve a node's generator lanes
/// concurrently.
pub struct BTileCache {
    inner: Mutex<BCacheInner>,
    budget: u64,
}

impl BTileCache {
    /// An empty cache bounded by `budget_bytes`.
    pub fn with_budget(budget_bytes: u64) -> Self {
        Self {
            inner: Mutex::new(BCacheInner {
                stats: BCacheStats {
                    budget_bytes,
                    ..BCacheStats::default()
                },
                ..BCacheInner::default()
            }),
            budget: budget_bytes,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit. Counts a hit (plus
    /// the tile's bytes as saved regeneration) or a miss.
    pub fn get(&self, key: BCacheKey) -> Option<Arc<Tile>> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        match inner.entries.get_mut(&key) {
            Some(e) => {
                inner.lru.remove(&e.stamp);
                e.stamp = inner.next_stamp;
                inner.lru.insert(e.stamp, key);
                inner.next_stamp += 1;
                inner.stats.hits += 1;
                inner.stats.bytes_saved += e.tile.stored_bytes();
                Some(Arc::clone(&e.tile))
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts `tile` under `key`, evicting least-recently-used entries
    /// until it fits the budget. A tile larger than the whole budget is not
    /// cached; re-inserting a resident key only refreshes its recency (the
    /// generators a cache serves are deterministic — same key, same bytes).
    pub fn insert(&self, key: BCacheKey, tile: Arc<Tile>) {
        let bytes = tile.stored_bytes();
        if bytes > self.budget {
            return;
        }
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        if let Some(e) = inner.entries.get_mut(&key) {
            inner.lru.remove(&e.stamp);
            e.stamp = inner.next_stamp;
            inner.lru.insert(e.stamp, key);
            inner.next_stamp += 1;
            return;
        }
        while inner.stats.current_bytes + bytes > self.budget {
            let (&stamp, &victim) = inner.lru.iter().next().expect("non-empty over budget");
            inner.lru.remove(&stamp);
            let evicted = inner.entries.remove(&victim).expect("lru/entries in sync");
            inner.stats.current_bytes -= evicted.tile.stored_bytes();
            inner.stats.evictions += 1;
        }
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        inner.lru.insert(stamp, key);
        inner.entries.insert(key, BCacheEntry { tile, stamp });
        inner.stats.current_bytes += bytes;
        inner.stats.peak_bytes = inner.stats.peak_bytes.max(inner.stats.current_bytes);
        inner.stats.insertions += 1;
    }

    /// Drops every resident tile (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.lru.clear();
        inner.stats.current_bytes = 0;
    }

    /// Number of resident tiles.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently resident.
    pub fn current_bytes(&self) -> u64 {
        self.inner.lock().stats.current_bytes
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> BCacheStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile() -> Arc<Tile> {
        Arc::new(Tile::zeros(2, 2))
    }

    #[test]
    fn put_get_consume_lifecycle() {
        let s = TileStore::for_node(0);
        let k = DataKey::A(1, 2);
        s.put(k, tile(), 2);
        assert!(s.contains(k));
        assert_eq!(s.current_bytes(), 32);
        let _t = s.get(0, k);
        assert!(!s.consume(0, k), "first consumer should not drop");
        assert!(s.contains(k));
        assert!(s.consume(0, k), "last consumer drops");
        assert!(!s.contains(k));
        assert_eq!(s.current_bytes(), 0);
        assert_eq!(s.peak_bytes(), 32);
    }

    #[test]
    #[should_panic(expected = "duplicate producer")]
    fn double_put_panics() {
        let s = TileStore::for_node(0);
        s.put(DataKey::B(0, 0), tile(), 1);
        s.put(DataKey::B(0, 0), tile(), 1);
    }

    #[test]
    #[should_panic(expected = "not in store")]
    fn get_missing_panics() {
        TileStore::for_node(0).get(0, DataKey::C(0, 0));
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "cross-node access"))]
    fn misrouted_get_panics_in_debug() {
        let s = TileStore::for_node(3);
        s.put(DataKey::A(0, 0), tile(), 1);
        // Node 1 reading node 3's private store is the locality bug the
        // ownership gate exists to catch.
        // Release builds skip the gate (the read succeeds); debug builds
        // panic — should_panic is applied only under debug_assertions.
        let _ = s.get(1, DataKey::A(0, 0));
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "cross-node access"))]
    fn misrouted_consume_panics_in_debug() {
        let s = TileStore::for_node(2);
        s.put(DataKey::B(1, 1), tile(), 1);
        s.consume(0, DataKey::B(1, 1));
    }

    #[test]
    #[should_panic(expected = "over-consumption")]
    fn over_consume_panics() {
        let s = TileStore::for_node(0);
        s.put(DataKey::A(0, 0), tile(), 1);
        s.consume(0, DataKey::A(0, 0));
        // Tile was dropped at refcount 0; consuming again is "absent".
        s.put(DataKey::A(0, 0), tile(), 0);
        s.consume(0, DataKey::A(0, 0));
    }

    #[test]
    fn zero_consumers_retained_until_removed() {
        let s = TileStore::for_node(0);
        let k = DataKey::C(3, 4);
        s.put(k, tile(), 0);
        assert!(s.contains(k));
        let t = s.remove(k).unwrap();
        assert_eq!(t.bytes(), 32);
        assert!(!s.contains(k));
        assert!(s.remove(k).is_none());
    }

    #[test]
    fn peak_tracks_high_water() {
        let s = TileStore::for_node(0);
        s.put(DataKey::A(0, 0), tile(), 1);
        s.put(DataKey::A(0, 1), tile(), 1);
        s.consume(0, DataKey::A(0, 0));
        s.put(DataKey::A(0, 2), tile(), 1);
        assert_eq!(s.peak_bytes(), 64);
        assert_eq!(s.current_bytes(), 64);
    }

    #[test]
    fn keys_lists_contents() {
        let s = TileStore::for_node(0);
        s.put(DataKey::A(0, 0), tile(), 1);
        s.put(DataKey::B(1, 1), tile(), 1);
        let mut keys = s.keys();
        keys.sort_by_key(|k| format!("{k:?}"));
        assert_eq!(keys.len(), 2);
    }

    fn bkey(k: u32, j: u32) -> BCacheKey {
        BCacheKey { ident: 7, k, j }
    }

    #[test]
    fn bcache_hit_returns_same_arc_and_counts_saved_bytes() {
        let c = BTileCache::with_budget(1 << 10);
        let t = tile();
        assert!(c.get(bkey(0, 0)).is_none());
        c.insert(bkey(0, 0), Arc::clone(&t));
        let hit = c.get(bkey(0, 0)).expect("resident");
        assert!(Arc::ptr_eq(&hit, &t), "hit must return the cached Arc");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert_eq!(s.bytes_saved, t.bytes());
        assert_eq!(s.current_bytes, t.bytes());
    }

    #[test]
    fn bcache_evicts_lru_within_budget() {
        // Budget fits exactly two 32-byte tiles.
        let c = BTileCache::with_budget(64);
        c.insert(bkey(0, 0), tile());
        c.insert(bkey(0, 1), tile());
        // Touch (0,0) so (0,1) is the LRU victim.
        assert!(c.get(bkey(0, 0)).is_some());
        c.insert(bkey(0, 2), tile());
        assert!(c.get(bkey(0, 1)).is_none(), "LRU entry must be evicted");
        assert!(c.get(bkey(0, 0)).is_some());
        assert!(c.get(bkey(0, 2)).is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.current_bytes <= 64 && s.peak_bytes <= 64);
    }

    #[test]
    fn bcache_oversized_tile_not_cached() {
        let c = BTileCache::with_budget(16);
        c.insert(bkey(0, 0), tile()); // 32 B > 16 B budget
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().insertions, 0);
    }

    #[test]
    fn bcache_idents_isolate_operands() {
        let c = BTileCache::with_budget(1 << 10);
        c.insert(BCacheKey { ident: 1, k: 0, j: 0 }, tile());
        assert!(c.get(BCacheKey { ident: 2, k: 0, j: 0 }).is_none());
        assert!(c.get(BCacheKey { ident: 1, k: 0, j: 0 }).is_some());
    }

    #[test]
    fn bcache_clear_keeps_counters() {
        let c = BTileCache::with_budget(1 << 10);
        c.insert(bkey(0, 0), tile());
        c.get(bkey(0, 0));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.current_bytes(), 0);
        assert_eq!(c.stats().hits, 1);
    }
}

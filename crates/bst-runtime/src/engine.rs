//! The single policy-driven execution engine.
//!
//! Historically [`TaskGraph`] grew six `execute*` entry points — the
//! cartesian product of {plain, traced} × {infallible, fallible} × {own
//! clock, caller clock} — each a hand-written copy of the same scheduler
//! loop. [`Engine::run`] replaces all of them with **one** scheduler generic
//! over three orthogonal policy objects:
//!
//! * [`Tracer`] — whether task life-cycle events are recorded
//!   ([`NoTracer`] / [`Recorder`]); a compile-time choice, so the untraced
//!   path monomorphizes the recording away entirely;
//! * [`Clock`] — the timestamp source ([`TraceClock`] by default; a
//!   caller-supplied epoch lets handlers timestamp their own side channels
//!   — e.g. device-memory occupancy samples — on the engine's timeline);
//! * [`RetryPolicy`] — per-task attempt budget and backoff applied to
//!   [`TaskError::Transient`] handler failures ([`RetryOptions`] is the
//!   canonical implementation; [`RetryOptions::none`] makes every transient
//!   error terminal, which is how [`infallible`] handlers run).
//!
//! Policies compose instead of multiplying entry points: tracing × faults ×
//! virtual time are picked independently with [`Engine::tracing`],
//! [`Engine::with_clock`] and [`Engine::with_retry`], and every combination
//! reaches the same scheduler body. (The former `TaskGraph::execute*`
//! methods were deprecated wrappers over this engine for one release and
//! are gone; handlers that cannot fail go through the [`infallible`]
//! adapter instead.)
//!
//! # Scheduler semantics
//!
//! One OS thread per worker; each worker pulls ready tasks from its own
//! FIFO; completing a task decrements the indegree of its successors,
//! enqueueing those that become ready onto *their* worker's FIFO. A
//! [`TaskError::Transient`] failure is retried on the task's own worker
//! after exponential backoff, re-enqueued onto the *back* of its FIFO
//! **without** completing — no successor is released early, every data and
//! control edge of the DAG still gates exactly as planned. A
//! [`TaskError::Fatal`] error (or an exhausted budget) poisons all queues
//! and surfaces as a [`RunAbort`]. Handler panics propagate after poisoning
//! the queues so no sibling worker deadlocks.

use crate::graph::{FallibleRun, RetryOptions, RunAbort, TaskError, TaskGraph, TaskId, WorkerId};
use crate::trace::{ExecTrace, TraceClock, TraceEvent, TracePhase, WorkerTrace};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::convert::Infallible;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Poison value signalling queue shutdown.
const DONE: TaskId = usize::MAX;

/// Tracing policy: whether the engine records task life-cycle events.
///
/// This is a compile-time marker — [`Engine::run`] monomorphizes over it, so
/// with [`NoTracer`] the recording code vanishes instead of branching per
/// event.
pub trait Tracer: Copy + Send + Sync {
    /// Whether events are recorded and a trace is returned.
    const ENABLED: bool;
}

/// No tracing: [`FallibleRun::trace`] is `None`. The default.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoTracer;

impl Tracer for NoTracer {
    const ENABLED: bool = false;
}

/// Record the full task life-cycle (ready → running → done, plus
/// failed/retried under faults) into per-worker, thread-owned buffers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Recorder;

impl Tracer for Recorder {
    const ENABLED: bool = true;
}

/// Clock policy: the engine's timestamp source. All trace timestamps are
/// nanoseconds from this clock.
pub trait Clock: Copy + Send + Sync {
    /// Nanoseconds since this clock's epoch.
    fn now_ns(&self) -> u64;
}

impl Clock for TraceClock {
    fn now_ns(&self) -> u64 {
        TraceClock::now_ns(self)
    }
}

/// Retry policy: how many attempts each task gets and how long its worker
/// backs off between them. [`RetryOptions`] is the canonical implementation.
pub trait RetryPolicy: Copy + Send + Sync {
    /// Maximum handler attempts per task (≥ 1; 0 is treated as 1).
    fn budget(&self) -> u32;
    /// Backoff after failed attempt number `attempt` (1-based), µs.
    fn backoff_us(&self, attempt: u32) -> u64;
}

impl RetryPolicy for RetryOptions {
    fn budget(&self) -> u32 {
        self.budget
    }

    fn backoff_us(&self, attempt: u32) -> u64 {
        RetryOptions::backoff_us(self, attempt)
    }
}

/// The policy-driven task-DAG execution engine — see the [module
/// docs](self) for what each policy controls.
///
/// Construction starts from [`Engine::new`] (untraced, wall clock, no
/// retries) and composes policies fluently:
///
/// ```
/// use bst_runtime::engine::Engine;
/// use bst_runtime::graph::{RetryOptions, TaskGraph, TaskError, WorkerId};
///
/// let mut g: TaskGraph<u32> = TaskGraph::new();
/// let w = WorkerId { node: 0, lane: 0 };
/// g.add_task(7, w);
/// let run = Engine::new()
///     .tracing()
///     .with_retry(RetryOptions::default())
///     .run(&g, &[w], |_| (), |&v, _, _, _| {
///         assert_eq!(v, 7);
///         Ok::<(), TaskError<String>>(())
///     })
///     .unwrap();
/// assert!(run.trace.is_some());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Engine<T = NoTracer, C = TraceClock, R = RetryOptions> {
    tracer: T,
    clock: C,
    retry: R,
}

impl Engine {
    /// The default policy stack: no tracing, a wall clock started now, and
    /// no retries (every transient error is terminal).
    pub fn new() -> Self {
        Self {
            tracer: NoTracer,
            clock: TraceClock::start(),
            retry: RetryOptions::none(),
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, C, R> Engine<T, C, R> {
    /// This engine with life-cycle recording on ([`Recorder`]);
    /// [`FallibleRun::trace`] will be `Some`.
    pub fn tracing(self) -> Engine<Recorder, C, R> {
        self.with_tracer(Recorder)
    }

    /// This engine with tracing policy `tracer`.
    pub fn with_tracer<T2: Tracer>(self, tracer: T2) -> Engine<T2, C, R> {
        Engine { tracer, clock: self.clock, retry: self.retry }
    }

    /// This engine timestamping from `clock` — lets the caller share one
    /// epoch between the engine and its handlers' side channels.
    pub fn with_clock<C2: Clock>(self, clock: C2) -> Engine<T, C2, R> {
        Engine { tracer: self.tracer, clock, retry: self.retry }
    }

    /// This engine retrying transient failures under `retry`.
    pub fn with_retry<R2: RetryPolicy>(self, retry: R2) -> Engine<T, C, R2> {
        Engine { tracer: self.tracer, clock: self.clock, retry }
    }
}

impl<T: Tracer, C: Clock, R: RetryPolicy> Engine<T, C, R> {
    /// Executes `graph` to completion under this engine's policies.
    ///
    /// * `workers` — every lane that tasks are pinned to (a task pinned to a
    ///   missing worker panics);
    /// * `mk_ctx` — builds the per-worker mutable context (e.g. a device
    ///   memory manager for GPU lanes);
    /// * `run` — the fallible task handler, called with the payload, the
    ///   worker id, the worker's context and the 1-based attempt number.
    ///
    /// Tasks run as soon as all their dependencies completed; tasks on the
    /// same worker run sequentially in ready order. See the [module
    /// docs](self) for retry and abort semantics.
    ///
    /// # Panics
    /// Propagates handler panics (a panic is not an error value); panics on
    /// duplicate workers or tasks pinned to unknown workers.
    pub fn run<P, Ctx, E, F, M>(
        &self,
        graph: &TaskGraph<P>,
        workers: &[WorkerId],
        mk_ctx: M,
        run: F,
    ) -> Result<FallibleRun, RunAbort<E>>
    where
        P: Sync,
        Ctx: Send,
        E: Send,
        M: Fn(WorkerId) -> Ctx + Sync,
        F: Fn(&P, WorkerId, &mut Ctx, u32) -> Result<(), TaskError<E>> + Sync,
    {
        let trace = T::ENABLED;
        let clock = self.clock;
        if graph.is_empty() {
            return Ok(FallibleRun {
                attempts: Vec::new(),
                trace: trace.then(ExecTrace::default),
            });
        }
        // Map workers to dense indices.
        let mut sorted = workers.to_vec();
        sorted.sort();
        sorted.windows(2).for_each(|w| {
            assert_ne!(w[0], w[1], "duplicate worker {:?}", w[0]);
        });
        let widx = |w: WorkerId| -> usize {
            sorted
                .binary_search(&w)
                .unwrap_or_else(|_| panic!("task pinned to unknown worker {w:?}"))
        };

        // Successor lists and indegrees.
        let mut succs: Vec<Vec<TaskId>> = vec![Vec::new(); graph.len()];
        let mut indeg: Vec<AtomicUsize> = Vec::with_capacity(graph.len());
        for id in 0..graph.len() {
            indeg.push(AtomicUsize::new(graph.deps(id).len()));
            for &d in graph.deps(id) {
                succs[d].push(id);
            }
        }

        let channels: Vec<(Sender<TaskId>, Receiver<TaskId>)> =
            (0..sorted.len()).map(|_| unbounded()).collect();
        let remaining = AtomicUsize::new(graph.len());
        let budget = self.retry.budget().max(1);
        let retry = self.retry;
        let attempts: Vec<AtomicU32> = (0..graph.len()).map(|_| AtomicU32::new(0)).collect();
        // First fatal / budget-exhausting error wins; later ones (from
        // workers draining their queues while the poison propagates) are
        // dropped.
        let abort: Mutex<Option<RunAbort<E>>> = Mutex::new(None);

        // Trace recording is strictly thread-owned: `seed_events` belongs to
        // this (submitting) thread, `bufs[i]` to worker thread i. Events of
        // a ready transition are recorded by whoever caused it, so no buffer
        // is ever shared and recording takes no locks.
        let mut seed_events: Vec<TraceEvent> = Vec::new();
        let mut bufs: Vec<Vec<TraceEvent>> = vec![Vec::new(); sorted.len()];

        // Seed initially-ready tasks.
        for id in 0..graph.len() {
            if graph.deps(id).is_empty() {
                if trace {
                    seed_events.push(TraceEvent {
                        task: id,
                        phase: TracePhase::Ready,
                        t_ns: clock.now_ns(),
                    });
                }
                channels[widx(graph.worker(id))].0.send(id).unwrap();
            }
        }

        std::thread::scope(|scope| {
            for ((wi, w), buf) in sorted.iter().enumerate().zip(bufs.iter_mut()) {
                let rx = channels[wi].1.clone();
                let channels = &channels;
                let succs = &succs;
                let indeg = &indeg;
                let remaining = &remaining;
                let run = &run;
                let mk_ctx = &mk_ctx;
                let widx = &widx;
                let attempts = &attempts;
                let abort = &abort;
                let w = *w;
                scope.spawn(move || {
                    let mut ctx = mk_ctx(w);
                    while let Ok(id) = rx.recv() {
                        if id == DONE {
                            break;
                        }
                        let attempt = attempts[id].fetch_add(1, Ordering::Relaxed) + 1;
                        if trace {
                            buf.push(TraceEvent {
                                task: id,
                                phase: TracePhase::Running,
                                t_ns: clock.now_ns(),
                            });
                        }
                        // Panic safety: a panicking handler must not leave
                        // the other workers blocked on their queues forever;
                        // poison every queue, then propagate.
                        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || run(graph.payload(id), w, &mut ctx, attempt),
                        ));
                        let result = match outcome {
                            Ok(r) => r,
                            Err(payload) => {
                                for (tx, _) in channels.iter() {
                                    let _ = tx.send(DONE);
                                }
                                std::panic::resume_unwind(payload);
                            }
                        };
                        if let Err(err) = result {
                            if trace {
                                buf.push(TraceEvent {
                                    task: id,
                                    phase: TracePhase::Failed,
                                    t_ns: clock.now_ns(),
                                });
                            }
                            let transient = matches!(err, TaskError::Transient(_));
                            if transient && attempt < budget {
                                // Back off, then re-enqueue onto this
                                // worker's own FIFO. The task has not
                                // completed, so no successor indegree was
                                // touched: every data and control edge of
                                // the DAG still gates exactly as planned.
                                std::thread::sleep(Duration::from_micros(
                                    retry.backoff_us(attempt),
                                ));
                                if trace {
                                    buf.push(TraceEvent {
                                        task: id,
                                        phase: TracePhase::Retried,
                                        t_ns: clock.now_ns(),
                                    });
                                }
                                channels[wi].0.send(id).unwrap();
                            } else {
                                let mut slot = abort.lock().unwrap();
                                if slot.is_none() {
                                    *slot = Some(RunAbort {
                                        task: id,
                                        attempts: attempt,
                                        budget_exhausted: transient,
                                        error: err.into_inner(),
                                    });
                                }
                                drop(slot);
                                for (tx, _) in channels.iter() {
                                    let _ = tx.send(DONE);
                                }
                                break;
                            }
                            continue;
                        }
                        if trace {
                            buf.push(TraceEvent {
                                task: id,
                                phase: TracePhase::Done,
                                t_ns: clock.now_ns(),
                            });
                        }
                        for &s in &succs[id] {
                            if indeg[s].fetch_sub(1, Ordering::AcqRel) == 1 {
                                if trace {
                                    // The releasing worker logs the
                                    // successor's readiness into its own
                                    // buffer, keeping ownership strict.
                                    buf.push(TraceEvent {
                                        task: s,
                                        phase: TracePhase::Ready,
                                        t_ns: clock.now_ns(),
                                    });
                                }
                                channels[widx(graph.worker(s))].0.send(s).unwrap();
                            }
                        }
                        if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                            // Last task done: poison every queue so all
                            // workers (including this one) exit.
                            for (tx, _) in channels.iter() {
                                let _ = tx.send(DONE);
                            }
                            break;
                        }
                    }
                });
            }
        });

        if let Some(abort) = abort.into_inner().unwrap() {
            return Err(abort);
        }

        // All tasks must have completed.
        assert_eq!(
            remaining.load(Ordering::Acquire),
            0,
            "deadlock: tasks never became ready (cycle through control edges?)"
        );

        Ok(FallibleRun {
            attempts: attempts.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
            trace: trace.then(|| ExecTrace {
                workers: sorted
                    .into_iter()
                    .zip(bufs)
                    .map(|(worker, events)| WorkerTrace { worker, events })
                    .collect(),
                seed_events,
                total_ns: clock.now_ns(),
            }),
        })
    }
}

/// Adapts an infallible handler to the engine's fallible signature with an
/// uninhabited error type: `Engine::new().run(g, workers, mk_ctx,
/// infallible(|payload, worker, ctx| ...))`. The returned
/// [`RunAbort`]'s error is [`Infallible`], so `Err` arms can be discharged
/// with `match abort.error {}`.
pub fn infallible<P, Ctx, F>(
    run: F,
) -> impl Fn(&P, WorkerId, &mut Ctx, u32) -> Result<(), TaskError<Infallible>> + Sync
where
    F: Fn(&P, WorkerId, &mut Ctx) + Sync,
{
    move |p, w, ctx, _attempt| {
        run(p, w, ctx);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    fn w(node: usize, lane: usize) -> WorkerId {
        WorkerId { node, lane }
    }

    /// A diamond + chain DAG shared by the policy-combination tests.
    fn diamond() -> TaskGraph<u32> {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let src = g.add_task(0, w(0, 0));
        let l = g.add_task(1, w(0, 1));
        let r = g.add_task(2, w(1, 0));
        g.add_dep(l, src);
        g.add_dep(r, src);
        let sink = g.add_task(3, w(0, 0));
        g.add_dep(sink, l);
        g.add_dep(sink, r);
        g
    }

    #[test]
    fn untraced_run_has_no_trace() {
        let g = diamond();
        let run = Engine::new()
            .run(&g, &[w(0, 0), w(0, 1), w(1, 0)], |_| (), |_, _, _, _| {
                Ok::<(), TaskError<Infallible>>(())
            })
            .unwrap();
        assert!(run.trace.is_none());
        assert_eq!(run.attempts, vec![1; 4]);
    }

    #[test]
    fn traced_run_validates_and_counts() {
        let g = diamond();
        let run = Engine::new()
            .tracing()
            .run(&g, &[w(0, 0), w(0, 1), w(1, 0)], |_| (), |_, _, _, _| {
                Ok::<(), TaskError<Infallible>>(())
            })
            .unwrap();
        let trace = run.trace.expect("Recorder policy records");
        assert_eq!(trace.validate(&g), Vec::new());
        assert_eq!(trace.event_count(), 3 * g.len());
    }

    #[test]
    fn caller_clock_timestamps_the_trace() {
        let clock = TraceClock::start();
        std::thread::sleep(Duration::from_millis(2));
        let g = diamond();
        let run = Engine::new()
            .tracing()
            .with_clock(clock)
            .run(&g, &[w(0, 0), w(0, 1), w(1, 0)], |_| (), |_, _, _, _| {
                Ok::<(), TaskError<Infallible>>(())
            })
            .unwrap();
        let trace = run.trace.unwrap();
        // Every event sits on the caller's epoch, so nothing can be earlier
        // than the sleep that preceded the run.
        for (_, e) in trace.iter_events() {
            assert!(e.t_ns >= 2_000_000, "event at {} ns", e.t_ns);
        }
    }

    #[test]
    fn retry_policy_composes_with_tracing() {
        let g = diamond();
        let run = Engine::new()
            .tracing()
            .with_retry(RetryOptions { budget: 4, backoff_base_us: 1, backoff_max_us: 5 })
            .run(&g, &[w(0, 0), w(0, 1), w(1, 0)], |_| (), |&v, _, _, attempt| {
                if v == 1 && attempt <= 2 {
                    return Err(TaskError::Transient("flaky"));
                }
                Ok(())
            })
            .unwrap();
        assert_eq!(run.attempts[1], 3);
        assert_eq!(run.retried_tasks(), 1);
        let trace = run.trace.unwrap();
        assert_eq!(trace.validate(&g), Vec::new());
        assert_eq!(trace.task_attempts()[&1], 3);
    }

    #[test]
    fn no_retry_policy_makes_transient_terminal() {
        let g = diamond();
        let abort = Engine::new()
            .run(&g, &[w(0, 0), w(0, 1), w(1, 0)], |_| (), |&v, _, _, _| {
                if v == 0 {
                    return Err(TaskError::Transient("down"));
                }
                Ok(())
            })
            .expect_err("RetryOptions::none() gives one attempt");
        assert_eq!(abort.attempts, 1);
        assert!(abort.budget_exhausted);
        assert_eq!(abort.error, "down");
    }

    #[test]
    fn contexts_are_per_worker() {
        let mut g: TaskGraph<u64> = TaskGraph::new();
        for i in 0..100 {
            g.add_task(i, w(i as usize % 4, 0));
        }
        let sums = Mutex::new(std::collections::HashMap::new());
        Engine::new()
            .run(
                &g,
                &[w(0, 0), w(1, 0), w(2, 0), w(3, 0)],
                |_| 0u64,
                |&v, wid, acc, _| {
                    *acc += v;
                    sums.lock().insert(wid, *acc);
                    Ok::<(), TaskError<Infallible>>(())
                },
            )
            .unwrap();
        let total: u64 = sums.lock().values().sum();
        assert_eq!(total, (0..100).sum::<u64>());
    }
}

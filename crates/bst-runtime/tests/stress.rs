//! Concurrency stress tests for the runtime substrate: the tile stores and
//! the engine under many workers and adversarial task shapes.

use bst_runtime::data::DataKey;
use bst_runtime::engine::{infallible, Engine};
use bst_runtime::graph::{TaskGraph, WorkerId};
use bst_runtime::trace::ExecTrace;
use bst_runtime::TileStore;
use bst_tile::Tile;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn w(node: usize, lane: usize) -> WorkerId {
    WorkerId { node, lane }
}

fn exec<T: Sync>(g: &TaskGraph<T>, workers: &[WorkerId], run: impl Fn(&T, WorkerId, &mut ()) + Sync) {
    match Engine::new().run(g, workers, |_| (), infallible(run)) {
        Ok(_) => (),
        Err(abort) => match abort.error {},
    }
}

fn exec_traced<T: Sync>(
    g: &TaskGraph<T>,
    workers: &[WorkerId],
    run: impl Fn(&T, WorkerId, &mut ()) + Sync,
) -> ExecTrace {
    match Engine::new().tracing().run(g, workers, |_| (), infallible(run)) {
        Ok(r) => r.trace.expect("tracing was requested"),
        Err(abort) => match abort.error {},
    }
}

#[test]
fn tile_store_concurrent_producers_and_consumers() {
    // 8 threads produce disjoint keys with 3 consumers each; 3 x 8 threads
    // consume them. The store must end empty with correct peak accounting.
    let store = Arc::new(TileStore::for_node(0));
    let n_keys = 400usize;
    std::thread::scope(|scope| {
        for t in 0..8 {
            let store = store.clone();
            scope.spawn(move || {
                for i in (t..n_keys).step_by(8) {
                    store.put(DataKey::A(i as u32, 0), Arc::new(Tile::zeros(2, 2)), 3);
                }
            });
        }
    });
    assert_eq!(store.keys().len(), n_keys);
    let consumed = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            for t in 0..8 {
                let store = store.clone();
                let consumed = &consumed;
                scope.spawn(move || {
                    for i in (t..n_keys).step_by(8) {
                        let key = DataKey::A(i as u32, 0);
                        let _tile = store.get(0, key);
                        store.consume(0, key);
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        }
    });
    assert_eq!(consumed.load(Ordering::Relaxed), 3 * n_keys);
    assert!(store.keys().is_empty(), "all tiles must be dropped");
    assert_eq!(store.current_bytes(), 0);
    assert_eq!(store.peak_bytes(), (n_keys * 32) as u64);
}

#[test]
fn engine_handles_wide_diamond_graphs() {
    // Repeated diamonds (1 -> 64 -> 1) across 16 workers: stresses the
    // ready-queue fan-out/fan-in paths.
    let mut g: TaskGraph<u32> = TaskGraph::new();
    let workers: Vec<WorkerId> = (0..4)
        .flat_map(|n| (0..4).map(move |l| w(n, l)))
        .collect();
    let mut join = g.add_task(0, w(0, 0));
    for round in 0..50u32 {
        let mids: Vec<_> = (0..64)
            .map(|i| {
                let t = g.add_task(round + 1, workers[i % 16]);
                g.add_dep(t, join);
                t
            })
            .collect();
        join = g.add_task(round + 1, w((round as usize) % 4, 0));
        for m in mids {
            g.add_dep(join, m);
        }
    }
    let count = AtomicUsize::new(0);
    exec(&g, &workers, |_, _, _| {
        count.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(count.load(Ordering::Relaxed), 1 + 50 * 65);
}

/// The diamond stress shape again, but traced: the trace must stay valid
/// under heavy fan-out/fan-in contention and carry exactly 3 events/task.
#[test]
fn traced_wide_diamond_graphs_stay_valid() {
    let mut g: TaskGraph<u32> = TaskGraph::new();
    let workers: Vec<WorkerId> = (0..4)
        .flat_map(|n| (0..4).map(move |l| w(n, l)))
        .collect();
    let mut join = g.add_task(0, w(0, 0));
    for round in 0..20u32 {
        let mids: Vec<_> = (0..64)
            .map(|i| {
                let t = g.add_task(round + 1, workers[i % 16]);
                g.add_dep(t, join);
                t
            })
            .collect();
        join = g.add_task(round + 1, w((round as usize) % 4, 0));
        for m in mids {
            g.add_dep(join, m);
        }
    }
    let count = AtomicUsize::new(0);
    let trace = exec_traced(&g, &workers, |_, _, _| {
        count.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(count.load(Ordering::Relaxed), g.len());
    assert_eq!(trace.event_count(), 3 * g.len());
    let errors = trace.validate(&g);
    assert!(errors.is_empty(), "{errors:?}");
}

/// Tracing must not change the schedule's cost class: on a graph of many
/// small tasks the traced run stays within a generous constant factor of
/// the untraced one (it only adds a few Vec pushes per task).
#[test]
fn tracing_overhead_is_bounded() {
    let mut g: TaskGraph<usize> = TaskGraph::new();
    let workers: Vec<WorkerId> = (0..8).map(|l| w(0, l)).collect();
    let mut prev: Vec<_> = (0..8).map(|i| g.add_task(i, workers[i])).collect();
    for round in 0..200 {
        prev = (0..8)
            .map(|i| {
                let t = g.add_task(round * 8 + i, workers[i]);
                g.add_dep(t, prev[i]);
                if i > 0 {
                    g.add_dep(t, prev[i - 1]);
                }
                t
            })
            .collect();
    }
    let work = |v: &usize| std::hint::black_box((0..200).fold(*v, |a, x| a.wrapping_add(a ^ x)));

    // Warm up, then time both modes.
    exec(&g, &workers, |v, _, _| {
        work(v);
    });
    let t0 = std::time::Instant::now();
    exec(&g, &workers, |v, _, _| {
        work(v);
    });
    let untraced = t0.elapsed();
    let t1 = std::time::Instant::now();
    let trace = exec_traced(&g, &workers, |v, _, _| {
        work(v);
    });
    let traced = t1.elapsed();

    assert_eq!(trace.event_count(), 3 * g.len());
    // Very generous bound — scheduling noise on loaded CI machines swamps
    // the per-task cost; this only catches pathological regressions (e.g.
    // a global lock on the hot path).
    assert!(
        traced < untraced * 10 + std::time::Duration::from_millis(250),
        "traced {traced:?} vs untraced {untraced:?}"
    );
}

/// A panicking handler must still tear the traced execution down cleanly
/// (no deadlock waiting on events from dead workers).
#[test]
#[should_panic(expected = "a scoped thread panicked")]
fn traced_stress_panic_still_propagates() {
    let mut g: TaskGraph<usize> = TaskGraph::new();
    let workers: Vec<WorkerId> = (0..6).map(|l| w(0, l)).collect();
    let root = g.add_task(0, workers[0]);
    for i in 1..300 {
        let t = g.add_task(i, workers[i % 6]);
        g.add_dep(t, root);
    }
    exec_traced(&g, &workers, |v, _, _| {
        if *v == 150 {
            panic!("boom at 150");
        }
    });
}

#[test]
fn engine_many_executions_reuse_graph() {
    // The same graph must be executable repeatedly (it is immutable).
    let mut g: TaskGraph<usize> = TaskGraph::new();
    let a = g.add_task(1, w(0, 0));
    let b = g.add_task(2, w(1, 0));
    g.add_dep(b, a);
    for _ in 0..200 {
        let sum = AtomicUsize::new(0);
        exec(&g, &[w(0, 0), w(1, 0)], |&v, _, _| {
            sum.fetch_add(v, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 3);
    }
}

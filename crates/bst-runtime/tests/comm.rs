//! Transport-layer tests: credit backpressure, duplicate suppression, and
//! seeded delivery reordering on the [`bst_runtime::comm`] fabric.

use bst_runtime::comm::{CommConfig, CommFabric, DeliveryPolicy, LinkShaper, TileMsg};
use bst_runtime::data::DataKey;
use bst_runtime::trace::{TraceClock, TracePhase};
use bst_runtime::TileStore;
use bst_tile::Tile;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn msg(i: u32, epoch: u32, src: usize) -> TileMsg {
    TileMsg {
        key: DataKey::A(i, 0),
        payload: Arc::new(Tile::zeros(4, 4)),
        epoch,
        src,
        consumers: 1,
    }
}

/// The credit gate is the §"flow control" window: however many messages the
/// sender fires, at most `window` are simultaneously in flight toward one
/// node — the bounded inbox can never exceed it.
#[test]
fn backpressure_never_exceeds_credit_window() {
    let window = 4;
    let fabric = CommFabric::new(
        2,
        CommConfig {
            window,
            // Slow deliveries so the in-flight count actually saturates.
            shaper: LinkShaper::nic(1e9, 200e-6),
            ..CommConfig::default()
        },
    );
    let stores = [TileStore::for_node(0), TileStore::for_node(1)];
    std::thread::scope(|s| {
        fabric.start(s, &stores);
        for i in 0..32 {
            fabric.send_tile(1, msg(i, 1, 0), false).unwrap();
        }
        for i in 0..32 {
            fabric.wait_delivered(1, DataKey::A(i, 0));
        }
        fabric.shutdown();
    });
    let stats = fabric.node_stats();
    assert_eq!(stats[0].sent_msgs, 32);
    assert_eq!(stats[1].recv_msgs, 32);
    assert_eq!(stats[1].credit_window, window);
    assert!(
        stats[1].max_in_flight <= window,
        "in-flight high water {} exceeded the credit window {window}",
        stats[1].max_in_flight
    );
    assert!(stats[1].max_in_flight >= 1);
}

/// A retried send re-delivers the same key under a higher epoch; the
/// receiver's delivered-set suppresses the duplicate instead of
/// double-depositing (the store would panic on a duplicate `put`).
#[test]
fn duplicate_delivery_is_idempotent() {
    let fabric = CommFabric::new(2, CommConfig::default());
    let stores = [TileStore::for_node(0), TileStore::for_node(1)];
    std::thread::scope(|s| {
        fabric.start(s, &stores);
        fabric.send_tile(1, msg(0, 1, 0), false).unwrap();
        fabric.wait_delivered(1, DataKey::A(0, 0));
        // The duplicate, as a fault retry would produce it.
        fabric.send_tile(1, msg(0, 2, 0), false).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while fabric.node_stats()[1].duplicate_msgs == 0 {
            assert!(Instant::now() < deadline, "duplicate never processed");
            std::thread::sleep(Duration::from_millis(1));
        }
        fabric.shutdown();
    });
    let stats = fabric.node_stats();
    assert_eq!(stats[0].sent_msgs, 2, "both sends hit the wire");
    assert_eq!(stats[1].recv_msgs, 1, "only the first deposited");
    assert_eq!(stats[1].duplicate_msgs, 1);
    // The deposited tile is still readable exactly once (consumers = 1).
    let _ = stores[1].get(1, DataKey::A(0, 0));
    stores[1].consume(1, DataKey::A(0, 0));
}

/// Runs one 8-message burst under `delivery` and returns the order the
/// receiving progress thread deposited the keys in.
fn delivery_order(delivery: DeliveryPolicy) -> Vec<String> {
    let n = 8;
    let fabric = CommFabric::new(
        2,
        CommConfig {
            window: n,
            delivery,
            clock: Some(TraceClock::start()),
            ..CommConfig::default()
        },
    );
    let stores = [TileStore::for_node(0), TileStore::for_node(1)];
    // Queue the whole burst *before* the progress thread starts, so the
    // reorder draw always sees the full window — delivery order is then a
    // pure function of the seed.
    for i in 0..n {
        fabric.send_tile(1, msg(i as u32, 1, 0), false).unwrap();
    }
    std::thread::scope(|s| {
        fabric.start(s, &stores);
        for i in 0..n {
            fabric.wait_delivered(1, DataKey::A(i as u32, 0));
        }
        fabric.shutdown();
    });
    fabric
        .take_events()
        .into_iter()
        .filter(|e| e.phase == TracePhase::Received)
        .map(|e| format!("{:?}", e.key))
        .collect()
}

/// The seeded reorder stressor is deterministic — same seed, same delivery
/// permutation — and actually permutes (it differs from FIFO).
#[test]
fn seeded_reorder_is_deterministic_and_permutes() {
    let fifo = delivery_order(DeliveryPolicy::InOrder);
    let a = delivery_order(DeliveryPolicy::Reorder { seed: 7, window: 8 });
    let b = delivery_order(DeliveryPolicy::Reorder { seed: 7, window: 8 });
    assert_eq!(a, b, "same seed must reproduce the same delivery order");
    assert_eq!(a.len(), fifo.len());
    let mut sa = a.clone();
    let mut sf = fifo.clone();
    sa.sort();
    sf.sort();
    assert_eq!(sa, sf, "reorder must deliver the same multiset of keys");
    assert_ne!(a, fifo, "seed 7 must actually permute an 8-message burst");
}

/// Duplicate suppression holds at *interior* broadcast-tree hops, not just
/// the owner's first send: a forwarder (node 1 in the 0 → 1 → 2 chain)
/// re-receives a retried frame after it already forwarded the tile, the
/// duplicate is suppressed, and the downstream delivery is unaffected.
#[test]
fn forwarded_hop_redelivery_is_suppressed() {
    let fabric = CommFabric::new(3, CommConfig::default());
    let stores = [TileStore::for_node(0), TileStore::for_node(1), TileStore::for_node(2)];
    std::thread::scope(|s| {
        fabric.start(s, &stores);
        // Hop 1: owner → forwarder. Two consumers on node 1: the local
        // device load and the forwarding hop.
        let mut m = msg(0, 1, 0);
        m.consumers = 2;
        fabric.send_tile(1, m, false).unwrap();
        fabric.wait_delivered(1, DataKey::A(0, 0));
        // Hop 2: the forwarder re-sends its deposited copy downstream.
        let tile = stores[1].get(1, DataKey::A(0, 0));
        fabric
            .send_tile(
                2,
                TileMsg {
                    key: DataKey::A(0, 0),
                    payload: tile,
                    epoch: 1,
                    src: 1,
                    consumers: 1,
                },
                false,
            )
            .unwrap();
        stores[1].consume(1, DataKey::A(0, 0));
        fabric.wait_delivered(2, DataKey::A(0, 0));
        // A spurious retry of hop 1 arrives *after* the forward: node 1
        // already holds (and has partially consumed) the tile — the
        // re-delivery must be suppressed, not double-deposited.
        let mut dup = msg(0, 2, 0);
        dup.consumers = 2;
        fabric.send_tile(1, dup, false).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while fabric.node_stats()[1].duplicate_msgs == 0 {
            assert!(Instant::now() < deadline, "duplicate never processed");
            std::thread::sleep(Duration::from_millis(1));
        }
        fabric.shutdown();
    });
    let stats = fabric.node_stats();
    assert_eq!(stats[1].recv_msgs, 1, "node 1 deposited the tile exactly once");
    assert_eq!(stats[1].duplicate_msgs, 1, "the late retry was suppressed");
    assert_eq!(stats[2].recv_msgs, 1, "the downstream hop delivered normally");
    // Node 1's remaining consumer (the local load) still reads the tile.
    let _ = stores[1].get(1, DataKey::A(0, 0));
    stores[1].consume(1, DataKey::A(0, 0));
    // Node 2's single consumer reads the forwarded copy.
    let _ = stores[2].get(2, DataKey::A(0, 0));
    stores[2].consume(2, DataKey::A(0, 0));
}

/// ReduceC frames ride the same per-class links as tile frames: intra-node
/// partials count against the intra gate and stats, inter-node ones
/// against the NIC, and loopback self-deposits are free. The blocking
/// take returns exactly the expected structural count.
#[test]
fn reduce_frames_classify_per_link() {
    use bst_runtime::comm::CPart;
    let part = |i: usize, origin_node: usize| CPart {
        i,
        j: 0,
        origin: (origin_node, 0, 0),
        tile: Tile::zeros(2, 2),
    };
    let fabric = CommFabric::new(
        4,
        CommConfig {
            node_size: 2, // physical nodes {0,1} and {2,3}
            ..CommConfig::default()
        },
    );
    let stores: Vec<TileStore> = (0..4).map(TileStore::for_node).collect();
    std::thread::scope(|s| {
        fabric.start(s, &stores);
        fabric.reduce(0, 0, part(0, 0)).unwrap(); // loopback: free
        fabric.reduce(1, 0, part(1, 1)).unwrap(); // intra-node
        fabric.reduce(2, 0, part(2, 2)).unwrap(); // inter-node
        let parts = fabric.take_reduced_at_least(0, 3);
        assert_eq!(parts.len(), 3, "all three partials arrive before the take returns");
        fabric.shutdown();
    });
    let stats = fabric.node_stats();
    assert_eq!(stats[1].sent_msgs, 1);
    assert_eq!(stats[1].inter_sent_msgs, 0, "1 → 0 shares a physical node");
    assert_eq!(stats[2].inter_sent_msgs, 1, "2 → 0 crosses the NIC");
    assert_eq!(stats[0].recv_msgs, 2, "the loopback self-deposit is not traffic");
    assert_eq!(stats[0].inter_recv_msgs, 1);
}

//! Transport-layer tests: credit backpressure, duplicate suppression, and
//! seeded delivery reordering on the [`bst_runtime::comm`] fabric.

use bst_runtime::comm::{CommConfig, CommFabric, DeliveryPolicy, LinkShaper, TileMsg};
use bst_runtime::data::DataKey;
use bst_runtime::trace::{TraceClock, TracePhase};
use bst_runtime::TileStore;
use bst_tile::Tile;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn msg(i: u32, epoch: u32, src: usize) -> TileMsg {
    TileMsg {
        key: DataKey::A(i, 0),
        payload: Arc::new(Tile::zeros(4, 4)),
        epoch,
        src,
        consumers: 1,
    }
}

/// The credit gate is the §"flow control" window: however many messages the
/// sender fires, at most `window` are simultaneously in flight toward one
/// node — the bounded inbox can never exceed it.
#[test]
fn backpressure_never_exceeds_credit_window() {
    let window = 4;
    let fabric = CommFabric::new(
        2,
        CommConfig {
            window,
            // Slow deliveries so the in-flight count actually saturates.
            shaper: LinkShaper::nic(1e9, 200e-6),
            ..CommConfig::default()
        },
    );
    let stores = [TileStore::for_node(0), TileStore::for_node(1)];
    std::thread::scope(|s| {
        fabric.start(s, &stores);
        for i in 0..32 {
            fabric.send_tile(1, msg(i, 1, 0), false).unwrap();
        }
        for i in 0..32 {
            fabric.wait_delivered(1, DataKey::A(i, 0));
        }
        fabric.shutdown();
    });
    let stats = fabric.node_stats();
    assert_eq!(stats[0].sent_msgs, 32);
    assert_eq!(stats[1].recv_msgs, 32);
    assert_eq!(stats[1].credit_window, window);
    assert!(
        stats[1].max_in_flight <= window,
        "in-flight high water {} exceeded the credit window {window}",
        stats[1].max_in_flight
    );
    assert!(stats[1].max_in_flight >= 1);
}

/// A retried send re-delivers the same key under a higher epoch; the
/// receiver's delivered-set suppresses the duplicate instead of
/// double-depositing (the store would panic on a duplicate `put`).
#[test]
fn duplicate_delivery_is_idempotent() {
    let fabric = CommFabric::new(2, CommConfig::default());
    let stores = [TileStore::for_node(0), TileStore::for_node(1)];
    std::thread::scope(|s| {
        fabric.start(s, &stores);
        fabric.send_tile(1, msg(0, 1, 0), false).unwrap();
        fabric.wait_delivered(1, DataKey::A(0, 0));
        // The duplicate, as a fault retry would produce it.
        fabric.send_tile(1, msg(0, 2, 0), false).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while fabric.node_stats()[1].duplicate_msgs == 0 {
            assert!(Instant::now() < deadline, "duplicate never processed");
            std::thread::sleep(Duration::from_millis(1));
        }
        fabric.shutdown();
    });
    let stats = fabric.node_stats();
    assert_eq!(stats[0].sent_msgs, 2, "both sends hit the wire");
    assert_eq!(stats[1].recv_msgs, 1, "only the first deposited");
    assert_eq!(stats[1].duplicate_msgs, 1);
    // The deposited tile is still readable exactly once (consumers = 1).
    let _ = stores[1].get(1, DataKey::A(0, 0));
    stores[1].consume(1, DataKey::A(0, 0));
}

/// Runs one 8-message burst under `delivery` and returns the order the
/// receiving progress thread deposited the keys in.
fn delivery_order(delivery: DeliveryPolicy) -> Vec<String> {
    let n = 8;
    let fabric = CommFabric::new(
        2,
        CommConfig {
            window: n,
            delivery,
            clock: Some(TraceClock::start()),
            ..CommConfig::default()
        },
    );
    let stores = [TileStore::for_node(0), TileStore::for_node(1)];
    // Queue the whole burst *before* the progress thread starts, so the
    // reorder draw always sees the full window — delivery order is then a
    // pure function of the seed.
    for i in 0..n {
        fabric.send_tile(1, msg(i as u32, 1, 0), false).unwrap();
    }
    std::thread::scope(|s| {
        fabric.start(s, &stores);
        for i in 0..n {
            fabric.wait_delivered(1, DataKey::A(i as u32, 0));
        }
        fabric.shutdown();
    });
    fabric
        .take_events()
        .into_iter()
        .filter(|e| e.phase == TracePhase::Received)
        .map(|e| format!("{:?}", e.key))
        .collect()
}

/// The seeded reorder stressor is deterministic — same seed, same delivery
/// permutation — and actually permutes (it differs from FIFO).
#[test]
fn seeded_reorder_is_deterministic_and_permutes() {
    let fifo = delivery_order(DeliveryPolicy::InOrder);
    let a = delivery_order(DeliveryPolicy::Reorder { seed: 7, window: 8 });
    let b = delivery_order(DeliveryPolicy::Reorder { seed: 7, window: 8 });
    assert_eq!(a, b, "same seed must reproduce the same delivery order");
    assert_eq!(a.len(), fifo.len());
    let mut sa = a.clone();
    let mut sf = fifo.clone();
    sa.sort();
    sf.sort();
    assert_eq!(sa, sf, "reorder must deliver the same multiset of keys");
    assert_ne!(a, fifo, "seed 7 must actually permute an 8-message burst");
}

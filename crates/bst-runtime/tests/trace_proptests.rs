//! Property tests for the engine's tracing: for *any* DAG shape and worker
//! set, the per-worker event streams must be well formed — monotone
//! timestamps, exactly one Ready/Running/Done per task in that order,
//! dependency spans never overlapping, and counts matching the DAG size.

use bst_runtime::engine::{infallible, Engine};
use bst_runtime::graph::{TaskGraph, WorkerId};
use bst_runtime::trace::{ExecTrace, TracePhase};
use proptest::prelude::*;

fn w(node: usize, lane: usize) -> WorkerId {
    WorkerId { node, lane }
}

fn exec_traced(g: &TaskGraph<usize>, workers: &[WorkerId]) -> ExecTrace {
    match Engine::new().tracing().run(g, workers, |_| (), infallible(|_: &usize, _, _: &mut ()| {}))
    {
        Ok(r) => r.trace.expect("tracing was requested"),
        Err(abort) => match abort.error {},
    }
}

/// Builds a random DAG: `n` tasks pinned round-robin over the workers,
/// edges derived from raw pairs by ordering them (dep < task), which keeps
/// the graph acyclic by construction.
fn build_dag(
    n: usize,
    raw_edges: &[(usize, usize)],
    nodes: usize,
    lanes: usize,
) -> (TaskGraph<usize>, Vec<WorkerId>) {
    let workers: Vec<WorkerId> = (0..nodes)
        .flat_map(|nd| (0..lanes).map(move |l| w(nd, l)))
        .collect();
    let mut g: TaskGraph<usize> = TaskGraph::new();
    let ids: Vec<_> = (0..n)
        .map(|i| g.add_task(i, workers[i % workers.len()]))
        .collect();
    for &(a, b) in raw_edges {
        let (x, y) = (a % n, b % n);
        if x != y {
            g.add_dep(ids[x.max(y)], ids[x.min(y)]);
        }
    }
    (g, workers)
}

proptest! {
    /// The built-in validator accepts every trace the engine produces, and
    /// the event count is exactly 3 per task (Ready, Running, Done).
    #[test]
    fn random_dags_produce_valid_traces(
        n in 1usize..40,
        raw_edges in prop::collection::vec((0usize..1000, 0usize..1000), 0..80),
        nodes in 1usize..4,
        lanes in 1usize..4,
    ) {
        let (g, workers) = build_dag(n, &raw_edges, nodes, lanes);
        let trace = exec_traced(&g, &workers);
        let errors = trace.validate(&g);
        prop_assert!(errors.is_empty(), "{errors:?}");
        prop_assert_eq!(trace.event_count(), 3 * n);
    }

    /// Re-checked by hand (not via `validate`): per-worker monotonicity,
    /// per-task phase counts, and life-cycle ordering of every span.
    #[test]
    fn event_streams_are_well_formed(
        n in 1usize..30,
        raw_edges in prop::collection::vec((0usize..1000, 0usize..1000), 0..60),
        lanes in 1usize..5,
    ) {
        let (g, workers) = build_dag(n, &raw_edges, 1, lanes);
        let trace = exec_traced(&g, &workers);

        for wt in &trace.workers {
            for pair in wt.events.windows(2) {
                prop_assert!(pair[0].t_ns <= pair[1].t_ns,
                    "non-monotone stream on {:?}", wt.worker);
            }
        }

        let mut counts = vec![[0usize; 3]; n];
        for (_, e) in trace.iter_events() {
            counts[e.task][e.phase as usize] += 1;
        }
        for (task, c) in counts.iter().enumerate() {
            prop_assert_eq!(c, &[1, 1, 1], "task {} phases {:?}", task, c);
        }

        let spans = trace.task_spans();
        prop_assert_eq!(spans.len(), n);
        for span in spans.values() {
            prop_assert!(span.ready_ns <= span.start_ns);
            prop_assert!(span.start_ns <= span.end_ns);
        }
        let _ = TracePhase::Ready; // phases exhaustively covered above
    }

    /// A task never starts before each of its dependencies finished, no
    /// matter how the scheduler interleaved the workers.
    #[test]
    fn dependency_spans_never_overlap(
        n in 2usize..30,
        raw_edges in prop::collection::vec((0usize..1000, 0usize..1000), 1..60),
        nodes in 1usize..3,
        lanes in 1usize..4,
    ) {
        let (g, workers) = build_dag(n, &raw_edges, nodes, lanes);
        let trace = exec_traced(&g, &workers);
        let spans = trace.task_spans();
        for task in 0..g.len() {
            for &dep in g.deps(task) {
                prop_assert!(
                    spans[&dep].end_ns <= spans[&task].start_ns,
                    "task {task} started before dep {dep} finished"
                );
            }
        }
    }
}

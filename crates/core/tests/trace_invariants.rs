//! Integration tests for the executor's trace invariants (§3.2/§4): run
//! real traced numeric executions and check the *schedule* — not just the
//! numbers — obeys the device discipline the planner promised.
//!
//! The checks are asserted twice: once directly against the task records
//! (independent re-derivation), once via the shared
//! [`bst_contract::validate_trace_invariants`] helper the repro binaries
//! gate on.

use bst_contract::exec::execute_numeric_with;
use bst_contract::{
    validate_trace_invariants, DeviceConfig, ExecOptions, ExecReport, ExecutionPlan, GridConfig,
    PlannerConfig, ProblemSpec,
};
use bst_runtime::graph::WorkerId;
use bst_runtime::TaskRecord;
use bst_sparse::generate::{generate, SyntheticParams};
use bst_sparse::matrix::tile_seed;
use bst_sparse::BlockSparseMatrix;
use std::collections::HashMap;

/// A problem + memory budget tight enough to force several blocks and
/// chunks per GPU, so every control-edge family is actually exercised.
fn tight_spec() -> ProblemSpec {
    let prob = generate(&SyntheticParams {
        m: 120,
        n: 960,
        k: 960,
        density: 0.6,
        tile_min: 8,
        tile_max: 20,
        seed: 11,
    });
    ProblemSpec::new(prob.a, prob.b, None)
}

const GPU_MEM: u64 = 1 << 20;

fn traced_run(spec: &ProblemSpec, opts: ExecOptions) -> ExecReport {
    traced_run_full(spec, opts).1
}

fn traced_run_full(spec: &ProblemSpec, opts: ExecOptions) -> (BlockSparseMatrix, ExecReport) {
    let config = PlannerConfig::paper(
        GridConfig::from_nodes(2, 1),
        DeviceConfig {
            gpus_per_node: 2,
            gpu_mem_bytes: GPU_MEM,
        },
    );
    let plan = ExecutionPlan::build(spec, config).unwrap();
    let a = BlockSparseMatrix::random_from_structure(spec.a.clone(), 11);
    // When several GenB workers are configured, rendezvous the first four
    // generator calls so spans provably overlap even on a single-core
    // machine where short tasks are never preempted mid-span. Four in
    // flight across two nodes pigeonholes at least two onto one node —
    // which is what `max_concurrent_genb` (a per-node peak) measures.
    // (Values are seed-determined, so the stall changes timing only.)
    let entered = std::sync::atomic::AtomicUsize::new(0);
    let rendezvous = opts.genb_workers > 1;
    let b_gen = |k: usize, j: usize, r: usize, c: usize, pool: &bst_tile::TilePool| {
        use std::sync::atomic::Ordering;
        let t = pool.random(r, c, tile_seed(11 ^ 0xB, k, j));
        if rendezvous {
            entered.fetch_add(1, Ordering::SeqCst);
            let deadline = std::time::Instant::now() + std::time::Duration::from_millis(500);
            while entered.load(Ordering::SeqCst) < 4 && std::time::Instant::now() < deadline {
                std::thread::yield_now();
            }
        }
        Ok(std::sync::Arc::new(t))
    };
    let (c, report) = execute_numeric_with(
        spec,
        &plan,
        &a,
        &b_gen,
        ExecOptions {
            tracing: true,
            ..opts
        },
    )
    .expect("traced run");
    (c, report)
}

fn by_lane(report: &ExecReport) -> HashMap<WorkerId, Vec<&TaskRecord>> {
    let mut map: HashMap<WorkerId, Vec<&TaskRecord>> = HashMap::new();
    for r in &report.trace.as_ref().unwrap().records {
        map.entry(r.worker).or_default().push(r);
    }
    map
}

/// "Gemm(i,k,j)" → (i, k); "LoadA(i,k)" → (i, k); "LoadBlock(b)" → b; ...
fn nums(detail: &str) -> Vec<u64> {
    detail
        .split_once('(')
        .and_then(|(_, rest)| rest.strip_suffix(')'))
        .unwrap_or("")
        .split([',', '-', '>'])
        .filter_map(|s| s.parse().ok())
        .collect()
}

/// No Gemm before its operands were staged: a `LoadA(i,k)` *and* some
/// `LoadBlock` must have finished on the same GPU lane first.
#[test]
fn gemm_never_starts_before_its_loads() {
    let spec = tight_spec();
    let report = traced_run(&spec, ExecOptions::default());
    let mut gemms_checked = 0usize;
    for (lane, records) in by_lane(&report) {
        if lane.lane == 0 {
            continue;
        }
        for gemm in records.iter().filter(|r| r.kind == "Gemm") {
            let g = nums(&gemm.detail);
            assert!(
                records.iter().any(|r| r.kind == "LoadA"
                    && nums(&r.detail) == [g[0], g[1]]
                    && r.span.end_ns <= gemm.span.start_ns),
                "{} ran before LoadA({},{}) finished on {lane:?}",
                gemm.detail,
                g[0],
                g[1]
            );
            assert!(
                records
                    .iter()
                    .any(|r| r.kind == "LoadBlock" && r.span.end_ns <= gemm.span.start_ns),
                "{} ran before any LoadBlock finished on {lane:?}",
                gemm.detail
            );
            gemms_checked += 1;
        }
    }
    assert!(gemms_checked > 100, "only {gemms_checked} Gemms traced");
    assert_eq!(
        validate_trace_invariants(&report, ExecOptions::default(), GPU_MEM),
        Vec::<String>::new()
    );
}

/// §3.2.2 blocking block transfers: with `block_serialization` on, block
/// b+1's `LoadBlock` never starts before block b's `FlushBlock` finished
/// on the same lane.
#[test]
fn block_serialization_orders_flush_before_next_load() {
    let spec = tight_spec();
    let opts = ExecOptions {
        block_serialization: true,
        prefetch_window: true,
        ..ExecOptions::default()
    };
    let report = traced_run(&spec, opts);
    let mut lanes_with_multiple_blocks = 0usize;
    for (lane, records) in by_lane(&report) {
        if lane.lane == 0 {
            continue;
        }
        let flush_end: HashMap<u64, u64> = records
            .iter()
            .filter(|r| r.kind == "FlushBlock")
            .map(|r| (nums(&r.detail)[0], r.span.end_ns))
            .collect();
        let loads: Vec<_> = records.iter().filter(|r| r.kind == "LoadBlock").collect();
        if loads.len() > 1 {
            lanes_with_multiple_blocks += 1;
        }
        for load in loads {
            let b = nums(&load.detail)[0];
            if b > 0 {
                let end = flush_end[&(b - 1)];
                assert!(
                    load.span.start_ns >= end,
                    "LoadBlock({b}) on {lane:?} started {} ns before FlushBlock({}) ended",
                    end - load.span.start_ns,
                    b - 1
                );
            }
        }
    }
    assert!(
        lanes_with_multiple_blocks > 0,
        "problem too small: no lane ran multiple blocks"
    );
    assert_eq!(validate_trace_invariants(&report, opts, GPU_MEM), Vec::<String>::new());
}

/// Device memory discipline: every simulated GPU's high-water mark stays
/// within the configured budget, and the occupancy samples agree with the
/// reported peak.
#[test]
fn device_high_water_stays_within_budget() {
    let spec = tight_spec();
    let report = traced_run(&spec, ExecOptions::default());
    assert!(!report.devices.is_empty());
    for ((node, gpu), stats) in &report.devices {
        assert!(
            stats.peak_bytes <= GPU_MEM,
            "n{node}.g{gpu} peaked at {} > {GPU_MEM}",
            stats.peak_bytes
        );
        assert!(stats.peak_bytes > 0);
    }
    let trace = report.trace.as_ref().unwrap();
    assert_eq!(trace.mem_samples.len(), report.devices.len());
    for ((node, gpu), samples) in &trace.mem_samples {
        let sampled_peak = samples.iter().map(|&(_, b)| b).max().unwrap_or(0);
        let reported = report
            .devices
            .iter()
            .find(|(d, _)| d == &(*node, *gpu))
            .map(|(_, s)| s.peak_bytes)
            .unwrap();
        assert!(
            sampled_peak <= reported,
            "n{node}.g{gpu}: sampled {sampled_peak} > reported peak {reported}"
        );
        for pair in samples.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "samples out of order");
        }
    }
}

/// Parallel B generation must not bend the schedule: with several GenB
/// workers per node the trace still satisfies every invariant, GenB spans
/// actually overlap (the fan-out is real, not serialized through one lane),
/// and the result matches the fully-serialized executor bit for bit.
#[test]
fn parallel_genb_keeps_invariants_and_overlaps() {
    let spec = tight_spec();
    let opts = ExecOptions {
        genb_workers: 3,
        ..ExecOptions::default()
    };
    let (c, report) = traced_run_full(&spec, opts);
    assert_eq!(validate_trace_invariants(&report, opts, GPU_MEM), Vec::<String>::new());

    // GenB work is spread over the dedicated lanes (lane > gpus_per_node)...
    let genb_lanes: std::collections::HashSet<WorkerId> = report
        .trace
        .as_ref()
        .unwrap()
        .records
        .iter()
        .filter(|r| r.kind == "GenB")
        .map(|r| r.worker)
        .collect();
    assert!(
        genb_lanes.len() > 2,
        "GenB confined to {genb_lanes:?} — fan-out not happening"
    );
    for lane in &genb_lanes {
        assert!(lane.lane > 2, "GenB ran on a GPU/CPU lane: {lane:?}");
    }
    // ...and some of it genuinely ran concurrently.
    assert!(
        report.max_concurrent_genb() > 1,
        "GenB spans never overlap despite 3 workers"
    );

    // Numbers agree with the serialized legacy path (GenB completion order
    // can reshuffle the per-tile Gemm accumulation order, so agreement is
    // up to floating-point associativity, not bitwise).
    let serial = ExecOptions {
        genb_workers: 0,
        ..ExecOptions::default()
    };
    let (c_serial, report_serial) = traced_run_full(&spec, serial);
    assert_eq!(report_serial.max_concurrent_genb(), 1);
    assert!(c.max_abs_diff(&c_serial) < 1e-10);
}

/// The helper itself must *detect* violations, not just bless everything:
/// corrupt a record's span and expect a complaint.
#[test]
fn validator_flags_corrupted_schedules() {
    let spec = tight_spec();
    let mut report = traced_run(&spec, ExecOptions::default());
    assert!(validate_trace_invariants(&report, ExecOptions::default(), GPU_MEM).is_empty());

    // Shrink the budget below the real peak: every device must be flagged.
    let violations = validate_trace_invariants(&report, ExecOptions::default(), 1);
    assert_eq!(violations.len(), report.devices.len());
    assert!(violations[0].contains("budget"), "{violations:?}");

    // Pull a Gemm's start before its loads: ordering violations appear.
    let trace = report.trace.as_mut().unwrap();
    let idx = trace
        .records
        .iter()
        .position(|r| r.kind == "Gemm" && r.worker.lane > 0)
        .unwrap();
    trace.records[idx].span.start_ns = 0;
    trace.records[idx].span.ready_ns = 0;
    let violations = validate_trace_invariants(&report, ExecOptions::default(), GPU_MEM);
    assert!(
        violations.iter().any(|v| v.contains("before any Load")),
        "{violations:?}"
    );
}

//! End-to-end numeric-execution tests, exercised purely through the public
//! facade (`bst_contract::exec`). Formerly the unit-test module of the
//! `exec.rs` monolith; after the engine split they live here so they keep
//! gating the *public* surface, not the engine internals.

use std::sync::Arc;

use bst_contract::exec::{execute_numeric, execute_numeric_with};
use bst_contract::{
    DeviceConfig, ExecError, ExecOptions, ExecutionPlan, FaultPlan, GenError, GridConfig,
    KernelSelect, PlannerConfig, ProblemSpec, RetryPolicy,
};
use bst_sparse::generate::{generate, SyntheticParams};
use bst_sparse::matrix::tile_seed;
use bst_sparse::{BlockSparseMatrix, MatrixStructure};
use bst_tile::pool::TilePool;
use bst_tile::Tiling;

fn cfg(p: usize, q: usize, g: usize, mem: u64) -> PlannerConfig {
    PlannerConfig::paper(
        GridConfig { p, q },
        DeviceConfig {
            gpus_per_node: g,
            gpu_mem_bytes: mem,
        },
    )
}

/// Runs the full pipeline and compares against the single-threaded
/// block-sparse reference.
fn check(spec: &ProblemSpec, config: PlannerConfig, seed: u64) {
    let plan = ExecutionPlan::build(spec, config).unwrap();
    let a = BlockSparseMatrix::random_from_structure(spec.a.clone(), seed);
    let b = BlockSparseMatrix::random_from_structure(spec.b.clone(), seed ^ 0xB);
    let b_gen = |k: usize, j: usize, rows: usize, cols: usize, pool: &TilePool| {
        let t = pool.random(rows, cols, tile_seed(seed ^ 0xB, k, j));
        assert_eq!(b.tile(k, j).unwrap(), &t, "b_gen consistent with matrix");
        Ok(Arc::new(t))
    };
    let (c, report) = execute_numeric(spec, &plan, &a, &b_gen).expect("fault-free run");

    let mut c_ref =
        BlockSparseMatrix::zeros(spec.a.row_tiling().clone(), spec.b.col_tiling().clone());
    c_ref.gemm_acc_reference(&a, &b);
    let c_ref = if let Some(cs) = &spec.c_shape {
        let mut masked =
            BlockSparseMatrix::zeros(spec.a.row_tiling().clone(), spec.b.col_tiling().clone());
        for (&(i, j), t) in c_ref.iter_tiles() {
            if cs.is_nonzero(i, j) {
                masked.insert_tile(i, j, t.clone());
            }
        }
        masked
    } else {
        c_ref
    };
    assert!(
        c.max_abs_diff(&c_ref) < 1e-9,
        "distributed result disagrees with reference"
    );
    assert!(report.gemm_tasks > 0);
}

#[test]
fn dense_single_node_single_gpu() {
    let a = MatrixStructure::dense(Tiling::uniform(8, 3), Tiling::uniform(10, 4));
    let b = MatrixStructure::dense(Tiling::uniform(10, 4), Tiling::uniform(12, 5));
    let spec = ProblemSpec::new(a, b, None);
    check(&spec, cfg(1, 1, 1, 1 << 20), 1);
}

#[test]
fn dense_grid_2x2_2gpus() {
    let a = MatrixStructure::dense(Tiling::uniform(12, 3), Tiling::uniform(16, 4));
    let b = MatrixStructure::dense(Tiling::uniform(16, 4), Tiling::uniform(20, 5));
    let spec = ProblemSpec::new(a, b, None);
    check(&spec, cfg(2, 2, 2, 1 << 20), 2);
}

#[test]
fn sparse_irregular_many_nodes() {
    let prob = generate(&SyntheticParams {
        m: 40,
        n: 120,
        k: 100,
        density: 0.5,
        tile_min: 5,
        tile_max: 17,
        seed: 7,
    });
    let spec = ProblemSpec::new(prob.a, prob.b, None);
    check(&spec, cfg(2, 3, 2, 1 << 20), 3);
}

#[test]
fn screened_c_shape() {
    let prob = generate(&SyntheticParams {
        m: 30,
        n: 80,
        k: 60,
        density: 0.6,
        tile_min: 4,
        tile_max: 12,
        seed: 9,
    });
    let mut cs = prob.c.shape().clone();
    let mut removed = 0;
    'outer: for i in 0..cs.rows() {
        for j in 0..cs.cols() {
            if cs.is_nonzero(i, j) && (i + j) % 3 == 0 {
                cs.zero_out(i, j);
                removed += 1;
                if removed >= 5 {
                    break 'outer;
                }
            }
        }
    }
    let spec = ProblemSpec::new(prob.a, prob.b, Some(cs));
    check(&spec, cfg(1, 2, 2, 1 << 20), 11);
}

#[test]
fn tight_memory_forces_many_blocks_and_chunks() {
    let a = MatrixStructure::dense(Tiling::uniform(16, 4), Tiling::uniform(24, 4));
    let b = MatrixStructure::dense(Tiling::uniform(24, 4), Tiling::uniform(24, 4));
    let spec = ProblemSpec::new(a, b, None);
    // One B column: 24x4 doubles = 768 B; C col: 16x4 = 512 B; total
    // 1280 ≤ block budget → mem ≥ 2560. Chunk budget 650 = 5 A tiles.
    let config = cfg(1, 1, 1, 2600);
    let plan = ExecutionPlan::build(&spec, config).unwrap();
    let stats = plan.stats(&spec);
    assert!(stats.num_blocks >= 6, "expected many blocks, got {}", stats.num_blocks);
    assert!(stats.num_chunks > stats.num_blocks);
    // A must be re-transferred for every block.
    assert!(stats.a_h2d_bytes > spec.a.bytes());
    check(&spec, config, 5);
}

#[test]
fn p2_matches_p1() {
    let prob = generate(&SyntheticParams {
        m: 24,
        n: 60,
        k: 60,
        density: 0.7,
        tile_min: 4,
        tile_max: 10,
        seed: 13,
    });
    let spec = ProblemSpec::new(prob.a, prob.b, None);
    check(&spec, cfg(1, 4, 1, 1 << 20), 17);
    check(&spec, cfg(2, 2, 1, 1 << 20), 17);
    check(&spec, cfg(4, 1, 1, 1 << 20), 17);
}

/// Both control-edge families off, devices sized exactly for the
/// disciplined schedule: the scheduler races ahead and the memory
/// manager faults — the §4 justification for the control DAG. The OOM
/// surfaces as a typed [`ExecError::DeviceOom`] instead of a panic.
#[test]
fn removing_control_edges_causes_device_oom() {
    let a = MatrixStructure::dense(Tiling::uniform(16, 4), Tiling::uniform(24, 4));
    let b = MatrixStructure::dense(Tiling::uniform(24, 4), Tiling::uniform(24, 4));
    let spec = ProblemSpec::new(a, b, None);
    let config = cfg(1, 1, 1, 2600);
    let plan = ExecutionPlan::build(&spec, config).unwrap();
    let am = BlockSparseMatrix::random_from_structure(spec.a.clone(), 5);
    let b_gen = |k: usize, j: usize, r: usize, c: usize, pool: &TilePool| {
        Ok(Arc::new(pool.random(r, c, tile_seed(5 ^ 0xB, k, j))))
    };
    // Sanity: with the control edges the very same plan runs fine
    // (checked by `tight_memory_forces_many_blocks_and_chunks`).
    let err = execute_numeric_with(
        &spec,
        &plan,
        &am,
        &b_gen,
        ExecOptions::builder()
            .prefetch_window(false)
            .block_serialization(false)
            .build(),
    )
    .unwrap_err();
    assert!(
        matches!(err, ExecError::DeviceOom { node: 0, gpu: 0, .. }),
        "expected a typed device OOM, got {err}"
    );
}

#[test]
fn tracing_populates_metrics_and_trace() {
    let a = MatrixStructure::dense(Tiling::uniform(8, 2), Tiling::uniform(8, 2));
    let b = MatrixStructure::dense(Tiling::uniform(8, 2), Tiling::uniform(8, 2));
    let spec = ProblemSpec::new(a, b, None);
    let config = cfg(1, 2, 1, 1 << 20);
    let plan = ExecutionPlan::build(&spec, config).unwrap();
    let am = BlockSparseMatrix::random_from_structure(spec.a.clone(), 1);
    let b_gen = |_k: usize, _j: usize, r: usize, c: usize, pool: &TilePool| {
        Ok(Arc::new(pool.random(r, c, 0)))
    };
    let (_c, report) = execute_numeric_with(
        &spec,
        &plan,
        &am,
        &b_gen,
        ExecOptions::builder().tracing(true).build(),
    )
    .unwrap();
    let trace = report.trace.as_ref().expect("trace requested");
    assert!(trace.total_ns > 0);
    // Every op kind that this dense 1x2 problem exercises shows up.
    let gemm = report.metrics.iter().find(|m| m.kind == "Gemm").unwrap();
    assert_eq!(gemm.count, report.gemm_tasks);
    let genb = report.metrics.iter().find(|m| m.kind == "GenB").unwrap();
    assert_eq!(genb.count, report.b_tiles_generated);
    // One record per task, each with a coherent span.
    assert_eq!(
        report.metrics.iter().map(|m| m.count).sum::<u64>(),
        trace.records.len() as u64
    );
    for r in &trace.records {
        assert!(r.span.ready_ns <= r.span.start_ns && r.span.start_ns <= r.span.end_ns);
    }
    // Device occupancy was sampled on every device and drains to zero.
    assert_eq!(trace.mem_samples.len(), report.devices.len());
    for ((_, _), samples) in &trace.mem_samples {
        assert!(!samples.is_empty());
        assert_eq!(samples.last().unwrap().1, 0, "all memory released");
    }
    // The exporters produce non-trivial output.
    let json = trace.chrome_trace_json();
    assert!(json.contains("\"ph\":\"X\"") && json.contains("\"ph\":\"C\""));
    let summary = report.text_summary(1 << 20);
    assert!(summary.contains("Gemm") && summary.contains("n0.g0"), "{summary}");
}

#[test]
fn untraced_report_has_no_trace() {
    let a = MatrixStructure::dense(Tiling::uniform(4, 2), Tiling::uniform(4, 2));
    let b = MatrixStructure::dense(Tiling::uniform(4, 2), Tiling::uniform(4, 2));
    let spec = ProblemSpec::new(a, b, None);
    let plan = ExecutionPlan::build(&spec, cfg(1, 1, 1, 1 << 20)).unwrap();
    let am = BlockSparseMatrix::random_from_structure(spec.a.clone(), 1);
    let b_gen = |_k: usize, _j: usize, r: usize, c: usize, pool: &TilePool| {
        Ok(Arc::new(pool.random(r, c, 0)))
    };
    let (_c, report) = execute_numeric(&spec, &plan, &am, &b_gen).unwrap();
    assert!(report.trace.is_none());
    assert!(report.metrics.is_empty());
    assert!(!report.recovery.any(), "zero-fault run reported recovery");
}

#[test]
fn broadcast_tree_forwards_through_non_owners() {
    // A wide grid row (q = 4): every dense A tile is needed on three
    // remote nodes, so the binomial tree must route at least one hop
    // through a non-owner — and the result must stay exact.
    let a = MatrixStructure::dense(Tiling::uniform(8, 2), Tiling::uniform(8, 2));
    let b = MatrixStructure::dense(Tiling::uniform(8, 2), Tiling::uniform(16, 2));
    let spec = ProblemSpec::new(a, b, None);
    let config = cfg(1, 4, 1, 1 << 20);
    let plan = ExecutionPlan::build(&spec, config).unwrap();
    let am = BlockSparseMatrix::random_from_structure(spec.a.clone(), 1);
    let b_gen = |k: usize, j: usize, r: usize, c: usize, pool: &TilePool| {
        Ok(Arc::new(pool.random(r, c, tile_seed(2, k, j))))
    };
    let (c, report) = execute_numeric(&spec, &plan, &am, &b_gen).unwrap();
    assert!(
        report.a_forward_messages > 0,
        "expected tree forwarding ({} messages total)",
        report.a_messages
    );
    // Total messages = tree edges = number of (node, tile) deliveries.
    assert_eq!(
        report.a_messages,
        plan.stats(&spec).a_network_bytes / (2 * 2 * 8)
    );
    let bm = BlockSparseMatrix::from_structure(spec.b.clone(), |k, j, r, cc| {
        bst_tile::Tile::random(r, cc, tile_seed(2, k, j))
    });
    let mut c_ref =
        BlockSparseMatrix::zeros(spec.a.row_tiling().clone(), spec.b.col_tiling().clone());
    c_ref.gemm_acc_reference(&am, &bm);
    assert!(c.max_abs_diff(&c_ref) < 1e-9);
}

#[test]
fn report_counts_network_and_gemms() {
    let a = MatrixStructure::dense(Tiling::uniform(8, 2), Tiling::uniform(8, 2));
    let b = MatrixStructure::dense(Tiling::uniform(8, 2), Tiling::uniform(8, 2));
    let spec = ProblemSpec::new(a, b, None);
    let config = cfg(1, 2, 1, 1 << 20);
    let plan = ExecutionPlan::build(&spec, config).unwrap();
    let am = BlockSparseMatrix::random_from_structure(spec.a.clone(), 1);
    let b_gen = |_k: usize, _j: usize, r: usize, c: usize, pool: &TilePool| {
        Ok(Arc::new(pool.random(r, c, 0)))
    };
    let (_c, report) = execute_numeric(&spec, &plan, &am, &b_gen).unwrap();
    assert_eq!(report.gemm_tasks, 4 * 4 * 4);
    let expect_net = plan.stats(&spec).a_network_bytes;
    assert_eq!(report.a_network_bytes, expect_net);
    assert_eq!(report.b_tiles_generated, 16);
    assert_eq!(report.devices.len(), 2);
}

/// All three kernel-selection modes produce the same numbers (within
/// fp associativity), the report names the variants that ran, and the
/// per-node tile pools actually recycle buffers on a multi-block run.
#[test]
fn kernel_modes_agree_and_pools_recycle() {
    let a = MatrixStructure::dense(Tiling::uniform(16, 4), Tiling::uniform(24, 4));
    let b = MatrixStructure::dense(Tiling::uniform(24, 4), Tiling::uniform(24, 4));
    let spec = ProblemSpec::new(a, b, None);
    let config = cfg(1, 1, 1, 2600); // tight: many blocks → pool reuse
    let plan = ExecutionPlan::build(&spec, config).unwrap();
    let am = BlockSparseMatrix::random_from_structure(spec.a.clone(), 5);
    let b_gen = |k: usize, j: usize, r: usize, c: usize, pool: &TilePool| {
        Ok(Arc::new(pool.random(r, c, tile_seed(5 ^ 0xB, k, j))))
    };

    let run = |kernel: KernelSelect| {
        execute_numeric_with(
            &spec,
            &plan,
            &am,
            &b_gen,
            ExecOptions::builder().kernel(kernel).build(),
        )
        .unwrap()
    };
    let (c_base, r_base) = run(KernelSelect::Baseline);
    let (c_heur, r_heur) = run(KernelSelect::Heuristic);
    let (c_auto, _r_auto) = run(KernelSelect::Autotune);
    assert!(c_base.max_abs_diff(&c_heur) < 1e-10);
    assert!(c_base.max_abs_diff(&c_auto) < 1e-10);

    // Baseline pins every Gemm to the blocked kernel; the dispatcher
    // reports whatever it actually chose, totalling all Gemm tasks.
    assert_eq!(r_base.gemm_kernel_counts, vec![("blocked", r_base.gemm_tasks)]);
    let dispatched: u64 = r_heur.gemm_kernel_counts.iter().map(|&(_, n)| n).sum();
    assert_eq!(dispatched, r_heur.gemm_tasks);
    assert!(!r_heur.gemm_kernel_counts.is_empty());

    // The single node's pool saw reuse: later blocks' C zero-fills and
    // generated B tiles come from recycled buffers.
    assert_eq!(r_heur.pool_stats.len(), 1);
    let ps = &r_heur.pool_stats[0];
    assert!(ps.hits > 0, "no pool reuse on a multi-block run: {ps:?}");
    assert!(ps.released > 0, "flushed B buffers never returned: {ps:?}");
}

/// `ExecReport::max_concurrent_genb` measures real overlap from the trace:
/// the fan-out executor reaches > 1, the serialized one stays at 1.
#[test]
fn genb_fanout_overlaps_and_legacy_serializes() {
    let a = MatrixStructure::dense(Tiling::uniform(12, 3), Tiling::uniform(36, 3));
    let b = MatrixStructure::dense(Tiling::uniform(36, 3), Tiling::uniform(36, 3));
    let spec = ProblemSpec::new(a, b, None);
    let plan = ExecutionPlan::build(&spec, cfg(1, 1, 1, 1 << 20)).unwrap();
    let am = BlockSparseMatrix::random_from_structure(spec.a.clone(), 3);
    // On a loaded (or single-core) machine two short GenB spans may never
    // be preempted mid-task, so force a rendezvous: the first generator
    // call spins until a second call is in flight. With real fan-out the
    // second worker arrives and both spans overlap; on the serialized
    // path the spin times out alone and no spans ever overlap.
    let entered = std::sync::atomic::AtomicUsize::new(0);
    let b_gen = |k: usize, j: usize, r: usize, c: usize, pool: &TilePool| {
        use std::sync::atomic::Ordering;
        let t = pool.random(r, c, tile_seed(3 ^ 0xB, k, j));
        entered.fetch_add(1, Ordering::SeqCst);
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(500);
        while entered.load(Ordering::SeqCst) < 2 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        Ok(Arc::new(t))
    };
    let run = |genb_workers: usize| {
        execute_numeric_with(
            &spec,
            &plan,
            &am,
            &b_gen,
            ExecOptions::builder()
                .tracing(true)
                .genb_workers(genb_workers)
                .build(),
        )
        .unwrap()
        .1
    };
    assert!(run(4).max_concurrent_genb() > 1, "4 GenB workers never overlapped");
    assert_eq!(run(0).max_concurrent_genb(), 1, "legacy path must serialize");
}

/// A permanent generator failure aborts the run with the typed error;
/// a transient one is retried to success and counted in the report.
#[test]
fn generator_failures_abort_or_recover_by_transience() {
    let a = MatrixStructure::dense(Tiling::uniform(8, 2), Tiling::uniform(8, 2));
    let b = MatrixStructure::dense(Tiling::uniform(8, 2), Tiling::uniform(8, 2));
    let spec = ProblemSpec::new(a, b, None);
    let plan = ExecutionPlan::build(&spec, cfg(1, 1, 1, 1 << 20)).unwrap();
    let am = BlockSparseMatrix::random_from_structure(spec.a.clone(), 1);

    let permanent = |k: usize, j: usize, r: usize, c: usize, pool: &TilePool| {
        if (k, j) == (1, 2) {
            Err(GenError::Failed {
                k,
                j,
                reason: "backend gone".into(),
                transient: false,
            })
        } else {
            Ok(Arc::new(pool.random(r, c, 0)))
        }
    };
    let err = execute_numeric(&spec, &plan, &am, &permanent).unwrap_err();
    assert_eq!(
        err,
        ExecError::Gen(GenError::Failed {
            k: 1,
            j: 2,
            reason: "backend gone".into(),
            transient: false,
        })
    );

    // Transient: every tile's first generation attempt fails.
    let tried = std::sync::Mutex::new(std::collections::HashSet::new());
    let flaky = |k: usize, j: usize, r: usize, c: usize, pool: &TilePool| {
        if tried.lock().unwrap().insert((k, j)) {
            Err(GenError::Failed {
                k,
                j,
                reason: "timeout".into(),
                transient: true,
            })
        } else {
            Ok(Arc::new(pool.random(r, c, tile_seed(7, k, j))))
        }
    };
    let (c, report) = execute_numeric(&spec, &plan, &am, &flaky).unwrap();
    assert_eq!(report.recovery.retried_tasks, report.b_tiles_generated);
    assert_eq!(report.recovery.max_attempts, 2);
    let bm = BlockSparseMatrix::from_structure(spec.b.clone(), |k, j, r, cc| {
        bst_tile::Tile::random(r, cc, tile_seed(7, k, j))
    });
    let mut c_ref =
        BlockSparseMatrix::zeros(spec.a.row_tiling().clone(), spec.b.col_tiling().clone());
    c_ref.gemm_acc_reference(&am, &bm);
    assert!(c.max_abs_diff(&c_ref) < 1e-9, "recovered result wrong");
}

/// A budget too small for the generator's failure streak surfaces as
/// `RetryExhausted` carrying the last cause.
#[test]
fn retry_budget_exhaustion_reports_exhausted() {
    let a = MatrixStructure::dense(Tiling::uniform(4, 2), Tiling::uniform(4, 2));
    let b = MatrixStructure::dense(Tiling::uniform(4, 2), Tiling::uniform(4, 2));
    let spec = ProblemSpec::new(a, b, None);
    let plan = ExecutionPlan::build(&spec, cfg(1, 1, 1, 1 << 20)).unwrap();
    let am = BlockSparseMatrix::random_from_structure(spec.a.clone(), 1);
    let always_fail = |k: usize, j: usize, _r: usize, _c: usize, _p: &TilePool| {
        Err(GenError::Failed {
            k,
            j,
            reason: "hard down".into(),
            transient: true,
        })
    };
    let err = execute_numeric_with(
        &spec,
        &plan,
        &am,
        &always_fail,
        ExecOptions::builder()
            .retry(RetryPolicy { budget: 2, backoff_base_us: 0, backoff_max_us: 0 })
            .build(),
    )
    .unwrap_err();
    match err {
        ExecError::RetryExhausted { detail, attempts, cause } => {
            assert!(detail.starts_with("GenB("), "{detail}");
            assert_eq!(attempts, 2);
            assert!(cause.contains("hard down"), "{cause}");
        }
        other => panic!("expected RetryExhausted, got {other}"),
    }
}

/// The fluent builder produces the same options as `Default` when
/// untouched and sets every knob it exposes. (The policy-combination
/// matrix lives in `tests/policy_matrix.rs`.)
#[test]
fn builder_matches_default_and_sets_knobs() {
    let d = ExecOptions::default();
    let b = ExecOptions::builder().build();
    assert_eq!(
        (b.prefetch_window, b.block_serialization, b.tracing, b.genb_workers),
        (d.prefetch_window, d.block_serialization, d.tracing, d.genb_workers)
    );
    assert_eq!(b.kernel, d.kernel);
    assert!(b.fault_plan.is_none());
    let fp = FaultPlan::transient(9, 0.05);
    let o = ExecOptions::builder()
        .prefetch_window(false)
        .block_serialization(false)
        .tracing(true)
        .kernel(KernelSelect::Baseline)
        .genb_workers(7)
        .fault_plan(fp)
        .retry(RetryPolicy { budget: 9, backoff_base_us: 1, backoff_max_us: 2 })
        .build();
    assert!(!o.prefetch_window && !o.block_serialization && o.tracing);
    assert_eq!(o.kernel, KernelSelect::Baseline);
    assert_eq!(o.genb_workers, 7);
    assert_eq!(o.fault_plan, Some(fp));
    assert_eq!(o.retry.budget, 9);
}

/// Runs one low-rank-friendly problem twice — dense and at `tol` — and
/// returns `(c_dense, c_lossy, dense_sent_bytes, lossy_sent_bytes)`.
fn lossy_pair(tol: f64) -> (BlockSparseMatrix, BlockSparseMatrix, u64, u64) {
    // Tiles with geometrically decaying spectra (σ_p = e^{-1.5 p}): rank ~9
    // reaches 1e-6, well under the 32×32 profitability ceiling of 15.
    let a = MatrixStructure::dense(Tiling::uniform(96, 32), Tiling::uniform(64, 32));
    let b = MatrixStructure::dense(Tiling::uniform(64, 32), Tiling::uniform(96, 32));
    let spec = ProblemSpec::new(a, b, None);
    let config = cfg(2, 2, 2, 1 << 20);
    let plan = ExecutionPlan::build(&spec, config).unwrap();
    let am = BlockSparseMatrix::from_structure(spec.a.clone(), |r, c, rows, cols| {
        bst_tile::Tile::random_lowrank(rows, cols, tile_seed(31, r, c), 1.5)
    });
    let b_gen = |k: usize, j: usize, rows: usize, cols: usize, _p: &TilePool| {
        Ok(Arc::new(bst_tile::Tile::random_lowrank(
            rows,
            cols,
            tile_seed(31 ^ 0xB, k, j),
            1.5,
        )))
    };
    let run = |tol: f64| {
        let opts = ExecOptions::builder().compress_tol(tol).build();
        execute_numeric_with(&spec, &plan, &am, &b_gen, opts).expect("run")
    };
    let (c_dense, rep_dense) = run(0.0);
    let (c_lossy, rep_lossy) = run(tol);
    let sent = |rep: &bst_contract::exec::ExecReport| {
        rep.comm.iter().map(|n| n.sent_bytes).sum::<u64>()
    };
    (c_dense, c_lossy, sent(&rep_dense), sent(&rep_lossy))
}

/// A positive tolerance keeps the result within a small multiple of the
/// requested accuracy while strictly shrinking the bytes on the wire.
#[test]
fn compression_tolerance_bounds_error_and_cuts_wire_bytes() {
    let tol = 1e-6;
    let (c_dense, c_lossy, dense_bytes, lossy_bytes) = lossy_pair(tol);
    assert!(
        lossy_bytes < dense_bytes,
        "compressed run must ship fewer bytes ({lossy_bytes} vs {dense_bytes})"
    );
    let diff = c_lossy.max_abs_diff(&c_dense);
    assert!(
        diff < 1e-3,
        "lossy result drifted too far from dense: {diff:.3e}"
    );
    assert!(diff > 0.0, "a 1e-6 truncation should not be exact");
}

/// `compress_tol == 0.0` takes the dense code path everywhere — results are
/// bit-identical to the default options, not merely close.
#[test]
fn zero_tolerance_is_bit_identical() {
    let (c_dense, c_zero, dense_bytes, zero_bytes) = lossy_pair(0.0);
    assert_eq!(dense_bytes, zero_bytes);
    assert_eq!(c_zero.max_abs_diff(&c_dense), 0.0);
}

//! Property tests for the planner's three heuristics (§3.2.1–§3.2.3), the
//! column-splitting extension, and the service layer's cache machinery
//! (structure-hash soundness, B-cache budget accounting, hit/miss
//! reconciliation).

use bst_contract::assign::assign_columns;
use bst_contract::chunk::{build_chunks, needed_tiles_per_row};
use bst_contract::partition::{partition_spans, split_column, Block, ColumnSpan};
use bst_contract::service::hash;
use bst_contract::{DeviceConfig, GridConfig, PlannerConfig, ProblemSpec};
use bst_runtime::{BCacheKey, BTileCache};
use bst_sparse::generate::{generate, SyntheticParams};
use bst_tile::Tile;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    /// Mirrored-cyclic assignment: every column exactly once, and totals
    /// within one max-weight of each other when weights are similar.
    #[test]
    fn assignment_covers_and_balances(
        weights in prop::collection::vec(0u128..1000, 1..120),
        q in 1usize..12,
    ) {
        let (cols, totals) = assign_columns(&weights, q);
        prop_assert_eq!(cols.len(), q);
        let mut seen = vec![false; weights.len()];
        for c in &cols {
            for &j in c {
                prop_assert!(!seen[j]);
                seen[j] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert_eq!(totals.iter().sum::<u128>(), weights.iter().sum::<u128>());
        // Balance: max - min bounded by twice the largest weight (mirrored
        // dealing bounds per-round drift by one weight gap).
        if let Some(&max_w) = weights.iter().max() {
            let spread = totals.iter().max().unwrap() - totals.iter().min().unwrap();
            prop_assert!(
                spread <= 2 * max_w * (weights.len() as u128 / q as u128 + 1),
                "spread {spread} too large for max weight {max_w}"
            );
        }
    }

    /// Worst-fit partitioning: budget respected, every span placed once,
    /// block counts per GPU balanced within one.
    #[test]
    fn partition_invariants(
        footprints in prop::collection::vec(1u64..100, 1..60),
        gpus in 1usize..8,
    ) {
        let spans: Vec<ColumnSpan> = (0..footprints.len())
            .map(|c| ColumnSpan::full(c, 4))
            .collect();
        let part = partition_spans(&spans, &footprints, gpus, 100);
        let mut seen = vec![false; spans.len()];
        for (_, block) in part.iter() {
            prop_assert!(block.bytes <= 100);
            for s in &block.spans {
                prop_assert!(!seen[s.col as usize]);
                seen[s.col as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        let counts: Vec<usize> = part.gpus.iter().map(|g| g.len()).collect();
        let (mx, mn) = (counts.iter().max().unwrap(), counts.iter().min().unwrap());
        prop_assert!(mx - mn <= 1, "block counts {counts:?}");
    }

    /// Column splitting: parts tile the inner range contiguously, each
    /// non-zero tile lands in exactly one part, footprints fit.
    #[test]
    fn split_column_invariants(
        tile_bytes in prop::collection::vec(1u64..40, 1..40),
        c_bytes in 0u64..30,
        extra_budget in 10u64..80,
    ) {
        let budget = c_bytes + tile_bytes.iter().copied().max().unwrap() + extra_budget;
        // Non-zero tiles at every other inner index.
        let k_tiles: Vec<(usize, u64)> =
            tile_bytes.iter().enumerate().map(|(i, &b)| (2 * i, b)).collect();
        let inner = 2 * tile_bytes.len();
        let parts = split_column(5, inner, &k_tiles, c_bytes, budget).unwrap();
        prop_assert_eq!(parts[0].0.k_lo, 0);
        prop_assert_eq!(parts.last().unwrap().0.k_hi as usize, inner - 1);
        for w in parts.windows(2) {
            prop_assert_eq!(w[0].0.k_hi + 1, w[1].0.k_lo);
        }
        for (span, bytes) in &parts {
            prop_assert!(*bytes <= budget);
            prop_assert_eq!(span.col, 5);
        }
        for &(k, _) in &k_tiles {
            prop_assert_eq!(parts.iter().filter(|(s, _)| s.contains(k)).count(), 1);
        }
    }

    /// Chunking covers every needed A tile exactly once, within budget.
    #[test]
    fn chunk_invariants(seed in 0u64..300, budget_tiles in 1u64..10) {
        let prob = generate(&SyntheticParams {
            m: 24, n: 40, k: 40, density: 0.5, tile_min: 3, tile_max: 7, seed,
        });
        let spec = ProblemSpec::new(prob.a, prob.b, None);
        let block = Block {
            spans: (0..spec.tile_cols())
                .map(|c| ColumnSpan::full(c, spec.tile_inner()))
                .collect(),
            bytes: 0,
        };
        let rows = needed_tiles_per_row(&spec, &block, 0, 1);
        let budget = budget_tiles * 7 * 7 * 8;
        match build_chunks(&spec, &rows, budget) {
            Err(_) => {} // a single tile exceeding the budget is a valid outcome
            Ok(chunks) => {
                let mut seen = std::collections::HashSet::new();
                for ch in &chunks {
                    prop_assert!(ch.bytes <= budget);
                    prop_assert!(!ch.tiles.is_empty());
                    for t in &ch.tiles {
                        prop_assert!(seen.insert(*t), "tile {t:?} twice");
                    }
                }
                let expected: usize = rows.iter().map(|(_, ks)| ks.len()).sum();
                prop_assert_eq!(seen.len(), expected);
            }
        }
    }

    /// Structure-hash soundness: equal specs (built twice from the same
    /// seed) collide, and any mutation the planner can observe — screening
    /// a tile out, changing the grid, killing a node — moves the plan key;
    /// a pure norm perturbation (which the planner never reads, and which
    /// solver iterations produce every sweep) does not.
    #[test]
    fn plan_key_soundness(seed in 0u64..200, q in 1usize..4) {
        let params = SyntheticParams {
            m: 24, n: 64, k: 64, density: 0.6, tile_min: 3, tile_max: 7, seed,
        };
        let spec = |p: &SyntheticParams| {
            let prob = generate(p);
            ProblemSpec::new(prob.a, prob.b, None)
        };
        let cfg = PlannerConfig::paper(
            GridConfig { p: 1, q },
            DeviceConfig { gpus_per_node: 1, gpu_mem_bytes: 1 << 20 },
        );
        let s1 = spec(&params);
        let s2 = spec(&params);
        let base = hash::plan_key(&s1, &cfg, &[]);
        prop_assert_eq!(base, hash::plan_key(&s2, &cfg, &[]));

        // Screen one non-zero B tile out: the key must move.
        let mut screened = spec(&params);
        let first_nz = screened.b.shape().iter_nonzero().next();
        if let Some((r, c)) = first_nz {
            screened.b.shape_mut().zero_out(r, c);
            prop_assert_ne!(base, hash::plan_key(&screened, &cfg, &[]));
        }

        // Perturbing a screening norm without changing the pattern keeps
        // the key: plan reuse must survive amplitude drift across sweeps.
        let mut perturbed = spec(&params);
        let first_nz = perturbed.b.shape().iter_nonzero().next();
        if let Some((r, c)) = first_nz {
            let n = perturbed.b.shape().norm(r, c);
            perturbed.b.shape_mut().set_norm(r, c, n + 1.0);
            prop_assert_eq!(base, hash::plan_key(&perturbed, &cfg, &[]));
        }

        // A different grid is a different key even for the same structure.
        let other_grid = PlannerConfig::paper(
            GridConfig { p: 1, q: q + 1 },
            cfg.device,
        );
        prop_assert_ne!(base, hash::plan_key(&s1, &other_grid, &[]));

        // Dead nodes are part of the key.
        prop_assert_ne!(base, hash::plan_key(&s1, &cfg, &[0]));
    }

    /// B-cache accounting: under any interleaving of inserts and lookups
    /// the resident bytes never exceed the budget, the peak never exceeds
    /// it either, and hit + miss counts reconcile exactly with the lookup
    /// total.
    #[test]
    fn b_cache_budget_and_reconciliation(
        budget_tiles in 1u64..8,
        ops in prop::collection::vec((0u32..12, 0u32..12, 0u32..2), 1..120),
    ) {
        // Every tile is 4x4 f64 = 128 bytes; the budget holds a few.
        let tile_bytes = 4 * 4 * 8;
        let cache = BTileCache::with_budget(budget_tiles * tile_bytes);
        let mut lookups = 0u64;
        for &(k, j, insert_flag) in &ops {
            let key = BCacheKey { ident: 1, k, j };
            lookups += 1;
            let hit = cache.get(key).is_some();
            if !hit && insert_flag == 1 {
                cache.insert(key, Arc::new(Tile::zeros(4, 4)));
            }
            let s = cache.stats();
            prop_assert!(
                s.current_bytes <= budget_tiles * tile_bytes,
                "resident {} over budget {}", s.current_bytes, budget_tiles * tile_bytes
            );
            prop_assert!(s.peak_bytes <= budget_tiles * tile_bytes);
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, lookups);
        // Residency is consistent with the insert/evict ledger.
        prop_assert_eq!(s.insertions - s.evictions, cache.len() as u64);
    }
}

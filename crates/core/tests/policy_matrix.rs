//! Policy-combination matrix over the single execution path.
//!
//! The engine collapse means tracing, fault injection and `GenB` fan-out are
//! *policies* composed onto one scheduler, not separate entry points — so
//! every combination must run, produce the same numeric answer (≤ 1e-10;
//! accumulation order varies across schedules), expose a trace exactly when
//! tracing was requested, and pass the trace-invariant checker whenever a
//! trace exists.

use std::collections::BTreeMap;
use std::sync::Arc;

use bst_contract::exec::execute_numeric_with;
use bst_contract::{
    validate_trace_invariants, DeviceConfig, ExecOptions, ExecutionPlan, FaultPlan, GridConfig,
    PlannerConfig, ProblemSpec,
};
use bst_sparse::generate::{generate, SyntheticParams};
use bst_sparse::matrix::tile_seed;
use bst_sparse::BlockSparseMatrix;
use bst_tile::pool::TilePool;

const GPU_MEM: u64 = 1 << 20;

fn problem() -> (ProblemSpec, ExecutionPlan) {
    let prob = generate(&SyntheticParams {
        m: 40,
        n: 120,
        k: 100,
        density: 0.5,
        tile_min: 5,
        tile_max: 17,
        seed: 7,
    });
    let spec = ProblemSpec::new(prob.a, prob.b, None);
    let config = PlannerConfig::paper(
        GridConfig { p: 2, q: 2 },
        DeviceConfig {
            gpus_per_node: 2,
            gpu_mem_bytes: GPU_MEM,
        },
    );
    let plan = ExecutionPlan::build(&spec, config).unwrap();
    (spec, plan)
}

#[test]
fn every_policy_combination_runs_and_agrees() {
    let (spec, plan) = problem();
    let a = BlockSparseMatrix::random_from_structure(spec.a.clone(), 3);
    let b_gen = |k: usize, j: usize, r: usize, c: usize, pool: &TilePool| {
        Ok(Arc::new(pool.random(r, c, tile_seed(3 ^ 0xB, k, j))))
    };

    let mut baseline: Option<BlockSparseMatrix> = None;
    let mut counters: Option<(u64, u64, u64)> = None;
    for tracing in [false, true] {
        for faults in [None, Some(FaultPlan::transient(9, 0.15))] {
            for genb_workers in [0usize, 2] {
                let mut builder = ExecOptions::builder()
                    .tracing(tracing)
                    .genb_workers(genb_workers);
                if let Some(fp) = faults {
                    builder = builder.fault_plan(fp);
                }
                let opts = builder.build();
                let combo = format!(
                    "tracing={tracing} faults={} genb_workers={genb_workers}",
                    faults.is_some()
                );

                let (c, report) = execute_numeric_with(&spec, &plan, &a, &b_gen, opts)
                    .unwrap_or_else(|e| panic!("{combo}: {e}"));

                // One answer, whatever the policies.
                match &baseline {
                    None => baseline = Some(c),
                    Some(base) => {
                        let diff = base.max_abs_diff(&c);
                        assert!(diff <= 1e-10, "{combo}: diverged by {diff}");
                    }
                }

                // Same work, whatever the policies.
                let work = (
                    report.gemm_tasks,
                    report.b_tiles_generated,
                    report.a_messages,
                );
                match counters {
                    None => counters = Some(work),
                    Some(expect) => assert_eq!(work, expect, "{combo}: work differs"),
                }

                // Trace exists exactly when requested — and is always clean.
                assert_eq!(report.trace.is_some(), tracing, "{combo}");
                assert_eq!(!report.metrics.is_empty(), tracing, "{combo}");
                if tracing {
                    assert_eq!(
                        validate_trace_invariants(&report, opts, GPU_MEM),
                        Vec::<String>::new(),
                        "{combo}"
                    );
                }

                // Faults recover through the same path and leave evidence;
                // clean runs must report none.
                assert_eq!(report.recovery.any(), faults.is_some(), "{combo}");
            }
        }
    }
}

#[test]
fn traced_faulted_fanout_records_retries_on_their_lanes() {
    // The deepest stack — tracing × faults × fan-out — exercised in one run:
    // the trace must attribute retried tasks to the workers that retried
    // them, including the dedicated GenB lanes.
    let (spec, plan) = problem();
    let a = BlockSparseMatrix::random_from_structure(spec.a.clone(), 3);
    let b_gen = |k: usize, j: usize, r: usize, c: usize, pool: &TilePool| {
        Ok(Arc::new(pool.random(r, c, tile_seed(3 ^ 0xB, k, j))))
    };
    let opts = ExecOptions::builder()
        .tracing(true)
        .genb_workers(3)
        .fault_plan(FaultPlan::transient(5, 0.2))
        .build();
    let (_c, report) = execute_numeric_with(&spec, &plan, &a, &b_gen, opts).unwrap();

    assert!(report.recovery.any(), "0.2 injection never fired");
    let trace = report.trace.as_ref().unwrap();
    let mut retries_by_lane: BTreeMap<usize, u64> = BTreeMap::new();
    for r in &trace.records {
        if r.attempts > 1 {
            *retries_by_lane.entry(r.worker.lane).or_insert(0) += u64::from(r.attempts - 1);
        }
    }
    let total: u64 = retries_by_lane.values().sum();
    assert_eq!(total, report.recovery.retry_attempts, "trace vs counters");
    assert_eq!(
        validate_trace_invariants(&report, opts, GPU_MEM),
        Vec::<String>::new()
    );
}

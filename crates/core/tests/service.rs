//! Service-level test battery for the persistent contraction engine:
//! concurrent clients against the one-shot reference, LRU eviction under a
//! tightened B budget, admission-control rejection, and the PR-3 fault
//! seeds replayed through the cached-plan path.

use std::sync::{Arc, Condvar, Mutex};

use bst_contract::exec::execute_numeric_with;
use bst_contract::{
    BstError, ContractionRequest, ContractionService, DeviceConfig, ExecOptions, ExecutionPlan,
    FaultPlan, GridConfig, PlannerConfig, ProblemSpec, ServiceBGen, ServiceConfig, ServiceError,
};
use bst_sparse::generate::{generate, SyntheticParams};
use bst_sparse::matrix::tile_seed;
use bst_sparse::BlockSparseMatrix;
use bst_tile::TilePool;

const GPU_MEM: u64 = 1 << 20;
const SEED: u64 = 21;

fn spec() -> ProblemSpec {
    let prob = generate(&SyntheticParams {
        m: 60,
        n: 480,
        k: 480,
        density: 0.6,
        tile_min: 8,
        tile_max: 16,
        seed: SEED,
    });
    ProblemSpec::new(prob.a, prob.b, None)
}

fn config(p: usize, q: usize) -> PlannerConfig {
    PlannerConfig::paper(
        GridConfig { p, q },
        DeviceConfig {
            gpus_per_node: 2,
            gpu_mem_bytes: GPU_MEM,
        },
    )
}

fn service_b_gen() -> ServiceBGen {
    Arc::new(|k, j, r, c, pool: &TilePool| {
        Ok(Arc::new(pool.random(r, c, tile_seed(SEED ^ 0xB, k, j))))
    })
}

fn request(spec: &ProblemSpec, a: &Arc<BlockSparseMatrix>, cfg: PlannerConfig) -> ContractionRequest {
    ContractionRequest {
        a: Arc::clone(a),
        b_structure: spec.b.clone(),
        b_gen: service_b_gen(),
        b_key: 0xB0,
        c_shape: None,
        config: cfg,
        opts: ExecOptions::default(),
    }
}

/// The serial one-shot reference the service must reproduce byte-for-byte.
fn one_shot(spec: &ProblemSpec, a: &BlockSparseMatrix, cfg: PlannerConfig) -> BlockSparseMatrix {
    let plan = ExecutionPlan::build(spec, cfg).unwrap();
    let b_gen = |k: usize, j: usize, r: usize, c: usize, pool: &TilePool| {
        Ok(Arc::new(pool.random(r, c, tile_seed(SEED ^ 0xB, k, j))))
    };
    let (c, _) = execute_numeric_with(spec, &plan, a, &b_gen, ExecOptions::default()).unwrap();
    c
}

/// N client threads × M iterations hammer one service concurrently; every
/// result is bit-identical to the serial one-shot run, and after the first
/// wave of misses the caches carry the load (plan hits, B bytes saved).
#[test]
fn concurrent_clients_match_serial_one_shot_bitwise() {
    const CLIENTS: usize = 4;
    const ITERS: usize = 3;
    let s = spec();
    let cfg = config(1, 2);
    let a = Arc::new(BlockSparseMatrix::random_from_structure(s.a.clone(), SEED));
    let reference = one_shot(&s, &a, cfg);

    let service = ContractionService::start(ServiceConfig {
        workers: CLIENTS,
        queue_capacity: CLIENTS * ITERS,
        ..ServiceConfig::default()
    });
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            scope.spawn(|| {
                for _ in 0..ITERS {
                    let out = service.run(request(&s, &a, cfg)).expect("request");
                    assert_eq!(
                        out.c.max_abs_diff(&reference),
                        0.0,
                        "service result diverged from serial one-shot"
                    );
                }
            });
        }
    });
    let stats = service.stats();
    assert_eq!(stats.requests_completed, (CLIENTS * ITERS) as u64);
    assert_eq!(stats.requests_failed, 0);
    assert_eq!(
        stats.plan_hits + stats.plan_misses,
        (CLIENTS * ITERS) as u64,
        "every request resolves through the plan cache exactly once"
    );
    assert!(stats.plan_hits > 0, "12 identical requests must share plans");
    assert!(stats.b_bytes_saved > 0, "stationary B must be served from cache");
}

/// Tightening the B budget far below the working set forces evictions;
/// evicted tiles regenerate on the next request and the results stay
/// bit-identical — the cache is an optimisation, never a correctness knob.
#[test]
fn lru_eviction_under_tight_budget_regenerates_correctly() {
    let s = spec();
    let cfg = config(1, 2);
    let a = Arc::new(BlockSparseMatrix::random_from_structure(s.a.clone(), SEED));
    let reference = one_shot(&s, &a, cfg);

    // Room for a handful of 16×16 f64 tiles (2 KiB each) — far below the
    // full B working set, so the LRU must cycle.
    let service = ContractionService::start(ServiceConfig {
        workers: 1,
        b_cache_budget_bytes: 8 << 10,
        ..ServiceConfig::default()
    });
    for round in 0..3 {
        let out = service.run(request(&s, &a, cfg)).expect("request");
        assert_eq!(
            out.c.max_abs_diff(&reference),
            0.0,
            "round {round} diverged under eviction pressure"
        );
    }
    let stats = service.stats();
    assert!(stats.b_evictions > 0, "budget never forced an eviction: {stats:?}");
    assert!(
        stats.b_current_bytes <= 2 * (8 << 10),
        "resident bytes {} exceed the summed per-node budget",
        stats.b_current_bytes
    );
    // Warm rounds still regenerate what was evicted: misses beyond round 1.
    let cold_misses = stats.b_misses;
    let out = service.run(request(&s, &a, cfg)).expect("request");
    assert!(
        service.stats().b_misses > cold_misses || out.stats.b_cache.hits > 0,
        "a warm round must either hit or regenerate, never skip"
    );
}

/// A full queue rejects with the typed `QueueFull` error — and the service
/// keeps serving afterwards. The in-flight request is gated so the test
/// controls exactly when the worker frees capacity.
#[test]
fn queue_full_rejects_typed_and_service_survives() {
    let s = spec();
    let cfg = config(1, 1);
    let a = Arc::new(BlockSparseMatrix::random_from_structure(s.a.clone(), SEED));

    let service = ContractionService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServiceConfig::default()
    });

    // A generator gate: the first request blocks inside GenB until released,
    // pinning the single worker while we overfill the queue.
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let gated_gen: ServiceBGen = {
        let gate = Arc::clone(&gate);
        Arc::new(move |k, j, r, c, pool: &TilePool| {
            let (open, cv) = &*gate;
            let mut open = open.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            drop(open);
            Ok(Arc::new(pool.random(r, c, tile_seed(SEED ^ 0xB, k, j))))
        })
    };
    let mut gated_req = request(&s, &a, cfg);
    gated_req.b_gen = gated_gen;

    let blocked = service.submit(gated_req).expect("first request admitted");
    // Wait until the worker has actually dequeued the gated request (the
    // queue is empty again), then fill the queue to capacity.
    while service.stats().in_flight_highwater == 0 {
        std::thread::yield_now();
    }
    let queued = service.submit(request(&s, &a, cfg)).expect("fills the queue");
    let err = service.submit(request(&s, &a, cfg)).unwrap_err();
    match err {
        BstError::Service(ServiceError::QueueFull { capacity }) => assert_eq!(capacity, 1),
        other => panic!("expected QueueFull, got {other}"),
    }
    assert_eq!(service.stats().requests_rejected, 1);

    // Release the gate: both admitted requests complete, and a fresh
    // submit is admitted again — the rejection left no residue.
    {
        let (open, cv) = &*gate;
        *open.lock().unwrap() = true;
        cv.notify_all();
    }
    blocked.wait().expect("gated request completes");
    queued.wait().expect("queued request completes");
    let again = service.run(request(&s, &a, cfg)).expect("service stays usable");
    assert_eq!(again.c.max_abs_diff(&one_shot(&s, &a, cfg)), 0.0);
}

/// The PR-3 fault seeds replayed through the service: transient-fault
/// requests reuse the cached plan and still match the fault-free result;
/// a dead-node request resolves its *base* plan from the cache, re-plans
/// inside the engine, and its completion invalidates the cache entry —
/// observable as the next request's plan-cache miss.
#[test]
fn fault_seeds_replay_and_dead_node_invalidates_plan_cache() {
    let s = spec();
    let cfg = config(1, 2);
    let a = Arc::new(BlockSparseMatrix::random_from_structure(s.a.clone(), SEED));
    let service = ContractionService::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });

    // 1. Cold request populates the plan cache.
    let clean = service.run(request(&s, &a, cfg)).expect("cold");
    assert!(!clean.stats.plan_cache_hit);

    // 2. Transient faults (the PR-3 seed) ride the cached plan: same
    // numbers as the clean run, injections actually fired.
    let mut faulted_req = request(&s, &a, cfg);
    faulted_req.opts = ExecOptions::builder()
        .fault_plan(FaultPlan::transient(42, 0.08))
        .build();
    let faulted = service.run(faulted_req).expect("recovers");
    assert!(faulted.stats.plan_cache_hit, "transient faults must not bust the cache");
    assert!(
        faulted.c.max_abs_diff(&clean.c) < 1e-10,
        "recovered result diverged"
    );
    assert!(
        faulted.report.recovery.injected_genb
            + faulted.report.recovery.injected_alloc
            + faulted.report.recovery.injected_send
            > 0,
        "no faults injected: {:?}",
        faulted.report.recovery
    );

    // 3. Dead node: base plan comes from the cache (hit), the engine
    // re-plans internally, the result still matches, and the entry is
    // invalidated on completion.
    let mut dead_req = request(&s, &a, cfg);
    dead_req.opts = ExecOptions::builder()
        .fault_plan(FaultPlan::transient(5, 0.05).with_dead_node(1))
        .build();
    let degraded = service.run(dead_req).expect("degrades");
    assert!(degraded.stats.plan_cache_hit, "base plan resolves through the cache");
    assert_eq!(degraded.report.recovery.dead_nodes, vec![1]);
    assert!(degraded.report.recovery.replanned_columns > 0);
    assert!(degraded.c.max_abs_diff(&clean.c) < 1e-10, "degraded result diverged");

    // 4. The invalidation is observable: the next healthy request misses,
    // rebuilds, and the one after hits again.
    let rebuilt = service.run(request(&s, &a, cfg)).expect("rebuild");
    assert!(
        !rebuilt.stats.plan_cache_hit,
        "degraded completion must invalidate the cached base plan"
    );
    assert_eq!(rebuilt.c.max_abs_diff(&clean.c), 0.0);
    let warm = service.run(request(&s, &a, cfg)).expect("warm");
    assert!(warm.stats.plan_cache_hit);

    let stats = service.stats();
    assert_eq!(stats.plan_invalidations, 1);
    assert_eq!(stats.requests_completed, 5);
}

/// Distinct `b_key`s isolate structurally identical operands: a request
/// with a different generator and key never sees the other's tiles.
#[test]
fn b_key_isolates_operands_sharing_the_cache() {
    let s = spec();
    let cfg = config(1, 2);
    let a = Arc::new(BlockSparseMatrix::random_from_structure(s.a.clone(), SEED));
    let service = ContractionService::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });

    let first = service.run(request(&s, &a, cfg)).expect("first operand");
    // Same structure, different generator values, different key.
    let mut other = request(&s, &a, cfg);
    other.b_key = 0xB1;
    other.b_gen = Arc::new(|k, j, r, c, pool: &TilePool| {
        Ok(Arc::new(pool.random(r, c, tile_seed(0xD1FF, k, j))))
    });
    let second = service.run(other).expect("second operand");
    assert_eq!(
        second.stats.b_cache.hits, 0,
        "a different b_key must never hit the other operand's tiles"
    );
    assert!(
        first.c.max_abs_diff(&second.c) > 0.0,
        "different generators should produce different results"
    );
}

//! End-to-end tests of the collective communication primitives: node-aware
//! broadcast trees for A tiles, the fixed-shape C reduction tree, the
//! unicast comparison baseline, and fault recovery through interior tree
//! hops — all over the real `bst-comm` transport.

use bst_contract::exec::execute_numeric_with;
use bst_contract::{
    validate_trace_invariants, Collectives, DeliveryPolicy, DeviceConfig, ExecOptions, ExecReport,
    ExecutionPlan, FaultPlan, GridConfig, LinkClass, LinkShaper, PlannerConfig, ProblemSpec,
};
use bst_runtime::data::DataKey;
use bst_runtime::trace::TracePhase;
use bst_sparse::generate::{generate, SyntheticParams};
use bst_sparse::matrix::tile_seed;
use bst_sparse::BlockSparseMatrix;

const GPU_MEM: u64 = 1 << 21;

fn tiny_spec() -> ProblemSpec {
    let prob = generate(&SyntheticParams {
        m: 160,
        n: 1280,
        k: 1280,
        density: 0.6,
        tile_min: 8,
        tile_max: 24,
        seed: 42,
    });
    ProblemSpec::new(prob.a, prob.b, None)
}

fn run_nodes(spec: &ProblemSpec, nodes: usize, opts: ExecOptions) -> (BlockSparseMatrix, ExecReport) {
    let config = PlannerConfig::paper(
        GridConfig::from_nodes(nodes, 1),
        DeviceConfig {
            gpus_per_node: 2,
            gpu_mem_bytes: GPU_MEM,
        },
    );
    let plan = ExecutionPlan::build(spec, config).expect("plan");
    let a = BlockSparseMatrix::random_from_structure(spec.a.clone(), 42);
    let b_gen = move |k: usize, j: usize, r: usize, c: usize, pool: &bst_tile::TilePool| {
        Ok(std::sync::Arc::new(pool.random(r, c, tile_seed(42 ^ 0xB, k, j))))
    };
    execute_numeric_with(spec, &plan, &a, &b_gen, opts).expect("execution")
}

fn reference(spec: &ProblemSpec) -> BlockSparseMatrix {
    let a = BlockSparseMatrix::random_from_structure(spec.a.clone(), 42);
    let b = BlockSparseMatrix::from_structure(spec.b.clone(), |k, j, r, c| {
        bst_tile::Tile::random(r, c, tile_seed(42 ^ 0xB, k, j))
    });
    let mut c_ref =
        BlockSparseMatrix::zeros(spec.a.row_tiling().clone(), spec.b.col_tiling().clone());
    c_ref.gemm_acc_reference(&a, &b);
    c_ref
}

/// Tree reductions combine partials in canonical `(i, j, origin)` order up
/// a fixed-shape tree, so seeded delivery reordering — which scrambles the
/// arrival order of C partials at every combining node — must not change a
/// single bit, on multi-rank physical nodes included.
#[test]
fn tree_reduction_reorder_is_bit_identical() {
    let spec = tiny_spec();
    let base = ExecOptions::builder().node_size(2).build();
    let (c_fifo, _) = run_nodes(&spec, 8, base);
    let diff_ref = c_fifo.max_abs_diff(&reference(&spec));
    assert!(diff_ref <= 1e-10, "tree-collective run diverged from reference: {diff_ref:.3e}");
    let (c_reorder, _) = run_nodes(
        &spec,
        8,
        ExecOptions::builder()
            .node_size(2)
            .delivery(DeliveryPolicy::Reorder { seed: 0xD00D, window: 7 })
            .build(),
    );
    assert_eq!(
        c_fifo.max_abs_diff(&c_reorder),
        0.0,
        "delivery reorder changed the tree reduction's bits"
    );
}

/// The unicast baseline (star broadcast, every partial shipped straight to
/// the root) brackets the C summation differently, so it agrees with the
/// tree collectives only to FP-rebracketing noise — while moving at least
/// twice the inter-node A-tile bytes on 4-rank physical nodes.
#[test]
fn tree_halves_inter_node_a_bytes_vs_unicast() {
    let spec = tiny_spec();
    let (c_tree, tree_report) = run_nodes(&spec, 8, ExecOptions::builder().node_size(4).build());
    let (c_uni, uni_report) = run_nodes(
        &spec,
        8,
        ExecOptions::builder().node_size(4).collectives(Collectives::Unicast).build(),
    );
    let diff = c_tree.max_abs_diff(&c_uni);
    assert!(diff <= 1e-10, "tree vs unicast diff {diff:.3e}");
    let (tree_a, uni_a) = (tree_report.a_network_inter_bytes, uni_report.a_network_inter_bytes);
    assert!(uni_a > 0, "unicast baseline moved no inter-node A bytes");
    assert!(
        2 * tree_a <= uni_a,
        "broadcast trees saved too little: {tree_a} vs {uni_a} inter-node A bytes"
    );
    // Total inter-node traffic (A tiles + C partials) shrinks too.
    let inter = |r: &ExecReport| r.comm.iter().map(|s| s.inter_sent_bytes).sum::<u64>();
    assert!(
        inter(&tree_report) <= inter(&uni_report),
        "tree collectives moved more inter-node bytes overall"
    );
    // On a single-rank-per-node topology the tree degenerates gracefully:
    // same inter-node A bytes as unicast (every link is a NIC link, and
    // each destination still receives the tile exactly once).
    let (_, flat_tree) = run_nodes(&spec, 8, ExecOptions::default());
    let (_, flat_uni) = run_nodes(
        &spec,
        8,
        ExecOptions::builder().collectives(Collectives::Unicast).build(),
    );
    assert_eq!(flat_tree.a_network_inter_bytes, flat_uni.a_network_inter_bytes);
}

/// Frame drops on *interior* broadcast-tree hops — a forwarder, not the
/// owner, losing the frame — recover bit-identically: the retried hop
/// re-reads the forwarder's still-unconsumed copy and the epoch-tagged
/// re-delivery reconverges.
#[test]
fn drop_recovery_through_interior_tree_hop() {
    let spec = tiny_spec();
    let (c_clean, _) = run_nodes(&spec, 8, ExecOptions::default());
    let opts = ExecOptions::builder()
        .tracing(true)
        .fault_plan(FaultPlan {
            seed: 11,
            send_rate: 0.3,
            ..FaultPlan::default()
        })
        .build();
    let (c_faulted, report) = run_nodes(&spec, 8, opts);
    assert_eq!(
        c_faulted.max_abs_diff(&c_clean),
        0.0,
        "drop recovery through the broadcast tree is not bit-identical"
    );
    // On a 1×8 grid A(i,k) is owned by rank k mod 8; a Failed frame whose
    // src is any other rank died on an interior (forwarding) hop.
    let trace = report.trace.as_ref().expect("traced");
    let interior_drops = trace
        .comm_events
        .iter()
        .filter(|e| e.phase == TracePhase::Failed)
        .filter(|e| matches!(e.key, DataKey::A(_, k) if e.src != k as usize % 8))
        .count();
    assert!(
        interior_drops > 0,
        "30% send-drop rate never hit an interior tree hop"
    );
    let violations = validate_trace_invariants(&report, opts, GPU_MEM);
    assert!(violations.is_empty(), "{violations:?}");
}

/// Per-link-class plumbing end to end: distinct intra/inter credit windows
/// reach the per-node stats, both link classes accumulate shaped busy
/// time, and the traced transport stream labels every event's class.
#[test]
fn link_classes_are_shaped_and_windowed_independently() {
    let spec = tiny_spec();
    let opts = ExecOptions::builder()
        .tracing(true)
        .node_size(4)
        .comm_window(5)
        .intra_window(11)
        .link_shaper(LinkShaper::summit_nic())
        .intra_shaper(LinkShaper::summit_intra())
        .build();
    let (_, report) = run_nodes(&spec, 8, opts);
    let inter_busy: u64 = report.comm.iter().map(|s| s.inter_busy_ns).sum();
    let intra_busy: u64 = report.comm.iter().map(|s| s.intra_busy_ns).sum();
    assert!(inter_busy > 0, "inter-node shaping accumulated no busy time");
    assert!(intra_busy > 0, "intra-node shaping accumulated no busy time");
    for s in &report.comm {
        assert_eq!(s.credit_window, 5);
        assert_eq!(s.intra_credit_window, 11);
        assert!(s.max_in_flight <= 5, "inter window violated: {}", s.max_in_flight);
        assert!(s.intra_max_in_flight <= 11, "intra window violated: {}", s.intra_max_in_flight);
    }
    let trace = report.trace.as_ref().expect("traced");
    let classes: std::collections::HashSet<_> =
        trace.comm_events.iter().map(|e| e.class).collect();
    assert!(classes.contains(&LinkClass::Inter), "no inter-node events on 8 ranks / 2 nodes");
    assert!(classes.contains(&LinkClass::Intra), "no intra-node events on 4-rank nodes");
    assert!(
        !classes.contains(&LinkClass::Loopback),
        "loopback frames must not be recorded as traffic"
    );
}

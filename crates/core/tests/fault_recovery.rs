//! Integration tests for the fault-injection & recovery subsystem: inject
//! transient GenB / allocation / transfer faults and lane stalls at the
//! rates the acceptance criteria name (5–10%), and check that
//!
//! * the executor recovers and the result matches the fault-free run within
//!   1e-10;
//! * retries never violate the task-lifecycle or control-flow trace
//!   invariants;
//! * the same `FaultPlan` seed reproduces the same injection schedule;
//! * a permanently-failed node's B columns re-plan onto its surviving row
//!   peers and the degraded execution still produces the right numbers.

use bst_contract::exec::execute_numeric_with;
use bst_contract::{
    validate_trace_invariants, DeviceConfig, ExecError, ExecOptions, ExecReport, ExecutionPlan,
    FaultPlan, GridConfig, PlannerConfig, ProblemSpec, RetryPolicy,
};
use bst_sparse::generate::{generate, SyntheticParams};
use bst_sparse::matrix::tile_seed;
use bst_sparse::BlockSparseMatrix;
use std::sync::Arc;

const GPU_MEM: u64 = 1 << 20;

fn spec() -> ProblemSpec {
    let prob = generate(&SyntheticParams {
        m: 60,
        n: 480,
        k: 480,
        density: 0.6,
        tile_min: 8,
        tile_max: 16,
        seed: 21,
    });
    ProblemSpec::new(prob.a, prob.b, None)
}

fn config(p: usize, q: usize) -> PlannerConfig {
    PlannerConfig::paper(
        GridConfig { p, q },
        DeviceConfig {
            gpus_per_node: 2,
            gpu_mem_bytes: GPU_MEM,
        },
    )
}

fn run(spec: &ProblemSpec, cfg: PlannerConfig, opts: ExecOptions) -> (BlockSparseMatrix, ExecReport) {
    let plan = ExecutionPlan::build(spec, cfg).unwrap();
    let a = BlockSparseMatrix::random_from_structure(spec.a.clone(), 21);
    let b_gen = |k: usize, j: usize, r: usize, c: usize, pool: &bst_tile::TilePool| {
        Ok(Arc::new(pool.random(r, c, tile_seed(21 ^ 0xB, k, j))))
    };
    execute_numeric_with(spec, &plan, &a, &b_gen, opts).expect("execution recovers")
}

/// 8% transient faults on every site: the executor retries through them,
/// the recovered result matches the fault-free one within 1e-10, the
/// recovery counters are populated, and the Chrome export labels retried
/// tasks with their attempt counts.
#[test]
fn injected_faults_recover_and_match_fault_free() {
    let s = spec();
    let cfg = config(1, 2);
    let (c_clean, clean) = run(&s, cfg, ExecOptions::builder().build());
    assert!(!clean.recovery.any(), "clean run must report no recovery");

    let fp = FaultPlan::transient(42, 0.08);
    let opts = ExecOptions::builder().tracing(true).fault_plan(fp).build();
    let (c_faulted, faulted) = run(&s, cfg, opts);

    assert!(
        c_faulted.max_abs_diff(&c_clean) < 1e-10,
        "recovered result diverged: {}",
        c_faulted.max_abs_diff(&c_clean)
    );
    let r = &faulted.recovery;
    assert!(r.injected_genb > 0, "no GenB faults fired at 8%: {r:?}");
    assert!(r.injected_alloc > 0, "no alloc faults fired at 8%: {r:?}");
    assert!(r.injected_send > 0, "no send faults fired at 8%: {r:?}");
    assert!(r.stalls > 0, "no stalls fired at 4%: {r:?}");
    assert_eq!(
        r.retry_attempts,
        r.injected_genb + r.injected_alloc + r.injected_send,
        "every injected failure is exactly one retried attempt"
    );
    assert!(r.retried_tasks > 0 && r.max_attempts > 1);
    assert!(
        r.max_attempts <= fp.max_consecutive + 1,
        "attempts exceeded the plan's failure streak bound"
    );

    // The trace stays well-formed under retries…
    assert_eq!(validate_trace_invariants(&faulted, opts, GPU_MEM), Vec::<String>::new());
    let trace = faulted.trace.as_ref().unwrap();
    let retried_records = trace.records.iter().filter(|rec| rec.attempts > 1).count() as u64;
    assert_eq!(retried_records, r.retried_tasks);
    // …and the Chrome export carries the attempt counts.
    assert!(trace.chrome_trace_json().contains("\"attempts\":\""));
    // The recovery line shows up in the human summary.
    assert!(faulted.text_summary(GPU_MEM).contains("recovery:"));
}

/// Determinism: the injection schedule is a pure function of the plan seed,
/// so two runs with the same `FaultPlan` report identical injection and
/// retry counters, and a different seed yields a different schedule.
#[test]
fn same_seed_reproduces_the_injection_schedule() {
    let s = spec();
    let cfg = config(1, 2);
    let opts = |seed| {
        ExecOptions::builder()
            .fault_plan(FaultPlan::transient(seed, 0.08))
            .build()
    };
    let (c1, r1) = run(&s, cfg, opts(7));
    let (c2, r2) = run(&s, cfg, opts(7));
    assert_eq!(r1.recovery, r2.recovery, "same seed, different schedule");
    assert!(c1.max_abs_diff(&c2) < 1e-10);

    let (_, r3) = run(&s, cfg, opts(8));
    assert_ne!(
        (r1.recovery.injected_genb, r1.recovery.injected_alloc, r1.recovery.injected_send),
        (r3.recovery.injected_genb, r3.recovery.injected_alloc, r3.recovery.injected_send),
        "different seeds injected the identical schedule"
    );
}

/// Graceful degradation: kill one node of a 1×2 row. Its B columns re-plan
/// onto the survivor, the report says so, and the numbers still match the
/// healthy run within 1e-10 — even with transient faults injected on top.
#[test]
fn dead_node_replans_columns_and_stays_correct() {
    let s = spec();
    let cfg = config(1, 2);
    let (c_clean, _) = run(&s, cfg, ExecOptions::builder().build());

    let fp = FaultPlan::transient(5, 0.05).with_dead_node(1);
    let (c_degraded, report) = run(&s, cfg, ExecOptions::builder().fault_plan(fp).build());
    assert!(
        c_degraded.max_abs_diff(&c_clean) < 1e-10,
        "degraded result diverged: {}",
        c_degraded.max_abs_diff(&c_clean)
    );
    assert_eq!(report.recovery.dead_nodes, vec![1]);
    assert!(report.recovery.replanned_columns > 0, "{:?}", report.recovery);

    // Killing the whole row is not recoverable and says so.
    let all_dead = FaultPlan::default().with_dead_node(0);
    let plan = ExecutionPlan::build(&s, config(2, 1)).unwrap();
    let a = BlockSparseMatrix::random_from_structure(s.a.clone(), 21);
    let b_gen = |k: usize, j: usize, r: usize, c: usize, pool: &bst_tile::TilePool| {
        Ok(Arc::new(pool.random(r, c, tile_seed(21 ^ 0xB, k, j))))
    };
    let err = execute_numeric_with(
        &s,
        &plan,
        &a,
        &b_gen,
        ExecOptions::builder().fault_plan(all_dead).build(),
    )
    .unwrap_err();
    assert!(matches!(err, ExecError::Replan(_)), "got {err}");
}

/// A fault streak longer than the retry budget aborts with
/// `RetryExhausted` instead of hanging or panicking.
#[test]
fn streak_beyond_budget_aborts_with_typed_error() {
    let s = spec();
    let plan = ExecutionPlan::build(&s, config(1, 2)).unwrap();
    let a = BlockSparseMatrix::random_from_structure(s.a.clone(), 21);
    let b_gen = |k: usize, j: usize, r: usize, c: usize, pool: &bst_tile::TilePool| {
        Ok(Arc::new(pool.random(r, c, tile_seed(21 ^ 0xB, k, j))))
    };
    // Streaks up to 4 failures, but only 2 attempts allowed.
    let mut fp = FaultPlan::transient(3, 0.10);
    fp.max_consecutive = 4;
    let err = execute_numeric_with(
        &s,
        &plan,
        &a,
        &b_gen,
        ExecOptions::builder()
            .fault_plan(fp)
            .retry(RetryPolicy {
                budget: 2,
                backoff_base_us: 0,
                backoff_max_us: 0,
            })
            .build(),
    )
    .unwrap_err();
    match err {
        ExecError::RetryExhausted { attempts, .. } => assert_eq!(attempts, 2),
        other => panic!("expected RetryExhausted, got {other}"),
    }
}

//! SPMD execution over an in-process wire mesh: every rank runs
//! `execute_numeric_distributed` on its own thread with a private
//! channel-backed `Wire`, and rank 0's assembled C must be bit-identical
//! to the single-process channel-transport run of the same problem.
//!
//! This pins the distributed path's correctness independently of sockets:
//! the `bst-net` transports only replace the channel hop these wires model.

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

use bst_contract::exec::{
    execute_numeric_distributed, execute_numeric_with, ExecOptions,
};
use bst_contract::{
    DeviceConfig, ExecutionPlan, GridConfig, PlannerConfig, ProblemSpec,
};
use bst_runtime::comm::{DeliveryPolicy, Wire, WireError, WireFrame};
use bst_sparse::generate::{generate, SyntheticParams};
use bst_sparse::BlockSparseMatrix;

/// One rank's endpoint of a full in-process mesh: sends go straight into
/// the destination rank's queue, receives drain this rank's own queue.
struct MeshWire {
    peers: HashMap<usize, Sender<Option<WireFrame>>>,
    tx: Sender<Option<WireFrame>>,
    rx: Mutex<Receiver<Option<WireFrame>>>,
}

impl Wire for MeshWire {
    fn send(&self, frame: WireFrame) -> Result<(), WireError> {
        let dst = frame.dst();
        let peer = self.peers.get(&dst).ok_or_else(|| WireError {
            dst,
            reason: "no such rank in the mesh".into(),
        })?;
        peer.send(Some(frame)).map_err(|_| WireError {
            dst,
            reason: "peer hung up".into(),
        })
    }

    fn recv(&self) -> Option<WireFrame> {
        self.rx.lock().unwrap().recv().ok().flatten()
    }

    fn close_inbound(&self) {
        let _ = self.tx.send(None);
    }
}

/// A fully-connected mesh of `n` wires.
fn mesh(n: usize) -> Vec<Arc<MeshWire>> {
    let endpoints: Vec<(Sender<Option<WireFrame>>, Receiver<Option<WireFrame>>)> =
        (0..n).map(|_| channel()).collect();
    let senders: Vec<Sender<Option<WireFrame>>> =
        endpoints.iter().map(|(tx, _)| tx.clone()).collect();
    endpoints
        .into_iter()
        .enumerate()
        .map(|(rank, (tx, rx))| {
            let peers = senders
                .iter()
                .enumerate()
                .filter(|&(r, _)| r != rank)
                .map(|(r, tx)| (r, tx.clone()))
                .collect();
            Arc::new(MeshWire { peers, tx, rx: Mutex::new(rx) })
        })
        .collect()
}

fn problem(nodes: usize) -> (ProblemSpec, PlannerConfig) {
    let prob = generate(&SyntheticParams {
        m: 100,
        n: 800,
        k: 800,
        density: 0.6,
        tile_min: 16,
        tile_max: 64,
        seed: 7,
    });
    let spec = ProblemSpec::new(prob.a, prob.b, None);
    let config = PlannerConfig::paper(
        GridConfig::from_nodes(nodes, 2),
        DeviceConfig { gpus_per_node: 2, gpu_mem_bytes: 16 << 30 },
    );
    (spec, config)
}

/// Runs the problem SPMD over `nodes` mesh-wired "processes" (threads) and
/// returns rank 0's assembled C.
fn run_mesh(
    spec: &ProblemSpec,
    plan: &ExecutionPlan,
    nodes: usize,
    opts: &ExecOptions,
) -> BlockSparseMatrix {
    let wires = mesh(nodes);
    let a = BlockSparseMatrix::random_from_structure(spec.a.clone(), 42);
    let b_gen = bst_sparse::matrix::random_b_gen(42 ^ 0xB);
    std::thread::scope(|s| {
        let handles: Vec<_> = wires
            .iter()
            .enumerate()
            .map(|(rank, wire)| {
                let wire: Arc<dyn Wire> = Arc::clone(wire) as Arc<dyn Wire>;
                let (a, b_gen, opts) = (&a, &b_gen, opts.clone());
                s.spawn(move || {
                    execute_numeric_distributed(spec, plan, a, b_gen, opts, rank, wire)
                        .expect("rank failed")
                })
            })
            .collect();
        let mut c0 = None;
        for (rank, h) in handles.into_iter().enumerate() {
            let (c, _report) = h.join().expect("rank panicked");
            if rank == 0 {
                c0 = Some(c);
            }
        }
        c0.expect("rank 0 ran")
    })
}

#[test]
fn mesh_run_is_bit_identical_to_single_process() {
    let nodes = 4;
    let (spec, config) = problem(nodes);
    let plan = ExecutionPlan::build(&spec, config).expect("plan");
    let a = BlockSparseMatrix::random_from_structure(spec.a.clone(), 42);
    let b_gen = bst_sparse::matrix::random_b_gen(42 ^ 0xB);
    let opts = ExecOptions::builder().build();
    let (c_ref, _) =
        execute_numeric_with(&spec, &plan, &a, &b_gen, opts.clone()).expect("reference");

    let c = run_mesh(&spec, &plan, nodes, &opts);
    assert_eq!(c.max_abs_diff(&c_ref), 0.0, "mesh run diverged");
}

#[test]
fn mesh_run_survives_delivery_reorder() {
    let nodes = 2;
    let (spec, config) = problem(nodes);
    let plan = ExecutionPlan::build(&spec, config).expect("plan");
    let a = BlockSparseMatrix::random_from_structure(spec.a.clone(), 42);
    let b_gen = bst_sparse::matrix::random_b_gen(42 ^ 0xB);
    let (c_ref, _) = execute_numeric_with(
        &spec,
        &plan,
        &a,
        &b_gen,
        ExecOptions::builder().build(),
    )
    .expect("reference");

    let reorder = ExecOptions::builder()
        .delivery(DeliveryPolicy::Reorder { seed: 99, window: 8 })
        .build();
    let c = run_mesh(&spec, &plan, nodes, &reorder);
    assert_eq!(c.max_abs_diff(&c_ref), 0.0, "reorder changed the result");
}

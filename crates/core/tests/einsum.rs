//! Integration + property tests for the einsum frontend: generated
//! instances must agree with dense references, the legacy entry points
//! must stay bit-identical to their spec-driven shims, chains must thread
//! screened intermediates correctly through both execution paths, and
//! malformed specs or bindings must come back as typed errors.

use std::sync::Arc;

use bst_contract::api::{contract_abcd, multiply};
use bst_contract::einsum::{Einsum, SpecError};
use bst_contract::{
    BstError, ContractionService, DeviceConfig, GridConfig, PlannerConfig, ServiceBGen,
    ServiceConfig,
};
use bst_sparse::generate::{generate, SyntheticParams};
use bst_sparse::matrix::tile_seed;
use bst_sparse::tensor::{BlockSparseTensor4, Tensor4Meta};
use bst_sparse::{BlockSparseMatrix, MatrixStructure};
use bst_tile::pool::TilePool;
use bst_tile::{Tile, Tiling};
use proptest::prelude::*;

fn cfg(p: usize, q: usize, g: usize) -> PlannerConfig {
    PlannerConfig::paper(
        GridConfig { p, q },
        DeviceConfig {
            gpus_per_node: g,
            gpu_mem_bytes: 1 << 20,
        },
    )
}

/// Dense reference for `A · B` over the engine's own tile accumulate.
fn reference(a: &BlockSparseMatrix, b: &BlockSparseMatrix) -> BlockSparseMatrix {
    let mut c = BlockSparseMatrix::zeros(
        a.structure().row_tiling().clone(),
        b.structure().col_tiling().clone(),
    );
    c.gemm_acc_reference(a, b);
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Single-term einsum on a generated block-sparse instance: the result
    /// agrees with the dense reference and is bit-identical to the legacy
    /// `multiply` entry point (which is now a shim over the same path).
    #[test]
    fn single_term_matches_dense_reference(seed in 0u64..200, q in 1usize..3) {
        let prob = generate(&SyntheticParams {
            m: 20, n: 40, k: 30, density: 0.6, tile_min: 3, tile_max: 8, seed,
        });
        let a = BlockSparseMatrix::random_from_structure(prob.a, seed ^ 1);
        let b = BlockSparseMatrix::random_from_structure(prob.b, seed ^ 2);
        let out = Einsum::new("ik,kj->ij")
            .operand(&a)
            .operand(&b)
            .contract(cfg(1, q, 2))
            .unwrap();
        prop_assert_eq!(out.output_labels(), "ij");
        prop_assert!(out.matrix().max_abs_diff(&reference(&a, &b)) <= 1e-10);
        let legacy = multiply(&a, &b, cfg(1, q, 2)).unwrap();
        prop_assert_eq!(out.matrix().max_abs_diff(&legacy), 0.0);
    }

    /// A two-term chain `A·B·D` with randomized tilings: the screened
    /// intermediate threads between the lowered products and the final
    /// result agrees with the dense reference to 1e-10.
    #[test]
    fn two_term_chain_matches_dense(
        ti in prop::collection::vec(1u64..6, 1..4),
        tj in prop::collection::vec(1u64..6, 1..4),
        tk in prop::collection::vec(1u64..6, 1..4),
        tl in prop::collection::vec(1u64..6, 1..4),
        seed in 0u64..100,
    ) {
        let t = |sizes: &[u64]| Tiling::from_sizes(sizes);
        let a = BlockSparseMatrix::random_from_structure(
            MatrixStructure::dense(t(&ti), t(&tj)), seed ^ 1);
        let b = BlockSparseMatrix::random_from_structure(
            MatrixStructure::dense(t(&tj), t(&tk)), seed ^ 2);
        let d = BlockSparseMatrix::random_from_structure(
            MatrixStructure::dense(t(&tk), t(&tl)), seed ^ 3);
        let out = Einsum::new("ij,jk,kl->il")
            .operand(&a)
            .operand(&b)
            .operand(&d)
            .contract(cfg(1, 1, 1))
            .unwrap();
        prop_assert_eq!(out.reports.len(), 2, "two lowered terms");
        let expect = reference(&reference(&a, &b), &d);
        prop_assert!(out.matrix().max_abs_diff(&expect) <= 1e-10);
    }
}

/// The ABCD contraction as a *generated instance* of the frontend: driving
/// the builder directly with the same spec and operands the legacy
/// `contract_abcd` shim uses must be bit-identical (same plan, same
/// reduction order), and both agree with a dense evaluation.
#[test]
fn abcd_generated_instance_is_bit_identical_to_contract_abcd() {
    let o = Tiling::from_sizes(&[2, 2]);
    let u = Tiling::from_sizes(&[3, 2, 3]);
    let t_meta = Tensor4Meta::new([o.clone(), o.clone(), u.clone(), u.clone()]);
    let t_struct = t_meta.matricise(|_, _, _, _| 1.0);
    let t = BlockSparseTensor4::random_from_structure(t_meta, t_struct, 11);

    let v_meta = Tensor4Meta::new([u.clone(), u.clone(), u.clone(), u.clone()]);
    let v_struct = v_meta.matricise(|_, _, _, _| 1.0);
    let v_gen = |k: usize, j: usize, r: usize, c: usize, pool: &TilePool| {
        Ok(Arc::new(pool.random(r, c, tile_seed(12, k, j))))
    };

    let (r_legacy, _) = contract_abcd(&t, &v_struct, &v_gen, None, cfg(1, 1, 1)).unwrap();

    let out = Einsum::new("ijcd,cdab->ijab")
        .tensor(&t)
        .on_demand_tensor4(&v_meta, &v_struct, &v_gen)
        .contract(cfg(1, 1, 1))
        .unwrap();
    assert_eq!(out.output_labels(), "ijab");
    let r = out.tensor4().unwrap();
    assert_eq!(
        r.matricised().max_abs_diff(r_legacy.matricised()),
        0.0,
        "the generated instance must be bit-identical to contract_abcd"
    );

    // Dense agreement: R(i,j,a,b) = sum_{c,d} T(i,j,c,d) V(c,d,a,b).
    let v_mat = BlockSparseMatrix::from_structure(v_struct.clone(), |k, j, rr, cc| {
        Tile::random(rr, cc, tile_seed(12, k, j))
    });
    let v_tensor = BlockSparseTensor4::from_structure(
        Tensor4Meta::new([u.clone(), u.clone(), u.clone(), u.clone()]),
        v_mat.structure().clone(),
        |t0, t1, t2, t3, _r, _c| v_mat.tile(t0 * 3 + t1, t2 * 3 + t3).unwrap().clone(),
    );
    for (i, j, a, b) in [(0u64, 1, 2, 3), (3, 0, 7, 5), (1, 2, 0, 0)] {
        let mut expect = 0.0;
        for c in 0..8 {
            for d in 0..8 {
                expect += t.get(i, j, c, d) * v_tensor.get(c, d, a, b);
            }
        }
        let got = r.get(i, j, a, b);
        assert!((got - expect).abs() < 1e-10, "R({i},{j},{a},{b}) = {got}, expected {expect}");
    }
}

/// The swapped orientation: `"jk,ij->ik"` has no direct lowering, so the
/// frontend flips the product to `next · acc` — keeping the first operand
/// stationary, which is exactly what an on-demand binding needs.
#[test]
fn swapped_orientation_keeps_first_operand_stationary() {
    let prob = generate(&SyntheticParams {
        m: 16, n: 24, k: 24, density: 0.8, tile_min: 3, tile_max: 6, seed: 7,
    });
    let a = BlockSparseMatrix::random_from_structure(prob.a.clone(), 1);
    let b_gen = |k: usize, j: usize, r: usize, c: usize, pool: &TilePool| {
        Ok(Arc::new(pool.random(r, c, tile_seed(9, k, j))))
    };
    let out = Einsum::new("jk,ij->ik")
        .on_demand(&prob.b, &b_gen)
        .operand(&a)
        .contract(cfg(1, 1, 1))
        .unwrap();
    assert_eq!(out.output_labels(), "ik");
    let b = BlockSparseMatrix::from_structure(prob.b.clone(), |k, j, rr, cc| {
        Tile::random(rr, cc, tile_seed(9, k, j))
    });
    assert!(out.matrix().max_abs_diff(&reference(&a, &b)) <= 1e-10);
}

/// A chain routed through a [`ContractionService`] is bit-identical to the
/// direct path and reports per-term service accounting.
#[test]
fn chain_through_service_is_bit_identical_to_direct() {
    let ti = Tiling::from_sizes(&[4, 3]);
    let tj = Tiling::from_sizes(&[3, 4]);
    let tk = Tiling::from_sizes(&[5, 2]);
    let tl = Tiling::from_sizes(&[2, 5]);
    let a = BlockSparseMatrix::random_from_structure(MatrixStructure::dense(ti, tj.clone()), 31);
    let b = BlockSparseMatrix::random_from_structure(MatrixStructure::dense(tj, tk.clone()), 32);
    let d_struct = MatrixStructure::dense(tk, tl);
    let d_gen: ServiceBGen = Arc::new(|k, j, r, c, pool: &TilePool| {
        Ok(Arc::new(pool.random(r, c, tile_seed(33, k, j))))
    });

    let build = || {
        Einsum::new("ij,jk,kl->il")
            .operand(&a)
            .keyed(0xA1)
            .operand(&b)
            .keyed(0xB2)
            .on_demand_shared(&d_struct, Arc::clone(&d_gen))
            .keyed(0xD3)
    };
    let direct = build().contract(cfg(1, 1, 1)).unwrap();

    let service = ContractionService::start(ServiceConfig::default());
    let served = build().contract_on(&service, cfg(1, 1, 1)).unwrap();
    assert_eq!(served.matrix().max_abs_diff(direct.matrix()), 0.0);
    assert_eq!(served.request_stats.len(), 2, "one service request per term");
    assert_eq!(direct.request_stats.len(), 0);
}

/// A borrowed on-demand generator cannot be shipped to service workers; the
/// service path rejects it with a typed error instead of crossing the
/// lifetime boundary.
#[test]
fn service_path_rejects_borrowed_generators() {
    let prob = generate(&SyntheticParams {
        m: 12, n: 16, k: 16, density: 1.0, tile_min: 3, tile_max: 5, seed: 8,
    });
    let a = BlockSparseMatrix::random_from_structure(prob.a.clone(), 1);
    let b_gen = |k: usize, j: usize, r: usize, c: usize, pool: &TilePool| {
        Ok(Arc::new(pool.random(r, c, tile_seed(9, k, j))))
    };
    let service = ContractionService::start(ServiceConfig::default());
    let err = Einsum::new("ik,kj->ij")
        .operand(&a)
        .on_demand(&prob.b, &b_gen)
        .contract_on(&service, cfg(1, 1, 1))
        .unwrap_err();
    assert!(matches!(err, BstError::Service(_)), "got {err}");
}

/// Spec and binding rejections surface as typed [`BstError::Spec`] values:
/// repeated output modes, rank-mismatched bindings, unknown output
/// indices, wrong operand counts, disagreeing shared tilings, and
/// orientations the transpose-free lowering cannot realise.
#[test]
fn invalid_specs_and_bindings_are_typed_errors() {
    let prob = generate(&SyntheticParams {
        m: 12, n: 16, k: 16, density: 1.0, tile_min: 3, tile_max: 5, seed: 9,
    });
    let a = BlockSparseMatrix::random_from_structure(prob.a.clone(), 1);
    let b = BlockSparseMatrix::random_from_structure(prob.b.clone(), 2);
    let config = cfg(1, 1, 1);

    let spec_err = |e: Result<_, BstError>| match e.unwrap_err() {
        BstError::Spec(s) => s,
        other => panic!("expected BstError::Spec, got {other}"),
    };

    // Repeated output modes.
    let e = spec_err(Einsum::new("ik,kj->jj").operand(&a).operand(&b).contract(config));
    assert!(matches!(e, SpecError::RepeatedIndex { index: 'j', .. }), "{e}");

    // Unknown output index.
    let e = spec_err(Einsum::new("ik,kj->iz").operand(&a).operand(&b).contract(config));
    assert_eq!(e, SpecError::UnknownOutputIndex { index: 'z' });

    // A rank-4 spec term bound to a rank-2 operand.
    let e = spec_err(Einsum::new("ijcd,cdab->ijab").operand(&a).operand(&b).contract(config));
    assert_eq!(e, SpecError::RankMismatch { term: 0, spec_rank: 4, operand_rank: 2 });

    // Operand count disagrees with the spec.
    let e = spec_err(Einsum::new("ik,kj->ij").operand(&a).contract(config));
    assert_eq!(e, SpecError::OperandCount { expected: 2, got: 1 });

    // A shared index whose tilings disagree between its two terms.
    let b_bad = BlockSparseMatrix::random_from_structure(
        MatrixStructure::dense(
            Tiling::uniform(prob.b.row_tiling().extent(), 4),
            prob.b.col_tiling().clone(),
        ),
        2,
    );
    let e = spec_err(Einsum::new("ik,kj->ij").operand(&a).operand(&b_bad).contract(config));
    assert!(matches!(e, SpecError::TilingMismatch { index: 'k', .. }), "{e}");

    // The requested output order would need a result transpose.
    let e = spec_err(Einsum::new("ik,kj->ji").operand(&a).operand(&b).contract(config));
    assert!(matches!(e, SpecError::OutputOrder { .. }), "{e}");

    // An on-demand operand forced onto the moving (A) side.
    let b_gen = |k: usize, j: usize, r: usize, c: usize, pool: &TilePool| {
        Ok(Arc::new(pool.random(r, c, tile_seed(9, k, j))))
    };
    let e = spec_err(
        Einsum::new("ik,kj->ij").on_demand(&prob.a, &b_gen).operand(&b).contract(config),
    );
    assert!(matches!(e, SpecError::Unlowerable { term: 0, .. }), "{e}");
}

/// Regression for the `contract_abcd` metadata fix: a `v_structure` whose
/// tilings disagree with `T`'s unoccupied modes used to silently mislabel
/// the result's column tilings; it is now a typed rejection.
#[test]
fn contract_abcd_rejects_mismatched_v_tilings() {
    let o = Tiling::from_sizes(&[2, 2]);
    let u = Tiling::from_sizes(&[3, 2, 3]);
    let t_meta = Tensor4Meta::new([o.clone(), o.clone(), u.clone(), u.clone()]);
    let t_struct = t_meta.matricise(|_, _, _, _| 1.0);
    let t = BlockSparseTensor4::random_from_structure(t_meta, t_struct, 11);

    // Same 64x64 element space, but tiled uniformly instead of with the
    // fused (u,u) tiling the T frame implies.
    let v_bad = MatrixStructure::dense(Tiling::uniform(64, 8), Tiling::uniform(64, 8));
    let v_gen = |k: usize, j: usize, r: usize, c: usize, pool: &TilePool| {
        Ok(Arc::new(pool.random(r, c, tile_seed(12, k, j))))
    };
    let err = contract_abcd(&t, &v_bad, &v_gen, None, cfg(1, 1, 1)).unwrap_err();
    match err {
        BstError::Spec(SpecError::MatricisationMismatch { term: 1, .. }) => {}
        other => panic!("expected MatricisationMismatch on term 1, got {other}"),
    }
}

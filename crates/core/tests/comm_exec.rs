//! End-to-end tests of the numeric engine over the `bst-comm` transport:
//! multi-node runs against the dense reference, bit-identity across delivery
//! policies, dropped-message recovery, and the transport trace invariants.

use bst_contract::exec::execute_numeric_with;
use bst_contract::{
    validate_trace_invariants, DeliveryPolicy, DeviceConfig, ExecOptions, ExecReport,
    ExecutionPlan, FaultPlan, GridConfig, LinkShaper, PlannerConfig, ProblemSpec,
};
use bst_runtime::trace::TracePhase;
use bst_sparse::generate::{generate, SyntheticParams};
use bst_sparse::matrix::tile_seed;
use bst_sparse::BlockSparseMatrix;

const GPU_MEM: u64 = 1 << 21;

fn tiny_spec() -> ProblemSpec {
    let prob = generate(&SyntheticParams {
        m: 160,
        n: 1280,
        k: 1280,
        density: 0.6,
        tile_min: 8,
        tile_max: 24,
        seed: 42,
    });
    ProblemSpec::new(prob.a, prob.b, None)
}

fn run_nodes(spec: &ProblemSpec, nodes: usize, opts: ExecOptions) -> (BlockSparseMatrix, ExecReport) {
    let config = PlannerConfig::paper(
        GridConfig::from_nodes(nodes, 1),
        DeviceConfig {
            gpus_per_node: 2,
            gpu_mem_bytes: GPU_MEM,
        },
    );
    let plan = ExecutionPlan::build(spec, config).expect("plan");
    let a = BlockSparseMatrix::random_from_structure(spec.a.clone(), 42);
    let b_gen = move |k: usize, j: usize, r: usize, c: usize, pool: &bst_tile::TilePool| {
        Ok(std::sync::Arc::new(pool.random(r, c, tile_seed(42 ^ 0xB, k, j))))
    };
    execute_numeric_with(spec, &plan, &a, &b_gen, opts).expect("execution")
}

fn reference(spec: &ProblemSpec) -> BlockSparseMatrix {
    let a = BlockSparseMatrix::random_from_structure(spec.a.clone(), 42);
    let b = BlockSparseMatrix::from_structure(spec.b.clone(), |k, j, r, c| {
        bst_tile::Tile::random(r, c, tile_seed(42 ^ 0xB, k, j))
    });
    let mut c_ref =
        BlockSparseMatrix::zeros(spec.a.row_tiling().clone(), spec.b.col_tiling().clone());
    c_ref.gemm_acc_reference(&a, &b);
    c_ref
}

/// A 4-node run over the real transport matches the dense reference, and the
/// A broadcast actually crossed the fabric.
#[test]
fn multi_node_run_matches_reference() {
    let spec = tiny_spec();
    let (c, report) = run_nodes(&spec, 4, ExecOptions::default());
    let diff = c.max_abs_diff(&reference(&spec));
    assert!(diff <= 1e-10, "diff vs reference {diff:.3e}");
    let sent: u64 = report.comm.iter().map(|s| s.sent_bytes).sum();
    assert!(sent > 0, "no bytes crossed the fabric on a 4-node run");
    assert_eq!(report.comm.len(), 4);
    assert_eq!(report.host_peak_bytes.len(), 4);
}

/// The engine is bit-deterministic across runs and across every transport
/// policy: FIFO, seeded reorder, and a shaped link all produce the *same
/// bytes* — delivery timing is numerically unobservable (the per-C-tile
/// Gemm chain plus the sorted reduction fix the floating-point order).
#[test]
fn delivery_policy_is_numerically_unobservable() {
    let spec = tiny_spec();
    let (c_fifo, _) = run_nodes(&spec, 4, ExecOptions::default());
    let (c_again, _) = run_nodes(&spec, 4, ExecOptions::default());
    assert_eq!(c_fifo.max_abs_diff(&c_again), 0.0, "run-to-run determinism");
    let (c_reorder, _) = run_nodes(
        &spec,
        4,
        ExecOptions::builder()
            .delivery(DeliveryPolicy::Reorder { seed: 0xBEEF, window: 6 })
            .build(),
    );
    assert_eq!(c_fifo.max_abs_diff(&c_reorder), 0.0, "reorder must be unobservable");
    let (c_shaped, _) = run_nodes(
        &spec,
        4,
        ExecOptions::builder().link_shaper(LinkShaper::summit_nic()).build(),
    );
    assert_eq!(c_fifo.max_abs_diff(&c_shaped), 0.0, "shaping must be unobservable");
}

/// A 1-node grid (no cross-node traffic at all) produces the same bytes as
/// the 4-node distributed run: per-node private stores plus the fabric are
/// numerically transparent.
#[test]
fn single_node_and_multi_node_agree() {
    let spec = tiny_spec();
    let (c1, r1) = run_nodes(&spec, 1, ExecOptions::default());
    let (c4, _) = run_nodes(&spec, 4, ExecOptions::default());
    let diff = c1.max_abs_diff(&reference(&spec));
    assert!(diff <= 1e-10, "single-node diff vs reference {diff:.3e}");
    let diff14 = c1.max_abs_diff(&c4);
    assert!(diff14 <= 1e-10, "1-node vs 4-node diff {diff14:.3e}");
    // Loopback-only run: nothing crossed a NIC.
    assert_eq!(r1.comm.iter().map(|s| s.sent_bytes).sum::<u64>(), 0);
}

/// Dropped `SendA` messages (the transport fault site) recover through
/// re-request: the retried send re-reads the still-unconsumed tile, the
/// receiver deduplicates, and the result matches the fault-free run.
#[test]
fn dropped_messages_recover_bit_identically() {
    let spec = tiny_spec();
    let (c_clean, _) = run_nodes(&spec, 4, ExecOptions::default());
    // Send-site drops only, high enough to fire on a tiny run.
    let plan = FaultPlan {
        seed: 7,
        send_rate: 0.3,
        ..FaultPlan::default()
    };
    let opts = ExecOptions::builder().tracing(true).fault_plan(plan).build();
    let (c_faulted, report) = run_nodes(&spec, 4, opts);
    let r = &report.recovery;
    assert!(r.injected_send > 0, "30% send-drop rate injected nothing");
    let dropped: u64 = report.comm.iter().map(|s| s.dropped_msgs).sum();
    assert_eq!(dropped, r.injected_send, "every injected drop is a wire-level drop");
    let dups: u64 = report.comm.iter().map(|s| s.duplicate_msgs).sum();
    assert_eq!(dups, 0, "a dropped frame never arrives, so no duplicates");
    let diff = c_faulted.max_abs_diff(&c_clean);
    assert!(diff <= 1e-10, "recovered result diverged by {diff:.3e}");
    assert_eq!(diff, 0.0, "recovery is bit-identical under deterministic ordering");
    let violations = validate_trace_invariants(&report, opts, GPU_MEM);
    assert!(violations.is_empty(), "{violations:?}");
}

/// Traced multi-node runs carry the transport event stream and satisfy the
/// trace invariants — including "`Received(k)` happens before the first
/// device load of tile k" (invariant 5).
#[test]
fn traced_multi_node_run_satisfies_comm_invariants() {
    let spec = tiny_spec();
    let opts = ExecOptions::builder().tracing(true).build();
    let (_, report) = run_nodes(&spec, 4, opts);
    let violations = validate_trace_invariants(&report, opts, GPU_MEM);
    assert!(violations.is_empty(), "{violations:?}");
    let trace = report.trace.as_ref().expect("traced");
    let sent = trace.comm_events.iter().filter(|e| e.phase == TracePhase::Sent).count();
    let recv = trace
        .comm_events
        .iter()
        .filter(|e| e.phase == TracePhase::Received)
        .count();
    assert!(sent > 0, "no Sent events on a 4-node traced run");
    assert_eq!(sent, recv, "every Sent frame was Received (no faults)");
    // The RecvA tasks exist in the task trace, one per delivering hop.
    let recva = trace.records.iter().filter(|r| r.kind == "RecvA").count();
    assert!(recva > 0, "lowering emitted no RecvA tasks");
    // The Chrome export renders the transport stream on the per-node NIC
    // tracks without breaking the document.
    let json = trace.chrome_trace_json();
    assert!(json.contains("\"nic\""), "no nic track in the Chrome export");
}

#![warn(missing_docs)]

//! The paper's contribution: the distributed-memory multi-GPU block-sparse
//! matrix-product algorithm (`C ← C + A·B` with a huge stationary `B`).
//!
//! The algorithm (paper §3.2), for a `p × q` process grid where each node
//! has `g` GPUs:
//!
//! 1. `A`/`C` are sliced by tile row across the `p` grid rows
//!    (`i mod p = k`); each grid row computes `C(k) ← C(k) + A(k)·B`
//!    independently, with its own replica of `B`'s columns.
//! 2. **Column assignment** ([`assign`], §3.2.1) — within a grid row, the
//!    tile columns of `B` are dealt to the `q` nodes by non-decreasing flop
//!    weight in a *mirrored cyclic* order.
//! 3. **Block partitioning** ([`partition`], §3.2.2) — on each node, the
//!    assigned columns are packed into *blocks* that fit **half** a GPU's
//!    memory (B column + local C tiles), by a size-descending *worst-fit*
//!    heuristic; blocks run one after the other on their GPU, so every B/C
//!    tile is transferred to the GPU exactly once.
//! 4. **Chunk segmentation** ([`chunk`], §3.2.3) — within a block, the
//!    needed tiles of `A` stream through a **quarter** of the GPU memory in
//!    chunks (one tile per participating row of `A`, added cyclically),
//!    with the last quarter reserved for prefetching the next chunk.
//!
//! The [`plan`] module runs all of the above as an *inspector* producing an
//! [`plan::ExecutionPlan`] — the same inspector/executor split the paper
//! implements over PaRSEC's PTG — and the [`engine`] module tree executes a
//! plan numerically on the `bst-runtime` dataflow runtime (with [`exec`] as
//! its signature-stable facade). The performance simulator (`bst-sim`)
//! replays the same inspector lowering against a Summit platform model.
//! For iterative solvers that issue the same contraction shape repeatedly,
//! the [`service`] module keeps a persistent engine: plans and generated B
//! tiles are cached across requests behind a bounded, concurrent frontend.

pub mod api;
pub mod assign;
pub mod chunk;
pub mod config;
pub mod einsum;
pub mod engine;
pub mod error;
pub mod exec;
pub mod fault;
pub mod partition;
pub mod plan;
pub mod service;
pub mod spec;
pub mod stationary_c;

pub use config::{DeviceConfig, GridConfig, PlanError, PlannerConfig};
pub use einsum::{Einsum, EinsumOutcome, EinsumSpec, SpecError};
pub use error::{BstError, ExecError, GenError, ServiceError};
pub use exec::{
    validate_trace_invariants, Collectives, ExecOptions, ExecOptionsBuilder, ExecReport,
    ExecTraceData, KernelSelect, RecoveryStats,
};
pub use engine::report::BCacheRunStats;
pub use fault::{FaultPlan, FaultSite, RetryPolicy};
pub use plan::{ExecutionPlan, PlanStats};
pub use service::{
    ContractionRequest, ContractionService, PendingContraction, RequestOutcome, RequestStats,
    ServiceBGen, ServiceConfig, ServiceStats,
};
pub use spec::ProblemSpec;
// The transport knob types [`ExecOptions`] carries, so callers configuring a
// run don't need a direct `bst-runtime` dependency.
pub use bst_runtime::comm::{DeliveryPolicy, LinkClass, LinkShaper, NodeCommStats, Topology};

//! The *stationary-C* algorithm — the paper's reference \[22\] (Herault et
//! al., "Generic matrix multiplication for multi-GPU accelerated
//! distributed-memory platforms over PaRSEC", ScalA@SC 2019).
//!
//! This is the algorithm the paper measures itself against on square dense
//! problems: "Comparing with the results that were obtained in \[22\] on the
//! same machine ... 80% to 90% of the GEMM-peak should be achievable. This
//! difference is due to the problem shape, which required a different
//! algorithm." Here:
//!
//! * `C` is 2D-cyclic over the process grid and *stays resident*: each node
//!   packs its `C` tiles into square-ish **C-blocks** that fit half a GPU;
//! * for each C-block, the needed `A` row panels and `B` column panels
//!   stream through the remaining memory in chunks over the inner index
//!   `k`, letting long chains of GEMMs accumulate into the resident `C`;
//! * every `C` tile is written back exactly once, but `B` tiles are
//!   re-transferred once per C-block *row* that needs them — harmless for
//!   square dense problems, catastrophic when `B` is 100× larger than `C`
//!   (the paper's §3.1 rationale for keeping `B` stationary instead).
//!
//! The planner here produces a [`StationaryCPlan`] that `bst-sim` replays
//! with the same machine model, and that a sequential reference executor
//! validates numerically.

use crate::config::{PlanError, PlannerConfig};
use crate::spec::ProblemSpec;
use bst_sparse::structure::ELEM_BYTES;

/// One C-block: a rectangle of tile rows × tile columns of `C` resident on
/// a GPU while its inner products stream through.
#[derive(Clone, Debug)]
pub struct CBlock {
    /// Tile rows of `C` in this block.
    pub rows: Vec<u32>,
    /// Tile columns of `C` in this block.
    pub cols: Vec<u32>,
    /// Resident C bytes.
    pub c_bytes: u64,
    /// Chunks over the inner index: each chunk is a set of `k` values whose
    /// A/B panels are co-resident.
    pub k_chunks: Vec<KChunk>,
}

/// One streaming chunk: the inner indices whose A and B tiles are loaded
/// together.
#[derive(Clone, Debug)]
pub struct KChunk {
    /// Inner tile indices in the chunk.
    pub ks: Vec<u32>,
    /// Bytes of the A tiles (block rows × ks).
    pub a_bytes: u64,
    /// Bytes of the B tiles (ks × block cols).
    pub b_bytes: u64,
    /// Number of A tiles streamed by this chunk.
    pub a_tiles: u64,
    /// Number of B tiles streamed by this chunk.
    pub b_tiles: u64,
}

/// Per-GPU sequence of C-blocks.
#[derive(Clone, Debug, Default)]
pub struct StationaryCGpuPlan {
    /// Blocks in execution order.
    pub blocks: Vec<CBlock>,
}

/// The full stationary-C plan.
#[derive(Clone, Debug)]
pub struct StationaryCPlan {
    /// Configuration used.
    pub config: PlannerConfig,
    /// Per node (row-major over the grid), per GPU.
    pub nodes: Vec<Vec<StationaryCGpuPlan>>,
}

impl StationaryCPlan {
    /// Builds the plan: 2D-cyclic `C` ownership, square-ish C-blocks under
    /// half a GPU, greedy k-chunking of the A/B panels under a quarter
    /// (plus a quarter of prefetch, as in the B-stationary algorithm).
    pub fn build(spec: &ProblemSpec, config: PlannerConfig) -> Result<Self, PlanError> {
        let (p, q) = (config.grid.p, config.grid.q);
        let g = config.device.gpus_per_node;
        let block_budget = config.block_budget();
        let chunk_budget = config.chunk_budget();

        let mut nodes = Vec::with_capacity(p * q);
        for pr in 0..p {
            for pc in 0..q {
                // This node's C tiles (2D cyclic).
                let my_rows: Vec<u32> = (pr..spec.tile_rows())
                    .step_by(p)
                    .map(|i| i as u32)
                    .collect();
                let my_cols: Vec<u32> = (pc..spec.tile_cols())
                    .step_by(q)
                    .map(|j| j as u32)
                    .collect();

                // Square-ish blocking. Two constraints pick the block
                // count: the C rectangle must fit the budget, and the node
                // must produce enough blocks to keep all its GPUs busy
                // (≥ 2 per GPU for pipelining). Within that, blocks stay as
                // square as possible — maximum data reuse per resident byte.
                let rows_elems: u64 = my_rows
                    .iter()
                    .map(|&i| spec.a.row_tiling().size(i as usize))
                    .sum();
                let cols_elems: u64 = my_cols
                    .iter()
                    .map(|&j| spec.b.col_tiling().size(j as usize))
                    .sum();
                let local_bytes = rows_elems * cols_elems * ELEM_BYTES;
                let blocks_needed = (local_bytes.div_ceil(block_budget.max(1)) as usize)
                    .max(2 * g)
                    .max(1);
                let aspect = rows_elems.max(1) as f64 / cols_elems.max(1) as f64;
                let br = ((blocks_needed as f64 * aspect).sqrt().round() as usize)
                    .clamp(1, my_rows.len().max(1));
                let bc = (blocks_needed.div_ceil(br)).clamp(1, my_cols.len().max(1));
                let rows_per_block = my_rows.len().div_ceil(br).max(1);
                let cols_per_block = my_cols.len().div_ceil(bc).max(1);

                // Even partition into br x bc groups (a ragged tail would
                // leave some GPUs with far smaller blocks than others).
                let even_split = |v: &[u32], parts: usize| -> Vec<Vec<u32>> {
                    let parts = parts.clamp(1, v.len().max(1));
                    (0..parts)
                        .map(|p| v[p * v.len() / parts..(p + 1) * v.len() / parts].to_vec())
                        .filter(|s| !s.is_empty())
                        .collect()
                };
                let _ = (rows_per_block, cols_per_block);
                let mut gpu_plans: Vec<StationaryCGpuPlan> = vec![StationaryCGpuPlan::default(); g];
                let mut next_gpu = 0usize;
                for rchunk in even_split(&my_rows, br) {
                    for cchunk in even_split(&my_cols, bc) {
                        // Irregular tiles can overshoot the mean-size
                        // estimate; split rectangles until they fit.
                        let mut pending: Vec<(Vec<u32>, Vec<u32>)> =
                            vec![(rchunk.to_vec(), cchunk.to_vec())];
                        while let Some((rs, cs)) = pending.pop() {
                            match Self::build_block(spec, &rs, &cs, block_budget, chunk_budget) {
                                Ok(block) => {
                                    if block.k_chunks.is_empty() && block.c_bytes == 0 {
                                        continue;
                                    }
                                    gpu_plans[next_gpu].blocks.push(block);
                                    next_gpu = (next_gpu + 1) % g;
                                }
                                Err(e) => {
                                    // Split along the longer side; a 1 x 1
                                    // rectangle that still overflows is a
                                    // genuine capacity failure.
                                    if cs.len() > 1 {
                                        let mid = cs.len() / 2;
                                        pending.push((rs.clone(), cs[..mid].to_vec()));
                                        pending.push((rs, cs[mid..].to_vec()));
                                    } else if rs.len() > 1 {
                                        let mid = rs.len() / 2;
                                        pending.push((rs[..mid].to_vec(), cs.clone()));
                                        pending.push((rs[mid..].to_vec(), cs));
                                    } else {
                                        return Err(e);
                                    }
                                }
                            }
                        }
                    }
                }
                nodes.push(gpu_plans);
            }
        }
        Ok(Self { config, nodes })
    }

    fn build_block(
        spec: &ProblemSpec,
        rows: &[u32],
        cols: &[u32],
        block_budget: u64,
        chunk_budget: u64,
    ) -> Result<CBlock, PlanError> {
        // Resident C bytes: kept destinations with at least one contribution.
        let mut c_bytes = 0u64;
        for &i in rows {
            for &j in cols {
                if spec.c_kept(i as usize, j as usize) {
                    c_bytes += spec.a.row_tiling().size(i as usize)
                        * spec.b.col_tiling().size(j as usize)
                        * ELEM_BYTES;
                }
            }
        }
        if c_bytes > block_budget {
            return Err(PlanError::ColumnTooLarge {
                col: cols.first().copied().unwrap_or(0) as usize,
                bytes: c_bytes,
                budget: block_budget,
            });
        }

        // Greedy k-chunking: walk k, accumulating the A panel (rows × k)
        // and B panel (k × cols) bytes until the chunk budget fills. The
        // effective budget is capped so every block has ≥ 4 chunks — the
        // deep pipeline of [22] needs several stream units in flight.
        let mut total_stream = 0u64;
        let mut max_k_panel = 0u64;
        for k in 0..spec.tile_inner() {
            let a: u64 = rows
                .iter()
                .filter(|&&i| spec.a.shape().is_nonzero(i as usize, k))
                .map(|&i| spec.a.tile_area(i as usize, k) * ELEM_BYTES)
                .sum();
            let b: u64 = cols
                .iter()
                .filter(|&&j| spec.b.shape().is_nonzero(k, j as usize))
                .map(|&j| {
                    spec.b.row_tiling().size(k)
                        * spec.b.col_tiling().size(j as usize)
                        * ELEM_BYTES
                })
                .sum();
            total_stream += a + b;
            max_k_panel = max_k_panel.max(a + b);
        }
        // The cap must still admit the largest single k panel (the real
        // capacity check against `chunk_budget` happens below).
        let chunk_budget = chunk_budget.min((total_stream / 4).max(max_k_panel).max(1));
        let mut k_chunks = Vec::new();
        let mut cur = KChunk {
            ks: Vec::new(),
            a_bytes: 0,
            b_bytes: 0,
            a_tiles: 0,
            b_tiles: 0,
        };
        for k in 0..spec.tile_inner() {
            let mut a_k = 0u64;
            let mut a_t = 0u64;
            for &i in rows.iter().filter(|&&i| spec.a.shape().is_nonzero(i as usize, k)) {
                a_k += spec.a.tile_area(i as usize, k) * ELEM_BYTES;
                a_t += 1;
            }
            let mut b_k = 0u64;
            let mut b_t = 0u64;
            for &j in cols.iter().filter(|&&j| spec.b.shape().is_nonzero(k, j as usize)) {
                b_k += spec.b.row_tiling().size(k)
                    * spec.b.col_tiling().size(j as usize)
                    * ELEM_BYTES;
                b_t += 1;
            }
            if a_k + b_k == 0 {
                continue;
            }
            if a_k + b_k > chunk_budget {
                return Err(PlanError::TileTooLarge {
                    row: rows.first().copied().unwrap_or(0) as usize,
                    col: k,
                    bytes: a_k + b_k,
                    budget: chunk_budget,
                });
            }
            if cur.a_bytes + cur.b_bytes + a_k + b_k > chunk_budget && !cur.ks.is_empty() {
                k_chunks.push(std::mem::replace(
                    &mut cur,
                    KChunk {
                        ks: Vec::new(),
                        a_bytes: 0,
                        b_bytes: 0,
                        a_tiles: 0,
                        b_tiles: 0,
                    },
                ));
            }
            cur.ks.push(k as u32);
            cur.a_bytes += a_k;
            cur.b_bytes += b_k;
            cur.a_tiles += a_t;
            cur.b_tiles += b_t;
        }
        if !cur.ks.is_empty() {
            k_chunks.push(cur);
        }
        Ok(CBlock {
            rows: rows.to_vec(),
            cols: cols.to_vec(),
            c_bytes,
            k_chunks,
        })
    }

    /// Enumerates every GEMM task of the plan.
    pub fn for_each_task(&self, spec: &ProblemSpec, mut f: impl FnMut(u32, u32, u32)) {
        for gpu_plans in &self.nodes {
            for gp in gpu_plans {
                for block in &gp.blocks {
                    for chunk in &block.k_chunks {
                        for &k in &chunk.ks {
                            for &i in &block.rows {
                                if !spec.a.shape().is_nonzero(i as usize, k as usize) {
                                    continue;
                                }
                                for &j in &block.cols {
                                    if spec.b.shape().is_nonzero(k as usize, j as usize)
                                        && spec.c_kept(i as usize, j as usize)
                                    {
                                        f(i, k, j);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Aggregate volumes: `(a_h2d, b_h2d, c_bytes)` — the tell-tale metric
    /// is `b_h2d`, which counts each `B` tile once per C-block that streams
    /// it.
    pub fn volumes(&self) -> (u64, u64, u64) {
        let mut a = 0u64;
        let mut b = 0u64;
        let mut c = 0u64;
        for gpu_plans in &self.nodes {
            for gp in gpu_plans {
                for block in &gp.blocks {
                    c += block.c_bytes;
                    for chunk in &block.k_chunks {
                        a += chunk.a_bytes;
                        b += chunk.b_bytes;
                    }
                }
            }
        }
        (a, b, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeviceConfig, GridConfig};
    use bst_sparse::generate::{generate, SyntheticParams};
    use bst_sparse::BlockSparseMatrix;
    use bst_tile::gemm::gemm_blocked;
    use bst_tile::Tile;

    fn cfg(p: usize, q: usize, g: usize, mem: u64) -> PlannerConfig {
        PlannerConfig::paper(
            GridConfig { p, q },
            DeviceConfig {
                gpus_per_node: g,
                gpu_mem_bytes: mem,
            },
        )
    }

    fn spec(m: u64, nk: u64, density: f64, seed: u64) -> ProblemSpec {
        let prob = generate(&SyntheticParams {
            m,
            n: nk,
            k: nk,
            density,
            tile_min: 4,
            tile_max: 10,
            seed,
        });
        ProblemSpec::new(prob.a, prob.b, None)
    }

    /// Sequential reference executor over the plan's own task enumeration.
    fn execute_sequential(spec: &ProblemSpec, plan: &StationaryCPlan, seed: u64) -> BlockSparseMatrix {
        let a = BlockSparseMatrix::random_from_structure(spec.a.clone(), seed);
        let b = BlockSparseMatrix::random_from_structure(spec.b.clone(), seed ^ 0xB);
        let mut c = BlockSparseMatrix::zeros(
            spec.a.row_tiling().clone(),
            spec.b.col_tiling().clone(),
        );
        plan.for_each_task(spec, |i, k, j| {
            let at = a.tile(i as usize, k as usize).unwrap();
            let bt = b.tile(k as usize, j as usize).unwrap();
            let mut ct = match c.tile(i as usize, j as usize) {
                Some(t) => t.clone(),
                None => Tile::zeros(at.rows(), bt.cols()),
            };
            gemm_blocked(1.0, at, bt, &mut ct);
            c.insert_tile(i as usize, j as usize, ct);
        });
        c
    }

    #[test]
    fn covers_every_triple_exactly_once() {
        let s = spec(40, 60, 0.6, 3);
        let plan = StationaryCPlan::build(&s, cfg(2, 2, 2, 64 << 10)).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut count = 0u64;
        plan.for_each_task(&s, |i, k, j| {
            assert!(seen.insert((i, k, j)), "triple ({i},{k},{j}) twice");
            count += 1;
        });
        let expect = bst_sparse::structure::gemm_task_count(&s.a, &s.b, None);
        assert_eq!(count, expect);
    }

    #[test]
    fn sequential_execution_matches_reference() {
        let s = spec(30, 50, 0.5, 7);
        let plan = StationaryCPlan::build(&s, cfg(1, 2, 2, 32 << 10)).unwrap();
        let c = execute_sequential(&s, &plan, 7);
        let a = BlockSparseMatrix::random_from_structure(s.a.clone(), 7);
        let b = BlockSparseMatrix::random_from_structure(s.b.clone(), 7 ^ 0xB);
        let mut c_ref = BlockSparseMatrix::zeros(
            s.a.row_tiling().clone(),
            s.b.col_tiling().clone(),
        );
        c_ref.gemm_acc_reference(&a, &b);
        assert!(c.max_abs_diff(&c_ref) < 1e-9);
    }

    #[test]
    fn memory_budgets_respected() {
        let s = spec(40, 60, 1.0, 5);
        let config = cfg(1, 1, 2, 24 << 10);
        let plan = StationaryCPlan::build(&s, config).unwrap();
        for gpu_plans in &plan.nodes {
            for gp in gpu_plans {
                for block in &gp.blocks {
                    assert!(block.c_bytes <= config.block_budget());
                    for chunk in &block.k_chunks {
                        assert!(chunk.a_bytes + chunk.b_bytes <= config.chunk_budget());
                    }
                }
            }
        }
    }

    #[test]
    fn b_reload_explodes_for_short_and_wide() {
        // Square dense: B streamed ~once. Short-and-wide (the CCSD shape):
        // the C row space is tiny, so blocks split by columns and B is
        // still streamed ~once — but C-stationary loses its reuse edge; the
        // real explosion is in A, streamed once per C-block column group.
        let square = spec(60, 60, 1.0, 2);
        let plan_sq = StationaryCPlan::build(&square, cfg(1, 1, 1, 64 << 10)).unwrap();
        let (_a_sq, b_sq, _) = plan_sq.volumes();
        // B within 2x of its size: good reuse.
        assert!(b_sq <= 2 * square.b.bytes(), "B streamed {b_sq} vs {}", square.b.bytes());

        let wide = spec(16, 160, 1.0, 2);
        let plan_w = StationaryCPlan::build(&wide, cfg(1, 1, 1, 8 << 10)).unwrap();
        let (a_w, _b_w, _) = plan_w.volumes();
        // A re-streamed many times across the many column-blocks.
        assert!(
            a_w >= 3 * wide.a.bytes(),
            "expected heavy A re-streaming: {a_w} vs {}",
            wide.a.bytes()
        );
    }
}

//! Einsum spec strings: parsing and index-level validation.
//!
//! The grammar is the familiar contraction subset of numpy/TiledArray
//! einsum notation, restricted to what the planned engine can lower:
//!
//! ```text
//! spec    := inputs "->" output
//! inputs  := term ("," term)+
//! term    := index{2} | index{4}        (matrix or order-4 tensor)
//! output  := index{2} | index{4}
//! index   := one ASCII letter
//! ```
//!
//! Index semantics follow the einsum convention with two deliberate
//! restrictions, both reported as typed [`SpecError`]s rather than silently
//! producing an unplanned evaluation path:
//!
//! * an index appearing in **one** input must appear in the output (pure
//!   reductions like `"ij->i"` have no planned-product lowering);
//! * an index appearing in **two** inputs is contracted and must *not*
//!   appear in the output (batched/Hadamard modes are not lowerable to
//!   `C += A·B` products).
//!
//! Repeated indices inside a single term (traces/diagonals) and indices
//! used by three or more terms are rejected for the same reason.

use std::fmt;

/// Why an einsum spec (or its binding to operands) was rejected. Carried by
/// [`BstError::Spec`](crate::error::BstError::Spec).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The spec string does not match the grammar.
    Parse {
        /// The offending spec string.
        spec: String,
        /// What was wrong with it.
        reason: String,
    },
    /// An index letter occurs twice in one term or in the output.
    RepeatedIndex {
        /// `"output"` or the 0-based input term, rendered.
        term: String,
        /// The repeated index letter.
        index: char,
    },
    /// An output index that no input term mentions.
    UnknownOutputIndex {
        /// The unknown index letter.
        index: char,
    },
    /// A term (or the output) has a rank the engine cannot matricise.
    UnsupportedRank {
        /// `"output"` or the 0-based input term, rendered.
        term: String,
        /// The rank found.
        rank: usize,
    },
    /// The number of bound operands differs from the number of spec terms.
    OperandCount {
        /// Terms in the spec.
        expected: usize,
        /// Operands bound to the builder.
        got: usize,
    },
    /// An operand's rank disagrees with its spec term's rank.
    RankMismatch {
        /// 0-based input term.
        term: usize,
        /// Rank the spec term implies.
        spec_rank: usize,
        /// Rank of the operand actually bound.
        operand_rank: usize,
    },
    /// An index is used by more than two input terms.
    IndexArity {
        /// The index letter.
        index: char,
        /// How many input terms use it.
        count: usize,
    },
    /// An index appears in exactly one input but not in the output — a pure
    /// reduction, which has no planned-product lowering.
    Reduction {
        /// The index letter.
        index: char,
    },
    /// An index appears in two inputs *and* in the output — a batched mode,
    /// not lowerable to a matrix product.
    Batch {
        /// The index letter.
        index: char,
    },
    /// A contracted (or shared) index whose tilings disagree between its
    /// two terms.
    TilingMismatch {
        /// The index letter.
        index: char,
        /// First term using the index (0-based).
        first: usize,
        /// Second term using the index (0-based).
        second: usize,
    },
    /// An on-demand order-4 operand whose declared mode tilings do not fuse
    /// to the tilings of the matricised structure supplied with it.
    MatricisationMismatch {
        /// 0-based input term.
        term: usize,
        /// Which fused side disagrees (`"row"` or `"column"`).
        side: &'static str,
    },
    /// The expression cannot be lowered to a left-to-right chain of
    /// transpose-free planned products.
    Unlowerable {
        /// 0-based binary term (the product introducing operand `term+1`).
        term: usize,
        /// Why the orientation search failed.
        reason: String,
    },
    /// The requested output index order differs from the order the lowered
    /// chain produces (a result transpose would be required).
    OutputOrder {
        /// The order the chain can produce.
        achievable: String,
        /// The order the spec requested.
        requested: String,
    },
    /// The supplied output shape has the wrong tile dimensions.
    ShapeDims {
        /// Tile rows of the supplied shape.
        rows: usize,
        /// Tile columns of the supplied shape.
        cols: usize,
        /// Tile rows the lowered result has.
        want_rows: usize,
        /// Tile columns the lowered result has.
        want_cols: usize,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse { spec, reason } => write!(f, "cannot parse {spec:?}: {reason}"),
            SpecError::RepeatedIndex { term, index } => {
                write!(f, "index '{index}' repeats within {term} (traces/diagonals unsupported)")
            }
            SpecError::UnknownOutputIndex { index } => {
                write!(f, "output index '{index}' appears in no input term")
            }
            SpecError::UnsupportedRank { term, rank } => {
                write!(f, "{term} has rank {rank}; only matrices (2) and order-4 tensors are supported")
            }
            SpecError::OperandCount { expected, got } => {
                write!(f, "spec names {expected} operands but {got} were bound")
            }
            SpecError::RankMismatch { term, spec_rank, operand_rank } => write!(
                f,
                "term {term} is rank {spec_rank} in the spec but the bound operand is rank {operand_rank}"
            ),
            SpecError::IndexArity { index, count } => {
                write!(f, "index '{index}' is used by {count} terms; at most 2 are lowerable")
            }
            SpecError::Reduction { index } => write!(
                f,
                "index '{index}' appears in one input but not the output; pure reductions are unsupported"
            ),
            SpecError::Batch { index } => write!(
                f,
                "index '{index}' is shared by two inputs and kept in the output; batched modes are unsupported"
            ),
            SpecError::TilingMismatch { index, first, second } => write!(
                f,
                "index '{index}' has different tilings in terms {first} and {second}"
            ),
            SpecError::MatricisationMismatch { term, side } => write!(
                f,
                "term {term}: the declared mode tilings do not fuse to the supplied structure's {side} tiling"
            ),
            SpecError::Unlowerable { term, reason } => {
                write!(f, "binary term {term} has no transpose-free lowering: {reason}")
            }
            SpecError::OutputOrder { achievable, requested } => write!(
                f,
                "the lowered chain produces output order \"{achievable}\" but \"{requested}\" was requested (result transposes are unsupported)"
            ),
            SpecError::ShapeDims { rows, cols, want_rows, want_cols } => write!(
                f,
                "output shape is {rows}x{cols} tiles but the result is {want_rows}x{want_cols}"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// A parsed, index-validated einsum spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EinsumSpec {
    inputs: Vec<Vec<char>>,
    output: Vec<char>,
}

impl EinsumSpec {
    /// Parses and validates a spec string (see the [module docs](self) for
    /// the grammar and the index rules).
    pub fn parse(spec: &str) -> Result<Self, SpecError> {
        let parse_err = |reason: &str| SpecError::Parse {
            spec: spec.to_string(),
            reason: reason.to_string(),
        };
        let (lhs, rhs) = spec.split_once("->").ok_or_else(|| parse_err("missing \"->\""))?;
        if rhs.contains("->") {
            return Err(parse_err("more than one \"->\""));
        }
        let read_term = |s: &str| -> Result<Vec<char>, SpecError> {
            let t = s.trim();
            if t.is_empty() {
                return Err(parse_err("empty term"));
            }
            t.chars()
                .map(|c| {
                    if c.is_ascii_alphabetic() {
                        Ok(c)
                    } else {
                        Err(parse_err(&format!("index {c:?} is not an ASCII letter")))
                    }
                })
                .collect()
        };
        let inputs: Vec<Vec<char>> =
            lhs.split(',').map(read_term).collect::<Result<_, _>>()?;
        if inputs.len() < 2 {
            return Err(parse_err("at least two input terms are required"));
        }
        let output = read_term(rhs)?;

        // Rank and intra-term repetition checks.
        let term_name = |i: Option<usize>| match i {
            Some(i) => format!("input term {i}"),
            None => "the output".to_string(),
        };
        for (i, term) in inputs.iter().enumerate().map(|(i, t)| (Some(i), t)).chain(
            std::iter::once((None, &output)),
        ) {
            if term.len() != 2 && term.len() != 4 {
                return Err(SpecError::UnsupportedRank {
                    term: term_name(i),
                    rank: term.len(),
                });
            }
            for (k, &c) in term.iter().enumerate() {
                if term[..k].contains(&c) {
                    return Err(SpecError::RepeatedIndex { term: term_name(i), index: c });
                }
            }
        }

        // Cross-term index arity: once ⇒ free (must reach the output),
        // twice ⇒ contracted (must not), more ⇒ unsupported.
        let mut seen: Vec<char> = Vec::new();
        for term in &inputs {
            for &c in term {
                if !seen.contains(&c) {
                    seen.push(c);
                }
            }
        }
        for &c in &output {
            if !seen.contains(&c) {
                return Err(SpecError::UnknownOutputIndex { index: c });
            }
        }
        for &c in &seen {
            let count = inputs.iter().filter(|t| t.contains(&c)).count();
            let in_output = output.contains(&c);
            match (count, in_output) {
                (1, true) | (2, false) => {}
                (1, false) => return Err(SpecError::Reduction { index: c }),
                (2, true) => return Err(SpecError::Batch { index: c }),
                (n, _) => return Err(SpecError::IndexArity { index: c, count: n }),
            }
        }
        Ok(EinsumSpec { inputs, output })
    }

    /// The input terms, in spec order.
    pub fn inputs(&self) -> &[Vec<char>] {
        &self.inputs
    }

    /// The output term.
    pub fn output(&self) -> &[char] {
        &self.output
    }

    /// Number of operands the spec names.
    pub fn num_operands(&self) -> usize {
        self.inputs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_matrix_and_tensor_specs() {
        let s = EinsumSpec::parse("ik,kj->ij").unwrap();
        assert_eq!(s.num_operands(), 2);
        assert_eq!(s.output(), &['i', 'j']);
        let s = EinsumSpec::parse("ijcd,cdab->ijab").unwrap();
        assert_eq!(s.inputs()[1], vec!['c', 'd', 'a', 'b']);
        // Whitespace around terms is tolerated.
        EinsumSpec::parse(" ij , jk -> ik ").unwrap();
    }

    #[test]
    fn rejects_malformed_strings() {
        assert!(matches!(EinsumSpec::parse("ik,kj"), Err(SpecError::Parse { .. })));
        assert!(matches!(EinsumSpec::parse("ik->i2"), Err(SpecError::Parse { .. })));
        assert!(matches!(EinsumSpec::parse("ik,->ij"), Err(SpecError::Parse { .. })));
        assert!(matches!(EinsumSpec::parse("ik->ik"), Err(SpecError::Parse { .. })));
    }

    #[test]
    fn rejects_bad_index_usage() {
        assert!(matches!(
            EinsumSpec::parse("ii,ij->ij"),
            Err(SpecError::RepeatedIndex { .. })
        ));
        assert!(matches!(
            EinsumSpec::parse("ik,kj->jj"),
            Err(SpecError::RepeatedIndex { .. })
        ));
        assert!(matches!(
            EinsumSpec::parse("ik,kj->iz"),
            Err(SpecError::UnknownOutputIndex { index: 'z' })
        ));
        assert!(matches!(
            EinsumSpec::parse("ikz,kj->ij"),
            Err(SpecError::UnsupportedRank { .. })
        ));
        assert!(matches!(
            EinsumSpec::parse("ik,kj->ikj"),
            Err(SpecError::UnsupportedRank { .. })
        ));
        // k summed in one term only ⇒ reduction.
        assert!(matches!(
            EinsumSpec::parse("ik,lj->ij"),
            Err(SpecError::Reduction { .. })
        ));
        // c shared by both inputs and kept in the output ⇒ batch.
        assert!(matches!(
            EinsumSpec::parse("icab,cdab->icdb"),
            Err(SpecError::Batch { index: 'c' })
        ));
        assert!(matches!(
            EinsumSpec::parse("ik,ki,ik->ik"),
            Err(SpecError::IndexArity { index: 'i', count: 3 })
        ));
    }
}

//! The einsum contraction frontend: one spec-driven entry point over the
//! planned engine.
//!
//! Every contraction this crate evaluates — the plain matrix product, the
//! on-demand stationary-B product, the fused ABCD term, and multi-term
//! chains — is a *generated instance* of the same machinery: an einsum spec
//! (`"ik,kj->ij"`, `"ijcd,cdab->ijab"`, `"ij,jk,kl->il"`, …) is parsed,
//! validated against the bound operands (typed
//! [`crate::error::BstError::Spec`] errors), and lowered
//! into a left-to-right chain of planned `C += A·B` products executed by
//! [`crate::engine`].
//!
//! # Lowering
//!
//! Operands are consumed in their **stored matricised frame** — a matrix
//! contributes `rows × cols`, an order-4 tensor its fused
//! `(mode0,mode1) × (mode2,mode3)` layout ([`Tensor4Meta`]) — and the
//! lowering is *transpose-free*: per binary term it chooses between the two
//! orientations `acc · next` and `next · acc` (the **stationarity** choice:
//! whichever operand lands on the right becomes the stationary `B` of that
//! product, generated or served on demand), and rejects specs whose
//! contracted index groups would require physically transposing tile data
//! ([`SpecError::Unlowerable`]). Intermediates between terms carry
//! **screened structures**: the sparse shape product of the factors (at
//! [`Einsum::screen_threshold`]) becomes the intermediate's `c_shape`, so a
//! chain never materialises tiles the next term would screen away.
//!
//! # Entry points
//!
//! [`Einsum::contract`] runs each term through the one-shot engine;
//! [`Einsum::contract_on`] routes each term through a
//! [`ContractionService`], so plan caching and per-node B-tile caching
//! apply per term. The legacy entry points
//! [`multiply`](crate::api::multiply),
//! [`multiply_on_demand`](crate::api::multiply_on_demand) and
//! [`contract_abcd`](crate::api::contract_abcd) are thin shims over this
//! builder.
//!
//! ```
//! use bst_contract::einsum::Einsum;
//! use bst_contract::{DeviceConfig, GridConfig, PlannerConfig};
//! use bst_sparse::{BlockSparseMatrix, MatrixStructure};
//! use bst_tile::Tiling;
//!
//! let sa = MatrixStructure::dense(Tiling::uniform(4, 2), Tiling::uniform(6, 2));
//! let sb = MatrixStructure::dense(Tiling::uniform(6, 2), Tiling::uniform(8, 2));
//! let a = BlockSparseMatrix::random_from_structure(sa, 1);
//! let b = BlockSparseMatrix::random_from_structure(sb, 2);
//! let config = PlannerConfig::paper(
//!     GridConfig { p: 1, q: 1 },
//!     DeviceConfig { gpus_per_node: 1, gpu_mem_bytes: 1 << 20 },
//! );
//! let out = Einsum::new("ik,kj->ij")
//!     .operand(&a)
//!     .operand(&b)
//!     .contract(config)
//!     .unwrap();
//! assert_eq!(out.matrix().structure().rows(), 4);
//! assert_eq!(out.output_labels(), "ij");
//! ```

pub mod spec;

pub use spec::{EinsumSpec, SpecError};

use std::sync::Arc;

use crate::config::PlannerConfig;
use crate::engine::policies::ExecOptions;
use crate::engine::report::ExecReport;
use crate::error::{BstError, GenError, ServiceError};
use crate::exec::{execute_numeric_with, BGen};
use crate::plan::ExecutionPlan;
use crate::service::{ContractionRequest, ContractionService, RequestStats, ServiceBGen};
use crate::spec::ProblemSpec;
use bst_sparse::shape::SparseShape;
use bst_sparse::structure::product_structure;
use bst_sparse::tensor::{BlockSparseTensor4, Tensor4Meta};
use bst_sparse::{BlockSparseMatrix, MatrixStructure};
use bst_tile::pool::TilePool;
use bst_tile::Tiling;

/// A B-tile generator bound to an operand: either borrowed for the direct
/// path or `Arc`ed so the service path can ship it to worker threads.
enum GenRef<'a> {
    Borrowed(BGen<'a>),
    Shared(ServiceBGen),
}

enum OperandKind<'a> {
    /// A materialised matrix.
    Matrix(&'a BlockSparseMatrix),
    /// A materialised order-4 tensor (consumed in its matricised frame).
    Tensor4(&'a BlockSparseTensor4),
    /// An operand generated on demand; `meta` is present for order-4
    /// operands and declares the per-mode tilings of the matricised
    /// `structure`.
    OnDemand {
        structure: &'a MatrixStructure,
        meta: Option<Tensor4Meta>,
        gen: GenRef<'a>,
    },
}

struct OperandEntry<'a> {
    kind: OperandKind<'a>,
    /// Operand value identity for the service path's B-tile cache (see
    /// [`ContractionRequest::b_key`]).
    b_key: u64,
}

/// The per-operand label/tiling view the symbolic lowering works on.
#[derive(Clone)]
struct OperandView {
    row_labels: Vec<char>,
    col_labels: Vec<char>,
    row_tilings: Vec<Tiling>,
    col_tilings: Vec<Tiling>,
}

/// Which matrix takes a side of one lowered product.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Side {
    /// The running intermediate from the previous term.
    Acc,
    /// Bound operand `i`.
    Op(usize),
}

/// One lowered binary product: `out = A · B` with the sides resolved.
struct TermPlan {
    a: Side,
    b: Side,
}

/// The result of a contracted einsum expression: the matricised result plus
/// the label/tiling bookkeeping to view it as a tensor, and the per-term
/// engine reports.
pub struct EinsumOutcome {
    matrix: BlockSparseMatrix,
    row_labels: Vec<char>,
    col_labels: Vec<char>,
    row_tilings: Vec<Tiling>,
    col_tilings: Vec<Tiling>,
    /// One engine report per lowered term, in execution order.
    pub reports: Vec<ExecReport>,
    /// Per-term service accounting; empty unless run via
    /// [`Einsum::contract_on`].
    pub request_stats: Vec<RequestStats>,
}

impl std::fmt::Debug for EinsumOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EinsumOutcome")
            .field("output_labels", &self.output_labels())
            .field("tile_rows", &self.matrix.structure().shape().rows())
            .field("tile_cols", &self.matrix.structure().shape().cols())
            .field("terms", &self.reports.len())
            .finish_non_exhaustive()
    }
}

impl EinsumOutcome {
    /// The matricised result.
    pub fn matrix(&self) -> &BlockSparseMatrix {
        &self.matrix
    }

    /// Consumes the outcome, returning the matricised result.
    pub fn into_matrix(self) -> BlockSparseMatrix {
        self.matrix
    }

    /// The output index order this result carries (row labels then column
    /// labels).
    pub fn output_labels(&self) -> String {
        self.row_labels.iter().chain(&self.col_labels).collect()
    }

    /// The final term's engine report.
    pub fn report(&self) -> &ExecReport {
        self.reports.last().expect("at least one term was executed")
    }

    /// Views a rank-4 result as an order-4 tensor sharing the result's
    /// tiles (no data movement). Fails with a typed error when the output
    /// has rank 2.
    pub fn tensor4(&self) -> Result<BlockSparseTensor4, BstError> {
        if self.row_labels.len() != 2 || self.col_labels.len() != 2 {
            return Err(SpecError::UnsupportedRank {
                term: "the output tensor view".to_string(),
                rank: self.row_labels.len() + self.col_labels.len(),
            }
            .into());
        }
        let meta = Tensor4Meta::new([
            self.row_tilings[0].clone(),
            self.row_tilings[1].clone(),
            self.col_tilings[0].clone(),
            self.col_tilings[1].clone(),
        ]);
        Ok(BlockSparseTensor4::from_matricised(meta, self.matrix.clone())
            .expect("result tilings fuse to the result structure by construction"))
    }
}

/// Builder-style einsum entry point — see the [module docs](self).
///
/// Bind one operand per spec term, in spec order, then call
/// [`contract`](Einsum::contract) (one-shot engine) or
/// [`contract_on`](Einsum::contract_on) (through a [`ContractionService`]).
pub struct Einsum<'a> {
    spec: String,
    operands: Vec<OperandEntry<'a>>,
    output_shape: Option<SparseShape>,
    screen_threshold: f32,
    opts: ExecOptions,
}

impl<'a> Einsum<'a> {
    /// Starts a contraction for `spec` (e.g. `"ijcd,cdab->ijab"`). The spec
    /// is parsed and validated when a `contract*` method runs, so malformed
    /// specs surface as typed errors, not panics.
    pub fn new(spec: impl Into<String>) -> Self {
        Einsum {
            spec: spec.into(),
            operands: Vec::new(),
            output_shape: None,
            screen_threshold: 0.0,
            opts: ExecOptions::default(),
        }
    }

    /// Binds the next spec term to a materialised matrix.
    pub fn operand(mut self, m: &'a BlockSparseMatrix) -> Self {
        self.operands.push(OperandEntry { kind: OperandKind::Matrix(m), b_key: 0 });
        self
    }

    /// Binds the next spec term to a materialised order-4 tensor.
    pub fn tensor(mut self, t: &'a BlockSparseTensor4) -> Self {
        self.operands.push(OperandEntry { kind: OperandKind::Tensor4(t), b_key: 0 });
        self
    }

    /// Binds the next spec term to an on-demand **matrix** operand:
    /// `structure` declares its sparsity, `gen` materialises tiles when a
    /// node first needs them. The operand must land on the stationary `B`
    /// side of its product.
    pub fn on_demand(mut self, structure: &'a MatrixStructure, gen: BGen<'a>) -> Self {
        self.operands.push(OperandEntry {
            kind: OperandKind::OnDemand { structure, meta: None, gen: GenRef::Borrowed(gen) },
            b_key: 0,
        });
        self
    }

    /// Binds the next spec term to an on-demand **order-4** operand:
    /// `meta` declares the per-mode tilings, `structure` the matricised
    /// sparsity. `meta`'s fused tilings must equal `structure`'s tilings —
    /// a mismatch is a typed [`SpecError::MatricisationMismatch`].
    pub fn on_demand_tensor4(
        mut self,
        meta: &Tensor4Meta,
        structure: &'a MatrixStructure,
        gen: BGen<'a>,
    ) -> Self {
        self.operands.push(OperandEntry {
            kind: OperandKind::OnDemand {
                structure,
                meta: Some(meta.clone()),
                gen: GenRef::Borrowed(gen),
            },
            b_key: 0,
        });
        self
    }

    /// [`Einsum::on_demand`] with an owned, shareable generator — required
    /// for operands that should run through [`Einsum::contract_on`].
    pub fn on_demand_shared(mut self, structure: &'a MatrixStructure, gen: ServiceBGen) -> Self {
        self.operands.push(OperandEntry {
            kind: OperandKind::OnDemand { structure, meta: None, gen: GenRef::Shared(gen) },
            b_key: 0,
        });
        self
    }

    /// [`Einsum::on_demand_tensor4`] with an owned, shareable generator for
    /// the service path.
    pub fn on_demand_tensor4_shared(
        mut self,
        meta: &Tensor4Meta,
        structure: &'a MatrixStructure,
        gen: ServiceBGen,
    ) -> Self {
        self.operands.push(OperandEntry {
            kind: OperandKind::OnDemand {
                structure,
                meta: Some(meta.clone()),
                gen: GenRef::Shared(gen),
            },
            b_key: 0,
        });
        self
    }

    /// Sets the **value identity** of the most recently bound operand for
    /// the service path's B-tile cache: operands with different values MUST
    /// carry different keys, and the same key reuses cached tiles (see
    /// [`ContractionRequest::b_key`]). Intermediate results derive their
    /// identity by mixing the keys of every upstream operand.
    ///
    /// # Panics
    /// Panics if no operand has been bound yet.
    pub fn keyed(mut self, key: u64) -> Self {
        self.operands
            .last_mut()
            .expect("keyed() must follow an operand binding")
            .b_key = key;
        self
    }

    /// Screens the **final** result to `shape` (tile-level sparsity of the
    /// output), like the `c_shape` of the legacy entry points.
    pub fn output_shape(mut self, shape: SparseShape) -> Self {
        self.output_shape = Some(shape);
        self
    }

    /// Norm threshold for the screened structures of chain intermediates
    /// (sparse shape product of the factors); `0.0` (the default) keeps
    /// every structurally non-zero tile.
    pub fn screen_threshold(mut self, threshold: f32) -> Self {
        self.screen_threshold = threshold;
        self
    }

    /// Execution options (tracing, fault injection, retry, transport knobs)
    /// applied to every lowered term.
    pub fn options(mut self, opts: ExecOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Low-rank compression tolerance for every lowered term (sugar for
    /// setting [`ExecOptions::compress_tol`] on [`Einsum::options`]):
    /// operand tiles are truncated to `‖T − U·Vᵀ‖_F ≤ tol·‖T‖_F` as they
    /// enter the runtime. `0.0` (the default) keeps every tile dense and
    /// the contraction bit-identical to the uncompressed engine. Negative
    /// values clamp to `0.0`.
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.opts.compress_tol = tol.max(0.0);
        self
    }

    /// Parses, validates, lowers and executes the expression through the
    /// one-shot engine, one planned product per binary term.
    pub fn contract(self, config: PlannerConfig) -> Result<EinsumOutcome, BstError> {
        self.run_terms(config, None)
    }

    /// Like [`Einsum::contract`], but each term runs as a
    /// [`ContractionRequest`] on `service`, so its plan cache and per-node
    /// B-tile caches apply per term. Materialised operands are wrapped as
    /// shared generators; on-demand operands must have been bound with the
    /// `_shared` variants (a borrowed generator cannot outlive the
    /// submitting stack frame and is rejected with
    /// [`ServiceError::InvalidRequest`]).
    pub fn contract_on(
        self,
        service: &ContractionService,
        config: PlannerConfig,
    ) -> Result<EinsumOutcome, BstError> {
        self.run_terms(config, Some(service))
    }

    /// Shared driver for both execution paths.
    fn run_terms(
        self,
        config: PlannerConfig,
        service: Option<&ContractionService>,
    ) -> Result<EinsumOutcome, BstError> {
        let spec = EinsumSpec::parse(&self.spec)?;
        if spec.num_operands() != self.operands.len() {
            return Err(SpecError::OperandCount {
                expected: spec.num_operands(),
                got: self.operands.len(),
            }
            .into());
        }
        let views = build_views(&spec, &self.operands)?;
        check_shared_tilings(&spec, &views)?;
        let (plans, out_view) = plan_chain(&spec, &self.operands, &views)?;
        if let Some(shape) = &self.output_shape {
            let want_rows: usize = out_view.row_tilings.iter().map(Tiling::num_tiles).product();
            let want_cols: usize = out_view.col_tilings.iter().map(Tiling::num_tiles).product();
            if shape.rows() != want_rows || shape.cols() != want_cols {
                return Err(SpecError::ShapeDims {
                    rows: shape.rows(),
                    cols: shape.cols(),
                    want_rows,
                    want_cols,
                }
                .into());
            }
        }

        let mut reports = Vec::with_capacity(plans.len());
        let mut request_stats = Vec::new();
        let mut acc: Option<BlockSparseMatrix> = None;
        let last = plans.len() - 1;
        for (t, term) in plans.iter().enumerate() {
            let a_structure = match term.a {
                Side::Acc => {
                    acc.as_ref().expect("accumulator exists after term 0").structure().clone()
                }
                Side::Op(i) => self.operand_structure(i).clone(),
            };
            let b_structure = match term.b {
                Side::Acc => {
                    acc.as_ref().expect("accumulator exists after term 0").structure().clone()
                }
                Side::Op(i) => self.operand_structure(i).clone(),
            };
            // Intermediates carry the screened shape product of their
            // factors; the final term takes the caller's output shape.
            let c_shape = if t == last {
                self.output_shape.clone()
            } else {
                Some(
                    product_structure(&a_structure, &b_structure, self.screen_threshold)
                        .shape()
                        .clone(),
                )
            };
            let (c, report) = match service {
                None => self.run_direct(term, &acc, a_structure, b_structure, c_shape, config)?,
                Some(svc) => {
                    let (c, report, stats) =
                        self.run_service(svc, t, term, &mut acc, b_structure, c_shape, config)?;
                    request_stats.push(stats);
                    (c, report)
                }
            };
            reports.push(report);
            acc = Some(c);
        }
        Ok(EinsumOutcome {
            matrix: acc.expect("at least one term was executed"),
            row_labels: out_view.row_labels,
            col_labels: out_view.col_labels,
            row_tilings: out_view.row_tilings,
            col_tilings: out_view.col_tilings,
            reports,
            request_stats,
        })
    }

    /// Executes one lowered term through the one-shot engine.
    fn run_direct(
        &self,
        term: &TermPlan,
        acc: &Option<BlockSparseMatrix>,
        a_structure: MatrixStructure,
        b_structure: MatrixStructure,
        c_shape: Option<SparseShape>,
        config: PlannerConfig,
    ) -> Result<(BlockSparseMatrix, ExecReport), BstError> {
        let a_mat: &BlockSparseMatrix = match term.a {
            Side::Acc => acc.as_ref().expect("accumulator exists after term 0"),
            Side::Op(i) => self.materialised(i),
        };
        // A materialised B side (operand or intermediate) is served straight
        // from its tile map; only on-demand operands invoke a caller
        // generator.
        let b_mat: Option<&BlockSparseMatrix> = match term.b {
            Side::Acc => Some(acc.as_ref().expect("accumulator exists after term 0")),
            Side::Op(i) => match &self.operands[i].kind {
                OperandKind::OnDemand { .. } => None,
                OperandKind::Matrix(_) | OperandKind::Tensor4(_) => Some(self.materialised(i)),
            },
        };
        let pspec = ProblemSpec::new(a_structure, b_structure, c_shape);
        let plan = ExecutionPlan::build(&pspec, config)?;
        let run = |b_gen: BGen<'_>| {
            execute_numeric_with(&pspec, &plan, a_mat, b_gen, self.opts).map_err(BstError::from)
        };
        match b_mat {
            Some(b) => {
                let f = move |k: usize, j: usize, _r: usize, _c: usize, _pool: &TilePool| {
                    b.tile_arc(k, j).cloned().ok_or(GenError::MissingTile { k, j })
                };
                run(&f)
            }
            None => {
                let Side::Op(i) = term.b else {
                    unreachable!("an intermediate B side is always materialised")
                };
                match &self.operands[i].kind {
                    OperandKind::OnDemand { gen: GenRef::Borrowed(g), .. } => run(*g),
                    OperandKind::OnDemand { gen: GenRef::Shared(g), .. } => {
                        let g = Arc::clone(g);
                        let f = move |k: usize, j: usize, r: usize, c: usize, pool: &TilePool| {
                            g(k, j, r, c, pool)
                        };
                        run(&f)
                    }
                    OperandKind::Matrix(_) | OperandKind::Tensor4(_) => {
                        unreachable!("materialised operands are served via b_mat above")
                    }
                }
            }
        }
    }

    /// Executes one lowered term as a service request.
    #[allow(clippy::too_many_arguments)]
    fn run_service(
        &self,
        service: &ContractionService,
        t: usize,
        term: &TermPlan,
        acc: &mut Option<BlockSparseMatrix>,
        b_structure: MatrixStructure,
        c_shape: Option<SparseShape>,
        config: PlannerConfig,
    ) -> Result<(BlockSparseMatrix, ExecReport, RequestStats), BstError> {
        let a: Arc<BlockSparseMatrix> = match term.a {
            // Hand the intermediate over without a deep copy; it is not the
            // B side of this term (an orientation never uses one matrix on
            // both sides).
            Side::Acc => Arc::new(acc.take().expect("accumulator exists after term 0")),
            Side::Op(i) => Arc::new(self.materialised(i).clone()),
        };
        let (b_gen, b_key): (ServiceBGen, u64) = match term.b {
            Side::Acc => {
                let b = Arc::new(acc.take().expect("accumulator exists after term 0"));
                let gen: ServiceBGen = Arc::new(
                    move |k: usize, j: usize, _r: usize, _c: usize, _pool: &TilePool| {
                        b.tile_arc(k, j).cloned().ok_or(GenError::MissingTile { k, j })
                    },
                );
                (gen, self.intermediate_key(t))
            }
            Side::Op(i) => {
                let key = self.operands[i].b_key;
                match &self.operands[i].kind {
                    OperandKind::OnDemand { gen: GenRef::Shared(g), .. } => (Arc::clone(g), key),
                    OperandKind::OnDemand { gen: GenRef::Borrowed(_), .. } => {
                        return Err(ServiceError::InvalidRequest(format!(
                            "operand {i} uses a borrowed on-demand generator; bind it with \
on_demand_shared/on_demand_tensor4_shared to contract through a service"
                        ))
                        .into());
                    }
                    OperandKind::Matrix(_) | OperandKind::Tensor4(_) => {
                        let b = Arc::new(self.materialised(i).clone());
                        let gen: ServiceBGen = Arc::new(
                            move |k: usize, j: usize, _r: usize, _c: usize, _pool: &TilePool| {
                                b.tile_arc(k, j).cloned().ok_or(GenError::MissingTile { k, j })
                            },
                        );
                        (gen, key)
                    }
                }
            }
        };
        let outcome = service.run(ContractionRequest {
            a,
            b_structure,
            b_gen,
            b_key,
            c_shape,
            config,
            opts: self.opts,
        })?;
        Ok((outcome.c, outcome.report, outcome.stats))
    }

    /// The materialised matrix of operand `i` (its matricised frame for
    /// tensors). Must not be called for on-demand operands.
    fn materialised(&self, i: usize) -> &BlockSparseMatrix {
        match &self.operands[i].kind {
            OperandKind::Matrix(m) => m,
            OperandKind::Tensor4(t) => t.matricised(),
            OperandKind::OnDemand { .. } => {
                unreachable!("lowering keeps on-demand operands on the B side")
            }
        }
    }

    /// The block structure of operand `i`.
    fn operand_structure(&self, i: usize) -> &MatrixStructure {
        match &self.operands[i].kind {
            OperandKind::Matrix(m) => m.structure(),
            OperandKind::Tensor4(t) => t.matricised().structure(),
            OperandKind::OnDemand { structure, .. } => structure,
        }
    }

    /// Value identity of the intermediate consumed as B by binary term `t`:
    /// an FNV-1a mix of every upstream operand's `b_key` (so two einsum
    /// calls over operands with distinct declared identities never alias in
    /// the service's B-tile cache) and the term index.
    fn intermediate_key(&self, t: usize) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(t as u64);
        // The intermediate at term t combines operands 0..=t.
        for entry in self.operands.iter().take(t + 1) {
            mix(entry.b_key);
        }
        h
    }
}

/// Resolves each operand into its matricised label/tiling view, checking
/// rank agreement and (for on-demand tensors) that the declared mode
/// tilings fuse to the supplied structure.
fn build_views(
    spec: &EinsumSpec,
    operands: &[OperandEntry<'_>],
) -> Result<Vec<OperandView>, SpecError> {
    let mut views = Vec::with_capacity(operands.len());
    for (i, (labels, entry)) in spec.inputs().iter().zip(operands).enumerate() {
        let operand_rank = match &entry.kind {
            OperandKind::Matrix(_) => 2,
            OperandKind::Tensor4(_) => 4,
            OperandKind::OnDemand { meta, .. } => {
                if meta.is_some() {
                    4
                } else {
                    2
                }
            }
        };
        if labels.len() != operand_rank {
            return Err(SpecError::RankMismatch {
                term: i,
                spec_rank: labels.len(),
                operand_rank,
            });
        }
        let (row_tilings, col_tilings) = match &entry.kind {
            OperandKind::Matrix(m) => (
                vec![m.structure().row_tiling().clone()],
                vec![m.structure().col_tiling().clone()],
            ),
            OperandKind::Tensor4(t) => {
                let meta = t.meta();
                check_fused(i, meta, t.matricised().structure())?;
                let [t0, t1, t2, t3] = meta.mode_tilings().clone();
                (vec![t0, t1], vec![t2, t3])
            }
            OperandKind::OnDemand { structure, meta: Some(meta), .. } => {
                check_fused(i, meta, structure)?;
                let [t0, t1, t2, t3] = meta.mode_tilings().clone();
                (vec![t0, t1], vec![t2, t3])
            }
            OperandKind::OnDemand { structure, meta: None, .. } => (
                vec![structure.row_tiling().clone()],
                vec![structure.col_tiling().clone()],
            ),
        };
        let (row_labels, col_labels) = labels.split_at(labels.len() / 2);
        views.push(OperandView {
            row_labels: row_labels.to_vec(),
            col_labels: col_labels.to_vec(),
            row_tilings,
            col_tilings,
        });
    }
    Ok(views)
}

/// Checks that `meta`'s fused tilings equal `structure`'s tilings.
fn check_fused(
    term: usize,
    meta: &Tensor4Meta,
    structure: &MatrixStructure,
) -> Result<(), SpecError> {
    if meta.fused_row_tiling() != *structure.row_tiling() {
        return Err(SpecError::MatricisationMismatch { term, side: "row" });
    }
    if meta.fused_col_tiling() != *structure.col_tiling() {
        return Err(SpecError::MatricisationMismatch { term, side: "column" });
    }
    Ok(())
}

/// Checks that every index shared by two terms carries the same tiling in
/// both.
fn check_shared_tilings(spec: &EinsumSpec, views: &[OperandView]) -> Result<(), SpecError> {
    let mut seen: Vec<(char, usize, &Tiling)> = Vec::new();
    for (i, view) in views.iter().enumerate() {
        let modes = view
            .row_labels
            .iter()
            .zip(&view.row_tilings)
            .chain(view.col_labels.iter().zip(&view.col_tilings));
        for (&label, tiling) in modes {
            if let Some(&(_, first, prior)) = seen.iter().find(|(l, _, _)| *l == label) {
                if prior != tiling {
                    return Err(SpecError::TilingMismatch { index: label, first, second: i });
                }
            } else {
                seen.push((label, i, tiling));
            }
        }
    }
    let _ = spec;
    Ok(())
}

/// Folds the operand views left to right, choosing per binary term the
/// transpose-free orientation (and thereby which side is stationary), and
/// returns the lowered term plans plus the final result view.
fn plan_chain(
    spec: &EinsumSpec,
    operands: &[OperandEntry<'_>],
    views: &[OperandView],
) -> Result<(Vec<TermPlan>, OperandView), SpecError> {
    let is_on_demand =
        |side: Side| matches!(side, Side::Op(i) if matches!(operands[i].kind, OperandKind::OnDemand { .. }));
    let mut acc = views[0].clone();
    let mut acc_side = Side::Op(0);
    let mut plans = Vec::with_capacity(views.len() - 1);
    for (x, next) in views.iter().enumerate().skip(1) {
        let term = x - 1;
        let direct = acc.col_labels == next.row_labels;
        let swapped = next.col_labels == acc.row_labels;
        let (a_side, b_side, out) = if direct {
            (
                acc_side,
                Side::Op(x),
                OperandView {
                    row_labels: acc.row_labels.clone(),
                    col_labels: next.col_labels.clone(),
                    row_tilings: acc.row_tilings.clone(),
                    col_tilings: next.col_tilings.clone(),
                },
            )
        } else if swapped {
            (
                Side::Op(x),
                acc_side,
                OperandView {
                    row_labels: next.row_labels.clone(),
                    col_labels: acc.col_labels.clone(),
                    row_tilings: next.row_tilings.clone(),
                    col_tilings: acc.col_tilings.clone(),
                },
            )
        } else {
            let render = |ls: &[char]| ls.iter().collect::<String>();
            return Err(SpecError::Unlowerable {
                term,
                reason: format!(
                    "neither ({}|{})·({}|{}) nor ({}|{})·({}|{}) has matching inner index groups \
in the stored matricised frames",
                    render(&acc.row_labels),
                    render(&acc.col_labels),
                    render(&next.row_labels),
                    render(&next.col_labels),
                    render(&next.row_labels),
                    render(&next.col_labels),
                    render(&acc.row_labels),
                    render(&acc.col_labels),
                ),
            });
        };
        if is_on_demand(a_side) {
            let Side::Op(i) = a_side else { unreachable!() };
            return Err(SpecError::Unlowerable {
                term,
                reason: format!(
                    "operand {i} is generated on demand but the orientation puts it on the \
moving (A) side; on-demand operands must be stationary (B)"
                ),
            });
        }
        plans.push(TermPlan { a: a_side, b: b_side });
        acc = out;
        acc_side = Side::Acc;
    }
    let achieved: String = acc.row_labels.iter().chain(&acc.col_labels).collect();
    let requested: String = spec.output().iter().collect();
    if achieved != requested {
        return Err(SpecError::OutputOrder { achievable: achieved, requested });
    }
    Ok((plans, acc))
}
